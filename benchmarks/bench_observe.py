"""Observer overhead: the disabled path must stay (nearly) free.

Two guarantees pinned here:

* ``NullObserver`` (and ``observer=None``) strip observation from the
  core loop entirely — the observed min-of-rounds runtime must stay
  within 5% of the bare baseline on the same process / same program
  (the acceptance gate from the observability PR);
* full observation (``cpi,audit,trace``) is *allowed* to cost — these
  benches just record how much, so regressions show in the history.

Timing method: the 5% gate compares min-of-rounds of interleaved
runs inside one benchmark body (same process, same cache state), not
two separate pytest-benchmark fixtures, so machine noise between
fixtures cannot fail the gate spuriously.
"""

import time

from repro import run_program
from repro.observe import NullObserver, make_observer
from repro.uarch.config import ci
from repro.workloads import build_program

SCALE = 0.35
SEED = 1
ROUNDS = 3


def _min_runtime(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_null_observer_overhead(benchmark):
    """observer=NullObserver within 5% of observer=None (min of rounds)."""
    prog = build_program("mcf", SCALE, SEED)
    cfg = ci(1, 512)
    run_program(prog, cfg)  # warm-up
    run_program(prog, cfg, observer=NullObserver())

    base = _min_runtime(lambda: run_program(prog, cfg))
    stats = benchmark.pedantic(
        run_program, args=(prog, cfg),
        kwargs={"observer": NullObserver()}, rounds=ROUNDS, iterations=1)
    nulled = min(benchmark.stats.stats.data)
    ratio = nulled / base
    benchmark.extra_info["cycles"] = stats.cycles
    benchmark.extra_info["kcycles_per_s"] = round(
        stats.cycles / benchmark.stats["mean"] / 1000, 1)
    benchmark.extra_info["null_over_bare_ratio"] = round(ratio, 3)
    assert ratio <= 1.05, (
        f"NullObserver path is {ratio:.1%} of the bare path "
        f"(gate: 105%): {nulled:.3f}s vs {base:.3f}s")


def test_full_observation_cost(benchmark):
    """cpi,audit,trace attached — records the cost, asserts correctness."""
    prog = build_program("mcf", SCALE, SEED)
    cfg = ci(1, 512)
    bare = run_program(prog, cfg)

    def observed():
        obs = make_observer("cpi,audit,trace")
        stats = run_program(prog, cfg, observer=obs)
        return stats, obs

    stats, obs = benchmark.pedantic(observed, rounds=ROUNDS, iterations=1)
    cpi = obs.children[0]
    benchmark.extra_info["cycles"] = stats.cycles
    benchmark.extra_info["kcycles_per_s"] = round(
        stats.cycles / benchmark.stats["mean"] / 1000, 1)
    assert stats.to_dict() == bare.to_dict(), \
        "observation changed simulation results"
    assert cpi.total == stats.cycles, "CPI stack does not sum to cycles"
