"""Regenerates the paper's Figure 9 (see repro.experiments.fig09)."""

from repro.experiments import fig09


def test_fig09(regenerate):
    regenerate(fig09.compute)
