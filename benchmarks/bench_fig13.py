"""Regenerates the paper's Figure 13 (see repro.experiments.fig13)."""

from repro.experiments import fig13


def test_fig13(regenerate):
    regenerate(fig13.compute)
