"""Regenerates the paper's Figure 14 (see repro.experiments.fig14)."""

from repro.experiments import fig14


def test_fig14(regenerate):
    regenerate(fig14.compute)
