"""Regenerates the design-choice ablation tables (repro.experiments.ablations)."""

import pytest

from repro.experiments import ALL_ABLATIONS


@pytest.mark.parametrize("name", sorted(ALL_ABLATIONS))
def test_ablation(name, regenerate):
    regenerate(ALL_ABLATIONS[name])
