"""Shared fixtures for the per-figure benchmark harness.

Each ``bench_figXX`` target regenerates one of the paper's tables/figures
(the same rows/series, printed at the end of the session) and times the
regeneration.  Figures share a process-wide memoising runner, so a full
``pytest benchmarks/ --benchmark-only`` pass simulates each configuration
once.  Workload scale comes from ``REPRO_SCALE`` (default 0.35 here to
keep a full bench pass in minutes; EXPERIMENTS.md uses 0.5).

Shape checks are *reported*, not asserted one-by-one: a handful of known,
documented deviations from the paper (see EXPERIMENTS.md) would otherwise
fail the harness.  Each bench asserts that the figure produced data and
that most of its checks hold.
"""

import os

import pytest

os.environ.setdefault("REPRO_SCALE", "0.35")

from repro.experiments import Runner  # noqa: E402  (after env setup)


@pytest.fixture(scope="session")
def runner():
    return Runner()


@pytest.fixture(scope="session")
def report_sink():
    """Collects every regenerated figure; writes them all at session end.

    pytest captures teardown stdout, so the tables also land in
    ``bench_figures.txt`` under ``REPRO_REPORT_DIR`` (default: the
    working directory, created if missing) — that file is the harness's
    actual deliverable (the same rows/series the paper reports).
    """
    figures = {}
    yield figures
    lines = []
    for fig in figures.values():
        lines.append(fig.render())
        lines.append("")
    report = "\n".join(lines)
    report_dir = os.environ.get("REPRO_REPORT_DIR", ".")
    os.makedirs(report_dir, exist_ok=True)
    with open(os.path.join(report_dir, "bench_figures.txt"), "w") as fh:
        fh.write(report)
    print("\n" + report)


@pytest.fixture
def regenerate(benchmark, runner, report_sink):
    def _run(compute):
        fig = benchmark.pedantic(compute, args=(runner,),
                                 rounds=1, iterations=1)
        report_sink[fig.fig_id] = fig
        assert fig.rows, "figure produced no data"
        passed = sum(c.passed for c in fig.checks)
        assert passed * 2 >= len(fig.checks), (
            f"{fig.fig_id}: most shape checks failed:\n"
            + "\n".join(c.render() for c in fig.checks))
        return fig
    return _run
