"""Shared fixtures for the per-figure benchmark harness.

Each ``bench_figXX`` target regenerates one of the paper's tables/figures
(the same rows/series, printed at the end of the session) and times the
regeneration.  Figures share a process-wide memoising runner, so a full
``pytest benchmarks/ --benchmark-only`` pass simulates each configuration
once.  Workload scale comes from ``REPRO_SCALE`` (default 0.35 here to
keep a full bench pass in minutes; EXPERIMENTS.md uses 0.5).

Shape checks are *reported*, not asserted one-by-one: a handful of known,
documented deviations from the paper (see EXPERIMENTS.md) would otherwise
fail the harness.  Each bench asserts that the figure produced data and
that most of its checks hold.
"""

import json
import os

import pytest

os.environ.setdefault("REPRO_SCALE", "0.35")

from repro.experiments import Runner  # noqa: E402  (after env setup)

#: the shared session runner, exposed so the JSON emitter can report its
#: cache counters alongside the timings (None until the fixture runs)
_session_runner = None


@pytest.fixture(scope="session")
def runner():
    global _session_runner
    _session_runner = Runner()
    return _session_runner


def _report_dir() -> str:
    report_dir = os.environ.get("REPRO_REPORT_DIR", ".")
    os.makedirs(report_dir, exist_ok=True)
    return report_dir


def pytest_sessionfinish(session, exitstatus):
    """Emit one machine-readable ``BENCH_<suite>.json`` per bench module.

    ``bench_runtime.py`` becomes ``BENCH_runtime.json`` and so on, written
    to ``REPRO_REPORT_DIR`` (default: the working directory).  Each file
    carries wall-clock stats, the per-bench ``extra_info`` (cycles,
    kcycles/s, recorded speedups) and the shared runner's cache counters,
    so CI can diff runs without parsing pytest-benchmark's terminal table.
    """
    bs = getattr(session.config, "_benchmarksession", None)
    benches = getattr(bs, "benchmarks", None) if bs is not None else None
    if not benches:
        return
    by_suite = {}
    for bench in benches:
        modname = os.path.basename(bench.fullname.split("::", 1)[0])
        if modname.startswith("bench_"):
            modname = modname[len("bench_"):]
        if modname.endswith(".py"):
            modname = modname[:-3]
        try:
            entry = {
                "name": bench.name,
                "fullname": bench.fullname,
                "wall_s_mean": bench["mean"],
                "wall_s_min": bench["min"],
                "rounds": bench["rounds"],
                "extra_info": dict(bench.extra_info),
            }
        except (KeyError, TypeError):  # bench errored before stats existed
            continue
        by_suite.setdefault(modname, []).append(entry)
    if not by_suite:
        return
    cache = None
    if _session_runner is not None:
        cache = {
            "memo_hits": _session_runner.memo_hits,
            "disk_hits": _session_runner.disk_hits,
            "sims_run": _session_runner.sims_run,
        }
    report_dir = _report_dir()
    for suite, entries in sorted(by_suite.items()):
        payload = {
            "suite": suite,
            "scale": float(os.environ["REPRO_SCALE"]),
            "cache": cache,
            "benchmarks": entries,
        }
        path = os.path.join(report_dir, f"BENCH_{suite}.json")
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")


@pytest.fixture(scope="session")
def report_sink():
    """Collects every regenerated figure; writes them all at session end.

    pytest captures teardown stdout, so the tables also land in
    ``bench_figures.txt`` under ``REPRO_REPORT_DIR`` (default: the
    working directory, created if missing) — that file is the harness's
    actual deliverable (the same rows/series the paper reports).
    """
    figures = {}
    yield figures
    lines = []
    for fig in figures.values():
        lines.append(fig.render())
        lines.append("")
    report = "\n".join(lines)
    report_dir = os.environ.get("REPRO_REPORT_DIR", ".")
    os.makedirs(report_dir, exist_ok=True)
    with open(os.path.join(report_dir, "bench_figures.txt"), "w") as fh:
        fh.write(report)
    print("\n" + report)


@pytest.fixture
def regenerate(benchmark, runner, report_sink):
    def _run(compute):
        fig = benchmark.pedantic(compute, args=(runner,),
                                 rounds=1, iterations=1)
        report_sink[fig.fig_id] = fig
        assert fig.rows, "figure produced no data"
        passed = sum(c.passed for c in fig.checks)
        assert passed * 2 >= len(fig.checks), (
            f"{fig.fig_id}: most shape checks failed:\n"
            + "\n".join(c.render() for c in fig.checks))
        return fig
    return _run
