"""Regenerates the paper's Figure 10 (see repro.experiments.fig10)."""

from repro.experiments import fig10


def test_fig10(regenerate):
    regenerate(fig10.compute)
