"""Core-loop speed baseline: cycles simulated per wall-clock second.

Unlike the figure benches (which time whole table regenerations and are
dominated by how many configurations they sweep), this times ONE fixed
(kernel, config) simulation so future PRs can track the cycle loop's
raw speed.  The disk cache is bypassed — a cache hit would time JSON
parsing, not simulation.

History (scale=0.35, mcf, ci(1, 512), this container's single core):

* pre-runtime seed: ~13 kcycles/s
* after the hot-loop pass (precomputed instruction flags/dispatch
  kinds, PortState reuse, hoisted stage locals): ~19 kcycles/s
"""

from repro import run_program
from repro.uarch.config import ci, scal
from repro.workloads import build_program

SCALE = 0.35
SEED = 1


def _bench_one(benchmark, kernel, cfg, label):
    prog = build_program(kernel, SCALE, SEED)
    run_program(prog, cfg)  # warm-up: JIT-free, but touches all code paths
    stats = benchmark.pedantic(run_program, args=(prog, cfg),
                               rounds=3, iterations=1)
    benchmark.extra_info["cycles"] = stats.cycles
    benchmark.extra_info["kcycles_per_s"] = round(
        stats.cycles / benchmark.stats["mean"] / 1000, 1)
    assert stats.cycles > 0 and stats.committed > 0, label


def test_core_loop_ci(benchmark):
    """The mechanism-heavy path: mcf under the full CI machine."""
    _bench_one(benchmark, "mcf", ci(1, 512), "mcf/ci")


def test_core_loop_scal(benchmark):
    """The plain superscalar path (no hooks attached)."""
    _bench_one(benchmark, "mcf", scal(1, 256), "mcf/scal")
