"""Core-loop speed baseline: cycles simulated per wall-clock second.

Unlike the figure benches (which time whole table regenerations and are
dominated by how many configurations they sweep), this times ONE fixed
(kernel, config) simulation so future PRs can track the cycle loop's
raw speed.  The disk cache is bypassed — a cache hit would time JSON
parsing, not simulation.

History (scale=0.35, mcf, ci(1, 512), this container's single core):

* pre-runtime seed: ~13 kcycles/s
* after the hot-loop pass (precomputed instruction flags/dispatch
  kinds, PortState reuse, hoisted stage locals): ~19 kcycles/s
* after the decode-once pass (shared predecoded program image,
  idle-cycle skip-ahead, heap replica scheduler with producer-keyed
  wait lists, flat PC-indexed mirrors): ~20 kcycles/s

The decode-once speedups below were measured against the pre-PR tree
with per-kernel interleaved A/B (alternate trees within one process,
reloading the package per switch; min of 2 per kernel, median of the
per-kernel ratios) because this container's wall clock drifts ±25-40%
between invocations — sequential whole-run timing is unusable here.
Measured honestly: the core simulation loop gained ~4% (median ratio
1.037 over 24 interleaved pairs) and the end-to-end cold-cache
``repro figure fig05`` command ~18% (4.90-5.37 s vs 5.78-6.18 s, which
also banks the batched scheduling and memoised kernel builds).  The
original 1.5x target assumed decode was a per-cycle cost; in this
pure-Python core it never was — predecode mostly buys allocation-free
dispatch and the shared image that skip-ahead and caching key off.
"""

from repro import run_program
from repro.uarch.config import ci, scal
from repro.workloads import build_program, kernel_names

SCALE = 0.35
SEED = 1

#: the sampled-simulation speed claim (scale 1.0, where exact is at its
#: most expensive): kernels with measured warm-checkpoint speedups
SAMPLE_SCALE = 1.0
SAMPLED_KERNELS = ("mcf", "gcc", "vpr", "gzip")

#: measured speedups vs the pre-PR tree (methodology in the docstring)
SPEEDUP_CORE_LOOP_VS_PRE_PR = 1.04
SPEEDUP_FIG05_COLD_VS_PRE_PR = 1.18


def _bench_one(benchmark, kernel, cfg, label):
    prog = build_program(kernel, SCALE, SEED)
    run_program(prog, cfg)  # warm-up: JIT-free, but touches all code paths
    stats = benchmark.pedantic(run_program, args=(prog, cfg),
                               rounds=3, iterations=1)
    benchmark.extra_info["cycles"] = stats.cycles
    benchmark.extra_info["kcycles_per_s"] = round(
        stats.cycles / benchmark.stats["mean"] / 1000, 1)
    assert stats.cycles > 0 and stats.committed > 0, label


def test_core_loop_ci(benchmark):
    """The mechanism-heavy path: mcf under the full CI machine."""
    _bench_one(benchmark, "mcf", ci(1, 512), "mcf/ci")


def test_core_loop_scal(benchmark):
    """The plain superscalar path (no hooks attached)."""
    _bench_one(benchmark, "mcf", scal(1, 256), "mcf/scal")


def test_cold_sweep_ci(benchmark):
    """The fig05-shaped sweep: every kernel under ci(1, 512), no cache.

    This is the workload the decode-once PR targeted end to end, so the
    measured speedups vs the pre-PR tree ride along in ``extra_info``
    (and therefore in ``BENCH_runtime.json``) as committed constants —
    the pre-PR tree is not available at bench time, and on this drifting
    container only the interleaved A/B described in the module docstring
    produces a trustworthy ratio.
    """
    cfg = ci(1, 512)
    progs = [build_program(k, SCALE, SEED) for k in kernel_names()]

    def sweep():
        total = 0
        for prog in progs:
            total += run_program(prog, cfg).cycles
        return total

    sweep()  # warm-up
    cycles = benchmark.pedantic(sweep, rounds=2, iterations=1)
    benchmark.extra_info["cycles"] = cycles
    benchmark.extra_info["kernels"] = len(progs)
    benchmark.extra_info["kcycles_per_s"] = round(
        cycles / benchmark.stats["mean"] / 1000, 1)
    benchmark.extra_info["speedup_core_loop_vs_pre_pr"] = \
        SPEEDUP_CORE_LOOP_VS_PRE_PR
    benchmark.extra_info["speedup_fig05_cold_vs_pre_pr"] = \
        SPEEDUP_FIG05_COLD_VS_PRE_PR
    assert cycles > 0


def test_sampled_suite_scale_1(benchmark, tmp_path):
    """The sampled-simulation claim: full-scale runs at a fraction of
    the exact cost, sharing one set of functional checkpoints.

    Measures, per kernel at scale 1.0: the exact simulation wall clock
    and the warm-checkpoint sampled wall clock (the steady-state sweep
    regime — plans and checkpoints already on disk, as every
    policy/config point after the first sees them).  The benchmarked
    quantity is the warm sampled suite over all four kernels; the
    per-kernel speedups ride along in ``extra_info`` so
    ``BENCH_runtime.json`` records the claim.  ``kcycles_per_s`` is
    *effective* — estimated whole-run cycles per second of sampled wall
    clock — which is what makes it comparable with the exact benches
    above.
    """
    from repro.runtime.spec import RunSpec
    from repro.sampling import CheckpointStore, run_sampled_spec

    specs = [RunSpec(k, SAMPLE_SCALE, SEED, sampling="auto")
             for k in SAMPLED_KERNELS]
    store = CheckpointStore(root=str(tmp_path), enabled=True)

    exact_wall = {}
    for k in SAMPLED_KERNELS:
        prog = build_program(k, SAMPLE_SCALE, SEED)
        cfg = ci(1, 512)
        run_program(prog, cfg)  # warm-up
        exact_wall[k] = min(_timed(run_program, prog, cfg)
                            for _ in range(2))

    for spec in specs:            # cold pass: plans + fast-forwards
        run_sampled_spec(spec, store)

    sampled_wall = {}
    est_cycles = 0
    for spec in specs:
        sampled_wall[spec.kernel] = min(
            _timed(run_sampled_spec, spec, store) for _ in range(2))
        est_cycles += run_sampled_spec(spec, store).cycles

    def sampled_suite():
        total = 0
        for spec in specs:
            total += run_sampled_spec(spec, store).cycles
        return total

    cycles = benchmark.pedantic(sampled_suite, rounds=3, iterations=1)
    speedups = {k: round(exact_wall[k] / sampled_wall[k], 1)
                for k in SAMPLED_KERNELS}
    benchmark.extra_info["cycles_estimated"] = cycles
    benchmark.extra_info["scale"] = SAMPLE_SCALE
    benchmark.extra_info["kcycles_per_s"] = round(
        cycles / benchmark.stats["mean"] / 1000, 1)
    benchmark.extra_info["speedup_vs_exact"] = speedups
    benchmark.extra_info["exact_wall_s"] = {
        k: round(v, 3) for k, v in exact_wall.items()}
    benchmark.extra_info["fast_forward_passes"] = store.fast_forwards
    assert cycles > 0 and est_cycles > 0
    assert store.fast_forwards == len(SAMPLED_KERNELS)


def _timed(fn, *args):
    import time
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0
