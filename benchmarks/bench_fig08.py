"""Regenerates the paper's Figure 8 (see repro.experiments.fig08)."""

from repro.experiments import fig08


def test_fig08(regenerate):
    regenerate(fig08.compute)
