"""Regenerates the paper's Figure 5 (see repro.experiments.fig05)."""

from repro.experiments import fig05


def test_fig05(regenerate):
    regenerate(fig05.compute)
