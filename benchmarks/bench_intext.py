"""Regenerates the paper's in-text claims (see repro.experiments.intext)."""

from repro.experiments import intext


def test_intext(regenerate):
    regenerate(intext.compute)
