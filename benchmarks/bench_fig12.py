"""Regenerates the paper's Figure 12 (see repro.experiments.fig12)."""

from repro.experiments import fig12


def test_fig12(regenerate):
    regenerate(fig12.compute)
