#!/usr/bin/env python
"""Perf gate: fail when cycles/sec regresses vs the committed baseline.

Reads the machine-readable ``BENCH_runtime.json`` that the bench
harness's conftest emits (see ``pytest_sessionfinish`` there), compares
each bench's ``kcycles_per_s`` against ``baseline_runtime.json``, and
exits non-zero if any bench fell more than ``--tolerance`` (default 30%)
below its baseline.  stdlib only, so CI can run it without the test
dependencies installed.

Refresh the baseline after an intentional speed change::

    python benchmarks/check_perf.py BENCH_runtime.json --update
"""

from __future__ import annotations

import argparse
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_BASELINE = os.path.join(HERE, "baseline_runtime.json")


def load_current(path: str) -> dict:
    with open(path) as fh:
        report = json.load(fh)
    current = {}
    for bench in report.get("benchmarks", []):
        kcps = bench.get("extra_info", {}).get("kcycles_per_s")
        if kcps is not None:
            current[bench["name"]] = float(kcps)
    if not current:
        sys.exit(f"error: no kcycles_per_s entries found in {path}")
    return current


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("bench_json",
                    help="BENCH_runtime.json emitted by the bench harness")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="committed baseline file (default: %(default)s)")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional regression (default: 0.30)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from bench_json and exit")
    args = ap.parse_args(argv)

    current = load_current(args.bench_json)

    if args.update:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except FileNotFoundError:
            baseline = {"note": "Committed perf baseline for check_perf.py."}
        baseline["benchmarks"] = {
            name: {"kcycles_per_s": kcps}
            for name, kcps in sorted(current.items())}
        with open(args.baseline, "w") as fh:
            json.dump(baseline, fh, indent=2)
            fh.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    with open(args.baseline) as fh:
        baseline = json.load(fh)

    failures = []
    for name, entry in sorted(baseline["benchmarks"].items()):
        base = float(entry["kcycles_per_s"])
        floor = base * (1.0 - args.tolerance)
        got = current.get(name)
        if got is None:
            failures.append(f"{name}: missing from {args.bench_json}")
            continue
        verdict = "ok" if got >= floor else "REGRESSION"
        print(f"{name}: {got:.1f} kcycles/s "
              f"(baseline {base:.1f}, floor {floor:.1f}) {verdict}")
        if got < floor:
            failures.append(
                f"{name}: {got:.1f} kcycles/s is more than "
                f"{args.tolerance:.0%} below baseline {base:.1f}")
    for extra in sorted(set(current) - set(baseline["benchmarks"])):
        print(f"{extra}: {current[extra]:.1f} kcycles/s (no baseline; "
              f"add via --update)")
    if failures:
        print("perf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
