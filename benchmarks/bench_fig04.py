"""Regenerates the paper's Figure 4 (see repro.experiments.fig04)."""

from repro.experiments import fig04


def test_fig04(regenerate):
    regenerate(fig04.compute)
