"""Regenerates the paper's Figure 11 (see repro.experiments.fig11)."""

from repro.experiments import fig11


def test_fig11(regenerate):
    regenerate(fig11.compute)
