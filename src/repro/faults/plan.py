"""Deterministic, seeded fault plans.

A :class:`FaultPlan` is an ordered set of :class:`FaultSpec` items, each
naming a fault *kind*, the cycle at which it arms, and an optional
program-name filter.  Plans are deterministic by construction: cycles
are either given explicitly or drawn from ``random.Random(seed)``, so
the same spec string (or the same ``generate`` arguments) always yields
the same injections and the same simulation outcome.

Spec grammar (the ``--faults`` / ``REPRO_FAULTS`` syntax)::

    plan     := item ("," item)*
    item     := "seed=" INT
              | KIND ["*" COUNT] ["@" CYCLE] ["/" TARGET]
    KIND     := squash | valfail | alloc-deny | stride-poison
              | replica-poison | crash

Examples::

    squash@400                   one forced squash armed at cycle 400
    valfail*3,seed=7             three validation failures at seeded cycles
    crash@500/bzip2              crash the worker, but only in 'bzip2'

``FaultPlan.to_spec()`` emits a fully resolved spec (explicit cycles),
so a plan survives a round-trip through an environment variable into a
pool worker unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: every injectable fault kind, in generation rotation order
FAULT_KINDS: Tuple[str, ...] = (
    "squash",          # flip a correctly predicted branch into a squash
    "valfail",         # force an otherwise-good replica validation to fail
    "alloc-deny",      # deny one SRSMT replica-register allocation
    "stride-poison",   # corrupt a confident stride-predictor entry
    "replica-poison",  # corrupt a precomputed replica value
    "crash",           # raise inside the worker (runtime-resilience tests)
)

#: default arming-cycle window for generated/unpinned faults
CYCLE_LO = 200
CYCLE_HI = 6000


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: ``kind`` arms at ``cycle`` (in ``target`` only)."""

    kind: str
    cycle: int
    target: Optional[str] = None   # program-name filter (None = everywhere)
    arg: int = 0                   # kind-specific knob (poison delta)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: "
                f"{', '.join(FAULT_KINDS)}")
        if self.cycle < 0:
            raise ValueError(f"fault cycle must be >= 0, got {self.cycle}")

    def to_spec(self) -> str:
        out = f"{self.kind}@{self.cycle}"
        if self.target:
            out += f"/{self.target}"
        return out

    def applies_to(self, program_name: str) -> bool:
        return self.target is None or self.target == program_name


class FaultPlan:
    """An ordered, deterministic set of fault specs."""

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0):
        self.seed = seed
        self.specs: Tuple[FaultSpec, ...] = tuple(
            sorted(specs, key=lambda s: (s.cycle, s.kind, s.target or "")))

    def __len__(self) -> int:
        return len(self.specs)

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultPlan) and self.specs == other.specs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan {self.to_spec()!r}>"

    # -- construction ----------------------------------------------------
    @classmethod
    def generate(cls, seed: int, count: int,
                 kinds: Sequence[str] = FAULT_KINDS[:-1],
                 lo: int = CYCLE_LO, hi: int = CYCLE_HI,
                 target: Optional[str] = None) -> "FaultPlan":
        """``count`` faults rotating through ``kinds`` at seeded cycles.

        ``crash`` is excluded by default: it is for runtime-resilience
        tests, not mechanism sweeps.  Same arguments, same plan."""
        rng = random.Random(seed)
        specs = [FaultSpec(kind=kinds[i % len(kinds)],
                           cycle=rng.randrange(lo, hi), target=target)
                 for i in range(count)]
        return cls(specs, seed=seed)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``--faults`` / ``REPRO_FAULTS`` spec grammar."""
        items: List[tuple] = []
        seed = 0
        for raw in text.split(","):
            part = raw.strip()
            if not part:
                continue
            if part.startswith("seed="):
                try:
                    seed = int(part[5:])
                except ValueError:
                    raise ValueError(
                        f"bad fault-plan seed {part!r}") from None
                continue
            target: Optional[str] = None
            if "/" in part:
                part, target = part.split("/", 1)
                target = target.strip() or None
            cycle: Optional[int] = None
            if "@" in part:
                part, cycle_s = part.split("@", 1)
                try:
                    cycle = int(cycle_s)
                except ValueError:
                    raise ValueError(
                        f"bad fault cycle in {raw.strip()!r}") from None
            count = 1
            if "*" in part:
                part, count_s = part.split("*", 1)
                try:
                    count = int(count_s)
                except ValueError:
                    raise ValueError(
                        f"bad fault count in {raw.strip()!r}") from None
                if count < 1:
                    raise ValueError(
                        f"fault count must be >= 1 in {raw.strip()!r}")
            items.append((part.strip(), count, cycle, target))
        # Resolve unpinned cycles only after the whole string is read, so
        # `seed=` may appear anywhere without changing the result.
        rng = random.Random(seed)
        specs: List[FaultSpec] = []
        for kind, count, cycle, target in items:
            for i in range(count):
                c = cycle + i if cycle is not None \
                    else rng.randrange(CYCLE_LO, CYCLE_HI)
                specs.append(FaultSpec(kind=kind, cycle=c, target=target))
        return cls(specs, seed=seed)

    # -- serialisation ---------------------------------------------------
    def to_spec(self) -> str:
        """Fully resolved spec string; ``parse`` round-trips it exactly."""
        return ",".join(s.to_spec() for s in self.specs)

    def describe(self) -> str:
        if not self.specs:
            return "empty fault plan"
        by_kind: dict = {}
        for s in self.specs:
            by_kind[s.kind] = by_kind.get(s.kind, 0) + 1
        kinds = " ".join(f"{k}:{n}" for k, n in sorted(by_kind.items()))
        return f"{len(self.specs)} fault(s) [{kinds}]"

    def for_program(self, program_name: str) -> List[FaultSpec]:
        """The specs that apply to ``program_name``, cycle-ordered."""
        return [s for s in self.specs if s.applies_to(program_name)]
