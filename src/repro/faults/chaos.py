"""Service-layer chaos harness for ``repro serve``.

Where :mod:`repro.faults.plan` injects *microarchitectural* faults into
one simulation, this module injects *operational* faults into the whole
serving stack — daemon, journal, pool, wire — and holds the survivors
to the crash-safety contract:

1. **journal consistency** — after the drill, replaying the journal
   must describe a legal job history (no lifecycle-order violations)
   and :meth:`~repro.serve.journal.JournalReplay.duplicate_sims` must
   be empty: no job was ever *simulated* twice, however many times the
   daemon died;
2. **equivalence** — every kernel's stats must be byte-identical to an
   uninterrupted serial reference run.  Crash safety that changes the
   numbers is not safety.

A :class:`ChaosPlan` is seeded and deterministic, mirroring
:class:`~repro.faults.plan.FaultPlan`: the same spec string and the
same sweep size fire the same events at the same progress points.

Spec grammar (the ``repro chaos --plan`` syntax)::

    plan := item ("," item)*
    item := "seed=" INT | KIND ["@" POS]
    KIND := kill-server | kill-worker | drop-conn | corrupt-journal
          | slow-client | malformed-envelope
    POS  := INT | start | mid | end

Positions are *progress points*: an event armed ``@N`` fires once the
client has collected N results (``mid`` = half the sweep, ``end`` = the
last job, unpinned = drawn from ``random.Random(seed)``).  The daemon
under test runs as a real subprocess (``python -m repro serve``) with
tiny batches (``--batch-max 2``) so a kill genuinely lands mid-sweep
while pool workers still exist to be killed, an isolated
``REPRO_CACHE_DIR`` and its own journal; ``kill-server`` is SIGKILL —
no drain, no flush — followed by a restart on the same port, which is
exactly the crash the journal exists for.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: every injectable service-layer fault kind, in generation rotation order
CHAOS_KINDS: Tuple[str, ...] = (
    "kill-server",          # SIGKILL the daemon mid-sweep, restart it
    "kill-worker",          # SIGKILL one pool worker process
    "drop-conn",            # cut the client connection after a request
    "corrupt-journal",      # scribble a torn/garbage tail on the journal
    "slow-client",          # stall the client past its poll cadence
    "malformed-envelope",   # raw garbage + invalid JSON at the listener
)

#: accepted long-form spellings in plan specs
CHAOS_ALIASES = {
    "drop-connection": "drop-conn",
    "corrupt-journal-tail": "corrupt-journal",
}

#: symbolic progress positions
POSITIONS = ("start", "mid", "end")

#: the default drill: every kind once, at seeded positions
DEFAULT_PLAN = ",".join(CHAOS_KINDS)


@dataclass(frozen=True)
class ChaosSpec:
    """One planned event: ``kind`` fires at progress position ``pos``.

    ``pos`` is ``""`` (unpinned — resolved from the plan seed), one of
    :data:`POSITIONS`, or a decimal progress index."""

    kind: str
    pos: str = ""

    def __post_init__(self):
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r}; known: "
                f"{', '.join(CHAOS_KINDS)}")
        if self.pos and self.pos not in POSITIONS \
                and not self.pos.isdigit():
            raise ValueError(
                f"bad chaos position {self.pos!r} "
                f"(expected an integer or one of {', '.join(POSITIONS)})")

    def to_spec(self) -> str:
        return f"{self.kind}@{self.pos}" if self.pos else self.kind

    def trigger(self, total: int, rng: random.Random) -> int:
        """The progress count (results collected) at which this fires."""
        last = max(0, total - 1)
        if self.pos == "start":
            return 0
        if self.pos == "mid":
            return total // 2
        if self.pos == "end":
            return last
        if self.pos:
            return min(int(self.pos), last)
        return rng.randrange(0, max(1, total))


class ChaosPlan:
    """An ordered, deterministic set of chaos events."""

    def __init__(self, specs: Sequence[ChaosSpec], seed: int = 0):
        self.seed = seed
        self.specs: Tuple[ChaosSpec, ...] = tuple(specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __eq__(self, other) -> bool:
        return (isinstance(other, ChaosPlan)
                and self.specs == other.specs and self.seed == other.seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ChaosPlan {self.to_spec()!r}>"

    # -- construction ----------------------------------------------------
    @classmethod
    def generate(cls, seed: int, count: int,
                 kinds: Sequence[str] = CHAOS_KINDS) -> "ChaosPlan":
        """``count`` events rotating through ``kinds``, all unpinned
        (positions come from the seed at resolve time).  Same
        arguments, same plan."""
        return cls([ChaosSpec(kind=kinds[i % len(kinds)])
                    for i in range(count)], seed=seed)

    @classmethod
    def parse(cls, text: str) -> "ChaosPlan":
        """Parse the ``--plan`` spec grammar (see the module docstring)."""
        specs: List[ChaosSpec] = []
        seed = 0
        for raw in text.split(","):
            part = raw.strip()
            if not part:
                continue
            if part.startswith("seed="):
                try:
                    seed = int(part[5:])
                except ValueError:
                    raise ValueError(
                        f"bad chaos-plan seed {part!r}") from None
                continue
            pos = ""
            if "@" in part:
                part, pos = part.split("@", 1)
                pos = pos.strip()
            kind = CHAOS_ALIASES.get(part.strip(), part.strip())
            specs.append(ChaosSpec(kind=kind, pos=pos))
        return cls(specs, seed=seed)

    # -- resolution ------------------------------------------------------
    def resolve(self, total: int) -> List[Tuple[int, ChaosSpec]]:
        """``(trigger, spec)`` pairs for a sweep of ``total`` jobs,
        sorted by trigger.  Deterministic: unpinned positions are drawn
        from ``random.Random(seed)`` in spec order."""
        rng = random.Random(self.seed)
        resolved = [(spec.trigger(total, rng), spec)
                    for spec in self.specs]
        resolved.sort(key=lambda pair: (pair[0], pair[1].kind))
        return resolved

    # -- serialisation ---------------------------------------------------
    def to_spec(self) -> str:
        out = ",".join(s.to_spec() for s in self.specs)
        return f"{out},seed={self.seed}" if self.seed else out

    def describe(self) -> str:
        if not self.specs:
            return "empty chaos plan"
        by_kind: Dict[str, int] = {}
        for s in self.specs:
            by_kind[s.kind] = by_kind.get(s.kind, 0) + 1
        kinds = " ".join(f"{k}:{n}" for k, n in sorted(by_kind.items()))
        return f"{len(self.specs)} event(s) [{kinds}]"


class ChaosDriver:
    """The daemon under test, managed as a real subprocess.

    Owns an isolated working directory (cache + journal), learns the
    daemon's port from its startup banner, and restarts crashed
    incarnations on the *same* port so a mid-sweep client reconnects to
    the successor transparently."""

    def __init__(self, workdir: str, jobs: int = 2, queue_depth: int = 64,
                 batch_max: int = 2, startup_timeout: float = 60.0):
        self.workdir = workdir
        self.cache_dir = os.path.join(workdir, "cache")
        self.journal_path = os.path.join(workdir, "serve-journal.jsonl")
        self.jobs = jobs
        #: small batches so a daemon kill genuinely lands mid-sweep; 2
        #: (not 1) because a single-job batch runs in-process — no pool
        #: worker would ever exist for ``kill-worker`` to hit
        self.batch_max = batch_max
        self.queue_depth = queue_depth
        self.startup_timeout = startup_timeout
        #: learned from the first incarnation's banner, then pinned
        self.port = 0
        self.proc: Optional[subprocess.Popen] = None
        #: every stderr line from every incarnation (diagnostics)
        self.log: List[str] = []
        #: SIGKILLs delivered to the daemon (crash count)
        self.kills = 0
        self._ready = threading.Event()

    @property
    def address(self) -> str:
        return f"127.0.0.1:{self.port}"

    def _env(self) -> Dict[str, str]:
        import repro
        src = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        env["REPRO_CACHE_DIR"] = self.cache_dir
        # The drill controls its own failures; ambient knobs must not.
        for knob in ("REPRO_FAULTS", "REPRO_CACHE", "REPRO_KEEP_GOING",
                     "REPRO_JOBS", "REPRO_TIMEOUT", "REPRO_RETRIES"):
            env.pop(knob, None)
        return env

    # -- lifecycle -------------------------------------------------------
    def start(self, attempts: int = 8) -> None:
        """Launch one incarnation and wait for its listening banner.

        A restart after :meth:`kill` can transiently lose the bind race:
        pool workers orphaned by the SIGKILL inherited the listening fd
        (fork context copies the whole fd table) and hold the port until
        they notice their parent is gone.  :meth:`kill` reaps them, but
        belt-and-braces we retry ``EADDRINUSE`` here a few times."""
        last_tail = ""
        for attempt in range(attempts):
            cmd = [sys.executable, "-m", "repro", "serve",
                   "--host", "127.0.0.1", "--port", str(self.port),
                   "--jobs", str(self.jobs), "--batch-max",
                   str(self.batch_max),
                   "--queue-depth", str(self.queue_depth),
                   "--journal", self.journal_path]
            self._ready = threading.Event()
            mark = len(self.log)
            self.proc = subprocess.Popen(
                cmd, env=self._env(), stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE, text=True)
            threading.Thread(target=self._pump,
                             args=(self.proc, self._ready),
                             daemon=True).start()
            if self._ready.wait(self.startup_timeout):
                return
            last_tail = "\n".join(self.log[-10:])
            self.stop()
            bound = any("address already in use" in line
                        for line in self.log[mark:])
            if not bound or attempt == attempts - 1:
                break
            time.sleep(0.25 * (attempt + 1))
        raise RuntimeError(
            f"repro serve did not come up within "
            f"{self.startup_timeout:.0f}s; last stderr:\n{last_tail}")

    def _pump(self, proc: subprocess.Popen,
              ready: threading.Event) -> None:
        assert proc.stderr is not None
        for raw in proc.stderr:
            line = raw.rstrip("\n")
            self.log.append(line)
            m = re.search(r"listening on http://[^:]+:(\d+)", line)
            if m:
                self.port = int(m.group(1))
                ready.set()

    def kill(self) -> None:
        """SIGKILL the daemon — no drain, no flush, no goodbye.

        Pool workers are reaped too: they inherited the daemon's
        listening socket at fork, and an orphan still holding that fd
        keeps the port bound against the successor incarnation."""
        orphans = self.worker_pids()
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()
        for pid in orphans:
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass   # already gone, or never ours to kill
        self.kills += 1

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful drain (SIGTERM); escalates to SIGKILL on a hang."""
        if self.proc is None or self.proc.poll() is not None:
            return
        self.proc.send_signal(signal.SIGTERM)
        try:
            self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - hung drain
            self.proc.kill()
            self.proc.wait()

    # -- fault primitives ------------------------------------------------
    def worker_pids(self) -> List[int]:
        """Direct children of the daemon (pool worker processes)."""
        if self.proc is None or self.proc.poll() is not None:
            return []
        pids: List[int] = []
        try:
            candidates = os.listdir("/proc")
        except OSError:   # pragma: no cover - non-procfs platform
            return []
        for name in candidates:
            if not name.isdigit():
                continue
            try:
                with open(f"/proc/{name}/stat") as fh:
                    stat_fields = fh.read().rsplit(")", 1)[1].split()
            except (OSError, IndexError):
                continue
            if int(stat_fields[1]) == self.proc.pid:
                pids.append(int(name))
        return sorted(pids)

    def corrupt_journal_tail(self) -> int:
        """Append torn and corrupt lines to the (closed) journal.

        Call only while the daemon is down — a live incarnation holds
        the append handle.  Returns the number of bad lines written."""
        bad = [
            '{"v": 1, "sha256": "torn-mid-wri',             # torn write
            '{"v": 1, "sha256": "0" , "record": {"event": '
            '"completed", "key": "forged", "seq": 1}}',     # bad checksum
            "\x00\x01 not json at all",                     # garbage
        ]
        with open(self.journal_path, "a", encoding="utf-8") as fh:
            for line in bad:
                fh.write(line + "\n")
        return len(bad)


@dataclass
class ChaosReport:
    """Outcome of one chaos drill (see :meth:`render` for the verdict)."""

    plan_spec: str
    seed: int
    kernels: List[str]
    #: events that fired, as ``kind@trigger`` strings, in firing order
    fired: List[str] = field(default_factory=list)
    #: planned events whose trigger the sweep never reached
    unapplied: List[str] = field(default_factory=list)
    #: jobs that ended without stats (kernel: state)
    failures: List[str] = field(default_factory=list)
    #: kernels whose stats differ from the serial reference
    mismatches: List[str] = field(default_factory=list)
    #: journal lifecycle-order violations
    violations: List[str] = field(default_factory=list)
    #: keys simulated more than once (the cardinal sin)
    duplicate_sims: List[str] = field(default_factory=list)
    records: int = 0
    epochs: int = 0
    #: corrupt lines parked in ``<journal>.quarantine``
    quarantined: int = 0
    #: SIGKILLs the driver delivered to the daemon
    server_kills: int = 0
    #: client resilience events (reconnects, reattaches, degraded)
    client_events: List[str] = field(default_factory=list)
    #: restart-related ``/metrics`` lines from the final incarnation
    metrics_lines: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every contract held: consistent journal, no duplicated
        simulation, every job finished, stats identical to serial."""
        return not (self.violations or self.duplicate_sims
                    or self.failures or self.mismatches)

    def render(self) -> str:
        lines = [
            f"chaos drill     : {self.plan_spec} (seed {self.seed})",
            f"jobs            : {len(self.kernels)} kernel(s), "
            f"{len(self.kernels) - len(self.failures)} completed, "
            f"{len(self.failures)} failed",
            f"events          : fired {', '.join(self.fired) or 'none'}"
            f" ({len(self.unapplied)} unapplied)",
            f"server restarts : {self.server_kills} kill(s), "
            f"{self.epochs} epoch(s) in journal",
        ]
        if self.violations:
            lines.append(f"journal replay  : INCONSISTENT — "
                         f"{len(self.violations)} violation(s)")
            lines.extend(f"    {v}" for v in self.violations)
        else:
            lines.append(f"journal replay  : consistent — "
                         f"{self.records} record(s), 0 violation(s)")
        lines.append(f"duplicated sims : {len(self.duplicate_sims)}"
                     + (f" ({', '.join(k[:12] for k in self.duplicate_sims)})"
                        if self.duplicate_sims else ""))
        lines.append(f"quarantined     : {self.quarantined} line(s)")
        if self.mismatches:
            lines.append(f"equivalence     : {len(self.mismatches)} "
                         f"MISMATCH(ES) ({', '.join(self.mismatches)})")
        else:
            lines.append("equivalence     : identical to the serial "
                         "reference")
        for failure in self.failures:
            lines.append(f"    failed: {failure}")
        if self.metrics_lines:
            lines.append(f"metrics         : "
                         f"{', '.join(self.metrics_lines)}")
        lines.append(f"verdict         : {'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _jsonable(payload: object) -> object:
    """Normalise through JSON so tuple-vs-list never fails equivalence."""
    return json.loads(json.dumps(payload))


def _send_malformed(host: str, port: int) -> None:
    """Hit the listener with a non-HTTP blob and an invalid JSON body."""
    try:
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(b"\x00\x7fGARBAGE NOT HTTP\r\n\r\n")
            sock.settimeout(2.0)
            try:
                sock.recv(256)
            except OSError:
                pass
    except OSError:
        pass
    from ..serve import protocol
    try:
        conn = http.client.HTTPConnection(host, port, timeout=5.0)
        conn.request("POST", f"{protocol.API_PREFIX}/submit",
                     body='{"v": 1, "jobs": [tor',
                     headers={"Content-Type": "application/json"})
        conn.getresponse().read()
        conn.close()
    except OSError:
        pass


def run_chaos(plan: ChaosPlan, kernels: Optional[Sequence[str]] = None, *,
              scale: float = 0.05, data_seed: int = 1, jobs: int = 2,
              workdir: Optional[str] = None,
              on_event: Optional[Callable[[str], None]] = None,
              client_timeout: float = 20.0) -> ChaosReport:
    """Run one chaos drill and audit the crash-safety contract.

    1. Simulate every kernel serially in-process (no cache, no pool):
       the golden reference.
    2. Start a journaled ``repro serve`` subprocess (isolated cache
       dir, ``--batch-max 1``) and drive the same sweep through
       :meth:`ServeClient.run`, firing the plan's events at their
       resolved progress points.
    3. Drain the daemon, replay the journal read-only, and compare:
       journal consistency, zero duplicated simulations, and stats
       equal to the reference for every kernel.
    """
    from .. import run_program
    from ..serve.client import ServeClient
    from ..serve.journal import replay_journal
    from ..serve.protocol import DONE, JobSpec
    from ..uarch import ci
    from ..workloads import build_program, kernel_names

    names = list(kernels) if kernels else kernel_names()
    cfg = ci(1, 512)
    notify = on_event or (lambda message: None)

    # 1. Golden serial reference (pure in-process, no caching involved).
    notify(f"reference: simulating {len(names)} kernel(s) serially")
    golden: Dict[str, object] = {}
    for name in names:
        st = run_program(build_program(name, scale, data_seed), cfg)
        golden[name] = _jsonable(st.to_dict())

    owns_workdir = workdir is None
    if owns_workdir:
        workdir = tempfile.mkdtemp(prefix="repro-chaos-")
    driver = ChaosDriver(workdir, jobs=jobs)
    report = ChaosReport(plan_spec=plan.to_spec() or "(empty)",
                         seed=plan.seed, kernels=names)

    specs = [JobSpec(kernel=name, scale=scale, seed=data_seed, cfg=cfg,
                     priority="sweep", client="chaos")
             for name in names]
    pending = plan.resolve(len(specs))
    cursor = {"next": 0}
    drop_armed = {"n": 0}

    def chaos_drop(method: str, path: str) -> bool:
        if drop_armed["n"] > 0:
            drop_armed["n"] -= 1
            return True
        return False

    def fire(spec: ChaosSpec, trigger: int) -> None:
        label = f"{spec.kind}@{trigger}"
        notify(f"chaos: firing {label}")
        if spec.kind == "kill-server":
            driver.kill()
            driver.start()
        elif spec.kind == "corrupt-journal":
            driver.kill()
            driver.corrupt_journal_tail()
            driver.start()
        elif spec.kind == "kill-worker":
            # Pool workers exist only while a multi-job batch is in
            # flight; wait a moment for one to show up.
            pids: List[int] = []
            for _ in range(40):
                pids = driver.worker_pids()
                if pids:
                    break
                time.sleep(0.05)
            if pids:
                try:
                    os.kill(pids[0], signal.SIGKILL)
                except OSError:
                    label += " (worker already gone)"
            else:
                label += " (no worker process found)"
        elif spec.kind == "drop-conn":
            drop_armed["n"] += 1
        elif spec.kind == "slow-client":
            time.sleep(1.0)
        elif spec.kind == "malformed-envelope":
            _send_malformed("127.0.0.1", driver.port)
        report.fired.append(label)

    def on_poll(done: int, total: int) -> None:
        while (cursor["next"] < len(pending)
                and pending[cursor["next"]][0] <= done):
            trigger, spec = pending[cursor["next"]]
            cursor["next"] += 1
            fire(spec, trigger)

    # 2. The drill.
    driver.start()
    client = ServeClient(driver.address, timeout=client_timeout,
                         on_event=report.client_events.append)
    client.chaos_drop = chaos_drop
    try:
        outcomes = client.run(specs, poll=0.05, on_poll=on_poll)
        try:
            for line in client.metrics_text().splitlines():
                if re.match(r"repro_(server_restarts|pool_restarts|"
                            r"journal_records|journal_quarantined|"
                            r"jobs_replayed)_total ", line):
                    report.metrics_lines.append(line)
        except Exception:   # metrics are diagnostics, not the contract
            pass
    finally:
        driver.stop()
    report.server_kills = driver.kills
    report.unapplied = [f"{spec.kind}@{trigger}"
                        for trigger, spec in pending[cursor["next"]:]]

    # 3. The audit.
    replay = replay_journal(driver.journal_path, quarantine=False)
    report.records = replay.records
    report.epochs = replay.epochs
    report.violations = list(replay.violations)
    report.duplicate_sims = replay.duplicate_sims()
    qpath = driver.journal_path + ".quarantine"
    if os.path.exists(qpath):
        with open(qpath, encoding="utf-8") as fh:
            report.quarantined = sum(
                1 for line in fh if line.startswith("# line "))
    for name, (status, stats) in zip(names, outcomes):
        if status.state != DONE or stats is None:
            report.failures.append(f"{name}: ended {status.state}")
        elif _jsonable(stats) != golden[name]:
            report.mismatches.append(name)
    if owns_workdir and report.ok:
        import shutil
        shutil.rmtree(workdir, ignore_errors=True)
    elif owns_workdir:
        notify(f"chaos: evidence kept in {workdir}")
    return report
