"""FaultInjector — perturb a live simulation through the hook surface.

The injector is a :class:`~repro.uarch.hooks.MechanismHooks` wrapper: it
delegates every hook to the wrapped mechanism (or the no-op base for a
bare superscalar) and fires the armed faults of its
:class:`~repro.faults.plan.FaultPlan` at their cycles.  Faults are
injected through legitimate microarchitectural entry points only — a
forced squash flips the recorded branch prediction before the core's
recovery check, replica faults go through the
:class:`~repro.ci.pipeline.MechanismPipeline` fault port — so every
injection exercises a real recovery path rather than corrupting
simulator bookkeeping.

Correctness contract: no fault kind may change the *architectural*
outcome of the program.  Squashes re-fetch the correct path; poisoned
replicas and forced validation failures make reuse fail and the
instance re-execute; denied allocations just skip a replica batch.  The
differential oracle (:mod:`repro.faults.oracle`) holds the injector to
that contract after every run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..uarch.hooks import MechanismHooks
from .plan import FaultPlan, FaultSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..uarch.core import Core, PortState
    from ..uarch.rob import DynInst

#: XOR mask used to corrupt a precomputed replica value (any non-zero
#: constant works; validation must catch the mismatch)
POISON_MASK = 0x5A5A5A5A


class InjectedCrash(RuntimeError):
    """A planned ``crash`` fault fired (runtime-resilience testing)."""


class FaultInjector(MechanismHooks):
    """Wrap mechanism hooks and fire the plan's faults at their cycles."""

    def __init__(self, plan: FaultPlan,
                 inner: Optional[MechanismHooks] = None):
        self.plan = plan
        self.inner = inner if inner is not None else MechanismHooks()
        #: chronological log of fired faults (dicts; see ``_record``)
        self.injected: List[dict] = []

    @property
    def has_replicas(self) -> bool:
        return self.inner.has_replicas

    # ------------------------------------------------------------------
    def attach(self, core: "Core") -> None:
        self.core = core
        self.obs = core.active_observer
        self.inner.attach(core)
        # Mechanism-internal faults (alloc denial, validation failure) are
        # pulled by the pipeline through this port at their decision sites.
        if hasattr(self.inner, "faults"):
            self.inner.faults = self
        #: per-kind FIFO of armed specs for this program, cycle-ordered
        self._queues: Dict[str, List[FaultSpec]] = {}
        for spec in self.plan.for_program(core.program.name):
            self._queues.setdefault(spec.kind, []).append(spec)

    # ------------------------------------------------------------------
    # Arming / accounting.
    # ------------------------------------------------------------------
    def _due(self, kind: str) -> Optional[FaultSpec]:
        q = self._queues.get(kind)
        if q and q[0].cycle <= self.core.cycle:
            return q.pop(0)
        return None

    def _pending(self, kind: str) -> bool:
        q = self._queues.get(kind)
        return bool(q) and q[0].cycle <= self.core.cycle

    def _record(self, spec: FaultSpec, detail: str) -> None:
        now = self.core.cycle
        self.injected.append({"kind": spec.kind, "armed": spec.cycle,
                              "cycle": now, "detail": detail})
        if self.obs is not None:
            self.obs.on_fault_injected(spec.kind, detail, now)

    def unapplied(self) -> List[FaultSpec]:
        """Specs that never found an opportunity to fire."""
        return [s for q in self._queues.values() for s in q]

    def report(self) -> str:
        lines = [f"fault plan: {self.plan.describe()}"]
        for f in self.injected:
            lines.append(f"  cycle {f['cycle']:>6}  {f['kind']:<14} "
                         f"{f['detail']} (armed @{f['armed']})")
        left = self.unapplied()
        if left:
            lines.append(f"  {len(left)} fault(s) never applied: "
                         + ", ".join(s.to_spec() for s in left))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Pipeline fault port (pulled by ci/replicas.py).
    # ------------------------------------------------------------------
    def deny_alloc(self) -> bool:
        """True once per armed ``alloc-deny``: refuse this allocation."""
        spec = self._due("alloc-deny")
        if spec is None:
            return False
        self._record(spec, "denied one SRSMT replica-register allocation")
        return True

    def force_validation_failure(self, pc: int) -> bool:
        """True once per armed ``valfail``: fail this (good) validation."""
        spec = self._due("valfail")
        if spec is None:
            return False
        self._record(spec, f"forced validation failure at pc={pc}")
        return True

    # ------------------------------------------------------------------
    # Hook surface.
    # ------------------------------------------------------------------
    def on_dispatch(self, inst: "DynInst") -> None:
        self.inner.on_dispatch(inst)

    def on_branch_resolved(self, inst: "DynInst") -> None:
        self.inner.on_branch_resolved(inst)
        # Forced squash: flip the recorded prediction of a *correctly*
        # predicted, still-live branch.  The core's recovery check runs
        # right after this hook and walks the window back to the branch's
        # true target — the standard misprediction path, at a point the
        # predictor got right.  (Flipping an already-mispredicted branch
        # would *suppress* its recovery and corrupt architectural state.)
        if (self._pending("squash") and not inst.squashed
                and inst.pred_taken is not None and not inst.mispredicted):
            spec = self._queues["squash"].pop(0)
            inst.pred_taken = not inst.actual_taken
            self._record(spec, f"forced squash at branch pc={inst.pc} "
                               f"seq={inst.seq}")

    def on_recovery(self, pivot: "DynInst", squashed: List["DynInst"],
                    is_branch: bool) -> None:
        self.inner.on_recovery(pivot, squashed, is_branch)

    def on_commit(self, inst: "DynInst") -> None:
        self.inner.on_commit(inst)

    def on_store_commit(self, inst: "DynInst") -> bool:
        return self.inner.on_store_commit(inst)

    def dispatch_gate(self) -> bool:
        return self.inner.dispatch_gate()

    def validated_extra_latency(self, inst: "DynInst") -> int:
        return self.inner.validated_extra_latency(inst)

    def next_event_cycle(self):
        # Undelivered faults arm/retry from on_cycle (crash timers tick,
        # state poisons probe for a live target), so the core must not
        # skip cycles while any remain queued.
        if any(self._queues.values()):
            return 0
        return self.inner.next_event_cycle()

    def on_cycle(self, leftover_issue_slots: int, ports: "PortState") -> None:
        spec = self._due("crash")
        if spec is not None:
            self._record(spec, "injected worker crash")
            raise InjectedCrash(
                f"injected crash at cycle {self.core.cycle} in "
                f"{self.core.program.name!r}")
        # State-poisoning faults need a live target; they stay armed (and
        # retry every cycle) until one exists, so a fault armed before the
        # predictor warms up still fires.
        if self._pending("stride-poison"):
            detail = self._poison_stride()
            if detail is not None:
                self._record(self._queues["stride-poison"].pop(0), detail)
        if self._pending("replica-poison"):
            detail = self._poison_replica()
            if detail is not None:
                self._record(self._queues["replica-poison"].pop(0), detail)
        self.inner.on_cycle(leftover_issue_slots, ports)

    # ------------------------------------------------------------------
    # State poisoning.
    # ------------------------------------------------------------------
    def _poison_stride(self) -> Optional[str]:
        """Corrupt the lowest-pc confident stride entry (if any)."""
        selector = getattr(self.inner, "selector", None)
        if selector is None:
            return None
        stride = selector.stride
        victim_pc, victim = None, None
        for pc, entry in stride.table.items():
            if entry.confidence >= 2 and entry.stride != 0 \
                    and (victim_pc is None or pc < victim_pc):
                victim_pc, victim = pc, entry
        if victim is None:
            return None
        old = victim.stride
        victim.stride = old + 8
        victim.last_addr += 8
        return (f"poisoned stride predictor at pc={victim_pc} "
                f"(stride {old} -> {victim.stride})")

    def _poison_replica(self) -> Optional[str]:
        """XOR-corrupt the precomputed values of one live replica batch."""
        replicas = getattr(self.inner, "replicas", None)
        if replicas is None:
            return None
        entries = sorted(replicas.srsmt.all_entries(), key=lambda e: e.pc)
        for entry in entries:
            hit = 0
            for i in range(entry.decode, entry.nregs):
                if entry.done[i] and entry.values[i] is not None:
                    entry.values[i] ^= POISON_MASK
                    hit += 1
            if hit:
                return (f"poisoned {hit} replica value(s) at pc={entry.pc} "
                        f"(entry generation {entry.generation})")
        return None
