"""Per-cycle state-machine invariant checking (``--check`` / ``REPRO_CHECK``).

:class:`InvariantChecker` is a read-only observer that audits the
simulator's cross-layer bookkeeping at the end of every cycle:

**core** — the window is seq-ordered and holds no committed instruction;
``lsq_count`` equals the memory instructions actually in the window; the
rename free list stays within ``[0, capacity]`` and its in-use count
equals the registers held by in-flight instructions plus live replica
batches; the committed counter is monotone.

**NRBQ** — never exceeds capacity; entries stay seq-ascending (oldest →
youngest, the order squash/retire depend on).

**CRP** — the disarmed state is fully cleared (``pc == -1``, ``reached``
False, ``mask`` 0); an armed CRP has a real re-convergent PC.

**SRSMT** — per entry: ``0 <= commit, decode <= nregs``; a completed
replica was issued; in-flight issue count equals issued-minus-done;
``regs_held`` is non-negative; and (with the recovery-time cursor repair
enabled, the default) ``commit <= decode`` — replicas never commit past
the decode cursor.

**stride predictor** — confidence stays within the 2-bit counter range.

Violations are collected (``strict=False``) or raised immediately as
:class:`InvariantViolation` (``strict=True``, the ``--check`` default).
Checking is opt-in and costs a window walk per cycle, so the default
path pays nothing.
"""

from __future__ import annotations

from typing import List, Optional

from ..observe.base import Observer

#: 2-bit stride-confidence counter bound (mirrors ci/stride.py)
_CONF_MAX = 3


class InvariantViolation(RuntimeError):
    """A state-machine invariant did not hold at the end of a cycle."""


class InvariantChecker(Observer):
    """Read-only observer asserting simulator invariants every cycle."""

    name = "invariants"

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.violations: List[str] = []
        self.checked_cycles = 0
        self._last_committed = 0

    # ------------------------------------------------------------------
    def _fail(self, core, msg: str) -> None:
        text = f"{core.program.name} cycle {core.cycle}: {msg}"
        self.violations.append(text)
        if self.strict:
            raise InvariantViolation(text)

    @staticmethod
    def _mechanism(core):
        """The mechanism pipeline, unwrapping a fault injector if present."""
        hooks = core.hooks
        hooks = getattr(hooks, "inner", hooks)
        return hooks if getattr(hooks, "tracker", None) is not None \
            or getattr(hooks, "replicas", None) is not None else None

    # ------------------------------------------------------------------
    def on_cycle_end(self, core) -> None:
        self.checked_cycles += 1
        self._check_core(core)
        mech = self._mechanism(core)
        if mech is not None:
            if mech.tracker is not None:
                self._check_tracker(core, mech.tracker)
            if mech.replicas is not None:
                self._check_replicas(core, mech)
            if mech.selector is not None:
                self._check_stride(core, mech.selector.stride)

    # -- core ------------------------------------------------------------
    def _check_core(self, core) -> None:
        prev_seq = -1
        mem_insts = 0
        regs_in_window = 0
        for inst in core.window:
            if inst.seq <= prev_seq:
                self._fail(core, f"window out of order: seq {inst.seq} "
                                 f"after {prev_seq}")
            prev_seq = inst.seq
            if inst.committed:
                self._fail(core, f"committed instruction #{inst.seq} "
                                 f"still in window")
            if inst.instr.is_mem:
                mem_insts += 1
            if inst.reg_allocated:
                regs_in_window += 1
        if core.lsq_count != mem_insts:
            self._fail(core, f"lsq_count={core.lsq_count} but window holds "
                             f"{mem_insts} memory instruction(s)")
        fl = core.freelist
        if not 0 <= fl.free <= fl.capacity:
            self._fail(core, f"free list out of range: free={fl.free} "
                             f"capacity={fl.capacity}")
        mech = self._mechanism(core)
        replica_regs = 0
        accountable = True
        if mech is not None and mech.replicas is not None:
            if mech.spec_mem is not None:
                accountable = False  # replicas live in the spec memory
            else:
                replica_regs = sum(e.regs_held
                                   for e in mech.replicas.srsmt.all_entries())
        if accountable and fl.in_use != regs_in_window + replica_regs:
            self._fail(core, f"free-list leak: in_use={fl.in_use} but "
                             f"window holds {regs_in_window} and replicas "
                             f"hold {replica_regs}")
        if core.stats.committed < self._last_committed:
            self._fail(core, "committed counter went backwards")
        self._last_committed = core.stats.committed

    # -- re-convergence tracking ----------------------------------------
    def _check_tracker(self, core, tracker) -> None:
        nrbq = tracker.nrbq
        if len(nrbq.entries) > nrbq.capacity:
            self._fail(core, f"NRBQ over capacity: {len(nrbq.entries)} > "
                             f"{nrbq.capacity}")
        prev = -1
        for e in nrbq.entries:
            if e.seq <= prev:
                self._fail(core, f"NRBQ out of order: seq {e.seq} "
                                 f"after {prev}")
            prev = e.seq
        crp = tracker.crp
        if crp.active:
            if crp.pc < 0:
                self._fail(core, "armed CRP has no re-convergent pc")
        elif crp.reached or crp.pc != -1 or crp.mask != 0:
            self._fail(core, f"disarmed CRP not cleared: pc={crp.pc} "
                             f"reached={crp.reached} mask={crp.mask:#x}")

    # -- replica management ---------------------------------------------
    def _check_replicas(self, core, mech) -> None:
        repair = core.cfg.ci_recovery_repair
        for e in mech.replicas.srsmt.all_entries():
            if not 0 <= e.commit <= e.nregs:
                self._fail(core, f"SRSMT pc={e.pc}: commit cursor "
                                 f"{e.commit} outside [0, {e.nregs}]")
            if not 0 <= e.decode <= e.nregs:
                self._fail(core, f"SRSMT pc={e.pc}: decode cursor "
                                 f"{e.decode} outside [0, {e.nregs}]")
            if repair and e.commit > e.decode:
                self._fail(core, f"SRSMT pc={e.pc}: commit {e.commit} "
                                 f"passed decode {e.decode}")
            in_flight = sum(1 for i, d in zip(e.issued, e.done) if i and not d)
            if e.issue != in_flight:
                self._fail(core, f"SRSMT pc={e.pc}: issue={e.issue} but "
                                 f"{in_flight} replica(s) in flight")
            for i in range(e.nregs):
                if e.done[i] and not e.issued[i]:
                    self._fail(core, f"SRSMT pc={e.pc}: replica {i} done "
                                     f"but never issued")
            if e.regs_held < 0:
                self._fail(core, f"SRSMT pc={e.pc}: negative regs_held "
                                 f"{e.regs_held}")

    # -- stride predictor -------------------------------------------------
    def _check_stride(self, core, stride) -> None:
        for pc, e in stride.table.items():
            if not 0 <= e.confidence <= _CONF_MAX:
                self._fail(core, f"stride pc={pc}: confidence "
                                 f"{e.confidence} outside [0, {_CONF_MAX}]")

    # ------------------------------------------------------------------
    def render(self) -> str:
        if not self.violations:
            return (f"invariants: OK "
                    f"({self.checked_cycles} cycle(s) checked)")
        lines = [f"invariants: {len(self.violations)} violation(s) over "
                 f"{self.checked_cycles} cycle(s)"]
        lines.extend(f"  {v}" for v in self.violations[:20])
        if len(self.violations) > 20:
            lines.append(f"  ... and {len(self.violations) - 20} more")
        return "\n".join(lines)

    def export_data(self) -> dict:
        return {"violations": list(self.violations),
                "checked_cycles": self.checked_cycles}
