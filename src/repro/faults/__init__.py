"""Fault injection + invariant checking for the simulation pipeline.

The mechanism reproduced here is defined by its recovery paths —
replica-validation failure, squash at a mispredicted re-convergence
estimate, SRSMT allocation pressure — so this subsystem exercises them
systematically instead of waiting for a workload to stumble into them:

* :class:`FaultPlan` / :class:`FaultSpec` — deterministic, seeded plans
  of forced squashes, replica-validation failures, SRSMT alloc denials,
  stride-predictor poisoning, replica-value poisoning, and (for the
  runtime-resilience tests) worker crashes;
* :class:`FaultInjector` — a ``MechanismHooks`` wrapper that fires the
  plan through legitimate microarchitectural entry points (the
  pipeline's fault port, the branch-resolution hook);
* :mod:`repro.faults.oracle` — the differential oracle holding every
  faulted run to the correctness contract: final architectural state
  (register file + memory) identical to the functional ``isa/interp``
  reference;
* :class:`InvariantChecker` — per-cycle CRP/NRBQ/SRSMT/core
  state-machine auditing (``--check`` / ``REPRO_CHECK``).

:func:`run_checked` bundles all of it into one call and returns a
:class:`FaultReport`; ``repro faults`` sweeps it across the suite.

One level up, :mod:`repro.faults.chaos` applies the same discipline to
the *serving* stack: seeded :class:`ChaosPlan` drills (daemon kills,
worker kills, dropped connections, journal corruption) against a real
``repro serve`` subprocess, audited for journal consistency and
stats equivalence with a serial reference — ``repro chaos`` runs them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .chaos import (CHAOS_KINDS, ChaosDriver, ChaosPlan, ChaosReport,
                    ChaosSpec, run_chaos)
from .injector import FaultInjector, InjectedCrash, POISON_MASK
from .invariants import InvariantChecker, InvariantViolation
from .oracle import (
    OracleMismatch,
    check_final_state,
    committed_state,
    diff_against_interpreter,
)
from .plan import CYCLE_LO, FAULT_KINDS, FaultPlan, FaultSpec

__all__ = [
    "CHAOS_KINDS",
    "ChaosDriver",
    "ChaosPlan",
    "ChaosReport",
    "ChaosSpec",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "FaultSpec",
    "InjectedCrash",
    "InvariantChecker",
    "InvariantViolation",
    "OracleMismatch",
    "POISON_MASK",
    "check_final_state",
    "committed_state",
    "diff_against_interpreter",
    "plan_for_run",
    "run_chaos",
    "run_checked",
]


def plan_for_run(program, cfg=None, count: int = 5, seed: int = 0,
                 kinds=FAULT_KINDS[:-1]) -> FaultPlan:
    """A generated plan whose arming cycles land inside the actual run.

    The default generation window (:data:`~repro.faults.plan.CYCLE_LO` /
    ``CYCLE_HI``) overshoots short kernels, leaving every fault armed
    past the halt.  This helper first runs the program *clean* to learn
    its cycle count, then seeds the plan into the first 90% of it, so
    sweeps inject faults that actually land.
    """
    from .. import hooks_for
    from ..uarch import ProcessorConfig, simulate

    cfg = cfg or ProcessorConfig()
    clean = simulate(program, cfg, hooks=hooks_for(cfg))
    hi = max(2, int(clean.cycles * 0.9))
    lo = min(CYCLE_LO, max(1, clean.cycles // 10))
    if lo >= hi:
        lo = 1
    return FaultPlan.generate(seed=seed, count=count, kinds=kinds,
                              lo=lo, hi=hi)


@dataclass
class FaultReport:
    """Outcome of one fault-injected, oracle-checked simulation."""

    program: str
    policy: Optional[str]
    stats: Optional[object]            # SimStats; None if the run crashed
    injected: List[dict] = field(default_factory=list)
    unapplied: int = 0
    violations: List[str] = field(default_factory=list)
    oracle_diffs: List[str] = field(default_factory=list)
    crashed: Optional[str] = None      # InjectedCrash message, if any

    @property
    def ok(self) -> bool:
        """No invariant violation and no architectural divergence.

        A planned crash is an *expected* outcome, not a failure — the
        oracle simply cannot compare a mid-program state."""
        return not self.violations and not self.oracle_diffs

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAIL"
        parts = [f"{self.program}[{self.policy or 'base'}]: {verdict}",
                 f"{len(self.injected)} injected"]
        if self.unapplied:
            parts.append(f"{self.unapplied} unapplied")
        if self.crashed:
            parts.append("crashed (planned)")
        if self.violations:
            parts.append(f"{len(self.violations)} invariant violation(s)")
        if self.oracle_diffs:
            parts.append(f"{len(self.oracle_diffs)} oracle diff(s)")
        return ", ".join(parts)


def run_checked(program, cfg=None, plan: Optional[FaultPlan] = None,
                observer=None,
                max_instructions: Optional[int] = None) -> FaultReport:
    """Simulate ``program`` with faults injected and every check armed.

    Wraps the config's mechanism hooks in a :class:`FaultInjector` (when
    ``plan`` is given), attaches a non-strict :class:`InvariantChecker`
    next to any caller observer, runs the core, and compares the final
    architectural state against the functional interpreter.  A planned
    ``crash`` fault is caught and reported; real simulation errors
    propagate.
    """
    from .. import hooks_for
    from ..observe import MultiObserver
    from ..uarch import Core, ProcessorConfig

    cfg = cfg or ProcessorConfig()
    hooks = hooks_for(cfg)
    injector = None
    if plan is not None:
        injector = FaultInjector(plan, inner=hooks)
        hooks = injector
    checker = InvariantChecker(strict=False)
    obs = checker if observer is None \
        else MultiObserver([observer, checker])
    core = Core(cfg, program, hooks=hooks, observer=obs)
    report = FaultReport(program=program.name, policy=cfg.ci_policy,
                         stats=None)
    try:
        report.stats = core.run(max_instructions=max_instructions)
    except InjectedCrash as exc:
        report.crashed = str(exc)
    if injector is not None:
        report.injected = list(injector.injected)
        report.unapplied = len(injector.unapplied())
    report.violations = list(checker.violations)
    report.oracle_diffs = diff_against_interpreter(core)
    return report
