"""Differential oracle: timing-core state vs. the functional interpreter.

The timing core executes functionally at dispatch — including down
wrong paths — against a speculative register file and memory image with
per-instruction undo records.  Its *committed* architectural state is
therefore the speculative state with every in-flight (uncommitted)
window instruction undone.  :func:`committed_state` reconstructs that
non-destructively; :func:`diff_against_interpreter` replays the program
on the functional :mod:`repro.isa.interp` reference and reports every
divergence in the register file, memory image, or committed-instruction
count.

This is the correctness contract fault injection is held to: any fault
the injector fires must leave the program's architectural outcome
untouched (a simulator may lose performance to a fault, never results).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..isa.predecode import F_STORE, F_WRITES_REG
from ..uarch.rob import MEM_ABSENT


class OracleMismatch(RuntimeError):
    """The timing core's final state diverged from the interpreter."""


def committed_state(core) -> Tuple[List[int], Dict[int, int]]:
    """The core's committed (register file, memory) state, reconstructed.

    Non-destructive: walks the window youngest-to-oldest applying each
    in-flight instruction's undo record to *copies* of the speculative
    state, exactly as ``Core._undo`` would, without touching the core.
    Reads the core's shared decode-once image for the structural facts.
    """
    regs = list(core.sregs)
    mem = dict(core.mem)
    flags_a = core.image.flags
    rd_a = core.image.rd
    for inst in reversed(core.window):
        flags = flags_a[inst.pc]
        if flags & F_STORE and inst.eff_addr is not None:
            if inst.mem_old is MEM_ABSENT:
                mem.pop(inst.eff_addr, None)
            else:
                mem[inst.eff_addr] = inst.mem_old
        if flags & F_WRITES_REG and inst.sreg_old is not None:
            regs[rd_a[inst.pc]] = inst.sreg_old
    return regs, mem


def diff_against_interpreter(core, max_diffs: int = 8) -> List[str]:
    """Divergences between the core's committed state and the reference.

    Returns an empty list when the states match — or when the run is not
    comparable (the core did not halt: a ``max_instructions`` cut-off or
    an injected crash leaves a mid-program state the whole-program
    interpreter reference cannot be compared against).
    """
    if not core.halted:
        return []
    from ..isa.interp import run as interp_run
    ref = interp_run(core.program,
                     max_steps=max(2_000_000, core.stats.committed * 2))
    diffs: List[str] = []
    if core.stats.committed != ref.steps:
        diffs.append(f"committed {core.stats.committed} instructions, "
                     f"interpreter executed {ref.steps}")
    regs, mem = committed_state(core)
    for r, (got, want) in enumerate(zip(regs, ref.regs)):
        if got != want:
            diffs.append(f"r{r}: core={got} interp={want}")
            if len(diffs) >= max_diffs:
                diffs.append("... (more register diffs suppressed)")
                return diffs
    for addr in sorted(set(mem) | set(ref.memory)):
        got, want = mem.get(addr, 0), ref.memory.get(addr, 0)
        if got != want:
            diffs.append(f"mem[{addr}]: core={got} interp={want}")
            if len(diffs) >= max_diffs:
                diffs.append("... (more memory diffs suppressed)")
                return diffs
    return diffs


def check_final_state(core) -> None:
    """Raise :class:`OracleMismatch` if the core diverged from the
    interpreter reference (no-op on non-halted runs)."""
    diffs = diff_against_interpreter(core)
    if diffs:
        raise OracleMismatch(
            f"{core.program.name}: final architectural state diverged "
            f"from the functional interpreter:\n  " + "\n  ".join(diffs))
