"""Trace-driven front end: dynamic traces and offline analyses."""

from .analysis import (
    BranchStats,
    LoadStats,
    ReconvergenceCheck,
    TraceProfile,
    check_reconvergence,
    profile_trace,
)
from .events import TraceEvent
from .tracer import collect_trace

__all__ = [
    "BranchStats",
    "LoadStats",
    "ReconvergenceCheck",
    "TraceEvent",
    "TraceProfile",
    "check_reconvergence",
    "collect_trace",
    "profile_trace",
]
