"""Trace-driven front end: dynamic traces and offline analyses.

Trace records are the canonical :class:`~repro.observe.events.RetireEvent`
(``TraceEvent`` remains as a compatibility alias).
"""

from ..observe.events import RetireEvent
from .analysis import (
    BranchStats,
    LoadStats,
    ReconvergenceCheck,
    TraceProfile,
    check_reconvergence,
    profile_trace,
)
from .tracer import collect_trace

#: compatibility alias for the pre-unification name
TraceEvent = RetireEvent

__all__ = [
    "BranchStats",
    "LoadStats",
    "ReconvergenceCheck",
    "RetireEvent",
    "TraceEvent",
    "TraceProfile",
    "check_reconvergence",
    "collect_trace",
    "profile_trace",
]
