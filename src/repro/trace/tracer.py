"""Dynamic trace generation via the functional interpreter.

Emits the canonical :class:`~repro.observe.events.RetireEvent` stream —
the same record family the timing core's COMMIT events describe — so
offline and online consumers share one vocabulary.
"""

from __future__ import annotations

from typing import List

from ..isa import Program
from ..isa import interp
from ..observe.events import RetireEvent


def collect_trace(program: Program, max_steps: int = 2_000_000) -> List[RetireEvent]:
    """Run ``program`` functionally and return its full dynamic trace."""
    raw: list = []
    interp.run(program, max_steps=max_steps,
               trace_hook=lambda pc, instr, res, ea: raw.append((pc, instr, res, ea)))
    events: List[RetireEvent] = []
    n = len(raw)
    for seq, (pc, instr, res, ea) in enumerate(raw):
        next_pc = raw[seq + 1][0] if seq + 1 < n else pc + 1
        taken = None
        if instr.is_cond_branch:
            taken = next_pc == instr.target and next_pc != pc + 1
            # A branch whose target IS the fall-through is trivially taken;
            # resolve via the condition in that degenerate case.
            if instr.target == pc + 1:
                taken = True  # direction is unobservable and irrelevant
        events.append(RetireEvent(seq=seq, pc=pc, instr=instr, result=res,
                                  eff_addr=ea, next_pc=next_pc, taken=taken))
    return events
