"""Dynamic-trace record types.

A trace is a list of :class:`TraceEvent` produced by one functional
execution.  Traces feed the offline analyses (branch bias, stride
detection, re-convergence validation) and let tests pin down mechanism
behaviour without running the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..isa import Instruction


@dataclass(frozen=True)
class TraceEvent:
    """One retired dynamic instruction."""

    seq: int                  # dynamic sequence number (0-based)
    pc: int                   # static PC (instruction index)
    instr: Instruction        # static instruction
    result: Optional[int]     # destination value (None if no destination)
    eff_addr: Optional[int]   # effective address for loads/stores
    next_pc: int              # PC of the following dynamic instruction
    #: For conditional branches: whether the branch was taken.
    taken: Optional[bool] = None

    @property
    def is_load(self) -> bool:
        return self.instr.is_load

    @property
    def is_store(self) -> bool:
        return self.instr.is_store

    @property
    def is_cond_branch(self) -> bool:
        return self.instr.is_cond_branch
