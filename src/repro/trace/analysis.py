"""Offline trace analyses.

These mirror, in a trace-driven setting, the statistics the hardware
structures gather online: branch bias (MBS), load stride behaviour (stride
predictor), and re-convergence (NRBQ/CRP heuristics).  They are used by the
workload test-suite to *characterise* kernels, and by examples to explain
why the mechanism helps where it does.

All analyses consume the canonical retire stream
(:class:`~repro.observe.events.RetireEvent`) produced by
``trace.collect_trace``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ci.reconverge import estimate_reconvergent_point
from ..isa import Program
from ..observe.events import RetireEvent


@dataclass
class BranchStats:
    """Dynamic behaviour of one static conditional branch."""

    pc: int
    execs: int = 0
    taken: int = 0
    transitions: int = 0          # direction changes between executions
    _last: Optional[bool] = None

    def record(self, taken: bool) -> None:
        self.execs += 1
        if taken:
            self.taken += 1
        if self._last is not None and self._last != taken:
            self.transitions += 1
        self._last = taken

    @property
    def taken_rate(self) -> float:
        return self.taken / self.execs if self.execs else 0.0

    @property
    def bias(self) -> float:
        """max(taken, not-taken) rate — 1.0 means perfectly biased."""
        if not self.execs:
            return 1.0
        return max(self.taken, self.execs - self.taken) / self.execs

    @property
    def is_hard(self) -> bool:
        """Heuristic hard-to-predict flag (what MBS approximates online)."""
        return self.execs >= 8 and self.bias < 0.95


@dataclass
class LoadStats:
    """Dynamic address behaviour of one static load."""

    pc: int
    execs: int = 0
    strided_pairs: int = 0        # consecutive executions with repeated stride
    _last_addr: Optional[int] = None
    _last_stride: Optional[int] = None
    stride_histogram: Dict[int, int] = field(default_factory=dict)

    def record(self, addr: int) -> None:
        self.execs += 1
        if self._last_addr is not None:
            stride = addr - self._last_addr
            self.stride_histogram[stride] = self.stride_histogram.get(stride, 0) + 1
            if self._last_stride is not None and stride == self._last_stride:
                self.strided_pairs += 1
            self._last_stride = stride
        self._last_addr = addr

    @property
    def stride_rate(self) -> float:
        """Fraction of executions continuing an established stride."""
        if self.execs < 3:
            return 0.0
        return self.strided_pairs / (self.execs - 2)

    @property
    def dominant_stride(self) -> Optional[int]:
        if not self.stride_histogram:
            return None
        return max(self.stride_histogram.items(), key=lambda kv: kv[1])[0]

    @property
    def is_strided(self) -> bool:
        return self.execs >= 4 and self.stride_rate >= 0.75


@dataclass
class TraceProfile:
    """Aggregate profile of one dynamic trace."""

    instructions: int
    branches: Dict[int, BranchStats]
    loads: Dict[int, LoadStats]

    @property
    def hard_branches(self) -> List[BranchStats]:
        return [b for b in self.branches.values() if b.is_hard]

    @property
    def strided_loads(self) -> List[LoadStats]:
        return [l for l in self.loads.values() if l.is_strided]

    @property
    def dynamic_branch_count(self) -> int:
        return sum(b.execs for b in self.branches.values())

    @property
    def hard_branch_fraction(self) -> float:
        """Fraction of dynamic branches executed by hard static branches."""
        total = self.dynamic_branch_count
        if not total:
            return 0.0
        hard = sum(b.execs for b in self.branches.values() if b.is_hard)
        return hard / total


def profile_trace(events: List[RetireEvent]) -> TraceProfile:
    """Build a :class:`TraceProfile` from a dynamic trace."""
    branches: Dict[int, BranchStats] = {}
    loads: Dict[int, LoadStats] = {}
    for ev in events:
        if ev.is_cond_branch and ev.taken is not None:
            b = branches.get(ev.pc)
            if b is None:
                b = branches[ev.pc] = BranchStats(pc=ev.pc)
            b.record(ev.taken)
        elif ev.is_load and ev.eff_addr is not None:
            l = loads.get(ev.pc)
            if l is None:
                l = loads[ev.pc] = LoadStats(pc=ev.pc)
            l.record(ev.eff_addr)
    return TraceProfile(instructions=len(events), branches=branches, loads=loads)


@dataclass
class ReconvergenceCheck:
    """Validation of the static re-convergence heuristic on a trace."""

    branch_pc: int
    estimated_pc: int
    occurrences: int = 0          # dynamic executions of the branch
    reconverged: int = 0          # executions that later reached the estimate

    @property
    def hit_rate(self) -> float:
        return self.reconverged / self.occurrences if self.occurrences else 0.0


def check_reconvergence(program: Program, events: List[RetireEvent],
                        horizon: int = 200) -> Dict[int, ReconvergenceCheck]:
    """Measure how often the heuristic's estimate is actually reached.

    For every dynamic conditional branch, scan up to ``horizon`` subsequent
    dynamic instructions for the estimated re-convergent PC.
    """
    estimates: Dict[int, int] = {}
    checks: Dict[int, ReconvergenceCheck] = {}
    pcs = [ev.pc for ev in events]
    for idx, ev in enumerate(events):
        if not ev.is_cond_branch:
            continue
        est = estimates.get(ev.pc)
        if est is None:
            est = estimates[ev.pc] = estimate_reconvergent_point(program, ev.instr)
        chk = checks.get(ev.pc)
        if chk is None:
            chk = checks[ev.pc] = ReconvergenceCheck(branch_pc=ev.pc, estimated_pc=est)
        chk.occurrences += 1
        end = min(idx + 1 + horizon, len(pcs))
        for j in range(idx + 1, end):
            if pcs[j] == est:
                chk.reconverged += 1
                break
    return checks
