"""Shared "did you mean" suggestion helper.

One difflib-backed close-match helper used everywhere a user-supplied
name is resolved against a registry — mechanism policies
(:mod:`repro.ci.registry`), workloads (:mod:`repro.workloads.registry`),
the serve protocol and the CLI — so every unknown-name error carries the
same hint format and the same matching behaviour.
"""

from __future__ import annotations

import difflib
from typing import Iterable, List, Sequence

#: difflib tuning shared by every lookup (kept loose enough to catch
#: transpositions like ``ci-orcale-mbs`` -> ``ci-oracle-mbs``)
MAX_SUGGESTIONS = 3
CUTOFF = 0.4


def suggest(name: str, known: Iterable[str]) -> List[str]:
    """Close matches for ``name`` among ``known`` (may be empty)."""
    return difflib.get_close_matches(name, list(known),
                                     n=MAX_SUGGESTIONS, cutoff=CUTOFF)


def did_you_mean(name: str, known: Iterable[str]) -> str:
    """`` (did you mean ...?)`` suffix, or ``""`` with no close match."""
    close = suggest(name, known)
    if not close:
        return ""
    return f" (did you mean {' or '.join(repr(c) for c in close)}?)"


def unknown_name_message(kind: str, name: str,
                         known: Sequence[str]) -> str:
    """The canonical unknown-name error text, with suggestions.

    ``kind`` is the registry's noun (``policy``, ``kernel``, ...);
    ``known`` is the presentation-order list of valid names.
    """
    return (f"unknown {kind} {name!r}; known: {list(known)}"
            + did_you_mean(name, known))
