"""cProfile harness for the simulation hot loop (``repro profile``).

Used to find and verify the measured micro-optimisations in
``uarch/core.py`` / ``isa/interp.py``; keep it wired so future changes
to the cycle loop can be profiled with one command.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Tuple

from ..uarch import ProcessorConfig, SimStats

SORT_KEYS = ("cumulative", "tottime", "ncalls")


def profile_kernel(kernel: str, cfg: ProcessorConfig,
                   scale: float = 0.5, seed: int = 1,
                   sort: str = "cumulative",
                   limit: int = 30) -> Tuple[SimStats, str]:
    """Simulate ``kernel`` under cProfile; returns (stats, report text)."""
    # Imported here: this module is reachable from ``repro/__init__``.
    from .. import run_program
    from ..workloads import build_program
    prog = build_program(kernel, scale, seed)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        stats = run_program(prog, cfg)
    finally:
        profiler.disable()
    buf = io.StringIO()
    ps = pstats.Stats(profiler, stream=buf)
    ps.sort_stats(sort).print_stats(limit)
    return stats, buf.getvalue()
