"""The canonical run vocabulary: :class:`RunSpec`.

One frozen value names one logical simulation: *what* to run (kernel,
scale, seed), *how* the machine is shaped (config + optional policy
override), and the optional perturbation/observation riders (a fault
plan spec, an observer spec).  Every layer speaks it:

* the local pool (``SimJob`` is an alias — :mod:`repro.runtime.parallel`),
* the disk cache (envelopes record ``spec.to_dict()`` for provenance),
* the serve protocol (``JobSpec`` subclasses it, adding transport-only
  fields that never enter the cache key),
* experiment sweeps (:mod:`repro.experiments.sweeps` expands declarative
  matrices into lists of specs),
* fault campaigns (the plan rides on the spec instead of a side channel).

Identity is owned by :mod:`repro.runtime.keys`: :meth:`RunSpec.cache_key`
is THE content-addressed name of a run, identical whether computed by
the local runner, the serve coalescing index, or a spec that has been
through JSON (``tests/golden/run_keys.json`` pins this byte-for-byte).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from ..uarch import ProcessorConfig
from ..uarch.config import config_from_dict, config_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.plan import FaultPlan
    from ..isa import Program

#: every serialised-spec key, in serialisation order
SPEC_FIELDS = ("kernel", "scale", "seed", "cfg", "policy", "faults",
               "observe", "sampling")


@dataclass(frozen=True)
class RunSpec:
    """One logical simulation run, as a frozen value.

    Construction never validates (a client must be able to name a
    kernel its server knows and it does not); :meth:`validate` performs
    the full check — unknown kernel/policy with did-you-mean hints,
    malformed fault plan — in one place for every layer.
    """

    kernel: str
    scale: float = 0.5
    seed: int = 1
    cfg: ProcessorConfig = field(default_factory=ProcessorConfig)
    #: registry policy name overriding ``cfg.ci_policy`` (kept separate
    #: so sweeps can vary policy without forging configs)
    policy: Optional[str] = None
    #: fault-plan spec string (``"squash@400"``, ``"valfail*3,seed=7"``);
    #: part of the run's identity — perturbed results never collide with
    #: clean ones
    faults: Optional[str] = None
    #: observer spec (``"timeline"``, ``"summary:occupancy"``); watches a
    #: run without changing it, so it is excluded from the cache key —
    #: but observed runs bypass cache *reads* so the observer really runs
    observe: Optional[str] = None
    #: sampling spec string (``"auto"``, ``"k=8,w=250,m=400"``) — opt-in
    #: statistical sampling (repro.sampling): the run is *estimated* from
    #: detailed intervals reached by functional fast-forward.  Part of
    #: the run's identity (estimates never collide with exact results).
    sampling: Optional[str] = None

    # -- resolution ---------------------------------------------------------

    def resolved_cfg(self) -> ProcessorConfig:
        """The effective configuration (with any policy override)."""
        if self.policy is None:
            return self.cfg
        return replace(self.cfg, ci_policy=self.policy)

    def program(self) -> "Program":
        """Build (memoised, predecoded) the program this spec names."""
        from . import keys
        return keys.cached_program(self.kernel, self.scale, self.seed)

    def fault_plan(self) -> Optional["FaultPlan"]:
        """Parse the fault rider into a plan (``None`` when absent)."""
        if not self.faults:
            return None
        from ..faults.plan import FaultPlan
        return FaultPlan.parse(self.faults)

    def validate(self) -> "RunSpec":
        """Check every resolvable field; returns ``self`` for chaining.

        Raises :class:`~repro.workloads.UnknownWorkloadError` for an
        unregistered kernel and :class:`ValueError` for an unknown
        policy or a malformed fault plan — each message carries
        did-you-mean hints where the registries provide them.
        """
        from ..workloads import get_workload
        get_workload(self.kernel)
        self.resolved_cfg()
        self.fault_plan()
        if self.sampling:
            from ..sampling.plan import SamplingSpec
            SamplingSpec.parse(self.sampling)
            if self.faults:
                raise ValueError("sampling does not compose with fault "
                                 "injection: a fault plan perturbs timing "
                                 "at absolute cycles, which a stitched "
                                 "estimate cannot represent")
            if self.observe:
                raise ValueError("sampling does not compose with "
                                 "observers: a stitched estimate has no "
                                 "contiguous cycle stream to observe")
        return self

    # -- identity -----------------------------------------------------------

    def cache_key(self) -> str:
        """THE content-addressed identity of this run.

        Derived once, in :func:`repro.runtime.keys.run_key`; the local
        pool's memo/disk lookups and the serve coalescing index both
        call through here, so they cannot disagree.
        """
        from . import keys
        return keys.run_key(self)

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical dict form (all fields always present)."""
        return {"kernel": self.kernel, "scale": self.scale,
                "seed": self.seed, "cfg": config_to_dict(self.cfg),
                "policy": self.policy, "faults": self.faults,
                "observe": self.observe, "sampling": self.sampling}

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output (strict)."""
        if not isinstance(data, dict):
            raise ValueError(f"run spec must be a dict, got "
                             f"{type(data).__name__}")
        unknown = set(data) - set(SPEC_FIELDS)
        if unknown:
            raise ValueError(f"run spec has unknown fields: "
                             f"{sorted(unknown)}")
        kernel = data.get("kernel")
        if not isinstance(kernel, str) or not kernel:
            raise ValueError("run spec needs a 'kernel' name")
        for key in ("policy", "faults", "observe", "sampling"):
            value = data.get(key)
            if value is not None and not isinstance(value, str):
                raise ValueError(f"run spec {key!r} must be a string "
                                 f"or null")
        try:
            scale = float(data.get("scale", 0.5))
            seed = int(data.get("seed", 1))
        except (TypeError, ValueError):
            raise ValueError("run spec 'scale'/'seed' must be numeric") \
                from None
        cfg = config_from_dict(data.get("cfg") or {})
        return cls(kernel=kernel, scale=scale, seed=seed, cfg=cfg,
                   policy=data.get("policy"), faults=data.get("faults"),
                   observe=data.get("observe"),
                   sampling=data.get("sampling"))

    def to_json(self) -> str:
        """Canonical JSON form (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"run spec is not valid JSON: {exc}") \
                from None
        return cls.from_dict(data)

    def describe(self) -> str:
        """One-line human label used by failure reports and logs."""
        parts = [f"{self.kernel} scale={self.scale} seed={self.seed}"]
        if self.policy:
            parts.append(f"policy={self.policy}")
        if self.faults:
            parts.append(f"faults={self.faults}")
        if self.observe:
            parts.append(f"observe={self.observe}")
        if self.sampling:
            parts.append(f"sampling={self.sampling}")
        return " ".join(parts)
