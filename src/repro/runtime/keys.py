"""Canonical key derivation — the *only* module that hashes identities.

Everything that turns "one logical simulation run" into a
content-addressed name lives here, so the local pool's memo/disk keys,
the serve layer's coalescing index and a JSON-round-tripped
:class:`~repro.runtime.spec.RunSpec` can never drift apart:

* :func:`program_fingerprint` — SHA-256 over the instruction stream and
  the initial data image;
* :func:`image_digest` — SHA-256 over the decode-once
  :class:`~repro.isa.predecode.ProgramImage` encoding (the simulator
  executes the *predecoded* program, so predecode-layer changes
  invalidate cached results even when the instruction stream does not);
* :func:`config_token` — the canonical string form of a
  :class:`~repro.uarch.ProcessorConfig`;
* :func:`job_key` — the schema-versioned cache key of one
  (program, config, scale, seed) simulation;
* :func:`run_key` — :func:`job_key` for a :class:`RunSpec`, folding in
  its fault plan when one is attached;
* :func:`stats_digest` — the integrity checksum of a cache envelope's
  stats payload;
* :func:`checkpoint_key` — the name of one functional checkpoint in the
  sampling subsystem's store (program fingerprint + boundary only, so
  every config/policy point of a sweep shares it).

A CI lint asserts ``hashlib`` appears nowhere else under ``src/repro``
(and ``tests/test_run_spec.py`` enforces the same), which is what makes
"same request ⇒ same key" a structural guarantee instead of three
copies kept in sync by hand.

The module also owns the process-wide *program* memo
(:func:`cached_program`): key derivation, in-process simulation and the
pool workers all build + predecode a given (kernel, scale, seed) point
exactly once.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from typing import TYPE_CHECKING, Dict, Tuple

from ..isa.predecode import PREDECODE_VERSION, ProgramImage, predecode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..isa import Program
    from ..uarch import ProcessorConfig
    from .spec import RunSpec

#: bump when the timing model's behaviour changes (invalidates all
#: cached entries); schema 2 introduced the checksummed envelope
CACHE_SCHEMA = 2

#: bump when the functional-checkpoint payload layout changes
#: (invalidates the checkpoint store — see repro.sampling.checkpoint)
CHECKPOINT_SCHEMA = 1


def config_token(cfg: "ProcessorConfig") -> str:
    """Canonical string form of a configuration (every field, sorted)."""
    return json.dumps(dataclasses.asdict(cfg), sort_keys=True, default=str)


def program_fingerprint(program: "Program") -> str:
    """SHA-256 over the instruction stream and the initial data image.

    Cached on the program object: figures re-run the same kernels under
    dozens of configurations.
    """
    cached = getattr(program, "_fingerprint", None)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    for instr in program.code:
        h.update(repr((int(instr.op), instr.rd, instr.rs1, instr.rs2,
                       instr.imm, instr.target, instr.pc)).encode())
    for addr in sorted(program.data_init):
        h.update(repr((addr, program.data_init[addr])).encode())
    digest = h.hexdigest()
    program._fingerprint = digest
    return digest


def digest_image(image: ProgramImage) -> str:
    """SHA-256 over one image's encoding (plus ``PREDECODE_VERSION``).

    The evaluation callables are excluded (they are derived from the
    opcode, which the kind/flag/fu arrays pin down together with the
    operand encoding).  :attr:`ProgramImage.digest` delegates here and
    caches the result on the image.
    """
    h = hashlib.sha256()
    h.update(f"predecode={PREDECODE_VERSION}\n".encode())
    for pc in range(image.n):
        h.update(repr((image.kind[pc], image.flags[pc], image.ctrl[pc],
                       image.rd[pc], image.rs1[pc], image.rs2[pc],
                       image.imm[pc], image.target[pc], image.srcs[pc],
                       int(image.fu_class[pc]))).encode())
    return h.hexdigest()


def image_digest(program: "Program") -> str:
    """The (cached) predecode digest for a program."""
    return predecode(program).digest


def job_key(program: "Program", cfg: "ProcessorConfig",
            scale: float, seed: int) -> str:
    """Content-addressed cache key for one (program, config) simulation.

    Includes the decode-once image digest: the simulator executes the
    *predecoded* program, so a predecoding change (a new structural
    flag, a different operand encoding) invalidates cached results even
    when the instruction stream itself is unchanged.
    """
    h = hashlib.sha256()
    h.update(f"schema={CACHE_SCHEMA}\n".encode())
    h.update(program_fingerprint(program).encode())
    h.update(f"image={image_digest(program)}\n".encode())
    h.update(config_token(cfg).encode())
    h.update(f"\nscale={scale!r} seed={seed!r}".encode())
    return h.hexdigest()


def stats_digest(stats_dict: dict) -> str:
    """Checksum over the canonical JSON form of a stats payload."""
    canonical = json.dumps(stats_dict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# -- the process-wide program memo ------------------------------------------

#: (kernel, scale, seed) -> built + predecoded Program.  Shared by key
#: derivation, runners and pool workers so every consumer of the same
#: program point shares one build and one decode-once image; bounded so
#: a long-lived process sweeping many points cannot grow without limit.
_PROGRAM_MEMO_CAP = 16
_program_memo: Dict[Tuple[str, float, int], object] = {}
_program_lock = threading.Lock()


def cached_program(kernel: str, scale: float, seed: int):
    """Build (or reuse) the program for one (kernel, scale, seed) point.

    Raises :class:`~repro.workloads.UnknownWorkloadError` for a kernel
    missing from the registry (message carries suggestions).
    """
    point = (kernel, scale, seed)
    with _program_lock:
        prog = _program_memo.get(point)
        if prog is None:
            from ..workloads import build_program
            prog = build_program(kernel, scale, seed)
            predecode(prog)  # decode once; every config run shares it
            while len(_program_memo) >= _PROGRAM_MEMO_CAP:
                _program_memo.pop(next(iter(_program_memo)))
            _program_memo[point] = prog
    return prog


# -- the one spec-level key --------------------------------------------------

#: spec identity -> canonical key; bounded, shared across runners and
#: the serve layer's submit threads (the lock also serialises the
#: underlying program build so concurrent submits don't duplicate it)
_KEY_MEMO_CAP = 4096
_key_memo: Dict[tuple, str] = {}
_key_lock = threading.Lock()


def run_key(spec: "RunSpec") -> str:
    """THE content-addressed identity of one logical run.

    For a plain spec this is byte-for-byte :func:`job_key` of the built
    program under the resolved config — the same key the disk cache has
    always used, so adopting ``RunSpec`` invalidates nothing.  A spec
    carrying a fault plan gets a derived key folding the plan spec in,
    keeping perturbed runs disjoint from the clean-result namespace; a
    sampling spec folds in the same way, so sampled *estimates* never
    collide with exact results (and each interval job has its own key).

    Transport and observation fields (serve priority/client, observer
    specs) are deliberately excluded: they change how a run is executed
    or watched, never its stats.
    """
    ident = (spec.kernel, spec.scale, spec.seed, spec.cfg, spec.policy,
             spec.faults, spec.sampling)
    with _key_lock:
        key = _key_memo.get(ident)
        if key is None:
            program = cached_program(spec.kernel, spec.scale, spec.seed)
            key = job_key(program, spec.resolved_cfg(),
                          spec.scale, spec.seed)
            if spec.faults:
                h = hashlib.sha256(key.encode())
                h.update(f"\nfaults={spec.faults}".encode())
                key = h.hexdigest()
            if spec.sampling:
                h = hashlib.sha256(key.encode())
                h.update(f"\nsampling={spec.sampling}".encode())
                key = h.hexdigest()
            while len(_key_memo) >= _KEY_MEMO_CAP:
                _key_memo.pop(next(iter(_key_memo)))
            _key_memo[ident] = key
    return key


# -- functional checkpoints ---------------------------------------------------

def checkpoint_key(fingerprint: str, boundary) -> str:
    """Content-addressed name of one functional checkpoint (or meta entry).

    Keyed by the *program fingerprint* and the instruction ``boundary``
    alone — deliberately no config, policy, scale or seed beyond what
    the fingerprint already pins: architectural state at an instruction
    boundary depends only on the program, so every policy/config point
    of a sweep shares the same checkpoint.  ``boundary`` is an
    instruction index, or the string ``"meta"`` for the per-program
    metadata entry (total dynamic length).
    """
    h = hashlib.sha256()
    h.update(f"ckpt-schema={CHECKPOINT_SCHEMA}\n".encode())
    h.update(f"program={fingerprint}\n".encode())
    h.update(f"boundary={boundary}".encode())
    return h.hexdigest()
