"""Parallel simulation executor and the memoising/caching runner.

The experiment grid is embarrassingly parallel across (kernel, config)
points, so ``ParallelRunner`` fans simulation jobs out over a
``ProcessPoolExecutor``:

* jobs are grouped into per-program batches — one submission per
  (kernel, scale, seed) — so each worker builds and predecodes the
  program once and runs every configuration against the shared
  decode-once image (batches split when there are fewer program points
  than workers);
* ``jobs`` comes from the constructor, else ``REPRO_JOBS``, else
  ``os.cpu_count()``;
* ``jobs == 1`` (or a single-job batch, or a platform without working
  multiprocessing) falls back to plain in-process execution;
* workers capture exceptions and ship the traceback back as data, so a
  failed simulation surfaces as one clean report instead of a hung or
  poisoned pool.

Failure handling (DESIGN.md §8): results are collected as futures
complete under a stall watchdog (``timeout`` / ``REPRO_TIMEOUT`` — if
*no* job makes progress for that long, the pending ones are declared
hung), transient failures (timeouts, a broken pool) are retried with
exponential backoff (``retries`` / ``REPRO_RETRIES``), and every
permanent failure is aggregated: the default mode raises one
:class:`WorkerError` naming *all* failed jobs, while ``keep_going``
mode substitutes a typed :class:`FailedResult` placeholder per failure
so sweeps complete with explicit holes instead of aborting.

Results are shared at three levels: an in-process memo (same object
returned for repeat queries, which downstream code relies on), the
persistent on-disk :class:`~repro.runtime.cache.ResultCache`, and the
pool itself (duplicate jobs within one batch are submitted once).
"""

from __future__ import annotations

import math
import multiprocessing
import os
import signal
import sys
import time
import traceback
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..uarch import ProcessorConfig, SimStats
from .cache import ResultCache
from .keys import cached_program, run_key
from .spec import RunSpec

#: One simulation work item IS a :class:`~repro.runtime.spec.RunSpec` —
#: the pool executes the canonical run vocabulary directly (a frozen
#: dataclass of plain strings/numbers/config, so it stays picklable
#: under any start method; workers re-resolve policy and observer names
#: against their own registries).  The alias preserves the historical
#: name used throughout tests and call sites.
SimJob = RunSpec


class WorkerError(RuntimeError):
    """One or more simulations failed inside worker processes.

    ``interrupted`` is True when the failure report was produced by a
    Ctrl-C / SIGINT drain rather than by job failures: the pool was
    terminated cleanly and the unfinished jobs are listed in the report.
    """

    interrupted = False


class FailedResult:
    """Typed placeholder for a simulation that could not produce stats.

    Under ``keep_going`` a failed job yields one of these instead of
    aborting the sweep.  It duck-types as ``SimStats`` for reporting:
    every unknown attribute reads as ``nan``, so derived metrics (IPC,
    speedups, harmonic means) propagate the hole and tables render it as
    an explicit ``--`` marker instead of a silently wrong number.
    """

    failed = True

    def __init__(self, kernel: str, scale: float, seed: int, error: str,
                 phase: str = "worker", attempts: int = 1):
        self.kernel = kernel
        self.scale = scale
        self.seed = seed
        self.error = error
        #: where it died: ``worker`` (exception inside the simulation),
        #: ``timeout`` (stall watchdog), or ``pool`` (executor breakage)
        self.phase = phase
        self.attempts = attempts

    def describe(self) -> str:
        last = self.error.rstrip().splitlines()[-1] if self.error else "?"
        return (f"{self.kernel} (scale={self.scale}, seed={self.seed}) "
                f"failed [{self.phase}, attempt {self.attempts}]: {last}")

    def to_dict(self) -> dict:
        return {"failed": True, "kernel": self.kernel, "scale": self.scale,
                "seed": self.seed, "phase": self.phase,
                "attempts": self.attempts, "error": self.error}

    def __repr__(self) -> str:
        return f"<FailedResult {self.kernel} [{self.phase}]>"

    def __getattr__(self, name: str):
        # Stats-like attribute reads propagate the hole as NaN.
        if name.startswith("_"):
            raise AttributeError(name)
        return math.nan


class _Failure:
    """Internal per-attempt failure record (phase + error text)."""

    __slots__ = ("phase", "error")

    def __init__(self, phase: str, error: str):
        self.phase = phase
        self.error = error


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else the *usable* cores.

    "Usable" honours the process CPU-affinity mask
    (``os.sched_getaffinity``) where the platform provides it, so a
    containerized/cgroup-limited deployment pinned to 4 CPUs gets 4
    workers even when the host machine reports 64; platforms without
    affinity fall back to ``os.cpu_count()``.
    """
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            print(f"warning: unparsable REPRO_JOBS={env!r}; falling back "
                  f"to the machine's core count", file=sys.stderr)
    try:
        usable = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        usable = 0
    return usable or os.cpu_count() or 1


#: process-wide count of retry passes that rebuilt the worker pool after
#: a transient failure (stall timeout / executor breakage); the serving
#: layer reports it as its ``worker restarts`` metric
_pool_restarts = 0


def pool_restart_count() -> int:
    """How many times this process rebuilt a worker pool for a retry."""
    return _pool_restarts


#: failure phases classified as *transient*: the job itself may be fine
#: and a fresh pool may succeed.  The local retry loop re-runs them with
#: backoff; the serving layer's pool supervisor keys its restart and
#: circuit-breaker decisions on the same classification, so "executor
#: death" means the same thing at both levels.
TRANSIENT_PHASES = ("timeout", "pool")


def default_timeout() -> Optional[float]:
    """Stall-watchdog seconds from ``REPRO_TIMEOUT`` (0/empty = none)."""
    env = os.environ.get("REPRO_TIMEOUT")
    if not env:
        return None
    try:
        value = float(env)
    except ValueError:
        print(f"warning: unparsable REPRO_TIMEOUT={env!r}; watchdog "
              f"disabled", file=sys.stderr)
        return None
    return value if value > 0 else None


def default_retries() -> int:
    """Transient-failure retries from ``REPRO_RETRIES`` (default 1)."""
    env = os.environ.get("REPRO_RETRIES")
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            print(f"warning: unparsable REPRO_RETRIES={env!r}; using the "
                  f"default", file=sys.stderr)
    return 1


def _run_job(job: SimJob) -> Tuple[Optional[dict], Optional[dict],
                                   Optional[str]]:
    """Worker entry point: returns (stats dict, observer payload, error).

    Module-level so it pickles under both fork and spawn start methods;
    imports stay inside so a spawned worker re-resolves the package.
    The spec's riders are honoured here: the observer is built from
    ``job.observe`` and the fault plan parsed from ``job.faults`` (a
    fault-free spec leaves ``faults=None``, preserving the
    ``REPRO_FAULTS`` environment fallback inside ``run_program``).
    """
    try:
        if job.sampling:
            from ..sampling.executor import run_sampled_job
            return run_sampled_job(job).to_dict(), None, None
        from .. import run_program
        from ..observe import make_observer
        prog = cached_program(job.kernel, job.scale, job.seed)
        observer = make_observer(job.observe)
        stats = run_program(prog, job.resolved_cfg(), observer=observer,
                            faults=job.faults)
        payload = None if observer is None else observer.export()
        return stats.to_dict(), payload, None
    except Exception:
        return None, None, traceback.format_exc()


def _worker_init() -> None:
    """Reset inherited signal state in a freshly started pool worker.

    Fork-context workers inherit the parent's signal disposition
    wholesale.  Under ``repro serve`` that includes the asyncio loop's
    wakeup fd: a signal delivered to a *worker* (e.g. the SIGTERM
    concurrent.futures sends surviving workers when one dies) would be
    written into the parent loop's self-pipe and drain the daemon as if
    the operator had asked.  Workers must die their own deaths.
    """
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(sig, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover
            pass


def _run_batch(batch: Sequence[SimJob]) -> List[Tuple[Optional[dict],
                                                      Optional[dict],
                                                      Optional[str]]]:
    """Worker entry point for a per-program batch of jobs.

    The scheduler groups jobs by (kernel, scale, seed) so one submission
    builds and predecodes the program once and runs every configuration
    against the shared image.  Failures stay per-job: one bad config in
    a batch does not poison its siblings.  Dispatches through the
    module-global ``_run_job`` so tests can monkeypatch it.
    """
    return [_run_job(job) for job in batch]


def _batch_chunks(jobs: Sequence[SimJob],
                  indexes: Sequence[int], n_workers: int) -> List[List[int]]:
    """Partition job indexes into per-program submission chunks.

    Jobs grouped by (kernel, scale, seed) share one program build per
    chunk.  When there are fewer program points than workers, each group
    is split so the pool still fills — a split costs one extra build,
    idle workers cost the whole group's runtime.
    """
    groups: Dict[Tuple[str, float, int], List[int]] = {}
    for i in indexes:
        job = jobs[i]
        groups.setdefault((job.kernel, job.scale, job.seed), []).append(i)
    chunks = list(groups.values())
    if 0 < len(chunks) < n_workers:
        pieces = -(-n_workers // len(chunks))  # ceil: splits per group
        split: List[List[int]] = []
        for group in chunks:
            size = -(-len(group) // pieces)
            split.extend(group[k:k + size]
                         for k in range(0, len(group), size))
        chunks = split
    return chunks


def _pool_context():
    """Prefer fork (cheap, inherits the loaded package); fall back."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


#: one result slot: (stats dict, payload) on success, else a _Failure
_Slot = Union[Tuple[Optional[dict], Optional[dict]], "_Failure", None]


def _run_serial(jobs: Sequence[SimJob], indexes: Sequence[int],
                results: List[_Slot]) -> None:
    for i in indexes:
        stats, payload, err = _run_job(jobs[i])
        results[i] = _Failure("worker", err) if err is not None \
            else (stats, payload)


def _terminate_workers(pool: ProcessPoolExecutor) -> None:
    """Kill a stalled pool's worker processes so shutdown cannot hang."""
    try:
        for proc in list(pool._processes.values()):
            proc.terminate()
    except (AttributeError, OSError):  # pragma: no cover - interpreter detail
        pass


def _run_pool_pass(jobs: Sequence[SimJob], indexes: Sequence[int],
                   results: List[_Slot], n_workers: int,
                   timeout: Optional[float]) -> List[int]:
    """One pool attempt over ``jobs[indexes]``; returns transient failures.

    Futures are collected as they complete.  The watchdog is a *stall*
    timeout: if no job at all completes within ``timeout`` seconds, the
    still-pending jobs are declared hung, their workers terminated, and
    their indexes returned for retry (alongside pool-level breakage);
    per-job exceptions captured by the worker are permanent and recorded
    directly into ``results``.
    """
    transient: List[int] = []
    chunks = _batch_chunks(jobs, indexes, n_workers)
    try:
        with ProcessPoolExecutor(max_workers=min(n_workers, len(chunks)),
                                 mp_context=_pool_context(),
                                 initializer=_worker_init) as pool:
            futures = {
                pool.submit(_run_batch, [jobs[i] for i in chunk]): chunk
                for chunk in chunks}
            pending = set(futures)
            try:
                while pending:
                    done, pending = wait(pending, timeout=timeout,
                                         return_when=FIRST_COMPLETED)
                    if not done:
                        # Stall: nothing completed inside the watchdog
                        # window.
                        for f in pending:
                            f.cancel()
                            for i in futures[f]:
                                results[i] = _Failure(
                                    "timeout", f"no worker progress for "
                                               f"{timeout:g}s (declared "
                                               f"hung)")
                                transient.append(i)
                        _terminate_workers(pool)
                        pool.shutdown(wait=False, cancel_futures=True)
                        break
                    for f in done:
                        chunk = futures[f]
                        exc = f.exception()
                        if exc is not None:
                            # Executor-level breakage (e.g. a worker
                            # died); the jobs themselves may be fine —
                            # retry them.
                            for i in chunk:
                                results[i] = _Failure("pool", repr(exc))
                                transient.append(i)
                            continue
                        for i, (stats, payload, err) in zip(chunk,
                                                            f.result()):
                            results[i] = _Failure("worker", err) \
                                if err is not None else (stats, payload)
            except KeyboardInterrupt:
                # Ctrl-C drain: kill the workers *before* the executor's
                # __exit__ tries to join them (that join would otherwise
                # hang on in-flight simulations and orphan mid-retry
                # workers), then record every unfinished job so the
                # caller can still emit the aggregated failure report.
                for f in pending:
                    f.cancel()
                _terminate_workers(pool)
                pool.shutdown(wait=False, cancel_futures=True)
                for f in pending:
                    for i in futures[f]:
                        if results[i] is None:
                            results[i] = _Failure(
                                "interrupted",
                                "interrupted by user (SIGINT)")
                raise
    except (OSError, ImportError):  # no usable multiprocessing
        _run_serial(jobs, indexes, results)
        return []
    return transient


def execute_jobs_observed(
        jobs: Sequence[SimJob], n_workers: Optional[int] = None, *,
        timeout: Optional[float] = None, retries: Optional[int] = None,
        keep_going: bool = False,
) -> List[Tuple[Union[SimStats, FailedResult], Optional[dict]]]:
    """Run ``jobs`` (possibly in parallel), preserving order.

    Returns one ``(stats, observer payload)`` pair per job — the payload
    is ``None`` unless the job carried an ``observe`` spec.  Transient
    failures (stall timeouts, executor breakage) are retried up to
    ``retries`` times with exponential backoff on a fresh pool.  When
    failures remain: with ``keep_going`` each failed slot holds a
    :class:`FailedResult` placeholder; otherwise one :class:`WorkerError`
    aggregating *every* failure is raised.  The pool is never left
    hanging — stalled workers are terminated.
    """
    global _pool_restarts
    n = default_jobs() if n_workers is None else max(1, n_workers)
    if timeout is None:
        timeout = default_timeout()
    elif timeout <= 0:
        timeout = None
    retries = default_retries() if retries is None else max(0, retries)
    results: List[_Slot] = [None] * len(jobs)
    attempts = [0] * len(jobs)
    outstanding = list(range(len(jobs)))
    attempt = 0
    interrupted = False
    try:
        while outstanding:
            for i in outstanding:
                attempts[i] += 1
            if n <= 1 or len(outstanding) <= 1:
                # In-process execution: no pool, no watchdog (a hang here
                # would hang the caller anyway), no transient failures.
                _run_serial(jobs, outstanding, results)
                transient: List[int] = []
            else:
                transient = _run_pool_pass(jobs, outstanding, results, n,
                                           timeout)
            if not transient or attempt >= retries:
                break
            attempt += 1
            _pool_restarts += 1
            time.sleep(min(2.0, 0.1 * (2 ** (attempt - 1))))
            outstanding = sorted(transient)
    except KeyboardInterrupt:
        # The pool pass already terminated its workers; any slot that
        # never produced a result becomes an "interrupted" failure so
        # the drain still ends with the aggregated failure report.
        interrupted = True
        for i, slot in enumerate(results):
            if slot is None:
                results[i] = _Failure("interrupted",
                                      "interrupted by user (SIGINT)")
    out: List[Tuple[Union[SimStats, FailedResult], Optional[dict]]] = []
    failures: List[FailedResult] = []
    for i, (job, slot) in enumerate(zip(jobs, results)):
        if isinstance(slot, _Failure):
            fr = FailedResult(job.kernel, job.scale, job.seed,
                              error=slot.error, phase=slot.phase,
                              attempts=attempts[i])
            failures.append(fr)
            out.append((fr, None))
        else:
            assert slot is not None
            stats, payload = slot
            out.append((SimStats.from_dict(stats), payload))
    if interrupted:
        # An interrupt always aborts (keep_going is for *job* failures):
        # the report names every job that did not finish.
        err = WorkerError("interrupted by user — pool drained cleanly\n"
                          + aggregate_failure_report(failures))
        err.interrupted = True
        raise err
    if failures and not keep_going:
        raise WorkerError(aggregate_failure_report(failures))
    return out


def aggregate_failure_report(failures: Sequence[FailedResult]) -> str:
    """One report naming every failed job (summary lines + tracebacks)."""
    lines = [f"{len(failures)} simulation(s) failed:"]
    lines.extend(f"  [{i + 1}] {f.describe()}"
                 for i, f in enumerate(failures))
    for i, f in enumerate(failures):
        if f.error:
            lines.append(f"--- [{i + 1}] {f.kernel} (scale={f.scale}, "
                         f"seed={f.seed}) [{f.phase}] ---")
            lines.append(f.error.rstrip())
    return "\n".join(lines)


def execute_jobs(jobs: Sequence[SimJob],
                 n_workers: Optional[int] = None) -> List[SimStats]:
    """Like :func:`execute_jobs_observed` but stats-only (raise on fail)."""
    return [st for st, _ in execute_jobs_observed(jobs, n_workers)]


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").lower() in ("1", "on", "yes", "true")


def _is_interval_token(text: Optional[str]) -> bool:
    """Does a sampling string name one interval job? (lazy import)"""
    if not text:
        return False
    from ..sampling.plan import is_interval_token
    return is_interval_token(text)


class ParallelRunner:
    """Memoising simulation runner with a worker pool and a disk cache.

    The resolution order for one (kernel, config) point is: in-process
    memo, then the persistent disk cache, then simulation (fanned out
    over the pool when a batch has more than one miss and ``jobs > 1``).
    ``memo_hits`` / ``disk_hits`` / ``sims_run`` count those outcomes so
    callers can report "zero new simulations" on a warm cache.

    ``keep_going`` (or ``REPRO_KEEP_GOING=1``) turns job failures into
    :class:`FailedResult` placeholders collected in ``self.failures``;
    placeholders are never memoised or written to the disk cache, so a
    later run retries the failed points.
    """

    def __init__(self, scale: float, seed: int,
                 jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 observe: Optional[str] = None,
                 keep_going: bool = False,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 sampling: Optional[str] = None):
        self.scale = scale
        self.seed = seed
        self.jobs = default_jobs() if jobs is None else max(1, jobs)
        self.cache = ResultCache() if cache is None else cache
        if observe is None:
            observe = os.environ.get("REPRO_OBSERVE") or None
        #: observer spec applied to every simulation this runner executes
        #: (cached results carry no events, so observing bypasses the
        #: memo/disk lookups and re-simulates — stats stay identical)
        self.observe = observe
        #: sampling spec applied to every *plain* run this runner
        #: executes (specs already carrying sampling, faults or an
        #: observer are left alone) — how ``--sample`` reaches figure
        #: sweeps without each experiment learning the flag
        self.sampling = sampling
        self._ckpt_store = None
        self.keep_going = keep_going or _env_truthy("REPRO_KEEP_GOING")
        self.timeout = timeout
        self.retries = retries
        #: (kernel, payload) per observed simulation, in submission order
        self.observations: List[Tuple[str, dict]] = []
        #: FailedResult placeholders collected under ``keep_going``
        self.failures: List[FailedResult] = []
        #: where each resolved run last came from: ``memo`` / ``disk`` /
        #: ``sim`` / ``failed``.  Each run is recorded under every name
        #: it answers to — the ``(kernel, cfg)`` point, the spec itself
        #: and (when derivable) the canonical cache key — so local
        #: callers and the serving layer share one attribution table.
        self.sources: Dict[object, str] = {}
        self._memo: Dict[str, SimStats] = {}
        self.memo_hits = 0
        self.disk_hits = 0
        self.sims_run = 0
        #: pool rebuilds attributable to this runner's batches (the
        #: process-wide tally is :func:`pool_restart_count`)
        self.pool_restarts = 0

    # -- programs --------------------------------------------------------
    def program(self, name: str):
        """Build (once) the kernel at this runner's scale and seed.

        Delegates to the process-wide memo in :mod:`repro.runtime.keys`,
        so cache-key fingerprinting, in-process simulation and reporting
        all share one build and one predecoded image.
        """
        return cached_program(name, self.scale, self.seed)

    def _as_spec(self, point) -> RunSpec:
        """Coerce one work item to a :class:`RunSpec`.

        Accepts a spec directly, or the historical ``(kernel, cfg)``
        tuple (deprecated — lifted to a spec at this runner's scale and
        seed).  The runner-level ``observe`` default applies to specs
        that do not carry their own.
        """
        if isinstance(point, RunSpec):
            spec = point
        else:
            name, cfg = point
            warnings.warn(
                "passing (kernel, cfg) tuples to Runner.run_many is "
                "deprecated; pass RunSpec instances",
                DeprecationWarning, stacklevel=3)
            spec = RunSpec(name, self.scale, self.seed, cfg)
        if self.observe is not None and spec.observe is None:
            spec = replace(spec, observe=self.observe)
        if self.sampling is not None and spec.sampling is None \
                and spec.observe is None and spec.faults is None:
            spec = replace(spec, sampling=self.sampling)
        return spec

    def checkpoint_store(self):
        """The (lazily built) shared functional-checkpoint store."""
        if self._ckpt_store is None:
            from ..sampling.checkpoint import CheckpointStore
            self._ckpt_store = CheckpointStore()
        return self._ckpt_store

    def _spec_key(self, spec: RunSpec) -> Optional[str]:
        """The canonical cache key, or None when the program won't build.

        An unbuildable kernel is not an error here: the job is handed to
        the worker, which fails it with a full traceback so the error
        reports like any other job failure.
        """
        try:
            return run_key(spec)
        except Exception:
            return None

    def _note_source(self, ident: object, point, spec: RunSpec,
                     src: str) -> None:
        self.sources[(spec.kernel, spec.cfg)] = src
        self.sources[spec] = src
        if isinstance(ident, str):
            self.sources[ident] = src

    # -- execution -------------------------------------------------------
    def run(self, name: str, cfg: ProcessorConfig) -> SimStats:
        return self.run_many([RunSpec(name, self.scale, self.seed, cfg)])[0]

    def run_many(self, points: Sequence) -> List[SimStats]:
        """Resolve a batch of runs, order-preserving.

        Each point is a :class:`RunSpec` (or a deprecated
        ``(kernel, cfg)`` tuple).  Resolution per run: in-process memo,
        then disk cache, then simulation — both lookups keyed by the
        canonical :func:`~repro.runtime.keys.run_key`, the same identity
        the serve layer coalesces on.  Runs carrying an observer or a
        fault plan skip cache *reads* (cached entries carry no events,
        and perturbed results must come from a real perturbed run);
        faulty results are additionally never written back.
        """
        order: List[object] = []
        specs: Dict[object, Tuple[object, RunSpec]] = {}
        for point in points:
            spec = self._as_spec(point)
            key = self._spec_key(spec)
            ident: object = key if key is not None else spec
            order.append(ident)
            if ident not in specs:
                specs[ident] = (point, spec)
        resolved: Dict[object, SimStats] = {}
        pending: List[Tuple[object, object, RunSpec]] = []
        sampled_parents: List[Tuple[object, object, RunSpec]] = []
        for ident, (point, spec) in specs.items():
            key = ident if isinstance(ident, str) else None
            reads_ok = (key is not None and spec.observe is None
                        and spec.faults is None)
            if reads_ok:
                st = self._memo.get(key)
                if st is not None:
                    self.memo_hits += 1
                    self._note_source(ident, point, spec, "memo")
                    resolved[ident] = st
                    continue
                st = self.cache.get(key)
                if st is not None:
                    self.disk_hits += 1
                    self._note_source(ident, point, spec, "disk")
                    self._memo[key] = resolved[ident] = st
                    continue
            if spec.sampling and not _is_interval_token(spec.sampling):
                # A parent sampled spec: expanded into interval jobs by
                # resolve_sampled (which calls back into run_many, so
                # the intervals get the full memo/disk/pool treatment);
                # only the stitched estimate is recorded under this key.
                sampled_parents.append((ident, point, spec))
                continue
            pending.append((ident, point, spec))
        if sampled_parents:
            from ..sampling.executor import resolve_sampled
            for ident, point, spec, st in resolve_sampled(
                    self, sampled_parents):
                if isinstance(st, FailedResult):
                    self.failures.append(st)
                    self._note_source(ident, point, spec, "failed")
                    resolved[ident] = st
                    continue
                self.sims_run += 1
                resolved[ident] = st
                self._note_source(ident, point, spec, "sim")
                if isinstance(ident, str):
                    self._memo[ident] = st
                    self.cache.put(ident, st, spec=spec)
        if pending:
            sim_jobs = [spec for _, _, spec in pending]
            restarts_before = pool_restart_count()
            results = execute_jobs_observed(
                sim_jobs, self.jobs, timeout=self.timeout,
                retries=self.retries, keep_going=self.keep_going)
            self.sims_run += len(sim_jobs)
            self.pool_restarts += pool_restart_count() - restarts_before
            for (ident, point, spec), (st, payload) in zip(pending,
                                                           results):
                if isinstance(st, FailedResult):
                    # A hole, not a result: report it, never cache it.
                    self.failures.append(st)
                    self._note_source(ident, point, spec, "failed")
                    resolved[ident] = st
                    continue
                resolved[ident] = st
                self._note_source(ident, point, spec, "sim")
                if isinstance(ident, str) and spec.faults is None:
                    self._memo[ident] = st
                    self.cache.put(ident, st, spec=spec)
                if payload is not None:
                    self.observations.append((spec.kernel, payload))
        # Persist the hit/miss tallies this batch accumulated (a no-op
        # when nothing changed or the cache is disabled).
        self.cache.flush_counters()
        return [resolved[ident] for ident in order]

    # -- observations ----------------------------------------------------
    def merged_observations(self) -> Dict[str, dict]:
        """All collected observer payloads, merged by observer name.

        Deterministic: payloads merge in job-submission order, never in
        worker-completion order."""
        from ..observe import merge_payloads
        return merge_payloads([p for _, p in self.observations])

    # -- reporting -------------------------------------------------------
    def failure_report(self) -> str:
        """Aggregated report of every keep-going failure (or '')."""
        if not self.failures:
            return ""
        return aggregate_failure_report(self.failures)

    def runtime_summary(self) -> str:
        """One-line accounting of where results came from."""
        line = (f"runtime: {self.sims_run} simulation(s) run "
                f"({self.jobs} worker(s)), {self.disk_hits} disk-cache "
                f"hit(s), {self.memo_hits} memo hit(s)")
        store = self._ckpt_store
        if store is not None:
            line += (f", sampling: {store.fast_forwards} fast-forward "
                     f"pass(es), {store.checkpoint_hits} checkpoint "
                     f"hit(s)")
        if self.failures:
            line += f", {len(self.failures)} FAILED"
        return line
