"""Parallel simulation executor and the memoising/caching runner.

The experiment grid is embarrassingly parallel across (kernel, config)
points, so ``ParallelRunner`` fans simulation jobs out over a
``ProcessPoolExecutor``:

* ``jobs`` comes from the constructor, else ``REPRO_JOBS``, else
  ``os.cpu_count()``;
* ``jobs == 1`` (or a single-job batch, or a platform without working
  multiprocessing) falls back to plain in-process execution;
* workers capture exceptions and ship the traceback back as data, so a
  failed simulation surfaces as one clean ``WorkerError`` instead of a
  hung or poisoned pool.

Results are shared at three levels: an in-process memo (same object
returned for repeat queries, which downstream code relies on), the
persistent on-disk :class:`~repro.runtime.cache.ResultCache`, and the
pool itself (duplicate jobs within one batch are submitted once).
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..uarch import ProcessorConfig, SimStats
from .cache import ResultCache, job_key


@dataclass(frozen=True)
class SimJob:
    """One simulation work item: a suite kernel under one configuration.

    ``observe`` is an observer spec string (``repro.observe.make_observer``
    syntax); the worker builds the observer locally and ships its
    ``export()`` payload back with the stats.

    ``policy`` optionally overrides ``cfg.ci_policy`` with a registry
    policy *name* — a plain string, so the job stays picklable under any
    start method and the worker resolves the spec against its own
    registry.  The override is part of the resolved config, so the disk
    cache keys on it like any other config field.
    """

    kernel: str
    scale: float
    seed: int
    cfg: ProcessorConfig
    observe: Optional[str] = None
    policy: Optional[str] = None

    def resolved_cfg(self) -> ProcessorConfig:
        """The effective configuration (with any policy override applied)."""
        if self.policy is None:
            return self.cfg
        from dataclasses import replace
        return replace(self.cfg, ci_policy=self.policy)


class WorkerError(RuntimeError):
    """A simulation failed inside a worker process."""


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else the machine's cores."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _run_job(job: SimJob) -> Tuple[Optional[dict], Optional[dict],
                                   Optional[str]]:
    """Worker entry point: returns (stats dict, observer payload, error).

    Module-level so it pickles under both fork and spawn start methods;
    imports stay inside so a spawned worker re-resolves the package.
    """
    try:
        from .. import run_program
        from ..observe import make_observer
        from ..workloads import build_program
        prog = build_program(job.kernel, job.scale, job.seed)
        observer = make_observer(job.observe)
        stats = run_program(prog, job.resolved_cfg(), observer=observer)
        payload = None if observer is None else observer.export()
        return stats.to_dict(), payload, None
    except Exception:
        return None, None, traceback.format_exc()


def _pool_context():
    """Prefer fork (cheap, inherits the loaded package); fall back."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def execute_jobs_observed(
        jobs: Sequence[SimJob], n_workers: Optional[int] = None,
) -> List[Tuple[SimStats, Optional[dict]]]:
    """Run ``jobs`` (possibly in parallel), preserving order.

    Returns one ``(stats, observer payload)`` pair per job — the payload
    is ``None`` unless the job carried an ``observe`` spec.  Raises
    :class:`WorkerError` carrying the remote traceback if any job
    failed; the pool itself is never left hanging.
    """
    n = default_jobs() if n_workers is None else max(1, n_workers)
    results: List[Tuple[Optional[dict], Optional[dict], Optional[str]]]
    if n <= 1 or len(jobs) <= 1:
        results = [_run_job(j) for j in jobs]
    else:
        try:
            with ProcessPoolExecutor(
                    max_workers=min(n, len(jobs)),
                    mp_context=_pool_context()) as pool:
                results = list(pool.map(_run_job, jobs))
        except (OSError, ImportError):  # no usable multiprocessing
            results = [_run_job(j) for j in jobs]
    out: List[Tuple[SimStats, Optional[dict]]] = []
    for job, (stats, payload, err) in zip(jobs, results):
        if err is not None:
            raise WorkerError(
                f"simulation of {job.kernel!r} (scale={job.scale}, "
                f"seed={job.seed}) failed in worker:\n{err}")
        out.append((SimStats.from_dict(stats), payload))
    return out


def execute_jobs(jobs: Sequence[SimJob],
                 n_workers: Optional[int] = None) -> List[SimStats]:
    """Like :func:`execute_jobs_observed` but stats-only."""
    return [st for st, _ in execute_jobs_observed(jobs, n_workers)]


class ParallelRunner:
    """Memoising simulation runner with a worker pool and a disk cache.

    The resolution order for one (kernel, config) point is: in-process
    memo, then the persistent disk cache, then simulation (fanned out
    over the pool when a batch has more than one miss and ``jobs > 1``).
    ``memo_hits`` / ``disk_hits`` / ``sims_run`` count those outcomes so
    callers can report "zero new simulations" on a warm cache.
    """

    def __init__(self, scale: float, seed: int,
                 jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 observe: Optional[str] = None):
        self.scale = scale
        self.seed = seed
        self.jobs = default_jobs() if jobs is None else max(1, jobs)
        self.cache = ResultCache() if cache is None else cache
        if observe is None:
            observe = os.environ.get("REPRO_OBSERVE") or None
        #: observer spec applied to every simulation this runner executes
        #: (cached results carry no events, so observing bypasses the
        #: memo/disk lookups and re-simulates — stats stay identical)
        self.observe = observe
        #: (kernel, payload) per observed simulation, in submission order
        self.observations: List[Tuple[str, dict]] = []
        self._memo: Dict[tuple, SimStats] = {}
        self._programs: Dict[str, object] = {}
        self._disk_keys: Dict[tuple, str] = {}
        self.memo_hits = 0
        self.disk_hits = 0
        self.sims_run = 0

    # -- programs --------------------------------------------------------
    def program(self, name: str):
        prog = self._programs.get(name)
        if prog is None:
            from ..workloads import build_program
            prog = self._programs[name] = build_program(name, self.scale,
                                                        self.seed)
        return prog

    def _key(self, name: str, cfg: ProcessorConfig) -> str:
        memo_key = (name, cfg)
        key = self._disk_keys.get(memo_key)
        if key is None:
            key = self._disk_keys[memo_key] = job_key(
                self.program(name), cfg, self.scale, self.seed)
        return key

    # -- execution -------------------------------------------------------
    def run(self, name: str, cfg: ProcessorConfig) -> SimStats:
        return self.run_many([(name, cfg)])[0]

    def run_many(self, points: Sequence[Tuple[str, ProcessorConfig]]
                 ) -> List[SimStats]:
        """Resolve a batch of (kernel, config) points, order-preserving."""
        resolved: Dict[tuple, SimStats] = {}
        pending: List[tuple] = []
        observing = self.observe is not None
        for name, cfg in points:
            memo_key = (name, cfg)
            if memo_key in resolved or memo_key in pending:
                continue
            if not observing:
                st = self._memo.get(memo_key)
                if st is not None:
                    self.memo_hits += 1
                    resolved[memo_key] = st
                    continue
                st = self.cache.get(self._key(name, cfg))
                if st is not None:
                    self.disk_hits += 1
                    self._memo[memo_key] = resolved[memo_key] = st
                    continue
            pending.append(memo_key)
        if pending:
            sim_jobs = [SimJob(name, self.scale, self.seed, cfg,
                               observe=self.observe)
                        for name, cfg in pending]
            results = execute_jobs_observed(sim_jobs, self.jobs)
            self.sims_run += len(sim_jobs)
            for memo_key, (st, payload) in zip(pending, results):
                self._memo[memo_key] = resolved[memo_key] = st
                self.cache.put(self._key(*memo_key), st)
                if payload is not None:
                    self.observations.append((memo_key[0], payload))
        return [resolved[(name, cfg)] for name, cfg in points]

    # -- observations ----------------------------------------------------
    def merged_observations(self) -> Dict[str, dict]:
        """All collected observer payloads, merged by observer name.

        Deterministic: payloads merge in job-submission order, never in
        worker-completion order."""
        from ..observe import merge_payloads
        return merge_payloads([p for _, p in self.observations])

    # -- reporting -------------------------------------------------------
    def runtime_summary(self) -> str:
        """One-line accounting of where results came from."""
        return (f"runtime: {self.sims_run} simulation(s) run "
                f"({self.jobs} worker(s)), {self.disk_hits} disk-cache "
                f"hit(s), {self.memo_hits} memo hit(s)")
