"""Persistent, content-addressed simulation-result cache.

One simulation = one JSON file under the cache root, named by the
canonical run key (:func:`repro.runtime.keys.job_key` — schema version,
program fingerprint, predecode image digest, full config, scale and
seed).  Key *derivation* lives entirely in :mod:`repro.runtime.keys`;
this module only stores and audits envelopes under those names.

Layout: ``<root>/<first-2-hex>/<key>.json`` — two-level sharding keeps
directory listings small on big sweeps.  Writes go to a temporary file
in the same directory followed by an atomic rename, so concurrent
worker processes (or concurrent sessions) never observe a torn entry.

Integrity (DESIGN.md §8): each entry is an envelope
``{"schema": N, "sha256": <digest>, "stats": {...}}`` where the digest
covers the canonical JSON of the stats payload.  Reads re-verify the
checksum; an unparsable or checksum-failing file is *quarantined*
(moved under ``<root>/quarantine/``) so a bad disk or torn write can
never silently feed a wrong number into a figure, and the original
bytes survive for inspection.  An entry with a different ``schema`` is
a plain miss — valid data from another version, not corruption.
``repro cache verify`` (:meth:`ResultCache.verify`) audits the whole
store on demand.

Provenance: when the writer knows the :class:`~repro.runtime.spec.RunSpec`
that produced a result, :meth:`ResultCache.put` records ``spec.to_dict()``
in the envelope.  The spec is *descriptive* — it is excluded from the
integrity checksum (older entries without it stay valid) and never
consulted on reads; ``cache verify`` reports how many entries carry it.

Accounting: each instance tallies hits, misses and (for the serving
layer) coalesced requests in memory; :meth:`ResultCache.flush_counters`
merges them into ``<root>/counters.json`` so ``repro cache info`` can
report lifetime effectiveness across processes.  The counters are
best-effort operational numbers — results never depend on them.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache root (default ``$XDG_CACHE_HOME/repro-sim``
  or ``~/.cache/repro-sim``).
* ``REPRO_CACHE=0`` — disable reads and writes entirely.
* ``REPRO_FAULTS`` — when a fault plan is active the cache disables
  itself: perturbed runs must never poison (or be served from) the
  clean-result store.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..uarch import SimStats
from .keys import (  # noqa: F401  (re-exported: historical home of the keys)
    CACHE_SCHEMA,
    config_token,
    job_key,
    program_fingerprint,
    stats_digest as _stats_digest,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .spec import RunSpec

#: subdirectory (under the cache root) where corrupt entries are parked
QUARANTINE_DIR = "quarantine"

#: subdirectory (under the cache root) owned by the sampling checkpoint
#: store (:mod:`repro.sampling.checkpoint`); its files are envelopes of a
#: different schema, so every result-entry walk must prune it — auditing
#: them here would quarantine perfectly good checkpoints
CHECKPOINT_SUBDIR = "checkpoints"

#: file (directly under the cache root) holding the lifetime hit/miss/
#: coalesce tallies; excluded from entry walks by name
COUNTERS_FILE = "counters.json"

#: the counter names persisted in ``COUNTERS_FILE``
COUNTER_KEYS = ("hits", "misses", "coalesced")


def default_cache_dir() -> str:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(xdg, "repro-sim")


def cache_enabled() -> bool:
    if os.environ.get("REPRO_FAULTS"):
        return False
    return os.environ.get("REPRO_CACHE", "1").lower() not in ("0", "off", "no")


class CacheEntryError(ValueError):
    """An entry exists but cannot be trusted (corrupt / checksum fail)."""


def _decode_entry(text: str) -> Optional[dict]:
    """Parse + verify one envelope; stats dict, None on schema mismatch.

    Raises :class:`CacheEntryError` on anything untrustworthy: junk
    bytes, a missing envelope field, or a checksum mismatch.
    """
    try:
        envelope = json.loads(text)
    except ValueError as exc:
        raise CacheEntryError(f"unparsable JSON: {exc}") from None
    if not isinstance(envelope, dict) or "stats" not in envelope \
            or "sha256" not in envelope or "schema" not in envelope:
        raise CacheEntryError("not a cache envelope")
    if envelope["schema"] != CACHE_SCHEMA:
        return None  # another version's valid data: a miss, not corruption
    stats = envelope["stats"]
    if _stats_digest(stats) != envelope["sha256"]:
        raise CacheEntryError("checksum mismatch")
    return stats


class ResultCache:
    """On-disk ``SimStats`` store with atomic writes and checksummed reads.

    A ``ResultCache`` is cheap to construct; the root directory is only
    created on the first write.
    """

    def __init__(self, root: Optional[str] = None,
                 enabled: Optional[bool] = None):
        self.root = root or default_cache_dir()
        self.enabled = cache_enabled() if enabled is None else enabled
        #: entries moved aside by this instance (key paths, for reporting)
        self.quarantined: List[str] = []
        #: in-memory tallies since the last :meth:`flush_counters`
        self.hits = 0
        self.misses = 0
        self.coalesced = 0

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def _quarantine(self, path: str, reason: str) -> None:
        """Move a corrupt entry under ``<root>/quarantine/`` (best effort)."""
        qdir = os.path.join(self.root, QUARANTINE_DIR)
        try:
            os.makedirs(qdir, exist_ok=True)
            os.replace(path, os.path.join(qdir, os.path.basename(path)))
            self.quarantined.append(path)
        except OSError:
            pass

    def get(self, key: str) -> Optional[SimStats]:
        """The cached stats for ``key``, or None.

        A miss is silent (absent, disabled, or a different schema); a
        *corrupt* entry — junk bytes or a failed checksum — is moved to
        the quarantine directory so it is never consulted again and the
        evidence survives.
        """
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            with open(path) as fh:
                text = fh.read()
        except OSError:
            self.misses += 1
            return None
        try:
            stats = _decode_entry(text)
        except CacheEntryError as exc:
            self._quarantine(path, str(exc))
            self.misses += 1
            return None
        if stats is None:
            self.misses += 1
            return None
        try:
            result = SimStats.from_dict(stats)
        except (ValueError, TypeError, KeyError):
            self._quarantine(path, "stats payload does not deserialise")
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, stats: SimStats,
            spec: Optional["RunSpec"] = None) -> None:
        """Store ``stats`` under ``key`` (write-to-temp + atomic rename).

        When the producing :class:`RunSpec` is known it is recorded in
        the envelope for provenance — outside the integrity checksum,
        so spec-less entries from older writers verify unchanged.
        """
        if not self.enabled:
            return
        stats_dict = stats.to_dict()
        envelope: Dict[str, object] = {
            "schema": CACHE_SCHEMA,
            "sha256": _stats_digest(stats_dict),
            "stats": stats_dict}
        if spec is not None:
            envelope["spec"] = spec.to_dict()
        path = self.path_for(key)
        shard = os.path.dirname(path)
        try:
            os.makedirs(shard, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=shard, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(envelope, fh, separators=(",", ":"))
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass  # a read-only or full cache never fails the simulation

    # -- accounting ------------------------------------------------------
    def note_coalesced(self, n: int = 1) -> None:
        """Record ``n`` coalesced requests (the serving layer's fan-in)."""
        self.coalesced += n

    def _counters_path(self) -> str:
        return os.path.join(self.root, COUNTERS_FILE)

    def load_counters(self) -> Dict[str, int]:
        """The persisted lifetime tallies (zeros when absent/unreadable)."""
        try:
            with open(self._counters_path()) as fh:
                data = json.load(fh)
            if isinstance(data, dict):
                return {k: int(data.get(k, 0)) for k in COUNTER_KEYS}
        except (OSError, ValueError, TypeError):
            pass
        return {k: 0 for k in COUNTER_KEYS}

    def flush_counters(self) -> Dict[str, int]:
        """Merge the in-memory tallies into ``<root>/counters.json``.

        Best-effort operational accounting, not results: the merge is a
        read-add-rename, so two processes flushing at the same instant
        can drop a few increments — never corrupt the file.  Returns the
        merged totals; a disabled cache flushes nothing.
        """
        pending = {"hits": self.hits, "misses": self.misses,
                   "coalesced": self.coalesced}
        totals = self.load_counters()
        for k, v in pending.items():
            totals[k] += v
        if not self.enabled or not any(pending.values()):
            return totals
        try:
            os.makedirs(self.root, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(totals, fh)
                os.replace(tmp, self._counters_path())
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            return totals  # keep the tallies; retry on the next flush
        self.hits = self.misses = self.coalesced = 0
        return totals

    def _entries(self):
        for dirpath, dirnames, filenames in os.walk(self.root):
            if dirpath == self.root:
                dirnames[:] = [d for d in dirnames
                               if d != CHECKPOINT_SUBDIR]
            if os.path.basename(dirpath) == QUARANTINE_DIR:
                dirnames[:] = []
                continue
            for name in sorted(filenames):
                if name.endswith(".json") and name != COUNTERS_FILE:
                    yield os.path.join(dirpath, name)

    def verify(self, quarantine: bool = True) -> Dict[str, object]:
        """Audit every entry: parse, checksum, deserialise.

        Returns counters plus the list of bad paths; with ``quarantine``
        (the default) bad entries are moved aside like a failing read
        would.  Other-schema entries count as ``stale`` and are left in
        place.  ``with_spec`` counts the valid entries carrying run-spec
        provenance in their envelope.  ``quarantined`` is the total
        parked under ``<root>/quarantine/`` *after* this audit — newly
        moved entries plus anything quarantined earlier — which is what
        ``repro cache verify --strict`` gates on.
        """
        ok = stale = with_spec = 0
        bad: List[Tuple[str, str]] = []
        for path in self._entries():
            try:
                with open(path) as fh:
                    text = fh.read()
                stats = _decode_entry(text)
                if stats is None:
                    stale += 1
                    continue
                SimStats.from_dict(stats)
                ok += 1
                if "spec" in json.loads(text):
                    with_spec += 1
            except CacheEntryError as exc:
                bad.append((path, str(exc)))
            except (OSError, ValueError, TypeError, KeyError) as exc:
                bad.append((path, f"stats payload does not deserialise: "
                                  f"{exc}"))
        if quarantine:
            for path, reason in bad:
                self._quarantine(path, reason)
        qdir = os.path.join(self.root, QUARANTINE_DIR)
        try:
            parked = sum(1 for name in os.listdir(qdir)
                         if name.endswith(".json"))
        except OSError:
            parked = 0
        if not quarantine:
            parked += len(bad)
        return {"root": self.root, "ok": ok, "stale": stale,
                "with_spec": with_spec, "corrupt": len(bad),
                "quarantined": parked,
                "bad": [{"path": p, "reason": r} for p, r in bad]}

    def info(self) -> Dict[str, object]:
        """Entry count, footprint and lifetime tallies (``cache info``).

        The hit/miss/coalesce numbers are the persisted totals plus any
        tallies this instance has not flushed yet.
        """
        entries = 0
        size = 0
        quarantined = 0
        for dirpath, dirnames, filenames in os.walk(self.root):
            if dirpath == self.root:
                dirnames[:] = [d for d in dirnames
                               if d != CHECKPOINT_SUBDIR]
            in_quarantine = os.path.basename(dirpath) == QUARANTINE_DIR
            for name in filenames:
                if name.endswith(".json") and name != COUNTERS_FILE:
                    if in_quarantine:
                        quarantined += 1
                        continue
                    entries += 1
                    try:
                        size += os.path.getsize(os.path.join(dirpath, name))
                    except OSError:
                        pass
        counters = self.load_counters()
        counters["hits"] += self.hits
        counters["misses"] += self.misses
        counters["coalesced"] += self.coalesced
        return {"root": self.root, "enabled": self.enabled,
                "entries": entries, "bytes": size,
                "quarantined": quarantined, **counters}

    def clear(self) -> int:
        """Delete every cache entry (and reset the lifetime tallies);
        returns the number of entries removed."""
        removed = 0
        for dirpath, dirnames, filenames in os.walk(self.root):
            if dirpath == self.root:
                dirnames[:] = [d for d in dirnames
                               if d != CHECKPOINT_SUBDIR]
            for name in filenames:
                if name == COUNTERS_FILE:
                    continue
                if name.endswith(".json") or name.endswith(".tmp"):
                    try:
                        os.unlink(os.path.join(dirpath, name))
                        removed += 1
                    except OSError:
                        pass
        try:
            os.unlink(self._counters_path())
        except OSError:
            pass
        self.hits = self.misses = self.coalesced = 0
        return removed
