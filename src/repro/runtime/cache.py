"""Persistent, content-addressed simulation-result cache.

One simulation = one JSON file under the cache root, named by a SHA-256
over everything that determines its outcome:

* a cache-schema version (bump ``CACHE_SCHEMA`` whenever the *timing
  model* changes behaviour — workload and configuration changes are
  captured by the key itself),
* the program fingerprint (instruction stream + initial data image),
* the full ``ProcessorConfig`` (every field, nested caches included),
* the workload ``scale`` and ``seed``.

Layout: ``<root>/<first-2-hex>/<key>.json`` — two-level sharding keeps
directory listings small on big sweeps.  Writes go to a temporary file
in the same directory followed by an atomic rename, so concurrent
worker processes (or concurrent sessions) never observe a torn entry.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache root (default ``$XDG_CACHE_HOME/repro-sim``
  or ``~/.cache/repro-sim``).
* ``REPRO_CACHE=0`` — disable reads and writes entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

from ..isa import Program
from ..uarch import ProcessorConfig, SimStats

#: bump when the timing model's behaviour changes (invalidates all entries)
CACHE_SCHEMA = 1


def default_cache_dir() -> str:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(xdg, "repro-sim")


def cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1").lower() not in ("0", "off", "no")


def config_token(cfg: ProcessorConfig) -> str:
    """Canonical string form of a configuration (every field, sorted)."""
    return json.dumps(dataclasses.asdict(cfg), sort_keys=True, default=str)


def program_fingerprint(program: Program) -> str:
    """SHA-256 over the instruction stream and the initial data image.

    Cached on the program object: figures re-run the same kernels under
    dozens of configurations.
    """
    cached = getattr(program, "_fingerprint", None)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    for instr in program.code:
        h.update(repr((int(instr.op), instr.rd, instr.rs1, instr.rs2,
                       instr.imm, instr.target, instr.pc)).encode())
    for addr in sorted(program.data_init):
        h.update(repr((addr, program.data_init[addr])).encode())
    digest = h.hexdigest()
    program._fingerprint = digest
    return digest


def job_key(program: Program, cfg: ProcessorConfig,
            scale: float, seed: int) -> str:
    """Content-addressed cache key for one (program, config) simulation."""
    h = hashlib.sha256()
    h.update(f"schema={CACHE_SCHEMA}\n".encode())
    h.update(program_fingerprint(program).encode())
    h.update(config_token(cfg).encode())
    h.update(f"\nscale={scale!r} seed={seed!r}".encode())
    return h.hexdigest()


class ResultCache:
    """On-disk ``SimStats`` store with atomic writes.

    A ``ResultCache`` is cheap to construct; the root directory is only
    created on the first write.
    """

    def __init__(self, root: Optional[str] = None,
                 enabled: Optional[bool] = None):
        self.root = root or default_cache_dir()
        self.enabled = cache_enabled() if enabled is None else enabled

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key: str) -> Optional[SimStats]:
        """The cached stats for ``key``, or None (miss / disabled / corrupt)."""
        if not self.enabled:
            return None
        try:
            with open(self.path_for(key)) as fh:
                return SimStats.from_dict(json.load(fh))
        except (OSError, ValueError, TypeError):
            return None

    def put(self, key: str, stats: SimStats) -> None:
        """Store ``stats`` under ``key`` (write-to-temp + atomic rename)."""
        if not self.enabled:
            return
        path = self.path_for(key)
        shard = os.path.dirname(path)
        try:
            os.makedirs(shard, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=shard, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(stats.to_dict(), fh, separators=(",", ":"))
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass  # a read-only or full cache never fails the simulation

    def info(self) -> Dict[str, object]:
        """Entry count and footprint (for ``repro cache info``)."""
        entries = 0
        size = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(".json"):
                    entries += 1
                    try:
                        size += os.path.getsize(os.path.join(dirpath, name))
                    except OSError:
                        pass
        return {"root": self.root, "enabled": self.enabled,
                "entries": entries, "bytes": size}

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(".json") or name.endswith(".tmp"):
                    try:
                        os.unlink(os.path.join(dirpath, name))
                        removed += 1
                    except OSError:
                        pass
        return removed
