"""Simulation runtime: parallel execution, result caching, profiling.

Three cooperating pieces (see DESIGN.md):

* :class:`ParallelRunner` / :func:`execute_jobs` — fan (kernel, config)
  simulation jobs out over a process pool, with in-process fallback,
  worker-side exception capture, a stall watchdog with retry, and a
  ``keep_going`` mode that degrades failures into typed
  :class:`FailedResult` holes instead of aborting the sweep;
* :class:`ResultCache` — persistent content-addressed store of
  ``SimStats`` keyed by program hash + configuration + scale/seed +
  schema version, with atomic concurrent-safe writes, per-entry
  checksums and quarantine of corrupt files;
* :func:`profile_kernel` — cProfile harness over one simulation for
  hot-loop work.

The experiment harness's ``repro.experiments.Runner`` delegates here,
so every figure, ablation, benchmark and CLI sweep gets the pool and
the cache for free.
"""

from .cache import (
    CACHE_SCHEMA,
    CacheEntryError,
    ResultCache,
    cache_enabled,
    config_token,
    default_cache_dir,
    job_key,
    program_fingerprint,
)
from .parallel import (
    FailedResult,
    ParallelRunner,
    SimJob,
    WorkerError,
    aggregate_failure_report,
    default_jobs,
    default_retries,
    default_timeout,
    execute_jobs,
    execute_jobs_observed,
    pool_restart_count,
)
from .profiling import profile_kernel

__all__ = [
    "CACHE_SCHEMA",
    "CacheEntryError",
    "FailedResult",
    "ParallelRunner",
    "ResultCache",
    "SimJob",
    "WorkerError",
    "aggregate_failure_report",
    "cache_enabled",
    "config_token",
    "default_cache_dir",
    "default_jobs",
    "default_retries",
    "default_timeout",
    "execute_jobs",
    "execute_jobs_observed",
    "job_key",
    "pool_restart_count",
    "profile_kernel",
    "program_fingerprint",
]
