"""Simulation runtime: parallel execution, result caching, profiling.

Three cooperating pieces (see DESIGN.md):

* :class:`ParallelRunner` / :func:`execute_jobs` — fan (kernel, config)
  simulation jobs out over a process pool, with in-process fallback and
  worker-side exception capture;
* :class:`ResultCache` — persistent content-addressed store of
  ``SimStats`` keyed by program hash + configuration + scale/seed +
  schema version, with atomic concurrent-safe writes;
* :func:`profile_kernel` — cProfile harness over one simulation for
  hot-loop work.

The experiment harness's ``repro.experiments.Runner`` delegates here,
so every figure, ablation, benchmark and CLI sweep gets the pool and
the cache for free.
"""

from .cache import (
    CACHE_SCHEMA,
    ResultCache,
    cache_enabled,
    config_token,
    default_cache_dir,
    job_key,
    program_fingerprint,
)
from .parallel import (
    ParallelRunner,
    SimJob,
    WorkerError,
    default_jobs,
    execute_jobs,
)
from .profiling import profile_kernel

__all__ = [
    "CACHE_SCHEMA",
    "ParallelRunner",
    "ResultCache",
    "SimJob",
    "WorkerError",
    "cache_enabled",
    "config_token",
    "default_cache_dir",
    "default_jobs",
    "execute_jobs",
    "job_key",
    "profile_kernel",
    "program_fingerprint",
]
