"""Simulation runtime: the run vocabulary, parallel execution, caching.

Four cooperating pieces (see DESIGN.md §11):

* :class:`RunSpec` — the canonical, frozen description of one logical
  simulation (kernel, scale, seed, config, policy/fault/observer
  riders); every layer — CLI, experiments, pool, cache, serve — speaks
  it, and :mod:`repro.runtime.keys` derives its single
  content-addressed identity (:func:`run_key` / :func:`job_key`);
* :class:`ParallelRunner` / :func:`execute_jobs` — fan runs out over a
  process pool, with in-process fallback, worker-side exception
  capture, a stall watchdog with retry, and a ``keep_going`` mode that
  degrades failures into typed :class:`FailedResult` holes instead of
  aborting the sweep;
* :class:`ResultCache` — persistent content-addressed store of
  ``SimStats`` under those canonical keys, with atomic concurrent-safe
  writes, per-entry checksums, quarantine of corrupt files and
  run-spec provenance in the envelope;
* :func:`profile_kernel` — cProfile harness over one simulation for
  hot-loop work.

The experiment harness's ``repro.experiments.Runner`` delegates here,
so every figure, ablation, benchmark and CLI sweep gets the pool and
the cache for free.
"""

from .cache import (
    CACHE_SCHEMA,
    CacheEntryError,
    ResultCache,
    cache_enabled,
    config_token,
    default_cache_dir,
    job_key,
    program_fingerprint,
)
from .keys import cached_program, image_digest, run_key, stats_digest
from .parallel import (
    TRANSIENT_PHASES,
    FailedResult,
    ParallelRunner,
    SimJob,
    WorkerError,
    aggregate_failure_report,
    default_jobs,
    default_retries,
    default_timeout,
    execute_jobs,
    execute_jobs_observed,
    pool_restart_count,
)
from .profiling import profile_kernel
from .spec import SPEC_FIELDS, RunSpec

__all__ = [
    "CACHE_SCHEMA",
    "CacheEntryError",
    "FailedResult",
    "ParallelRunner",
    "ResultCache",
    "RunSpec",
    "SPEC_FIELDS",
    "SimJob",
    "TRANSIENT_PHASES",
    "WorkerError",
    "aggregate_failure_report",
    "cache_enabled",
    "cached_program",
    "config_token",
    "default_cache_dir",
    "default_jobs",
    "default_retries",
    "default_timeout",
    "execute_jobs",
    "execute_jobs_observed",
    "image_digest",
    "job_key",
    "pool_restart_count",
    "profile_kernel",
    "program_fingerprint",
    "run_key",
    "stats_digest",
]
