"""Figure 11: IPC vs number of replicas per vectorized instruction.

1/2/4/8 replicas across the register sweep, plus the scal and wb
baselines.  Paper: 2 or 4 replicas are the sweet spot; 1 loses many
opportunities; 8 only helps with very many registers.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..uarch.config import ci, scal, wb
from .common import Check, Figure, REG_POINTS, Runner, default_runner, reg_label
from .sweeps import SweepSpec, run_sweep

REPLICA_COUNTS = (1, 2, 4, 8)

SWEEP = SweepSpec("fig11", tuple(
    [(f"sc@{regs}", scal(1, regs)) for regs in REG_POINTS]
    + [(f"wb@{regs}", wb(1, regs)) for regs in REG_POINTS]
    + [(f"{n}rep@{regs}", ci(1, regs, replicas=n))
       for n in REPLICA_COUNTS for regs in REG_POINTS]))


def compute(runner: Optional[Runner] = None) -> Figure:
    runner = runner or default_runner()
    result = run_sweep(runner, SWEEP)
    data: Dict[str, Dict[int, float]] = {"sc": {}, "wb": {}}
    for regs in REG_POINTS:
        data["sc"][regs] = result.hmean_ipc(f"sc@{regs}")
        data["wb"][regs] = result.hmean_ipc(f"wb@{regs}")
    for n in REPLICA_COUNTS:
        data[f"{n}rep"] = {regs: result.hmean_ipc(f"{n}rep@{regs}")
                           for regs in REG_POINTS}
    labels = ["sc", "wb"] + [f"{n}rep" for n in REPLICA_COUNTS]
    rows = [[reg_label(regs)] + [data[l][regs] for l in labels]
            for regs in REG_POINTS]

    big = REG_POINTS[-1]
    checks = [
        Check("1 replica loses many reuse opportunities (paper)",
              data["1rep"][big] < data["4rep"][big] * 0.97,
              f"1rep={data['1rep'][big]:.3f} 4rep={data['4rep'][big]:.3f}"),
        Check("2 and 4 replicas are the sweet spot (within a few %)",
              abs(data["2rep"][big] - data["4rep"][big])
              / data["4rep"][big] < 0.05),
        Check("8 replicas add little even with unbounded registers",
              data["8rep"][big] <= data["4rep"][big] * 1.05),
        Check("every replica count beats the wb baseline at >=512 regs",
              all(data[f"{n}rep"][512] > data["wb"][512]
                  for n in REPLICA_COUNTS)),
    ]
    return Figure(
        fig_id="Figure 11",
        title="Harmonic-mean IPC vs replicas per vectorized instruction (1 wide port)",
        headers=["regs"] + labels,
        rows=rows,
        checks=checks,
    )


def main() -> None:  # pragma: no cover
    print(compute().render())


if __name__ == "__main__":  # pragma: no cover
    main()
