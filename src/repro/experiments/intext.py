"""In-text numbers: the prose claims of Sections 2.3.2, 2.4.2 and 2.4.3.

* average stridedPCs per rename entry (paper: 1.7),
* physical registers in use with/without the DAEC early-release scheme
  (paper: 304 vs 812, unbounded register file),
* fraction of stores conflicting with speculatively loaded data
  (paper: < 3%),
* wrongly-speculated activity of ci vs vect (paper: 29.6% vs 48.5%).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..uarch.config import INF_REGS, ci
from ..workloads import kernel_names
from .common import Check, Figure, Runner, default_runner
from .sweeps import SweepSpec, run_sweep

CFG_INF = ci(1, INF_REGS)

SWEEP = SweepSpec("intext", (
    ("daec-on", CFG_INF),
    ("daec-off", replace(CFG_INF, ci_daec=False)),
    ("ci", ci(1, 512)),
    ("vect", ci(1, 512, policy="vect")),
))


def compute(runner: Optional[Runner] = None) -> Figure:
    runner = runner or default_runner()
    n = len(kernel_names())

    result = run_sweep(runner, SWEEP)
    with_daec = result.suite("daec-on")
    without_daec = result.suite("daec-off")
    regs_with = sum(s.avg_regs_in_use for s in with_daec.values()) / n
    regs_without = sum(s.avg_regs_in_use for s in without_daec.values()) / n

    ci_stats = result.suite("ci")
    vect_stats = result.suite("vect")
    spcs = sum(s.avg_stridedpcs for s in ci_stats.values()) / n
    stores = sum(s.stores_committed for s in ci_stats.values())
    conflicts = sum(s.coherence_squashes for s in ci_stats.values())
    conflict_pct = 100.0 * conflicts / max(1, stores)
    waste_ci = 100.0 * sum(s.wrong_spec_activity
                           for s in ci_stats.values()) / n
    waste_vect = 100.0 * sum(s.wrong_spec_activity
                             for s in vect_stats.values()) / n

    rows = [
        ["avg stridedPCs per assigned entry", "1.7", f"{spcs:.2f}"],
        ["regs in use, DAEC on (unbounded RF)", "304", f"{regs_with:.0f}"],
        ["regs in use, DAEC off (unbounded RF)", "812", f"{regs_without:.0f}"],
        ["stores conflicting with replicas", "<3%", f"{conflict_pct:.2f}%"],
        ["wrongly speculated activity, ci", "29.6%", f"{waste_ci:.1f}%"],
        ["wrongly speculated activity, vect", "48.5%", f"{waste_vect:.1f}%"],
    ]
    checks = [
        Check("a couple of stridedPC slots per entry suffice (paper: 1.7)",
              1.0 <= spcs <= 3.2, f"{spcs:.2f}"),
        Check("DAEC reduces live register usage substantially",
              regs_with < regs_without,
              f"{regs_with:.0f} vs {regs_without:.0f}"),
        Check("store/replica conflicts are rare (paper: <3% of stores)",
              conflict_pct < 3.0, f"{conflict_pct:.2f}%"),
        Check("ci speculates at least as accurately as vect",
              waste_ci <= waste_vect + 2.0,
              f"{waste_ci:.1f}% vs {waste_vect:.1f}%"),
    ]
    return Figure(
        fig_id="In-text",
        title="Prose claims: paper value vs measured",
        headers=["quantity", "paper", "measured"],
        rows=rows,
        checks=checks,
        notes=["register-usage magnitudes differ from the paper's (they "
               "track each workload's live-value footprint); the *effect "
               "direction* of DAEC is what the claim pins down"],
    )


def main() -> None:  # pragma: no cover
    print(compute().render())


if __name__ == "__main__":  # pragma: no cover
    main()
