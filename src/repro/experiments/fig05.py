"""Figure 5: classification of hard mispredicted branches.

For each kernel: the percentage of examined (hard, mispredicted) branches
for which no control-independent instruction is found, at least one is
selected but never reused, and at least one precomputed instance is
successfully reused.  Paper: ~70% selected, ~49% with reuse.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import aggregate_breakdown, ci_breakdown
from ..uarch.config import ci
from ..workloads import kernel_names
from .common import Check, Figure, Runner, default_runner
from .sweeps import SweepSpec, run_sweep

CFG = ci(ports=1, regs=512)

SWEEP = SweepSpec("fig05", (("ci", CFG),))


def compute(runner: Optional[Runner] = None) -> Figure:
    runner = runner or default_runner()
    stats = run_sweep(runner, SWEEP).suite("ci")
    rows = []
    for name in kernel_names():
        b = ci_breakdown(stats[name])
        rows.append([name, b.events, b.reused_pct, b.selected_no_reuse_pct,
                     b.not_found_pct])
    agg = aggregate_breakdown(stats)
    rows.append(["INT", agg.events, agg.reused_pct,
                 agg.selected_no_reuse_pct, agg.not_found_pct])

    checks = [
        Check("CI instructions selected for most hard mispredictions "
              "(paper: ~70%)",
              agg.reused_pct + agg.selected_no_reuse_pct > 55.0,
              f"selected={agg.reused_pct + agg.selected_no_reuse_pct:.1f}%"),
        Check("reuse achieved for roughly half of them (paper: 49%)",
              35.0 <= agg.reused_pct <= 75.0,
              f"reused={agg.reused_pct:.1f}%"),
        Check("mcf reuses the fewest committed instructions "
              "(non-strided pointer chase)",
              stats["mcf"].reuse_fraction
              <= min(stats[k].reuse_fraction
                     for k in ("bzip2", "perlbmk", "twolf")),
              f"mcf={stats['mcf'].reuse_fraction:.1%}"),
    ]
    return Figure(
        fig_id="Figure 5",
        title="% hard mispredicted branches: reuse / selected-no-reuse / not-found",
        headers=["kernel", "events", ">=1 reuse %", "no reuse %", "not found %"],
        rows=rows,
        checks=checks,
    )


def main() -> None:  # pragma: no cover
    print(compute().render())


if __name__ == "__main__":  # pragma: no cover
    main()
