"""Figure 13: the speculative data memory (Section 2.4.6).

scal / wb / ci (monolithic) against ci with a small slow memory holding
128/256/512/768 speculative values, across the register sweep.  Paper's
headline: 256 registers + 768 positions performs like an unbounded
single-level register file.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..uarch.config import INF_REGS, ci, scal, wb, with_spec_mem
from .common import Check, Figure, REG_POINTS, Runner, default_runner, reg_label
from .sweeps import SweepSpec, run_sweep

SPEC_SIZES = (128, 256, 512, 768)

SWEEP = SweepSpec("fig13", tuple(
    [(f"scal@{regs}", scal(1, regs)) for regs in REG_POINTS]
    + [(f"wb@{regs}", wb(1, regs)) for regs in REG_POINTS]
    + [(f"ci@{regs}", ci(1, regs)) for regs in REG_POINTS]
    + [(f"ci-h-{size}@{regs}", with_spec_mem(ci(1, regs), size))
       for size in SPEC_SIZES for regs in REG_POINTS]))


def compute(runner: Optional[Runner] = None) -> Figure:
    runner = runner or default_runner()
    result = run_sweep(runner, SWEEP)
    data: Dict[str, Dict[int, float]] = {
        label: {regs: result.hmean_ipc(f"{label}@{regs}")
                for regs in REG_POINTS}
        for label in ["scal", "wb", "ci"]
        + [f"ci-h-{s}" for s in SPEC_SIZES]}
    labels = ["scal", "wb", "ci"] + [f"ci-h-{s}" for s in SPEC_SIZES]
    rows = [[reg_label(regs)] + [data[l][regs] for l in labels]
            for regs in REG_POINTS]

    unbounded = data["ci"][REG_POINTS[-1]]
    headline = data["ci-h-768"][256]
    checks = [
        Check("256 regs + 768 positions ~ unbounded monolithic RF "
              "(paper's headline)",
              headline >= unbounded * 0.95,
              f"ci-h-768@256={headline:.3f} ci@inf={unbounded:.3f}"),
        Check("the spec memory rescues the 128-register configuration",
              data["ci-h-768"][128] > data["ci"][128] * 1.10,
              f"ci-h-768@128={data['ci-h-768'][128]:.3f} "
              f"ci@128={data['ci'][128]:.3f}"),
        Check("ci-h curves are nearly flat across register counts",
              max(data["ci-h-768"].values())
              - min(data["ci-h-768"].values()) < 0.45),
    ]
    return Figure(
        fig_id="Figure 13",
        title="Harmonic-mean IPC with the speculative data memory (1 wide port)",
        headers=["regs"] + labels,
        rows=rows,
        checks=checks,
        notes=["all sizes >=128 coincide for our suite: its live replica "
               "population (~100 values) fits the smallest memory, unlike "
               "SpecInt2000's larger static footprint (see EXPERIMENTS.md)"],
    )


def main() -> None:  # pragma: no cover
    print(compute().render())


if __name__ == "__main__":  # pragma: no cover
    main()
