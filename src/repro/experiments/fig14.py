"""Figure 14: ci vs the full dynamic-vectorization scheme of [12].

Two wide L1 ports, register sweep.  Paper: ci wins everywhere except with
a huge number of registers, where vect edges ahead by ~4%; vect's
speculation is also far less accurate (48.5% vs 29.6% wasted activity).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..uarch.config import ci
from ..workloads import kernel_names
from .common import Check, Figure, REG_POINTS, Runner, default_runner, reg_label
from .sweeps import SweepSpec, run_sweep

SWEEP = SweepSpec("fig14", tuple(
    [(f"ci@{regs}", ci(2, regs)) for regs in REG_POINTS]
    + [(f"vect@{regs}", ci(2, regs, policy="vect")) for regs in REG_POINTS]
    + [(f"waste-{policy}", ci(2, 512, policy=policy))
       for policy in ("ci", "vect")]))


def compute(runner: Optional[Runner] = None) -> Figure:
    runner = runner or default_runner()
    result = run_sweep(runner, SWEEP)
    data: Dict[str, Dict[int, float]] = {
        "ci": {regs: result.hmean_ipc(f"ci@{regs}")
               for regs in REG_POINTS},
        "vect": {regs: result.hmean_ipc(f"vect@{regs}")
                 for regs in REG_POINTS},
    }
    rows = [[reg_label(regs), data["ci"][regs], data["vect"][regs]]
            for regs in REG_POINTS]

    # Wasted-speculation comparison at 512 registers (in-text numbers).
    waste = {}
    for policy in ("ci", "vect"):
        stats = result.suite(f"waste-{policy}")
        waste[policy] = sum(s.wrong_spec_activity for s in stats.values()) \
            / len(kernel_names())

    checks = [
        Check("ci outperforms vect at moderate register counts "
              "(paper: better everywhere below ~700 regs)",
              all(data["ci"][r] >= data["vect"][r] * 0.995
                  for r in (256, 512))
              and data["ci"][128] >= data["vect"][128] * 0.96,
              " ".join(f"{reg_label(r)}: ci={data['ci'][r]:.3f} "
                       f"vect={data['vect'][r]:.3f}" for r in (128, 256))),
        Check("vect catches up only with very many registers "
              "(paper: +4% at inf)",
              data["vect"][REG_POINTS[-1]] >= data["ci"][REG_POINTS[-1]] * 0.95),
        Check("vect speculates no more accurately than ci "
              "(paper: 48.5% vs 29.6% wasted)",
              waste["vect"] >= waste["ci"] - 0.02,
              f"ci={waste['ci']:.1%} vect={waste['vect']:.1%}"),
        Check("vect collapses hardest at 128 registers",
              (data["vect"][128] / data["vect"][512])
              <= (data["ci"][128] / data["ci"][512]) + 0.02),
    ]
    return Figure(
        fig_id="Figure 14",
        title="ci vs full dynamic vectorization [12] (2 wide ports)",
        headers=["regs", "ci", "vect"],
        rows=rows,
        checks=checks,
        notes=["at unbounded registers our vect ties ci rather than "
               "winning by 4%: our suite's strided loads are almost all "
               "eventually CI-selected, so the two schemes converge to the "
               "same coverage (see EXPERIMENTS.md)",
               "at 128 registers both schemes are throttled to near the "
               "baseline and the comparison is within noise; the paper's "
               "dramatic vect collapse there presumes SpecInt's far larger "
               "vectorized footprint"],
    )


def main() -> None:  # pragma: no cover
    print(compute().render())


if __name__ == "__main__":  # pragma: no cover
    main()
