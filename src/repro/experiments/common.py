"""Shared infrastructure for the per-figure experiment harness.

Every ``figXX`` module exposes ``compute(runner) -> Figure``: it simulates
the configurations the paper's figure sweeps, renders the same rows/series
as a text table, and evaluates *shape checks* — the qualitative claims
(who wins, where crossovers fall) that the reproduction must preserve.

Simulation results are memoised per (kernel, scale, seed, config) and
persisted through the runtime layer's disk cache, so figures sharing
configurations (e.g. the Figure 9 baselines reused by Figures 10, 13
and 14) pay for each run once per process — and re-running a figure
across sessions only pays for new configurations.  Suite sweeps fan out
over the runtime's worker pool (``--jobs`` / ``REPRO_JOBS``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis import format_table, harmonic_mean
from ..runtime import ParallelRunner, ResultCache, RunSpec
from ..uarch import ProcessorConfig, SimStats
from ..uarch.config import INF_REGS
from ..workloads import kernel_names

#: default workload scale for experiments; override with REPRO_SCALE
EXPERIMENT_SCALE = float(os.environ.get("REPRO_SCALE", "0.5"))
EXPERIMENT_SEED = int(os.environ.get("REPRO_SEED", "1"))

#: the register-file sweep of Figures 9, 11, 13 and 14
REG_POINTS: Tuple[int, ...] = (128, 256, 512, 768, INF_REGS)


def reg_label(regs: int) -> str:
    return "inf" if regs >= INF_REGS else str(regs)


@dataclass
class Check:
    """One qualitative claim from the paper, evaluated on our data."""

    description: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        mark = "PASS" if self.passed else "DEVIATION"
        out = f"[{mark}] {self.description}"
        if self.detail:
            out += f" — {self.detail}"
        return out


@dataclass
class Figure:
    """One reproduced table/figure plus its shape checks."""

    fig_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    notes: List[str] = field(default_factory=list)
    checks: List[Check] = field(default_factory=list)

    def render(self) -> str:
        parts = [format_table(f"{self.fig_id}: {self.title}",
                              self.headers, self.rows)]
        if self.checks:
            parts.append("")
            parts.extend(c.render() for c in self.checks)
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)


class Runner(ParallelRunner):
    """Memoising simulation runner shared across figures.

    A thin experiment-harness face over the runtime layer: scale/seed
    default from ``REPRO_SCALE``/``REPRO_SEED``, suite sweeps resolve
    all 12 kernels as one batch (parallel across the worker pool when
    ``jobs > 1``), and results persist in the runtime's disk cache.
    """

    def __init__(self, scale: Optional[float] = None,
                 seed: Optional[int] = None,
                 jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 observe: Optional[str] = None,
                 keep_going: bool = False,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 sampling: Optional[str] = None):
        super().__init__(
            scale=EXPERIMENT_SCALE if scale is None else scale,
            seed=EXPERIMENT_SEED if seed is None else seed,
            jobs=jobs, cache=cache, observe=observe,
            keep_going=keep_going, timeout=timeout, retries=retries,
            sampling=sampling)

    def run_suite(self, cfg: ProcessorConfig) -> Dict[str, SimStats]:
        names = kernel_names()
        stats = self.run_many([RunSpec(name, self.scale, self.seed, cfg)
                               for name in names])
        return dict(zip(names, stats))

    def suite_hmean_ipc(self, cfg: ProcessorConfig) -> float:
        return harmonic_mean(s.ipc for s in self.run_suite(cfg).values())


_default_runner: Optional[Runner] = None


def default_runner() -> Runner:
    """Process-wide runner so figures share cached simulations."""
    global _default_runner
    if _default_runner is None:
        _default_runner = Runner()
    return _default_runner


def monotone_nondecreasing(xs: Sequence[float], tol: float = 1e-9) -> bool:
    return all(b >= a - tol for a, b in zip(xs, xs[1:]))
