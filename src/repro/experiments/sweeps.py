"""Declarative experiment sweeps: config matrices as data.

Every figure/ablation module used to interleave *what to simulate* with
*how to render it*, issuing one ``run_suite`` call per configuration.
Here the what becomes a value: a :class:`SweepSpec` names a labelled
series of configurations and the kernels to run them over (empty =
the whole workload registry), and :meth:`SweepSpec.specs` expands it to
the flat list of canonical :class:`~repro.runtime.RunSpec` values —
the same vocabulary the pool, cache and serve layers speak.

:func:`run_sweep` resolves the entire matrix as ONE ``run_many`` batch
(maximal pool fan-out; memo/disk/coalescing still deduplicate repeated
points across sweeps) and returns a :class:`SweepResult` the module's
render function reads.  Stats are deterministic, so rendering from a
sweep result is byte-identical to the historical per-config loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..analysis import harmonic_mean
from ..runtime import RunSpec
from ..uarch import ProcessorConfig, SimStats
from ..workloads import workload_names
from .common import Runner


@dataclass(frozen=True)
class SweepSpec:
    """One experiment's simulation matrix: labelled configs × kernels."""

    name: str
    #: (label, config) pairs, in presentation order
    series: Tuple[Tuple[str, ProcessorConfig], ...]
    #: kernels to run each config over; empty = the whole registry
    kernels: Tuple[str, ...] = ()

    def labels(self) -> List[str]:
        return [label for label, _ in self.series]

    def kernel_list(self) -> List[str]:
        return list(self.kernels) if self.kernels else workload_names()

    def config(self, label: str) -> ProcessorConfig:
        for lab, cfg in self.series:
            if lab == label:
                return cfg
        raise KeyError(f"sweep {self.name!r} has no series {label!r}")

    def specs(self, scale: float, seed: int) -> List[RunSpec]:
        """The matrix as canonical run specs (series-major order)."""
        kernels = self.kernel_list()
        return [RunSpec(kernel, scale, seed, cfg)
                for _, cfg in self.series for kernel in kernels]


class SweepResult:
    """Resolved stats of one sweep: ``stats[label][kernel]``."""

    def __init__(self, sweep: SweepSpec,
                 stats: Dict[str, Dict[str, SimStats]]):
        self.sweep = sweep
        self.stats = stats

    def suite(self, label: str) -> Dict[str, SimStats]:
        """One series' per-kernel stats (kernel order = registry order)."""
        return self.stats[label]

    def ipc(self, label: str, kernel: str) -> float:
        return self.stats[label][kernel].ipc

    def hmean_ipc(self, label: str) -> float:
        return harmonic_mean(s.ipc for s in self.stats[label].values())


def run_sweep(runner: Runner, sweep: SweepSpec) -> SweepResult:
    """Resolve a whole sweep as one order-preserving batch."""
    kernels = sweep.kernel_list()
    flat = runner.run_many(sweep.specs(runner.scale, runner.seed))
    stats: Dict[str, Dict[str, SimStats]] = {}
    for i, (label, _) in enumerate(sweep.series):
        group = flat[i * len(kernels):(i + 1) * len(kernels)]
        stats[label] = dict(zip(kernels, group))
    return SweepResult(sweep, stats)
