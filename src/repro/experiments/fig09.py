"""Figure 9: IPC vs physical registers for scal / wb / ci, 1 and 2 ports.

Harmonic mean over the suite.  Expected shape: wide buses beat scalar
ports (more with 1 port than 2); the mechanism degrades slightly at 128
registers, and its gains grow and saturate from 512 registers on.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..uarch.config import ci, scal, wb
from .common import (
    Check,
    Figure,
    REG_POINTS,
    Runner,
    default_runner,
    monotone_nondecreasing,
    reg_label,
)
from .sweeps import SweepSpec, run_sweep

SERIES = [
    ("scal1p", lambda regs: scal(1, regs)),
    ("wb1p", lambda regs: wb(1, regs)),
    ("ci1p", lambda regs: ci(1, regs)),
    ("scal2p", lambda regs: scal(2, regs)),
    ("wb2p", lambda regs: wb(2, regs)),
    ("ci2p", lambda regs: ci(2, regs)),
]

SWEEP = SweepSpec("fig09", tuple(
    (f"{label}@{regs}", make(regs))
    for label, make in SERIES for regs in REG_POINTS))


def compute(runner: Optional[Runner] = None) -> Figure:
    runner = runner or default_runner()
    result = run_sweep(runner, SWEEP)
    data: Dict[str, Dict[int, float]] = {
        label: {regs: result.hmean_ipc(f"{label}@{regs}")
                for regs in REG_POINTS}
        for label, _ in SERIES}
    rows = [[reg_label(regs)] + [data[label][regs] for label, _ in SERIES]
            for regs in REG_POINTS]

    big = REG_POINTS[2]  # 512
    gain1 = data["ci1p"][big] / data["wb1p"][big] - 1
    gain2 = data["ci2p"][big] / data["wb2p"][big] - 1
    wb_gain_1p = data["wb1p"][big] / data["scal1p"][big] - 1
    wb_gain_2p = data["wb2p"][big] / data["scal2p"][big] - 1
    checks = [
        Check("wide buses help the superscalar; the benefit shrinks with "
              "a second port (paper: decreases)",
              wb_gain_1p > 0.05 and wb_gain_1p > wb_gain_2p >= -0.01,
              f"1p={wb_gain_1p:+.1%} 2p={wb_gain_2p:+.1%}"),
        Check("ci gains 14-25% over wb at >=512 regs (paper: 17.8%)",
              0.10 <= gain1 <= 0.30 and 0.10 <= gain2 <= 0.30,
              f"1p={gain1:+.1%} 2p={gain2:+.1%}"),
        Check("ci degrades (or at best ties) wb at 128 regs",
              data["ci1p"][128] <= data["wb1p"][128] * 1.02,
              f"ci1p={data['ci1p'][128]:.3f} wb1p={data['wb1p'][128]:.3f}"),
        Check("ci keeps improving with more registers while wb flattens",
              monotone_nondecreasing([data["ci1p"][r] for r in REG_POINTS])
              and data["wb1p"][REG_POINTS[-1]] - data["wb1p"][256] < 0.1),
        Check("unbounded == 768 for every series (saturation)",
              all(abs(data[l][REG_POINTS[-1]] - data[l][768]) < 0.02
                  for l, _ in SERIES)),
    ]
    return Figure(
        fig_id="Figure 9",
        title="Harmonic-mean IPC vs registers (scal/wb/ci x 1,2 ports)",
        headers=["regs"] + [label for label, _ in SERIES],
        rows=rows,
        checks=checks,
        notes=["ci's gain at 256 regs is larger than the paper's (~0%): "
               "our kernels' conventional path holds fewer live registers "
               "than SpecInt2000 did on the authors' compiler/machine, so "
               "the pressure crossover sits lower (see EXPERIMENTS.md)"],
    )


def main() -> None:  # pragma: no cover
    print(compute().render())


if __name__ == "__main__":  # pragma: no cover
    main()
