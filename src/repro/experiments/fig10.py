"""Figure 10: control independence inside the window only ("squash reuse").

Per-kernel IPC for scal / wb / ci-iw / ci with one L1 port.  The paper
reports ci-iw capturing about half of ci's improvement (9.1% vs 17.8%);
the qualitative ordering scal <= wb <= ci-iw <= ci is the shape to hold.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import harmonic_mean
from ..uarch.config import ci, scal, wb
from ..workloads import kernel_names
from .common import Check, Figure, Runner, default_runner
from .sweeps import SweepSpec, run_sweep

CONFIGS = [
    ("scal", scal(1, 512)),
    ("wb", wb(1, 512)),
    ("ci-iw", ci(1, 512, policy="ci-iw")),
    ("ci", ci(1, 512)),
]

SWEEP = SweepSpec("fig10", tuple(CONFIGS))


def compute(runner: Optional[Runner] = None) -> Figure:
    runner = runner or default_runner()
    per_cfg = run_sweep(runner, SWEEP).stats
    rows = []
    for name in kernel_names():
        rows.append([name] + [per_cfg[label][name].ipc
                              for label, _ in CONFIGS])
    means = {label: harmonic_mean(s.ipc for s in per_cfg[label].values())
             for label, _ in CONFIGS}
    rows.append(["INT(hmean)"] + [means[label] for label, _ in CONFIGS])

    checks = [
        Check("ordering scal <= wb <= ci-iw <= ci holds on the mean",
              means["scal"] <= means["wb"] <= means["ci-iw"] <= means["ci"],
              " ".join(f"{l}={means[l]:.3f}" for l, _ in CONFIGS)),
        Check("ci-iw improves over wb (paper: +9.1%)",
              means["ci-iw"] > means["wb"],
              f"+{(means['ci-iw'] / means['wb'] - 1) * 100:.1f}%"),
        Check("full ci clearly beats the window-limited scheme",
              means["ci"] > means["ci-iw"] * 1.05),
    ]
    return Figure(
        fig_id="Figure 10",
        title="IPC: scal / wb / ci-iw (squash reuse) / ci — 1 L1 port, 512 regs",
        headers=["kernel"] + [label for label, _ in CONFIGS],
        rows=rows,
        checks=checks,
        notes=["ci-iw's margin over wb is smaller here than the paper's "
               "9.1%: with our shallower front end, recovery cost is "
               "refill-dominated, and squash reuse only removes "
               "re-execution (see EXPERIMENTS.md)"],
    )


def main() -> None:  # pragma: no cover
    print(compute().render())


if __name__ == "__main__":  # pragma: no cover
    main()
