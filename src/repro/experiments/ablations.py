"""Ablations of the mechanism's design choices (DESIGN.md §4/§5).

Not figures from the paper — these quantify the individual ingredients
the paper's design (and our implementation refinements) rely on:

* ``abl_refinements`` — each implementation refinement toggled off,
* ``abl_mbs``        — the MBS hard-branch filter on/off,
* ``abl_select_window`` — how far past re-convergence selection scans,
* ``abl_headroom``   — the replicas' low-priority register allocation,
* ``abl_bpred``      — mechanism benefit vs branch-predictor quality,
* ``abl_frontend``   — mechanism benefit vs pipeline (refill) depth,
* ``abl_policies``   — registry-assembled oracle policies vs the paper's
  hardware (how much the finite MBS / static re-convergence leave behind).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..uarch.config import ci, wb
from .common import Check, Figure, Runner, default_runner
from .sweeps import SweepSpec, run_sweep

BASE = ci(ports=1, regs=512)
BASE_WB = wb(ports=1, regs=512)

SWEEP_REFINEMENTS = SweepSpec("abl-refinements", (
    ("full", BASE),
    ("no-recovery-repair", replace(BASE, ci_recovery_repair=False)),
    ("no-exact-range", replace(BASE, ci_exact_range_check=False)),
    ("no-conflict-blacklist", replace(BASE, ci_conflict_blacklist=0)),
    ("no-daec", replace(BASE, ci_daec=False)),
))

SWEEP_MBS = SweepSpec("abl-mbs", (
    ("mbs-on", BASE),
    ("mbs-off", replace(BASE, ci_mbs_filter=False)),
))

SELECT_WINDOWS = (8, 16, 48, 128)

SWEEP_SELECT_WINDOW = SweepSpec("abl-select-window", tuple(
    (f"win{win}", replace(BASE, ci_select_window=win))
    for win in SELECT_WINDOWS))

HEADROOMS = (0, 16, 64, 128)

SWEEP_HEADROOM = SweepSpec("abl-headroom", tuple(
    [(f"hr{hr}", ci(ports=1, regs=192, ci_alloc_headroom=hr))
     for hr in HEADROOMS]
    + [("wb", wb(1, 192))]))

BPRED_KINDS = ("static", "bimodal", "gshare")

SWEEP_BPRED = SweepSpec("abl-bpred", tuple(
    pair for kind in BPRED_KINDS
    for pair in ((f"wb-{kind}", replace(BASE_WB, bpred_kind=kind)),
                 (f"ci-{kind}", replace(BASE, bpred_kind=kind)))))

FRONTEND_DEPTHS = (3, 6, 10)

SWEEP_FRONTEND = SweepSpec("abl-frontend", tuple(
    pair for depth in FRONTEND_DEPTHS
    for pair in ((f"wb-{depth}", replace(BASE_WB, frontend_depth=depth)),
                 (f"ci-{depth}", replace(BASE, frontend_depth=depth)))))

POLICY_NAMES = ("ci", "ci-oracle-mbs", "ci-ideal-reconv", "ci-iw")

SWEEP_POLICIES = SweepSpec("abl-policies", tuple(
    (name, replace(BASE, ci_policy=name)) for name in POLICY_NAMES))


def abl_refinements(runner: Optional[Runner] = None) -> Figure:
    """Turn off each refinement beyond the paper's sketch, one at a time."""
    runner = runner or default_runner()
    result = run_sweep(runner, SWEEP_REFINEMENTS)
    rows = []
    data = {}
    for label in SWEEP_REFINEMENTS.labels():
        stats = result.suite(label)
        ipc = result.hmean_ipc(label)
        fails = sum(s.replica_validation_failures for s in stats.values())
        squash = sum(s.coherence_squashes for s in stats.values())
        data[label] = (ipc, fails, squash)
        rows.append([label, ipc, fails, squash])
    checks = [
        Check("recovery repair reduces validation churn",
              data["no-recovery-repair"][1] > data["full"][1],
              f"{data['full'][1]} vs {data['no-recovery-repair'][1]}"),
        Check("exact range check avoids false store conflicts",
              data["no-exact-range"][2] >= data["full"][2]),
        Check("conflict blacklist avoids repeated coherence squashes",
              data["no-conflict-blacklist"][2] >= data["full"][2],
              f"{data['full'][2]} vs {data['no-conflict-blacklist'][2]}"),
        Check("no single refinement carries the result "
              "(each off-variant keeps most of the IPC)",
              all(v[0] > data["full"][0] * 0.85 for v in data.values())),
    ]
    return Figure("Ablation A", "implementation refinements (ci, 512 regs)",
                  ["variant", "hmean IPC", "validation fails",
                   "coherence squashes"], rows, checks=checks)


def abl_mbs(runner: Optional[Runner] = None) -> Figure:
    """The MBS filter: without it, every misprediction arms the CRP."""
    runner = runner or default_runner()
    result = run_sweep(runner, SWEEP_MBS)
    rows = []
    for label in SWEEP_MBS.labels():
        stats = result.suite(label)
        events = sum(s.ci_events for s in stats.values())
        ipc = len(stats) / sum(1 / s.ipc for s in stats.values())
        rows.append([label, ipc, events,
                     sum(s.replicas_created for s in stats.values())])
    checks = [
        Check("disabling the filter examines at least as many events",
              rows[1][2] >= rows[0][2],
              f"{rows[0][2]} vs {rows[1][2]}"),
        Check("the filter costs little performance on hammock-heavy code "
              "(its job is trimming pointless work on easy branches)",
              abs(rows[0][1] - rows[1][1]) / rows[1][1] < 0.05),
    ]
    return Figure("Ablation B", "MBS hard-branch filter",
                  ["variant", "hmean IPC", "CI events", "replicas created"],
                  rows, checks=checks)


def abl_select_window(runner: Optional[Runner] = None) -> Figure:
    """How far past the re-convergent point selection scans."""
    runner = runner or default_runner()
    result = run_sweep(runner, SWEEP_SELECT_WINDOW)
    rows = []
    ipcs = {}
    for win in SELECT_WINDOWS:
        ipcs[win] = result.hmean_ipc(f"win{win}")
        stats = result.suite(f"win{win}")
        rows.append([win, ipcs[win],
                     sum(s.ci_selected for s in stats.values())])
    checks = [
        Check("a very short selection window loses performance",
              ipcs[8] <= ipcs[48] + 1e-9,
              f"8: {ipcs[8]:.3f} vs 48: {ipcs[48]:.3f}"),
        Check("returns diminish beyond the default window",
              abs(ipcs[128] - ipcs[48]) / ipcs[48] < 0.04),
    ]
    return Figure("Ablation C", "CI selection window (instructions past "
                  "re-convergence)",
                  ["window", "hmean IPC", "events w/ selection"], rows,
                  checks=checks)


def abl_headroom(runner: Optional[Runner] = None) -> Figure:
    """Low-priority register allocation for replicas, at a tight RF.

    The knob's job is throttling: with more headroom the mechanism backs
    off toward the baseline instead of competing with renaming.  (On our
    suite a greedy mechanism actually *wins* raw IPC at tight register
    files — see EXPERIMENTS.md deviation 1 — so headroom trades raw IPC
    for the paper's pressure behaviour.)"""
    runner = runner or default_runner()
    result = run_sweep(runner, SWEEP_HEADROOM)
    rows = []
    ipcs = {}
    replicas = {}
    for hr in HEADROOMS:
        ipcs[hr] = result.hmean_ipc(f"hr{hr}")
        stats = result.suite(f"hr{hr}")
        replicas[hr] = sum(s.replicas_created for s in stats.values())
        rows.append([hr, ipcs[hr], replicas[hr]])
    base192 = result.hmean_ipc("wb")
    rows.append(["(wb)", base192, 0])
    checks = [
        Check("more headroom throttles replica creation monotonically",
              replicas[0] >= replicas[16] >= replicas[64] >= replicas[128],
              " ".join(f"hr{h}={replicas[h]}" for h in (0, 16, 64, 128))),
        Check("with full headroom the mechanism converges to the baseline",
              abs(ipcs[128] - base192) / base192 < 0.05,
              f"hr128={ipcs[128]:.3f} wb={base192:.3f}"),
        Check("with the default headroom the mechanism never falls below "
              "~baseline",
              ipcs[64] >= base192 * 0.97,
              f"hr64={ipcs[64]:.3f} wb={base192:.3f}"),
    ]
    return Figure("Ablation D", "replica allocation headroom (192 regs)",
                  ["headroom", "hmean IPC", "replicas created"], rows,
                  checks=checks)


def abl_bpred(runner: Optional[Runner] = None) -> Figure:
    """Mechanism benefit as a function of branch-predictor quality."""
    runner = runner or default_runner()
    result = run_sweep(runner, SWEEP_BPRED)
    rows = []
    gains = {}
    for kind in BPRED_KINDS:
        base = result.suite(f"wb-{kind}")
        mech = result.suite(f"ci-{kind}")
        ipc_b = len(base) / sum(1 / s.ipc for s in base.values())
        ipc_m = len(mech) / sum(1 / s.ipc for s in mech.values())
        mr = (sum(s.mispredicts for s in base.values())
              / max(1, sum(s.cond_branches for s in base.values())))
        gains[kind] = ipc_m / ipc_b - 1
        rows.append([kind, f"{mr:.1%}", ipc_b, ipc_m, f"{gains[kind]:+.1%}"])
    checks = [
        Check("the mechanism helps under every predictor",
              all(g > 0.05 for g in gains.values()),
              " ".join(f"{k}={g:+.1%}" for k, g in gains.items())),
        Check("the static predictor mispredicts most",
              float(rows[0][1].rstrip('%')) >=
              max(float(rows[1][1].rstrip('%')),
                  float(rows[2][1].rstrip('%'))) - 0.5,
              f"static={rows[0][1]}"),
    ]
    return Figure("Ablation E", "benefit vs branch predictor (512 regs)",
                  ["predictor", "base mispred", "wb IPC", "ci IPC", "gain"],
                  rows, checks=checks)


def abl_frontend(runner: Optional[Runner] = None) -> Figure:
    """Mechanism benefit as the front-end (refill) depth grows."""
    runner = runner or default_runner()
    result = run_sweep(runner, SWEEP_FRONTEND)
    rows = []
    gains = {}
    for depth in FRONTEND_DEPTHS:
        base = result.hmean_ipc(f"wb-{depth}")
        mech = result.hmean_ipc(f"ci-{depth}")
        gains[depth] = mech / base - 1
        rows.append([depth, base, mech, f"{gains[depth]:+.1%}"])
    checks = [
        Check("the mechanism helps at every front-end depth",
              all(g > 0.08 for g in gains.values()),
              " ".join(f"d{d}={g:+.1%}" for d, g in gains.items())),
        Check("relative gains shrink as refill dominates recovery cost "
              "(reuse removes re-execution and resolution wait, not "
              "refill — the same effect that limits ci-iw)",
              gains[10] <= gains[3] + 0.02),
    ]
    return Figure("Ablation F",
                  "benefit vs front-end depth (512 regs): reuse cannot "
                  "hide refill",
                  ["frontend depth", "wb IPC", "ci IPC", "gain"], rows,
                  checks=checks)


def abl_policies(runner: Optional[Runner] = None) -> Figure:
    """Oracle component swaps from the policy registry.

    Each variant replaces exactly one pipeline component of the paper's
    ``ci`` policy with its idealised form — an offline-profiled bias
    filter (``ci-oracle-mbs``) or exact post-dominator re-convergence
    (``ci-ideal-reconv``) — bounding how much a better MBS or a dynamic
    merge-point predictor (Pruett & Patt) could recover.
    """
    runner = runner or default_runner()
    from ..ci import get_policy
    result = run_sweep(runner, SWEEP_POLICIES)
    rows = []
    data = {}
    for name in POLICY_NAMES:
        get_policy(name)  # validates the name against the registry
        stats = result.suite(name)
        ipc = result.hmean_ipc(name)
        events = sum(s.ci_events for s in stats.values())
        reused = sum(s.ci_reused for s in stats.values())
        data[name] = (ipc, events, reused)
        rows.append([name, ipc, events, reused,
                     f"{reused / max(1, events):.1%}"])
    checks = [
        Check("oracle bias filtering changes which events are examined",
              data["ci-oracle-mbs"][1] != data["ci"][1]
              or data["ci-oracle-mbs"][0] != data["ci"][0],
              f"events {data['ci'][1]} vs {data['ci-oracle-mbs'][1]}"),
        Check("ideal re-convergence performs at least on par with the "
              "static heuristic",
              data["ci-ideal-reconv"][0] >= data["ci"][0] * 0.97,
              f"{data['ci'][0]:.3f} vs {data['ci-ideal-reconv'][0]:.3f}"),
        Check("full ci beats window-limited reuse (ci-iw)",
              data["ci"][0] >= data["ci-iw"][0]),
    ]
    return Figure("Ablation G", "policy registry: oracle component swaps "
                  "(512 regs)",
                  ["policy", "hmean IPC", "CI events", "reused",
                   "reuse rate"], rows, checks=checks)


ALL_ABLATIONS = {
    "refinements": abl_refinements,
    "mbs": abl_mbs,
    "select_window": abl_select_window,
    "headroom": abl_headroom,
    "bpred": abl_bpred,
    "frontend": abl_frontend,
    "policies": abl_policies,
}


def main() -> None:  # pragma: no cover
    runner = default_runner()
    for fn in ALL_ABLATIONS.values():
        print(fn(runner).render())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
