"""Figure 8: number of L1 data-cache accesses.

scal / wb / ci, with 1 or 2 ports.  The wide bus cuts accesses by reading
whole lines; the mechanism cuts them further despite issuing extra
speculative loads, because validated loads skip the cache entirely.
"""

from __future__ import annotations

from typing import Optional

from ..uarch.config import ci, scal, wb
from ..workloads import kernel_names
from .common import Check, Figure, Runner, default_runner
from .sweeps import SweepSpec, run_sweep

CONFIGS = [
    ("scal1p", scal(1, 512)),
    ("wb1p", wb(1, 512)),
    ("ci1p", ci(1, 512)),
    ("scal2p", scal(2, 512)),
    ("wb2p", wb(2, 512)),
    ("ci2p", ci(2, 512)),
]

SWEEP = SweepSpec("fig08", tuple(CONFIGS))


def compute(runner: Optional[Runner] = None) -> Figure:
    runner = runner or default_runner()
    per_cfg = run_sweep(runner, SWEEP).stats
    rows = []
    for name in kernel_names():
        rows.append([name] + [per_cfg[label][name].l1d_accesses
                              for label, _ in CONFIGS])
    totals = {label: sum(s.l1d_accesses for s in per_cfg[label].values())
              for label, _ in CONFIGS}
    rows.append(["INT(total)"] + [totals[label] for label, _ in CONFIGS])

    checks = [
        Check("wide bus significantly reduces L1 accesses vs scalar ports",
              totals["wb1p"] < 0.85 * totals["scal1p"],
              f"scal1p={totals['scal1p']} wb1p={totals['wb1p']}"),
        Check("ci stays close to wb and far below scal despite its "
              "speculative loads (paper: slightly below wb)",
              totals["ci1p"] < totals["wb1p"] * 1.15
              and totals["ci1p"] < 0.75 * totals["scal1p"],
              f"wb1p={totals['wb1p']} ci1p={totals['ci1p']}"),
        Check("same relationship with two ports",
              totals["ci2p"] < totals["wb2p"] * 1.30
              and totals["ci2p"] < 0.85 * totals["scal2p"],
              f"wb2p={totals['wb2p']} ci2p={totals['ci2p']}"),
    ]
    return Figure(
        fig_id="Figure 8",
        title="L1 data-cache accesses per kernel (512 regs)",
        headers=["kernel"] + [label for label, _ in CONFIGS],
        rows=rows,
        checks=checks,
        notes=["the paper's ci lands slightly below wb; ours lands "
               "slightly above because replica re-fetches after validation "
               "failures outweigh the skipped validated loads on our "
               "shorter runs (see EXPERIMENTS.md)"],
    )


def main() -> None:  # pragma: no cover
    print(compute().render())


if __name__ == "__main__":  # pragma: no cover
    main()
