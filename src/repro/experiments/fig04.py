"""Figure 4: IPC vs number of propagated stridedPCs per rename entry.

The paper varies the stridedPC field count (1, 2, 4) and finds that going
from 2 to 4 hardly changes performance, while 1 loses a little.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..analysis import harmonic_mean
from ..uarch.config import ci
from ..workloads import kernel_names
from .common import Check, Figure, Runner, default_runner
from .sweeps import SweepSpec, run_sweep

SLOT_COUNTS = (1, 2, 4)
BASE = ci(ports=2, regs=512)

SWEEP = SweepSpec("fig04", tuple(
    (f"{n}PC", replace(BASE, strided_pcs_per_entry=n))
    for n in SLOT_COUNTS))


def compute(runner: Optional[Runner] = None) -> Figure:
    runner = runner or default_runner()
    result = run_sweep(runner, SWEEP)
    per_kernel = {
        name: {n: result.ipc(f"{n}PC", name) for n in SLOT_COUNTS}
        for name in kernel_names()
    }
    rows = [[name] + [per_kernel[name][n] for n in SLOT_COUNTS]
            for name in kernel_names()]
    means = {n: harmonic_mean(per_kernel[k][n] for k in kernel_names())
             for n in SLOT_COUNTS}
    rows.append(["INT(hmean)"] + [means[n] for n in SLOT_COUNTS])

    checks = [
        Check("2 -> 4 PCs hardly changes performance (paper: flat)",
              abs(means[4] - means[2]) / means[2] < 0.03,
              f"2PC={means[2]:.3f} 4PC={means[4]:.3f}"),
        Check("1 PC loses little but never wins",
              means[1] <= means[2] * 1.01,
              f"1PC={means[1]:.3f} 2PC={means[2]:.3f}"),
    ]
    return Figure(
        fig_id="Figure 4",
        title="IPC vs propagated stridedPCs per rename entry (ci, 2 wide ports, 512 regs)",
        headers=["kernel", "1PC", "2PC", "4PC"],
        rows=rows,
        checks=checks,
        notes=["paper: SpecInt2000 needs on average 1.7 PCs per entry; "
               "2 slots suffice"],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(compute().render())


if __name__ == "__main__":  # pragma: no cover
    main()
