"""Experiment harness: one module per reproduced table/figure.

``generate_report()`` runs every experiment (sharing one memoised runner)
and returns the full text report used to build EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from . import ablations, fig04, fig05, fig08, fig09, fig10, fig11, fig12, fig13, fig14, intext
from .common import (
    Check,
    EXPERIMENT_SCALE,
    Figure,
    REG_POINTS,
    Runner,
    default_runner,
    reg_label,
)
from .sweeps import SweepResult, SweepSpec, run_sweep

#: experiment id -> compute function, in the paper's presentation order
ALL_EXPERIMENTS: Dict[str, Callable[..., Figure]] = {
    "fig04": fig04.compute,
    "fig05": fig05.compute,
    "fig08": fig08.compute,
    "fig09": fig09.compute,
    "fig10": fig10.compute,
    "fig11": fig11.compute,
    "fig12": fig12.compute,
    "fig13": fig13.compute,
    "fig14": fig14.compute,
    "intext": intext.compute,
}

#: design-choice ablations (not paper figures; see ablations.py)
ALL_ABLATIONS = ablations.ALL_ABLATIONS


def run_all(runner: Optional[Runner] = None) -> Dict[str, Figure]:
    runner = runner or default_runner()
    return {key: fn(runner) for key, fn in ALL_EXPERIMENTS.items()}


def generate_report(runner: Optional[Runner] = None) -> str:
    figures = run_all(runner)
    parts: List[str] = []
    for fig in figures.values():
        parts.append(fig.render())
        parts.append("")
    total = sum(len(f.checks) for f in figures.values())
    passed = sum(sum(c.passed for c in f.checks) for f in figures.values())
    parts.append(f"shape checks: {passed}/{total} passed")
    return "\n".join(parts)


__all__ = [
    "ALL_ABLATIONS",
    "ALL_EXPERIMENTS",
    "Check",
    "EXPERIMENT_SCALE",
    "Figure",
    "REG_POINTS",
    "Runner",
    "SweepResult",
    "SweepSpec",
    "default_runner",
    "generate_report",
    "reg_label",
    "run_all",
    "run_sweep",
]
