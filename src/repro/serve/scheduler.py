"""Admission control, dispatch and executor supervision for the service.

Four pieces:

* :class:`AdmissionController` — bounded queue depth with backpressure.
  Like *variable instruction fetch rate* throttling fetch under branch
  uncertainty, the server throttles admission under load instead of
  melting down: when the queue is full, new sweep jobs are rejected with
  a 429-style ``retry_after``, and interactive jobs may *shed* the
  newest queued sweep job to take its place (load-shedding low-priority
  work before interactive work).
* :class:`SimExecutor` — the synchronous execution engine.  It owns the
  persistent per-(scale, seed) :class:`~repro.runtime.ParallelRunner`
  instances (one shared disk cache, warm program/result memos) and
  computes coalescing keys.  Watchdog, retry and failure classification
  are entirely delegated to ``runtime/parallel.py``; runners run with
  ``keep_going`` so a failed job becomes an error envelope, never a
  dead dispatcher.
* :class:`PoolSupervisor` — executor-death detection.  A batch whose
  every job died in a *transient* phase (stall timeout, broken pool —
  :data:`repro.runtime.TRANSIENT_PHASES`) means the executor itself is
  sick, not the jobs; the supervisor restarts the executor's runners
  with capped exponential backoff and, after repeated failed restarts,
  trips a circuit breaker: new sweep submissions are refused with a
  ``Retry-After`` hint while interactive jobs keep draining, and the
  breaker half-opens after a cooldown so one healthy batch closes it.
* :class:`Dispatcher` — the async loop: pop a fair batch, journal its
  ``started`` records, execute it in a worker thread
  (``asyncio.to_thread``) under the supervisor's retry policy, fan
  results out to every ticket (journaling each terminal transition),
  repeat.  One batch executes at a time; requests arriving meanwhile
  coalesce onto queued/running entries, which is exactly the reuse
  window the design wants.
"""

from __future__ import annotations

import asyncio
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..runtime import (TRANSIENT_PHASES, FailedResult, ParallelRunner,
                       ResultCache)
from . import protocol
from .journal import COMPLETED, FAILED, JobJournal
from .metrics import ServerMetrics
from .protocol import ErrorInfo, JobSpec
from .queue import Entry, ServeQueue, Ticket


@dataclass(frozen=True)
class Admission:
    """Outcome of one admission decision."""

    accepted: bool
    error: Optional[ErrorInfo] = None
    #: sweep entry evicted to make room (already detached from the queue)
    shed: Optional[Entry] = None


class AdmissionController:
    """Bounded-depth admission with priority-aware load shedding."""

    def __init__(self, max_depth: int = 256):
        self.max_depth = max(1, max_depth)

    def retry_after(self, queue: ServeQueue,
                    metrics: ServerMetrics) -> float:
        """Backpressure hint: roughly one batch's worth of latency."""
        est = metrics.recent_latency() * max(1, queue.depth)
        return min(30.0, max(0.5, est))

    def decide(self, queue: ServeQueue, spec: JobSpec,
               metrics: ServerMetrics) -> Admission:
        if queue.depth < self.max_depth:
            return Admission(accepted=True)
        retry = self.retry_after(queue, metrics)
        if spec.priority == "interactive":
            victim = queue.shed_newest_sweep()
            if victim is not None:
                return Admission(accepted=True, shed=victim)
        return Admission(accepted=False, error=ErrorInfo(
            kind="rejected",
            message=f"queue full ({self.max_depth} entries); "
                    f"retry in {retry:.1f}s",
            retry_after=retry))


class PoolSupervisor:
    """Executor-death detection, supervised restart, circuit breaker.

    State machine (``state``):

    * ``ok`` — healthy; every non-transient batch outcome resets here.
    * ``pool-restarting`` — the last batch died transiently; the
      executor's runners were rebuilt and the batch is being retried
      after a capped exponential backoff.
    * ``circuit-open`` — ``max_restarts`` consecutive restarts failed.
      New *sweep* submissions are refused (``allows`` / ``retry_after``)
      while interactive jobs drain; after ``cooldown`` seconds the
      breaker half-opens — the next batch probes the pool and a healthy
      outcome closes it.

    All methods run on the event-loop thread (the dispatcher awaits the
    executor off-loop but consults the supervisor between attempts).
    """

    OK = "ok"
    RESTARTING = "pool-restarting"
    OPEN = "circuit-open"

    def __init__(self, max_restarts: int = 3, backoff_base: float = 0.5,
                 backoff_cap: float = 8.0, cooldown: float = 30.0,
                 clock=time.monotonic):
        self.max_restarts = max(1, max_restarts)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.cooldown = cooldown
        self._clock = clock
        self.state = self.OK
        #: consecutive transient batch failures since the last success
        self.consecutive = 0
        #: lifetime supervised restarts / breaker trips
        self.restarts = 0
        self.trips = 0
        self._opened_at = 0.0

    # -- classification --------------------------------------------------
    @staticmethod
    def batch_transient(entries: List[Entry],
                        outcome: Dict[str, Tuple[object, str]]) -> bool:
        """True when *every* job in the batch died in a transient phase.

        One bad job among good ones is a job problem (reported to its
        client); a whole batch of timeouts/pool breakage is an executor
        problem — the supervisor's signal.
        """
        if not entries:
            return False
        for entry in entries:
            result, _ = outcome.get(entry.key, (None, "failed"))
            if not (isinstance(result, FailedResult)
                    and result.phase in TRANSIENT_PHASES):
                return False
        return True

    # -- transitions -----------------------------------------------------
    def note_ok(self) -> None:
        """A batch produced a non-transient outcome: close the breaker."""
        self.state = self.OK
        self.consecutive = 0

    def note_transient(self) -> bool:
        """Record one dead batch; True when a supervised retry may run."""
        self.consecutive += 1
        if self.consecutive > self.max_restarts:
            self.state = self.OPEN
            self._opened_at = self._clock()
            self.trips += 1
            return False
        self.state = self.RESTARTING
        self.restarts += 1
        return True

    def backoff(self) -> float:
        """Capped exponential delay before the next supervised retry."""
        return min(self.backoff_cap,
                   self.backoff_base * (2 ** max(0, self.consecutive - 1)))

    # -- admission gate --------------------------------------------------
    @property
    def degraded(self) -> bool:
        return self.state != self.OK

    def allows(self, priority: str) -> bool:
        """May a submission of this priority enter while degraded?

        Interactive jobs always may (they drain, and they probe a
        half-open breaker); sweeps are refused while the breaker is
        open and the cooldown has not elapsed.
        """
        if self.state != self.OPEN or priority == "interactive":
            return True
        return self._clock() - self._opened_at >= self.cooldown

    def retry_after(self) -> float:
        """Backpressure hint for a refused sweep: breaker time left."""
        remaining = self.cooldown - (self._clock() - self._opened_at)
        return min(self.cooldown, max(0.5, remaining))

    def snapshot(self) -> Dict[str, object]:
        return {"state": self.state, "consecutive": self.consecutive,
                "restarts": self.restarts, "trips": self.trips}


class SimExecutor:
    """Synchronous execution engine behind the dispatcher.

    Long-lived state: one :class:`ResultCache` shared by every runner
    and one :class:`ParallelRunner` per (scale, seed) workload point
    (the runner's result memo is per scale/seed, so reusing the
    instance is what makes the daemon *warm*).  Coalescing keys come
    straight from ``spec.cache_key()`` — the canonical run identity of
    :mod:`repro.runtime.keys`, whose own memo + lock keep the submit
    threads' concurrent program builds from duplicating work.
    """

    def __init__(self, cache: Optional[ResultCache] = None,
                 jobs: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None):
        self.cache = ResultCache() if cache is None else cache
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self._runners: Dict[Tuple[float, int], ParallelRunner] = {}
        #: tallies carried over from runners discarded by restart_pool
        self._retired = {"sims_run": 0, "disk_hits": 0, "memo_hits": 0,
                         "pool_restarts": 0}

    # -- runners ---------------------------------------------------------
    def runner_for(self, scale: float, seed: int) -> ParallelRunner:
        point = (scale, seed)
        runner = self._runners.get(point)
        if runner is None:
            runner = ParallelRunner(
                scale=scale, seed=seed, jobs=self.jobs, cache=self.cache,
                keep_going=True, timeout=self.timeout,
                retries=self.retries)
            self._runners[point] = runner
        return runner

    # -- coalescing keys -------------------------------------------------
    def key_for(self, spec: JobSpec) -> str:
        """The content-addressed identity of one request.

        Exactly ``spec.cache_key()`` — the canonical run key shared
        with the local pool's memo/disk lookups — so two requests
        coalesce iff a warm cache would have served the second from the
        first's result.  Raises :class:`protocol.ProtocolError` for a
        kernel that cannot be built.
        """
        try:
            return spec.cache_key()
        except Exception as exc:
            raise protocol.ProtocolError(
                f"cannot build kernel {spec.kernel!r}: {exc}") from None

    # -- execution -------------------------------------------------------
    def execute(self, entries: List[Entry]) -> Dict[str, Tuple[object, str]]:
        """Run a batch; returns ``{entry key: (stats-or-FailedResult,
        source)}`` where source is memo/disk/sim/failed.

        Runs on the dispatch worker thread.  Entries are grouped per
        (scale, seed) runner; within a group the runner handles pool
        fan-out, memo/disk reuse and keep-going failure capture.
        """
        outcome: Dict[str, Tuple[object, str]] = {}
        groups: Dict[Tuple[float, int], List[Entry]] = {}
        for entry in entries:
            spec = entry.spec
            groups.setdefault((spec.scale, spec.seed), []).append(entry)
        for (scale, seed), group in groups.items():
            runner = self.runner_for(scale, seed)
            stats = runner.run_many([e.spec for e in group])
            for entry, st in zip(group, stats):
                outcome[entry.key] = (st,
                                      runner.sources.get(entry.key, "sim"))
            # Error envelopes carry each failure; don't let the daemon's
            # keep-going ledger grow without bound.
            runner.failures.clear()
        return outcome

    def restart_pool(self) -> None:
        """Discard every warm runner (supervised-restart path).

        Runner state is rebuilt lazily on the next batch: fresh result
        memos, fresh pool.  The shared disk cache persists — completed
        results survive the restart — and the discarded runners'
        accounting tallies are retired into :meth:`totals` so the
        metrics never go backwards.
        """
        for runner in self._runners.values():
            self._retired["sims_run"] += runner.sims_run
            self._retired["disk_hits"] += runner.disk_hits
            self._retired["memo_hits"] += runner.memo_hits
            self._retired["pool_restarts"] += runner.pool_restarts
        self._runners.clear()

    # -- accounting ------------------------------------------------------
    def totals(self) -> Dict[str, int]:
        t = dict(self._retired)
        for runner in self._runners.values():
            t["sims_run"] += runner.sims_run
            t["disk_hits"] += runner.disk_hits
            t["memo_hits"] += runner.memo_hits
            t["pool_restarts"] += runner.pool_restarts
        return t

    def flush_cache(self) -> None:
        self.cache.flush_counters()


class Dispatcher:
    """The async dispatch loop (one in-flight batch at a time)."""

    def __init__(self, queue: ServeQueue, executor: SimExecutor,
                 metrics: ServerMetrics, batch_max: int = 32,
                 supervisor: Optional[PoolSupervisor] = None,
                 journal: Optional[JobJournal] = None):
        self.queue = queue
        self.executor = executor
        self.metrics = metrics
        self.batch_max = max(1, batch_max)
        self.supervisor = PoolSupervisor() if supervisor is None \
            else supervisor
        self.journal = journal
        self._wake = asyncio.Event()
        self._stopping = False
        self._task: Optional[asyncio.Task] = None

    def start(self) -> None:
        self._task = asyncio.get_event_loop().create_task(self._run())

    def kick(self) -> None:
        self._wake.set()

    async def stop(self) -> None:
        """Finish the in-flight batch (and anything already queued
        before the drain emptied it), then stop."""
        self._stopping = True
        self.kick()
        if self._task is not None:
            await self._task

    async def _run(self) -> None:
        while True:
            entries = self.queue.pop_batch(self.batch_max)
            if not entries:
                if self._stopping:
                    break
                self._wake.clear()
                await self._wake.wait()
                continue
            now = time.monotonic()
            for entry in entries:
                for t in entry.tickets:
                    t.started_at = t.started_at or now
            if self.journal is not None:
                self.journal.note_started([e.key for e in entries])
            outcome = await self._execute_supervised(entries)
            self._finish(entries, outcome)
            self.executor.flush_cache()

    async def _execute_supervised(
            self, entries: List[Entry]) -> Dict[str, Tuple[object, str]]:
        """Execute one batch under the supervisor's restart policy.

        A batch whose every job died transiently (or whose execute call
        itself raised) is retried on freshly built runners with capped
        exponential backoff; once the supervisor trips the breaker (or
        a drain begins) the last failed outcome stands and its error
        envelopes go back to the clients.
        """
        while True:
            try:
                outcome = await asyncio.to_thread(
                    self.executor.execute, entries)
            except Exception:
                # Executor death of the second kind: the engine itself
                # raised (runners run keep_going, so per-job failures
                # never land here).  Classify as a transient pool
                # failure and let the supervisor decide.
                err = traceback.format_exc()
                outcome = {e.key: (FailedResult(
                    e.spec.kernel, e.spec.scale, e.spec.seed, error=err,
                    phase="pool"), "failed") for e in entries}
            if not self.supervisor.batch_transient(entries, outcome):
                self.supervisor.note_ok()
                return outcome
            if not self.supervisor.note_transient():
                self.metrics.inc("circuit_trips")
                return outcome
            self.metrics.inc("pool_restarts")
            self.executor.restart_pool()
            if self._stopping:
                return outcome
            await asyncio.sleep(self.supervisor.backoff())

    def _finish(self, entries: List[Entry],
                outcome: Dict[str, Tuple[object, str]]) -> None:
        now = time.monotonic()
        terminal: List[Tuple[str, str, Dict[str, object]]] = []
        for entry in entries:
            result, source = outcome.get(
                entry.key, (FailedResult(entry.spec.kernel,
                                         entry.spec.scale, entry.spec.seed,
                                         error="no result produced",
                                         phase="dispatch"), "failed"))
            failed = isinstance(result, FailedResult)
            if failed:
                terminal.append((FAILED, entry.key,
                                 {"message": result.describe()}))
            else:
                terminal.append((COMPLETED, entry.key,
                                 {"source": source}))
            for i, ticket in enumerate(entry.tickets):
                ticket.finished_at = now
                ticket.source = source if i == 0 else "coalesced"
                if failed:
                    ticket.state = protocol.FAILED
                    ticket.error = ErrorInfo.from_failed_result(result)
                    self.metrics.inc("jobs_failed")
                else:
                    ticket.state = protocol.DONE
                    ticket.stats = result.to_dict()
                    self.metrics.inc("jobs_completed")
                self.metrics.observe_latency(now - ticket.submitted_at)
            self.queue.finish(entry)
        if self.journal is not None:
            # One durability point for the whole batch's terminal
            # transitions (completed-with-source / failed).
            self.journal.append_many(terminal)
