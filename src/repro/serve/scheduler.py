"""Admission control and dispatch for the simulation service.

Three pieces:

* :class:`AdmissionController` — bounded queue depth with backpressure.
  Like *variable instruction fetch rate* throttling fetch under branch
  uncertainty, the server throttles admission under load instead of
  melting down: when the queue is full, new sweep jobs are rejected with
  a 429-style ``retry_after``, and interactive jobs may *shed* the
  newest queued sweep job to take its place (load-shedding low-priority
  work before interactive work).
* :class:`SimExecutor` — the synchronous execution engine.  It owns the
  persistent per-(scale, seed) :class:`~repro.runtime.ParallelRunner`
  instances (one shared disk cache, warm program/result memos) and
  computes coalescing keys.  Watchdog, retry and failure classification
  are entirely delegated to ``runtime/parallel.py``; runners run with
  ``keep_going`` so a failed job becomes an error envelope, never a
  dead dispatcher.
* :class:`Dispatcher` — the async loop: pop a fair batch, execute it in
  a worker thread (``asyncio.to_thread``), fan results out to every
  ticket, repeat.  One batch executes at a time; requests arriving
  meanwhile coalesce onto queued/running entries, which is exactly the
  reuse window the design wants.
"""

from __future__ import annotations

import asyncio
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..runtime import FailedResult, ParallelRunner, ResultCache
from . import protocol
from .metrics import ServerMetrics
from .protocol import ErrorInfo, JobSpec
from .queue import Entry, ServeQueue, Ticket


@dataclass(frozen=True)
class Admission:
    """Outcome of one admission decision."""

    accepted: bool
    error: Optional[ErrorInfo] = None
    #: sweep entry evicted to make room (already detached from the queue)
    shed: Optional[Entry] = None


class AdmissionController:
    """Bounded-depth admission with priority-aware load shedding."""

    def __init__(self, max_depth: int = 256):
        self.max_depth = max(1, max_depth)

    def retry_after(self, queue: ServeQueue,
                    metrics: ServerMetrics) -> float:
        """Backpressure hint: roughly one batch's worth of latency."""
        est = metrics.recent_latency() * max(1, queue.depth)
        return min(30.0, max(0.5, est))

    def decide(self, queue: ServeQueue, spec: JobSpec,
               metrics: ServerMetrics) -> Admission:
        if queue.depth < self.max_depth:
            return Admission(accepted=True)
        retry = self.retry_after(queue, metrics)
        if spec.priority == "interactive":
            victim = queue.shed_newest_sweep()
            if victim is not None:
                return Admission(accepted=True, shed=victim)
        return Admission(accepted=False, error=ErrorInfo(
            kind="rejected",
            message=f"queue full ({self.max_depth} entries); "
                    f"retry in {retry:.1f}s",
            retry_after=retry))


class SimExecutor:
    """Synchronous execution engine behind the dispatcher.

    Long-lived state: one :class:`ResultCache` shared by every runner
    and one :class:`ParallelRunner` per (scale, seed) workload point
    (the runner's result memo is per scale/seed, so reusing the
    instance is what makes the daemon *warm*).  Coalescing keys come
    straight from ``spec.cache_key()`` — the canonical run identity of
    :mod:`repro.runtime.keys`, whose own memo + lock keep the submit
    threads' concurrent program builds from duplicating work.
    """

    def __init__(self, cache: Optional[ResultCache] = None,
                 jobs: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None):
        self.cache = ResultCache() if cache is None else cache
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self._runners: Dict[Tuple[float, int], ParallelRunner] = {}

    # -- runners ---------------------------------------------------------
    def runner_for(self, scale: float, seed: int) -> ParallelRunner:
        point = (scale, seed)
        runner = self._runners.get(point)
        if runner is None:
            runner = ParallelRunner(
                scale=scale, seed=seed, jobs=self.jobs, cache=self.cache,
                keep_going=True, timeout=self.timeout,
                retries=self.retries)
            self._runners[point] = runner
        return runner

    # -- coalescing keys -------------------------------------------------
    def key_for(self, spec: JobSpec) -> str:
        """The content-addressed identity of one request.

        Exactly ``spec.cache_key()`` — the canonical run key shared
        with the local pool's memo/disk lookups — so two requests
        coalesce iff a warm cache would have served the second from the
        first's result.  Raises :class:`protocol.ProtocolError` for a
        kernel that cannot be built.
        """
        try:
            return spec.cache_key()
        except Exception as exc:
            raise protocol.ProtocolError(
                f"cannot build kernel {spec.kernel!r}: {exc}") from None

    # -- execution -------------------------------------------------------
    def execute(self, entries: List[Entry]) -> Dict[str, Tuple[object, str]]:
        """Run a batch; returns ``{entry key: (stats-or-FailedResult,
        source)}`` where source is memo/disk/sim/failed.

        Runs on the dispatch worker thread.  Entries are grouped per
        (scale, seed) runner; within a group the runner handles pool
        fan-out, memo/disk reuse and keep-going failure capture.
        """
        outcome: Dict[str, Tuple[object, str]] = {}
        groups: Dict[Tuple[float, int], List[Entry]] = {}
        for entry in entries:
            spec = entry.spec
            groups.setdefault((spec.scale, spec.seed), []).append(entry)
        for (scale, seed), group in groups.items():
            runner = self.runner_for(scale, seed)
            stats = runner.run_many([e.spec for e in group])
            for entry, st in zip(group, stats):
                outcome[entry.key] = (st,
                                      runner.sources.get(entry.key, "sim"))
            # Error envelopes carry each failure; don't let the daemon's
            # keep-going ledger grow without bound.
            runner.failures.clear()
        return outcome

    # -- accounting ------------------------------------------------------
    def totals(self) -> Dict[str, int]:
        t = {"sims_run": 0, "disk_hits": 0, "memo_hits": 0}
        for runner in self._runners.values():
            t["sims_run"] += runner.sims_run
            t["disk_hits"] += runner.disk_hits
            t["memo_hits"] += runner.memo_hits
        return t

    def flush_cache(self) -> None:
        self.cache.flush_counters()


class Dispatcher:
    """The async dispatch loop (one in-flight batch at a time)."""

    def __init__(self, queue: ServeQueue, executor: SimExecutor,
                 metrics: ServerMetrics, batch_max: int = 32):
        self.queue = queue
        self.executor = executor
        self.metrics = metrics
        self.batch_max = max(1, batch_max)
        self._wake = asyncio.Event()
        self._stopping = False
        self._task: Optional[asyncio.Task] = None

    def start(self) -> None:
        self._task = asyncio.get_event_loop().create_task(self._run())

    def kick(self) -> None:
        self._wake.set()

    async def stop(self) -> None:
        """Finish the in-flight batch (and anything already queued
        before the drain emptied it), then stop."""
        self._stopping = True
        self.kick()
        if self._task is not None:
            await self._task

    async def _run(self) -> None:
        while True:
            entries = self.queue.pop_batch(self.batch_max)
            if not entries:
                if self._stopping:
                    break
                self._wake.clear()
                await self._wake.wait()
                continue
            now = time.monotonic()
            for entry in entries:
                for t in entry.tickets:
                    t.started_at = t.started_at or now
            try:
                outcome = await asyncio.to_thread(
                    self.executor.execute, entries)
            except Exception:
                # Belt and braces: runners run keep_going, so anything
                # landing here is a dispatcher bug — fail the batch with
                # the traceback instead of killing the loop.
                err = traceback.format_exc()
                outcome = {e.key: (FailedResult(
                    e.spec.kernel, e.spec.scale, e.spec.seed, error=err,
                    phase="dispatch"), "failed") for e in entries}
            self._finish(entries, outcome)
            self.executor.flush_cache()

    def _finish(self, entries: List[Entry],
                outcome: Dict[str, Tuple[object, str]]) -> None:
        now = time.monotonic()
        for entry in entries:
            result, source = outcome.get(
                entry.key, (FailedResult(entry.spec.kernel,
                                         entry.spec.scale, entry.spec.seed,
                                         error="no result produced",
                                         phase="dispatch"), "failed"))
            failed = isinstance(result, FailedResult)
            for i, ticket in enumerate(entry.tickets):
                ticket.finished_at = now
                ticket.source = source if i == 0 else "coalesced"
                if failed:
                    ticket.state = protocol.FAILED
                    ticket.error = ErrorInfo.from_failed_result(result)
                    self.metrics.inc("jobs_failed")
                else:
                    ticket.state = protocol.DONE
                    ticket.stats = result.to_dict()
                    self.metrics.inc("jobs_completed")
                self.metrics.observe_latency(now - ticket.submitted_at)
            self.queue.finish(entry)
