"""Asyncio front end of the simulation service.

``repro serve`` runs one :class:`ServeServer`: an ``asyncio.start_server``
listener speaking the minimal HTTP/JSON dialect of ``protocol.py``, one
:class:`~.queue.ServeQueue`, one :class:`~.scheduler.Dispatcher` and the
persistent :class:`~.scheduler.SimExecutor` (warm runners + disk cache).

Connections are one-request (``Connection: close``) — clients poll, the
daemon stays simple, and there is no connection state to drain.

Graceful drain (SIGTERM/SIGINT, or :meth:`ServeServer.request_shutdown`):

1. stop admitting — submits answer 503 ``draining``;
2. cancel everything still queued (their tickets report ``cancelled``
   with a ``draining`` message);
3. let the in-flight batch finish — the pool is never abandoned
   mid-simulation, so no orphaned workers;
4. flush the cache hit/miss/coalesce tallies to disk;
5. hold the listener open for a short grace period so clients polling
   ``status``/``result`` can collect terminal states, then close.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import time
import traceback
from collections import deque
from typing import Deque, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..runtime import ResultCache
from . import protocol
from .journal import JobJournal, JournalReplay
from .metrics import ServerMetrics
from .protocol import ErrorInfo, JobSpec, ProtocolError
from .queue import ServeQueue, Ticket
from .scheduler import (AdmissionController, Dispatcher, PoolSupervisor,
                        SimExecutor)

#: largest accepted request body (a 12-kernel suite submit is ~20 KiB)
MAX_BODY = 16 * 1024 * 1024

#: finished tickets kept addressable for late pollers
FINISHED_CAP = 4096

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}


class ServeServer:
    """The daemon: HTTP front end + queue + dispatcher + executor."""

    def __init__(self, host: str = "127.0.0.1",
                 port: int = protocol.DEFAULT_PORT,
                 jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 queue_depth: int = 256,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 batch_max: int = 32,
                 grace: float = 0.25,
                 journal: Optional[object] = None,
                 supervisor: Optional[PoolSupervisor] = None):
        self.host = host
        self.port = port
        self.queue = ServeQueue()
        self.executor = SimExecutor(cache=cache, jobs=jobs,
                                    timeout=timeout, retries=retries)
        self.metrics = ServerMetrics()
        self.admission = AdmissionController(queue_depth)
        #: the write-ahead log; None disables crash safety (tests,
        #: throwaway servers).  Accepts a path or a JobJournal.
        if isinstance(journal, str):
            journal = JobJournal(journal)
        self.journal: Optional[JobJournal] = journal
        self.supervisor = PoolSupervisor() if supervisor is None \
            else supervisor
        self.dispatcher = Dispatcher(self.queue, self.executor,
                                     self.metrics, batch_max=batch_max,
                                     supervisor=self.supervisor,
                                     journal=self.journal)
        self.grace = grace
        self.draining = False
        self.replaying = False
        #: startup replay outcome (None when journaling is disabled)
        self.journal_replay: Optional[JournalReplay] = None
        self._tickets: Dict[str, Ticket] = {}
        self._finished_order: Deque[str] = deque()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped = asyncio.Event()
        self._shutdown_task: Optional[asyncio.Task] = None
        self.address: Tuple[str, int] = (host, port)

    # -- state -----------------------------------------------------------
    @property
    def state(self) -> str:
        """The structured ``/healthz`` state (see metrics.SERVER_STATES)."""
        if self.draining:
            return "draining"
        if self.replaying:
            return "replaying-journal"
        if self.supervisor.degraded:
            return f"degraded:{self.supervisor.state}"
        return "ok"

    def _journal_info(self) -> Optional[Dict[str, int]]:
        if self.journal is None:
            return None
        replay = self.journal_replay
        return {
            # epochs counts this incarnation's server-start record too
            "epochs": (replay.epochs if replay is not None else 0) + 1,
            "records": replay.records if replay is not None else 0,
            "replayed": self.metrics.counters.get("jobs_replayed", 0),
            "quarantined": replay.corrupt if replay is not None else 0,
        }

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        if self.journal is not None:
            self.replaying = True
            try:
                await asyncio.to_thread(self._recover)
            finally:
                self.replaying = False
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        self.port = self.address[1]
        self.dispatcher.start()

    def _recover(self) -> None:
        """Replay the journal: re-enqueue incomplete jobs, heal the
        file, stamp this incarnation's epoch record.

        Completed jobs need no action — their results live in the
        result cache, so a resubmission is served from disk (the replay
        history still guards against re-simulating them, via the
        duplicate-sim audit).  Incomplete jobs are re-enqueued under
        their journaled key; a resubmitting client coalesces onto the
        replayed entry instead of duplicating the work.
        """
        assert self.journal is not None
        replay = self.journal.replay(quarantine=True)
        self.journal_replay = replay
        now = time.monotonic()
        for key, record in replay.incomplete.items():
            spec_dict = record.get("spec")
            try:
                spec = JobSpec.from_dict(spec_dict)
            except Exception as exc:
                # Registry drift (kernel/policy gone): close the job in
                # the journal instead of resurrecting a zombie.
                self.journal.note_cancelled(
                    key, reason=f"unreplayable spec: {exc}")
                continue
            ticket = Ticket(spec, key, now, replayed=True)
            if self.queue.coalesce(ticket) is None:
                self.queue.push(ticket)
            self._register(ticket)
            self.metrics.inc("jobs_replayed")
        self.journal.note_server_start(
            replayed=self.metrics.counters.get("jobs_replayed", 0),
            quarantined=replay.corrupt)
        if replay.epochs or replay.records:
            print(f"repro serve: journal replay — {replay.describe()}",
                  file=sys.stderr, flush=True)

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    def request_shutdown(self) -> None:
        """Begin the graceful drain (idempotent; loop thread only)."""
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.get_event_loop().create_task(
                self._shutdown())

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    async def _shutdown(self) -> None:
        self.draining = True
        drained = self.queue.drain()
        for entry in drained:
            for ticket in entry.tickets:
                ticket.state = protocol.CANCELLED
                ticket.error = ErrorInfo(
                    kind="cancelled",
                    message="server draining before the job was "
                            "dispatched")
                self._retire(ticket)
                self.metrics.inc("jobs_cancelled")
        if self.journal is not None and drained:
            self.journal.append_many(
                [("cancelled", e.key, {"reason": "draining"})
                 for e in drained])
        await self.dispatcher.stop()     # in-flight batch finishes
        self.executor.flush_cache()
        if self.journal is not None:
            self.journal.close()
        await asyncio.sleep(self.grace)  # late pollers collect results
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._stopped.set()

    def abort(self) -> None:
        """Crash simulation for tests: drop everything on the floor.

        No drain, no cancel records, no cache flush — the closest an
        in-process server gets to kill -9.  The dispatcher task is
        cancelled (an in-flight ``to_thread`` batch keeps running in
        the background but its outcome is discarded and never
        journaled), the listener closes, and the journal handle is
        released so a successor can replay the same file.
        """
        if self.dispatcher._task is not None:
            self.dispatcher._task.cancel()
        if self.journal is not None:
            self.journal.close()
        if self._server is not None:
            self._server.close()
        self._stopped.set()

    # -- ticket registry -------------------------------------------------
    def _register(self, ticket: Ticket) -> None:
        self._tickets[ticket.id] = ticket

    def _retire(self, ticket: Ticket) -> None:
        """Cap the set of terminal tickets kept for late pollers."""
        self._finished_order.append(ticket.id)
        while len(self._finished_order) > FINISHED_CAP:
            old = self._finished_order.popleft()
            self._tickets.pop(old, None)

    # -- HTTP plumbing ---------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            request = await asyncio.wait_for(self._read_request(reader),
                                             timeout=30.0)
            if request is None:
                return
            method, path, query, body = request
            self.metrics.inc("requests")
            try:
                status, payload, headers = await self._route(
                    method, path, query, body)
            except ProtocolError as exc:
                status, payload, headers = 400, protocol.error_envelope(
                    ErrorInfo(kind="bad-request", message=str(exc))), {}
            except Exception:
                print(f"repro serve: internal error handling "
                      f"{method} {path}\n{traceback.format_exc()}",
                      file=sys.stderr)
                status, payload, headers = 500, protocol.error_envelope(
                    ErrorInfo(kind="internal",
                              message="internal server error")), {}
            self._write_response(writer, status, payload, headers)
            await writer.drain()
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            raise asyncio.IncompleteReadError(line, None)
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        if length > MAX_BODY:
            raise asyncio.IncompleteReadError(b"", None)
        body: object = None
        if length:
            raw_body = await reader.readexactly(length)
            try:
                body = json.loads(raw_body)
            except ValueError:
                body = ProtocolError("request body is not valid JSON")
        split = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        return method, split.path, query, body

    def _write_response(self, writer: asyncio.StreamWriter, status: int,
                        payload: object,
                        headers: Optional[Dict[str, str]] = None) -> None:
        if isinstance(payload, str):
            body = payload.encode()
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode()
            ctype = "application/json"
        reason = _REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {ctype}",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)

    # -- routing ---------------------------------------------------------
    async def _route(self, method: str, path: str, query: Dict[str, str],
                     body: object):
        if isinstance(body, ProtocolError):
            raise body
        if path == f"{protocol.API_PREFIX}/submit":
            if method != "POST":
                return self._method_not_allowed()
            return await self._submit(body)
        if path == f"{protocol.API_PREFIX}/status":
            return self._status(query)
        if path == f"{protocol.API_PREFIX}/result":
            return self._result(query)
        if path == f"{protocol.API_PREFIX}/cancel":
            if method != "POST":
                return self._method_not_allowed()
            return self._cancel(body)
        if path in ("/healthz", f"{protocol.API_PREFIX}/health"):
            state = self.state
            payload = protocol.ok_envelope(**self.metrics.snapshot(
                self.queue.snapshot(), self.executor.totals(),
                state, self.executor.jobs,
                journal=self._journal_info(),
                supervisor=self.supervisor.snapshot()))
            # Anything but plain "ok" answers 503 so load balancers and
            # ops probes can gate on the HTTP code alone; the JSON body
            # still says exactly which non-ok state it is.
            return (200 if state == "ok" else 503), payload, {}
        if path == "/metrics":
            return 200, self.metrics.render_prometheus(
                self.queue.snapshot(), self.executor.totals(),
                self.state, journal=self._journal_info()), {}
        return 404, protocol.error_envelope(ErrorInfo(
            kind="not-found", message=f"no route {method} {path}")), {}

    @staticmethod
    def _method_not_allowed():
        return 405, protocol.error_envelope(ErrorInfo(
            kind="bad-request", message="method not allowed")), {}

    # -- endpoints -------------------------------------------------------
    async def _submit(self, body: object):
        specs = protocol.parse_submit_body(body)
        # Key computation builds + predecodes programs: off the loop.
        keys = await asyncio.to_thread(
            lambda: [self._key_or_error(s) for s in specs])
        results = []
        accepted = rejected = 0
        retry_after = 0.0
        now = asyncio.get_event_loop().time()
        for spec, key in zip(specs, keys):
            if isinstance(key, ErrorInfo):
                results.append({"accepted": False, "error": key.to_dict()})
                rejected += 1
                continue
            if self.draining:
                results.append({"accepted": False, "error": ErrorInfo(
                    kind="draining",
                    message="server is draining").to_dict()})
                rejected += 1
                continue
            ticket = Ticket(spec, key, now)
            entry = self.queue.coalesce(ticket)
            if entry is None and not self.supervisor.allows(spec.priority):
                # Circuit open: shed load at the door.  Coalesced
                # submissions still attach (no new work), interactive
                # jobs still drain/probe.
                retry = self.supervisor.retry_after()
                retry_after = max(retry_after, retry)
                results.append({"accepted": False, "error": ErrorInfo(
                    kind="degraded",
                    message=f"executor degraded "
                            f"({self.supervisor.state}); sweep refused, "
                            f"retry in {retry:.1f}s",
                    retry_after=retry).to_dict()})
                self.metrics.inc("jobs_rejected_degraded")
                rejected += 1
                continue
            if entry is not None:
                # Fan-in: no new work enters the system, so coalesced
                # submissions bypass admission control entirely.
                self._register(ticket)
                self.metrics.inc("jobs_coalesced")
                self.executor.cache.note_coalesced()
                results.append({"accepted": True, "id": ticket.id,
                                "coalesced": True, "state": ticket.state})
                accepted += 1
                continue
            decision = self.admission.decide(self.queue, spec,
                                             self.metrics)
            if decision.shed is not None:
                for shed_ticket in decision.shed.tickets:
                    shed_ticket.state = protocol.FAILED
                    shed_ticket.error = ErrorInfo(
                        kind="shed",
                        message="evicted from a full queue to admit "
                                "interactive work; resubmit later")
                    self._retire(shed_ticket)
                    self.metrics.inc("jobs_shed")
                if self.journal is not None:
                    self.journal.note_cancelled(decision.shed.key,
                                                reason="shed")
            if not decision.accepted:
                assert decision.error is not None
                retry_after = max(retry_after, decision.error.retry_after)
                results.append({"accepted": False,
                                "error": decision.error.to_dict()})
                self.metrics.inc("jobs_rejected")
                rejected += 1
                continue
            if self.journal is not None:
                # Durability point: the accept record (with its full
                # spec) hits disk before the push makes the job
                # dispatchable and before the client sees the ack.
                # Synchronous on the loop thread on purpose — the
                # dispatcher shares this thread, so ``started`` can
                # never be journaled ahead of ``accepted``.
                self.journal.note_accepted(key, spec.to_dict())
            self.queue.push(ticket)
            self._register(ticket)
            self.metrics.inc("jobs_submitted")
            results.append({"accepted": True, "id": ticket.id,
                            "coalesced": False, "state": ticket.state})
            accepted += 1
        if accepted:
            self.dispatcher.kick()
            status = 200
        elif self.draining:
            status = 503
        else:
            status = 429
        headers = {}
        if retry_after and not accepted:
            headers["Retry-After"] = f"{retry_after:.1f}"
        return status, protocol.ok_envelope(jobs=results), headers

    def _key_or_error(self, spec):
        try:
            return self.executor.key_for(spec)
        except ProtocolError as exc:
            return ErrorInfo(kind="bad-request", message=str(exc))

    def _lookup(self, query: Dict[str, str]) -> Ticket:
        ticket_id = query.get("id", "")
        ticket = self._tickets.get(ticket_id)
        if ticket is None:
            raise ProtocolError(f"unknown job id {ticket_id!r}")
        return ticket

    def _status(self, query: Dict[str, str]):
        try:
            ticket = self._lookup(query)
        except ProtocolError as exc:
            return 404, protocol.error_envelope(ErrorInfo(
                kind="not-found", message=str(exc))), {}
        return 200, protocol.ok_envelope(job=ticket.status().to_dict()), {}

    def _result(self, query: Dict[str, str]):
        try:
            ticket = self._lookup(query)
        except ProtocolError as exc:
            return 404, protocol.error_envelope(ErrorInfo(
                kind="not-found", message=str(exc))), {}
        payload = protocol.ok_envelope(job=ticket.status().to_dict(),
                                       done=ticket.terminal)
        if ticket.terminal:
            if ticket.stats is not None:
                payload["stats"] = ticket.stats
            # One-shot: a fetched result frees its ticket promptly
            # instead of waiting for the FINISHED_CAP eviction.
            self._tickets.pop(ticket.id, None)
        return 200, payload, {}

    def _cancel(self, body: object):
        if not isinstance(body, dict):
            raise ProtocolError("cancel body must be an object")
        protocol.check_version(body)
        ticket = self._lookup({"id": str(body.get("id", ""))})
        cancelled = self.queue.cancel(ticket)
        if cancelled:
            ticket.state = protocol.CANCELLED
            ticket.error = ErrorInfo(kind="cancelled",
                                     message="cancelled by client")
            self._retire(ticket)
            self.metrics.inc("jobs_cancelled")
            if (self.journal is not None
                    and ticket.key not in self.queue.entries):
                # The last ticket of its entry: the job itself is gone.
                # (A coalesced sibling would keep the entry — and the
                # journaled job — alive.)
                self.journal.note_cancelled(ticket.key,
                                            reason="client cancel")
        return 200, protocol.ok_envelope(
            cancelled=cancelled, job=ticket.status().to_dict()), {}


async def _amain(**opts) -> int:
    server = ServeServer(**opts)
    await server.start()
    server.install_signal_handlers()
    host, port = server.address
    jobs = server.executor.jobs or "auto"
    print(f"repro serve: listening on http://{host}:{port} "
          f"(jobs={jobs}, queue depth "
          f"{server.admission.max_depth}); SIGTERM/SIGINT drains",
          file=sys.stderr, flush=True)
    await server.wait_stopped()
    totals = server.executor.totals()
    print(f"repro serve: drained — {totals['sims_run']} simulation(s) "
          f"run, {totals['disk_hits']} disk hit(s), "
          f"{totals['memo_hits']} memo hit(s), "
          f"{server.metrics.counters['jobs_coalesced']} coalesced",
          file=sys.stderr, flush=True)
    return 0


def serve_main(**opts) -> int:
    """Blocking entry point for the ``repro serve`` CLI verb."""
    try:
        return asyncio.run(_amain(**opts))
    except KeyboardInterrupt:  # pragma: no cover - non-Unix fallback
        return 130
