"""Asyncio front end of the simulation service.

``repro serve`` runs one :class:`ServeServer`: an ``asyncio.start_server``
listener speaking the minimal HTTP/JSON dialect of ``protocol.py``, one
:class:`~.queue.ServeQueue`, one :class:`~.scheduler.Dispatcher` and the
persistent :class:`~.scheduler.SimExecutor` (warm runners + disk cache).

Connections are one-request (``Connection: close``) — clients poll, the
daemon stays simple, and there is no connection state to drain.

Graceful drain (SIGTERM/SIGINT, or :meth:`ServeServer.request_shutdown`):

1. stop admitting — submits answer 503 ``draining``;
2. cancel everything still queued (their tickets report ``cancelled``
   with a ``draining`` message);
3. let the in-flight batch finish — the pool is never abandoned
   mid-simulation, so no orphaned workers;
4. flush the cache hit/miss/coalesce tallies to disk;
5. hold the listener open for a short grace period so clients polling
   ``status``/``result`` can collect terminal states, then close.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import traceback
from collections import deque
from typing import Deque, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..runtime import ResultCache
from . import protocol
from .metrics import ServerMetrics
from .protocol import ErrorInfo, ProtocolError
from .queue import ServeQueue, Ticket
from .scheduler import AdmissionController, Dispatcher, SimExecutor

#: largest accepted request body (a 12-kernel suite submit is ~20 KiB)
MAX_BODY = 16 * 1024 * 1024

#: finished tickets kept addressable for late pollers
FINISHED_CAP = 4096

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}


class ServeServer:
    """The daemon: HTTP front end + queue + dispatcher + executor."""

    def __init__(self, host: str = "127.0.0.1",
                 port: int = protocol.DEFAULT_PORT,
                 jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 queue_depth: int = 256,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 batch_max: int = 32,
                 grace: float = 0.25):
        self.host = host
        self.port = port
        self.queue = ServeQueue()
        self.executor = SimExecutor(cache=cache, jobs=jobs,
                                    timeout=timeout, retries=retries)
        self.metrics = ServerMetrics()
        self.admission = AdmissionController(queue_depth)
        self.dispatcher = Dispatcher(self.queue, self.executor,
                                     self.metrics, batch_max=batch_max)
        self.grace = grace
        self.draining = False
        self._tickets: Dict[str, Ticket] = {}
        self._finished_order: Deque[str] = deque()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped = asyncio.Event()
        self._shutdown_task: Optional[asyncio.Task] = None
        self.address: Tuple[str, int] = (host, port)

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        self.port = self.address[1]
        self.dispatcher.start()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    def request_shutdown(self) -> None:
        """Begin the graceful drain (idempotent; loop thread only)."""
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.get_event_loop().create_task(
                self._shutdown())

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    async def _shutdown(self) -> None:
        self.draining = True
        for entry in self.queue.drain():
            for ticket in entry.tickets:
                ticket.state = protocol.CANCELLED
                ticket.error = ErrorInfo(
                    kind="cancelled",
                    message="server draining before the job was "
                            "dispatched")
                self._retire(ticket)
                self.metrics.inc("jobs_cancelled")
        await self.dispatcher.stop()     # in-flight batch finishes
        self.executor.flush_cache()
        await asyncio.sleep(self.grace)  # late pollers collect results
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._stopped.set()

    # -- ticket registry -------------------------------------------------
    def _register(self, ticket: Ticket) -> None:
        self._tickets[ticket.id] = ticket

    def _retire(self, ticket: Ticket) -> None:
        """Cap the set of terminal tickets kept for late pollers."""
        self._finished_order.append(ticket.id)
        while len(self._finished_order) > FINISHED_CAP:
            old = self._finished_order.popleft()
            self._tickets.pop(old, None)

    # -- HTTP plumbing ---------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            request = await asyncio.wait_for(self._read_request(reader),
                                             timeout=30.0)
            if request is None:
                return
            method, path, query, body = request
            self.metrics.inc("requests")
            try:
                status, payload, headers = await self._route(
                    method, path, query, body)
            except ProtocolError as exc:
                status, payload, headers = 400, protocol.error_envelope(
                    ErrorInfo(kind="bad-request", message=str(exc))), {}
            except Exception:
                print(f"repro serve: internal error handling "
                      f"{method} {path}\n{traceback.format_exc()}",
                      file=sys.stderr)
                status, payload, headers = 500, protocol.error_envelope(
                    ErrorInfo(kind="internal",
                              message="internal server error")), {}
            self._write_response(writer, status, payload, headers)
            await writer.drain()
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            raise asyncio.IncompleteReadError(line, None)
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        if length > MAX_BODY:
            raise asyncio.IncompleteReadError(b"", None)
        body: object = None
        if length:
            raw_body = await reader.readexactly(length)
            try:
                body = json.loads(raw_body)
            except ValueError:
                body = ProtocolError("request body is not valid JSON")
        split = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        return method, split.path, query, body

    def _write_response(self, writer: asyncio.StreamWriter, status: int,
                        payload: object,
                        headers: Optional[Dict[str, str]] = None) -> None:
        if isinstance(payload, str):
            body = payload.encode()
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode()
            ctype = "application/json"
        reason = _REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {ctype}",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)

    # -- routing ---------------------------------------------------------
    async def _route(self, method: str, path: str, query: Dict[str, str],
                     body: object):
        if isinstance(body, ProtocolError):
            raise body
        if path == f"{protocol.API_PREFIX}/submit":
            if method != "POST":
                return self._method_not_allowed()
            return await self._submit(body)
        if path == f"{protocol.API_PREFIX}/status":
            return self._status(query)
        if path == f"{protocol.API_PREFIX}/result":
            return self._result(query)
        if path == f"{protocol.API_PREFIX}/cancel":
            if method != "POST":
                return self._method_not_allowed()
            return self._cancel(body)
        if path in ("/healthz", f"{protocol.API_PREFIX}/health"):
            return 200, protocol.ok_envelope(**self.metrics.snapshot(
                self.queue.snapshot(), self.executor.totals(),
                self.draining, self.executor.jobs)), {}
        if path == "/metrics":
            return 200, self.metrics.render_prometheus(
                self.queue.snapshot(), self.executor.totals(),
                self.draining), {}
        return 404, protocol.error_envelope(ErrorInfo(
            kind="not-found", message=f"no route {method} {path}")), {}

    @staticmethod
    def _method_not_allowed():
        return 405, protocol.error_envelope(ErrorInfo(
            kind="bad-request", message="method not allowed")), {}

    # -- endpoints -------------------------------------------------------
    async def _submit(self, body: object):
        specs = protocol.parse_submit_body(body)
        # Key computation builds + predecodes programs: off the loop.
        keys = await asyncio.to_thread(
            lambda: [self._key_or_error(s) for s in specs])
        results = []
        accepted = rejected = 0
        retry_after = 0.0
        now = asyncio.get_event_loop().time()
        for spec, key in zip(specs, keys):
            if isinstance(key, ErrorInfo):
                results.append({"accepted": False, "error": key.to_dict()})
                rejected += 1
                continue
            if self.draining:
                results.append({"accepted": False, "error": ErrorInfo(
                    kind="draining",
                    message="server is draining").to_dict()})
                rejected += 1
                continue
            ticket = Ticket(spec, key, now)
            entry = self.queue.coalesce(ticket)
            if entry is not None:
                # Fan-in: no new work enters the system, so coalesced
                # submissions bypass admission control entirely.
                self._register(ticket)
                self.metrics.inc("jobs_coalesced")
                self.executor.cache.note_coalesced()
                results.append({"accepted": True, "id": ticket.id,
                                "coalesced": True, "state": ticket.state})
                accepted += 1
                continue
            decision = self.admission.decide(self.queue, spec,
                                             self.metrics)
            if decision.shed is not None:
                for shed_ticket in decision.shed.tickets:
                    shed_ticket.state = protocol.FAILED
                    shed_ticket.error = ErrorInfo(
                        kind="shed",
                        message="evicted from a full queue to admit "
                                "interactive work; resubmit later")
                    self._retire(shed_ticket)
                    self.metrics.inc("jobs_shed")
            if not decision.accepted:
                assert decision.error is not None
                retry_after = max(retry_after, decision.error.retry_after)
                results.append({"accepted": False,
                                "error": decision.error.to_dict()})
                self.metrics.inc("jobs_rejected")
                rejected += 1
                continue
            self.queue.push(ticket)
            self._register(ticket)
            self.metrics.inc("jobs_submitted")
            results.append({"accepted": True, "id": ticket.id,
                            "coalesced": False, "state": ticket.state})
            accepted += 1
        if accepted:
            self.dispatcher.kick()
            status = 200
        elif self.draining:
            status = 503
        else:
            status = 429
        headers = {}
        if retry_after and not accepted:
            headers["Retry-After"] = f"{retry_after:.1f}"
        return status, protocol.ok_envelope(jobs=results), headers

    def _key_or_error(self, spec):
        try:
            return self.executor.key_for(spec)
        except ProtocolError as exc:
            return ErrorInfo(kind="bad-request", message=str(exc))

    def _lookup(self, query: Dict[str, str]) -> Ticket:
        ticket_id = query.get("id", "")
        ticket = self._tickets.get(ticket_id)
        if ticket is None:
            raise ProtocolError(f"unknown job id {ticket_id!r}")
        return ticket

    def _status(self, query: Dict[str, str]):
        try:
            ticket = self._lookup(query)
        except ProtocolError as exc:
            return 404, protocol.error_envelope(ErrorInfo(
                kind="not-found", message=str(exc))), {}
        return 200, protocol.ok_envelope(job=ticket.status().to_dict()), {}

    def _result(self, query: Dict[str, str]):
        try:
            ticket = self._lookup(query)
        except ProtocolError as exc:
            return 404, protocol.error_envelope(ErrorInfo(
                kind="not-found", message=str(exc))), {}
        payload = protocol.ok_envelope(job=ticket.status().to_dict(),
                                       done=ticket.terminal)
        if ticket.terminal:
            if ticket.stats is not None:
                payload["stats"] = ticket.stats
            # One-shot: a fetched result frees its ticket promptly
            # instead of waiting for the FINISHED_CAP eviction.
            self._tickets.pop(ticket.id, None)
        return 200, payload, {}

    def _cancel(self, body: object):
        if not isinstance(body, dict):
            raise ProtocolError("cancel body must be an object")
        protocol.check_version(body)
        ticket = self._lookup({"id": str(body.get("id", ""))})
        cancelled = self.queue.cancel(ticket)
        if cancelled:
            ticket.state = protocol.CANCELLED
            ticket.error = ErrorInfo(kind="cancelled",
                                     message="cancelled by client")
            self._retire(ticket)
            self.metrics.inc("jobs_cancelled")
        return 200, protocol.ok_envelope(
            cancelled=cancelled, job=ticket.status().to_dict()), {}


async def _amain(**opts) -> int:
    server = ServeServer(**opts)
    await server.start()
    server.install_signal_handlers()
    host, port = server.address
    jobs = server.executor.jobs or "auto"
    print(f"repro serve: listening on http://{host}:{port} "
          f"(jobs={jobs}, queue depth "
          f"{server.admission.max_depth}); SIGTERM/SIGINT drains",
          file=sys.stderr, flush=True)
    await server.wait_stopped()
    totals = server.executor.totals()
    print(f"repro serve: drained — {totals['sims_run']} simulation(s) "
          f"run, {totals['disk_hits']} disk hit(s), "
          f"{totals['memo_hits']} memo hit(s), "
          f"{server.metrics.counters['jobs_coalesced']} coalesced",
          file=sys.stderr, flush=True)
    return 0


def serve_main(**opts) -> int:
    """Blocking entry point for the ``repro serve`` CLI verb."""
    try:
        return asyncio.run(_amain(**opts))
    except KeyboardInterrupt:  # pragma: no cover - non-Unix fallback
        return 130
