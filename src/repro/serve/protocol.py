"""Wire protocol for the simulation service (version 1).

The daemon speaks a minimal HTTP/1.1 + JSON dialect (stdlib only, one
request per connection).  Endpoints, all rooted at ``/v1``:

========================  =====================================================
``POST /v1/submit``       submit a batch of :class:`JobSpec`; per-job accept /
                          reject decisions come back in one response
``GET  /v1/status?id=``   current :class:`JobStatus` of one submission
``GET  /v1/result?id=``   terminal result: ``SimStats`` payload or an
                          :class:`ErrorInfo` envelope
``POST /v1/cancel``       cancel a *queued* submission (running/terminal jobs
                          report their state instead)
``GET  /healthz``         JSON liveness + load snapshot
``GET  /metrics``         Prometheus text format
========================  =====================================================

Every JSON body carries ``"v": PROTOCOL_VERSION`` and ``"ok"``; failures
use one explicit error envelope (:class:`ErrorInfo`) whose ``kind``
vocabulary covers both admission outcomes (``rejected``, ``shed``,
``draining``) and execution outcomes — the latter reusing the runtime
failure classes from DESIGN.md §8 (a :class:`~repro.runtime.FailedResult`
maps onto ``kind="failed"`` with its ``phase`` and ``attempts``
preserved, so a client sees exactly what a local ``--keep-going`` sweep
would have reported).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..runtime import FailedResult, RunSpec
from ..uarch.config import config_from_dict

#: bump on any incompatible wire change; requests carry it and the
#: server rejects other versions explicitly instead of misparsing them
PROTOCOL_VERSION = 1

#: URL prefix of the versioned API surface
API_PREFIX = "/v1"

#: default TCP port of ``repro serve``
DEFAULT_PORT = 8731

#: admission classes, highest priority first: interactive jobs are
#: dispatched before sweep jobs and may shed queued sweep jobs when the
#: queue is full
PRIORITIES = ("interactive", "sweep")

# -- job states -------------------------------------------------------------
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: states a job never leaves
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


class ProtocolError(ValueError):
    """A request that cannot be interpreted (maps to HTTP 400)."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ProtocolError(message)


@dataclass(frozen=True)
class JobSpec(RunSpec):
    """One simulation request: a :class:`~repro.runtime.RunSpec` plus
    transport fields.

    The run vocabulary *is* the wire vocabulary — kernel, scale, seed,
    config, policy, fault and sampling riders serialise exactly as
    :meth:`RunSpec.to_dict` defines them, so the server's coalescing key
    is literally ``spec.cache_key()``: the same content-addressed
    identity the local pool memoises and the disk cache stores under.
    ``priority`` and ``client`` are transport-only — they steer
    admission and accounting and never enter the key.  Observer specs do
    not cross the wire (events would dwarf the stats payload); a
    non-null ``observe`` field is rejected at parse time.
    """

    priority: str = "sweep"
    client: str = "anon"

    def to_dict(self) -> dict:
        out = RunSpec.to_dict(self)
        del out["observe"]   # never crosses the wire
        out["priority"] = self.priority
        out["client"] = self.client
        return out

    @classmethod
    def from_dict(cls, data: object) -> "JobSpec":
        _require(isinstance(data, dict), "job spec must be an object")
        assert isinstance(data, dict)
        kernel = data.get("kernel")
        _require(isinstance(kernel, str) and bool(kernel),
                 "job spec needs a 'kernel' name")
        priority = data.get("priority", "sweep")
        _require(priority in PRIORITIES,
                 f"priority must be one of {PRIORITIES}, got {priority!r}")
        try:
            scale = float(data.get("scale", 0.5))
            seed = int(data.get("seed", 1))
        except (TypeError, ValueError):
            raise ProtocolError("scale/seed must be numeric") from None
        policy = data.get("policy")
        _require(policy is None or isinstance(policy, str),
                 "policy must be a registry name or null")
        faults = data.get("faults")
        _require(faults is None or isinstance(faults, str),
                 "faults must be a fault-plan spec string or null")
        _require(data.get("observe") is None,
                 "observers are not supported over the wire")
        sampling = data.get("sampling")
        _require(sampling is None or isinstance(sampling, str),
                 "sampling must be a sampling spec string or null")
        if sampling is not None:
            _require(faults is None,
                     "sampling does not compose with fault injection")
            from ..sampling.plan import SamplingError, SamplingSpec, \
                is_interval_token, parse_interval
            try:
                if is_interval_token(sampling):
                    parse_interval(sampling)   # a pre-planned interval job
                else:
                    SamplingSpec.parse(sampling)
            except SamplingError as exc:
                raise ProtocolError(str(exc)) from None
        client = data.get("client", "anon")
        _require(isinstance(client, str) and bool(client),
                 "client must be a non-empty string")
        try:
            cfg = config_from_dict(data.get("cfg") or {})
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
        spec = cls(kernel=kernel, scale=scale, seed=seed, cfg=cfg,
                   policy=policy, faults=faults, sampling=sampling,
                   priority=priority, client=client)
        try:
            spec.resolved_cfg()   # unknown policy fails here, with hints
            spec.fault_plan()     # malformed fault plan fails here
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
        return spec


@dataclass(frozen=True)
class ErrorInfo:
    """The protocol's one error envelope.

    ``kind`` vocabulary:

    * ``rejected``  — admission control refused the job (queue full);
      honour ``retry_after`` (seconds) before resubmitting
    * ``shed``      — the job was admitted but later evicted to make room
      for an interactive job
    * ``draining``  — the daemon is shutting down and admits nothing new
    * ``failed``    — the simulation failed; ``phase``/``attempts`` carry
      the runtime failure classification (worker / timeout / pool)
    * ``cancelled`` — cancelled by the client or by a drain
    * ``bad-request`` / ``not-found`` / ``unsupported-version`` —
      protocol-level problems
    """

    kind: str
    message: str
    phase: str = ""
    attempts: int = 0
    retry_after: float = 0.0

    def to_dict(self) -> dict:
        out: Dict[str, object] = {"kind": self.kind,
                                  "message": self.message}
        if self.phase:
            out["phase"] = self.phase
        if self.attempts:
            out["attempts"] = self.attempts
        if self.retry_after:
            out["retry_after"] = self.retry_after
        return out

    @classmethod
    def from_dict(cls, data: object) -> "ErrorInfo":
        if not isinstance(data, dict):
            return cls(kind="unknown", message=repr(data))
        return cls(kind=str(data.get("kind", "unknown")),
                   message=str(data.get("message", "")),
                   phase=str(data.get("phase", "")),
                   attempts=int(data.get("attempts", 0) or 0),
                   retry_after=float(data.get("retry_after", 0.0) or 0.0))

    @classmethod
    def from_failed_result(cls, fr: FailedResult) -> "ErrorInfo":
        return cls(kind="failed", message=fr.describe(), phase=fr.phase,
                   attempts=fr.attempts)

    def to_failed_result(self, kernel: str, scale: float,
                         seed: int) -> FailedResult:
        """The local-runtime twin of this error (for thin clients)."""
        return FailedResult(kernel, scale, seed, error=self.message,
                            phase=self.phase or self.kind,
                            attempts=self.attempts or 1)


@dataclass(frozen=True)
class JobStatus:
    """One submission's externally visible state."""

    id: str
    kernel: str
    state: str
    #: where the result came from once terminal: ``sim`` / ``disk`` /
    #: ``memo`` / ``coalesced`` / ``failed`` ('' while pending)
    source: str = ""
    error: Optional[ErrorInfo] = None

    def to_dict(self) -> dict:
        out: Dict[str, object] = {"id": self.id, "kernel": self.kernel,
                                  "state": self.state}
        if self.source:
            out["source"] = self.source
        if self.error is not None:
            out["error"] = self.error.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: object) -> "JobStatus":
        _require(isinstance(data, dict), "job status must be an object")
        assert isinstance(data, dict)
        err = data.get("error")
        return cls(id=str(data.get("id", "")),
                   kernel=str(data.get("kernel", "")),
                   state=str(data.get("state", "")),
                   source=str(data.get("source", "")),
                   error=None if err is None else ErrorInfo.from_dict(err))

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


# -- envelopes --------------------------------------------------------------

def ok_envelope(**fields_: object) -> dict:
    return {"v": PROTOCOL_VERSION, "ok": True, **fields_}


def error_envelope(err: ErrorInfo) -> dict:
    return {"v": PROTOCOL_VERSION, "ok": False, "error": err.to_dict()}


def check_version(body: dict) -> None:
    """Reject a body that declares a different protocol version."""
    v = body.get("v", PROTOCOL_VERSION)
    if v != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {v!r} "
                            f"(this server speaks v{PROTOCOL_VERSION})")


def parse_submit_body(body: object) -> List[JobSpec]:
    """Validate a submit request body into its job specs."""
    _require(isinstance(body, dict), "submit body must be an object")
    assert isinstance(body, dict)
    check_version(body)
    jobs = body.get("jobs")
    _require(isinstance(jobs, list) and bool(jobs),
             "submit body needs a non-empty 'jobs' list")
    assert isinstance(jobs, list)
    return [JobSpec.from_dict(item) for item in jobs]
