"""Durable job journal — the serving layer's write-ahead log.

``repro serve`` speculatively *accepts* work long before it executes;
this module is the recovery point that makes the speculation safe.
Every lifecycle transition of an accepted job — ``accepted`` (with its
full spec), ``started``, ``completed`` (with its result source),
``failed``, ``cancelled`` — is appended to one JSONL file *before* the
client sees the acknowledgement, each line a checksummed envelope
fsync'd to disk.  After a crash (including kill -9 mid-batch) the
server replays the journal: jobs without a terminal record are
re-enqueued, completed ones are served from the result cache on
resubmission, and torn or corrupt tail records are quarantined aside —
the same envelope-verify-quarantine idiom ``runtime/cache.py`` applies
to result entries.

Identity is the canonical :func:`repro.runtime.keys.run_key` (via
``spec.cache_key()``): content-addressed, so a client resubmitting
after a restart re-attaches to the replayed entry instead of
duplicating the simulation.  The journal is therefore also an audit
log — :meth:`JournalReplay.duplicate_sims` proves that no key was ever
*simulated* twice, which the chaos harness asserts after every drill.

File format, one record per line::

    {"v": 1, "sha256": "<digest of record>", "record": {...}}

The checksum is :func:`repro.runtime.keys.stats_digest` over the
canonical JSON form of the record (keys.py is the repo's only hashing
authority).  A line that fails to parse or verify is *corrupt*; replay
moves it to ``<journal>.quarantine`` (with its line number and reason)
and heals the journal in place via the atomic write-then-rename idiom.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional, Sequence, Tuple

from ..runtime.keys import stats_digest

#: bump on any incompatible record-shape change; records from other
#: schemas are skipped as *stale* (not corrupt) during replay
JOURNAL_SCHEMA = 1

# -- record events ----------------------------------------------------------
SERVER_START = "server-start"   #: one per daemon incarnation (epoch marker)
ACCEPTED = "accepted"           #: job admitted; record carries the spec
STARTED = "started"             #: job handed to the executor
COMPLETED = "completed"         #: job finished with stats (carries source)
FAILED = "failed"               #: job finished with an error envelope
CANCELLED = "cancelled"         #: client cancel / drain / shed

#: events that end a job's lifecycle
TERMINAL_EVENTS = (COMPLETED, FAILED, CANCELLED)

EVENTS = (SERVER_START, ACCEPTED, STARTED) + TERMINAL_EVENTS


def _encode(record: dict) -> str:
    return json.dumps({"v": JOURNAL_SCHEMA,
                       "sha256": stats_digest(record),
                       "record": record},
                      sort_keys=True, separators=(",", ":"))


@dataclass
class JournalReplay:
    """The outcome of replaying one journal file.

    ``incomplete`` maps each key with no terminal record to its last
    ``accepted`` record (which carries the job spec) — exactly the jobs
    a restarted server must re-enqueue.  ``completions`` keeps *every*
    terminal completion source per key so the duplicate-simulation
    audit survives resubmission cycles (accepted → completed → accepted
    → completed is legal; two ``source == "sim"`` completions for one
    key is the violation the chaos harness hunts)."""

    path: str
    #: verified records applied to the state machine
    records: int = 0
    #: ``server-start`` markers seen (daemon incarnations so far)
    epochs: int = 0
    #: lines quarantined as torn/corrupt
    corrupt: int = 0
    #: lines skipped for a different (older/newer) journal schema
    stale: int = 0
    #: where quarantined lines went (None when the journal was clean)
    quarantine_path: Optional[str] = None
    #: key -> last ACCEPTED record, for jobs with no terminal event
    incomplete: "OrderedDict[str, dict]" = field(
        default_factory=OrderedDict)
    #: key -> last terminal event name
    terminal: Dict[str, str] = field(default_factory=dict)
    #: key -> every completion source, in order (duplicate-sim audit)
    completions: Dict[str, List[str]] = field(default_factory=dict)
    #: lifecycle-order violations (terminal/started without accept, ...)
    violations: List[str] = field(default_factory=list)
    #: highest record seq seen (appends resume above it)
    last_seq: int = 0

    def duplicate_sims(self) -> List[str]:
        """Keys whose result was *simulated* more than once.

        Replaying a job killed mid-flight legitimately re-runs it (the
        first attempt never completed); completing one key twice from
        the pool means the crash-safety layer duplicated work."""
        return [key for key, sources in self.completions.items()
                if sources.count("sim") > 1]

    @property
    def consistent(self) -> bool:
        """True when the journal describes a legal job history."""
        return not self.violations and not self.duplicate_sims()

    def describe(self) -> str:
        bits = [f"{self.records} record(s)", f"{self.epochs} epoch(s)",
                f"{len(self.incomplete)} incomplete",
                f"{len(self.terminal)} terminal"]
        if self.corrupt:
            bits.append(f"{self.corrupt} quarantined")
        if self.stale:
            bits.append(f"{self.stale} stale")
        if self.violations:
            bits.append(f"{len(self.violations)} VIOLATION(S)")
        dups = self.duplicate_sims()
        if dups:
            bits.append(f"{len(dups)} DUPLICATE SIM(S)")
        return ", ".join(bits)

    # -- state machine ---------------------------------------------------
    def apply(self, record: dict) -> None:
        """Fold one verified record into the replay state."""
        event = record.get("event")
        key = str(record.get("key", ""))
        self.records += 1
        self.last_seq = max(self.last_seq, int(record.get("seq", 0) or 0))
        if event == SERVER_START:
            self.epochs += 1
            return
        if event == ACCEPTED:
            # Re-acceptance after a terminal event is a legal
            # resubmission; acceptance while incomplete is the server
            # double-journaling one admission.
            if key in self.incomplete:
                self.violations.append(
                    f"{key[:12]}: accepted twice without a terminal "
                    f"event in between")
            self.incomplete[key] = record
            return
        if event == STARTED:
            if key not in self.incomplete:
                self.violations.append(
                    f"{key[:12]}: started without an accepted record")
            return
        if event in TERMINAL_EVENTS:
            if self.incomplete.pop(key, None) is None:
                self.violations.append(
                    f"{key[:12]}: {event} without an accepted record")
            self.terminal[key] = event
            if event == COMPLETED:
                source = str(record.get("source", "")) or "sim"
                self.completions.setdefault(key, []).append(source)
            return
        self.violations.append(f"{key[:12]}: unknown event {event!r}")


def replay_journal(path: str, quarantine: bool = True) -> JournalReplay:
    """Replay ``path`` into a :class:`JournalReplay`.

    With ``quarantine=True`` (the startup path) corrupt lines are moved
    to ``<path>.quarantine`` and the journal is *healed*: rewritten
    atomically with only the verified lines, so a second replay is
    idempotent and reports zero corruption.  With ``quarantine=False``
    (audit path, e.g. the chaos harness inspecting a live file) nothing
    on disk is modified."""
    replay = JournalReplay(path=path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            raw_lines = fh.readlines()
    except OSError:
        return replay   # no journal yet: empty replay
    good: List[str] = []
    bad: List[Tuple[int, str, str]] = []
    for lineno, raw in enumerate(raw_lines, 1):
        line = raw.strip()
        if not line:
            continue
        try:
            envelope = json.loads(line)
            if not isinstance(envelope, dict):
                raise ValueError("not a journal envelope")
            if not {"v", "sha256", "record"} <= set(envelope):
                raise ValueError("envelope missing v/sha256/record")
            record = envelope["record"]
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
            if envelope["v"] != JOURNAL_SCHEMA:
                replay.stale += 1
                continue
            if stats_digest(record) != envelope["sha256"]:
                raise ValueError("checksum mismatch")
        except ValueError as exc:
            replay.corrupt += 1
            bad.append((lineno, line, str(exc)))
            continue
        good.append(line)
        replay.apply(record)
    if bad and quarantine:
        replay.quarantine_path = _quarantine_lines(path, bad)
        _heal(path, good)
    return replay


def _quarantine_lines(path: str,
                      bad: Sequence[Tuple[int, str, str]]) -> str:
    """Append corrupt lines (with provenance) to ``<path>.quarantine``."""
    qpath = path + ".quarantine"
    try:
        with open(qpath, "a", encoding="utf-8") as fh:
            for lineno, line, reason in bad:
                fh.write(f"# line {lineno}: {reason}\n{line}\n")
    except OSError:   # pragma: no cover - quarantine is best-effort
        pass
    return qpath


def _heal(path: str, good_lines: Sequence[str]) -> None:
    """Atomically rewrite the journal with only its verified lines."""
    tmp = path + ".tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write("".join(line + "\n" for line in good_lines))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError:   # pragma: no cover - healing is best-effort
        try:
            os.unlink(tmp)
        except OSError:
            pass


class JobJournal:
    """Append-only fsync'd journal of job lifecycle transitions.

    One instance per server; appends are serialised by a lock (the
    event loop is the only writer in practice, but the chaos harness
    and tests append from other threads).  ``append_many`` amortises
    one flush+fsync over a batch — the dispatcher journals a whole
    batch's ``started`` records with a single durability point."""

    def __init__(self, path: str, fsync: bool = True):
        self.path = path
        self.fsync = fsync
        self._fh: Optional[IO[str]] = None
        self._lock = threading.Lock()
        self._seq = 0
        #: records appended by this instance (not lifetime file total)
        self.appended = 0

    # -- plumbing --------------------------------------------------------
    def _open(self) -> IO[str]:
        if self._fh is None or self._fh.closed:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def resume_from(self, replay: JournalReplay) -> None:
        """Continue the seq numbering of a replayed journal."""
        with self._lock:
            self._seq = max(self._seq, replay.last_seq)

    def append(self, event: str, key: str = "", **fields: object) -> None:
        self.append_many([(event, key, fields)])

    def append_many(
            self,
            items: Sequence[Tuple[str, str, Dict[str, object]]]) -> None:
        """Append records (``(event, key, fields)`` each) with one
        flush + fsync for the whole batch."""
        if not items:
            return
        with self._lock:
            fh = self._open()
            for event, key, fields in items:
                self._seq += 1
                record: Dict[str, object] = {"event": event,
                                             "seq": self._seq}
                if key:
                    record["key"] = key
                record.update(fields)
                fh.write(_encode(record) + "\n")
                self.appended += 1
            fh.flush()
            if self.fsync:
                try:
                    os.fsync(fh.fileno())
                except OSError:   # pragma: no cover - exotic filesystems
                    pass

    def close(self) -> None:
        with self._lock:
            if self._fh is not None and not self._fh.closed:
                self._fh.close()

    # -- lifecycle vocabulary -------------------------------------------
    def note_server_start(self, **info: object) -> None:
        self.append(SERVER_START, **info)

    def note_accepted(self, key: str, spec_dict: dict) -> None:
        self.append(ACCEPTED, key, spec=spec_dict)

    def note_started(self, keys: Sequence[str]) -> None:
        self.append_many([(STARTED, key, {}) for key in keys])

    def note_completed(self, key: str, source: str) -> None:
        self.append(COMPLETED, key, source=source)

    def note_failed(self, key: str, message: str = "") -> None:
        self.append(FAILED, key, message=message)

    def note_cancelled(self, key: str, reason: str = "") -> None:
        self.append(CANCELLED, key, reason=reason)

    # -- replay ----------------------------------------------------------
    def replay(self, quarantine: bool = True) -> JournalReplay:
        """Replay this journal's file (see :func:`replay_journal`);
        call before the first append on startup."""
        replay = replay_journal(self.path, quarantine=quarantine)
        self.resume_from(replay)
        return replay
