"""Live metrics for the simulation service.

Two export faces over one counter store:

* ``/metrics`` — Prometheus text format (version 0.0.4): server-level
  counters and gauges plus a latency summary with p50/p95 quantiles;
* ``/healthz`` — a JSON snapshot for humans and smoke tests.

Per-simulation observability stays with the Observer taxonomy (CPI
stacks, audit trails — attach ``--observe`` to a run); this module adds
the *server-level* signals those can't see: queue depth, in-flight
batches, coalesce fan-in, cache effectiveness, throughput and worker
restarts (fed by :func:`repro.runtime.pool_restart_count`).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..runtime import pool_restart_count

#: counters every server instance exposes (zero until first increment)
COUNTER_NAMES = (
    "requests", "jobs_submitted", "jobs_coalesced", "jobs_completed",
    "jobs_failed", "jobs_cancelled", "jobs_rejected", "jobs_shed",
    "jobs_replayed", "jobs_rejected_degraded", "pool_restarts",
    "circuit_trips",
)

#: every state ``/healthz`` can report (exported as a one-hot gauge)
SERVER_STATES = ("ok", "replaying-journal", "degraded:pool-restarting",
                 "degraded:circuit-open", "draining")


def _quantile(sorted_xs: List[float], q: float) -> float:
    if not sorted_xs:
        return 0.0
    idx = min(len(sorted_xs) - 1, max(0, round(q * (len(sorted_xs) - 1))))
    return sorted_xs[idx]


class ServerMetrics:
    """Counter/gauge store with a bounded latency reservoir."""

    def __init__(self, reservoir: int = 2048):
        self.started_at = time.monotonic()
        self.counters: Dict[str, int] = {k: 0 for k in COUNTER_NAMES}
        #: end-to-end (submit -> terminal) job latencies, newest last
        self._latencies: Deque[float] = deque(maxlen=reservoir)
        self._latency_count = 0
        self._latency_sum = 0.0

    # -- recording -------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe_latency(self, seconds: float) -> None:
        self._latencies.append(seconds)
        self._latency_count += 1
        self._latency_sum += seconds

    # -- derived ---------------------------------------------------------
    @property
    def uptime(self) -> float:
        return time.monotonic() - self.started_at

    def recent_latency(self) -> float:
        """Mean of the most recent completions (backpressure hints)."""
        recent = list(self._latencies)[-32:]
        return sum(recent) / len(recent) if recent else 0.0

    def latency_quantiles(self) -> Tuple[float, float]:
        xs = sorted(self._latencies)
        return _quantile(xs, 0.50), _quantile(xs, 0.95)

    def sims_per_second(self, sims_run: int) -> float:
        return sims_run / self.uptime if self.uptime > 0 else 0.0

    # -- export ----------------------------------------------------------
    def snapshot(self, queue_snapshot: Dict[str, int],
                 executor_totals: Dict[str, int],
                 state: str, jobs: Optional[int],
                 journal: Optional[Dict[str, int]] = None,
                 supervisor: Optional[Dict[str, object]] = None,
                 ) -> Dict[str, object]:
        """The ``/healthz`` JSON payload.

        ``state`` is one of :data:`SERVER_STATES`; ``journal`` and
        ``supervisor`` are the server's crash-safety sub-reports (epoch
        counts / replay tallies, pool-supervisor state machine)."""
        p50, p95 = self.latency_quantiles()
        cache_hits = (executor_totals["disk_hits"]
                      + executor_totals["memo_hits"])
        out: Dict[str, object] = {
            "status": state,
            "uptime_seconds": round(self.uptime, 3),
            "jobs": jobs,
            "queue": dict(queue_snapshot),
            "counters": dict(self.counters),
            "sims_run": executor_totals["sims_run"],
            "cache_hits": cache_hits,
            "sims_per_second": round(
                self.sims_per_second(executor_totals["sims_run"]), 3),
            "worker_restarts": pool_restart_count(),
            "latency_seconds": {"p50": round(p50, 6), "p95": round(p95, 6),
                                "count": self._latency_count},
        }
        if journal is not None:
            out["journal"] = dict(journal)
        if supervisor is not None:
            out["supervisor"] = dict(supervisor)
        return out

    def render_prometheus(self, queue_snapshot: Dict[str, int],
                          executor_totals: Dict[str, int],
                          state: str,
                          journal: Optional[Dict[str, int]] = None) -> str:
        """The ``/metrics`` exposition (Prometheus text format 0.0.4)."""
        p50, p95 = self.latency_quantiles()
        lines: List[str] = []

        def metric(name: str, kind: str, help_: str, value: float,
                   labels: str = "") -> None:
            lines.append(f"# HELP repro_{name} {help_}")
            lines.append(f"# TYPE repro_{name} {kind}")
            val = f"{value:.6g}" if isinstance(value, float) else str(value)
            lines.append(f"repro_{name}{labels} {val}")

        metric("up", "gauge", "1 while serving, 0 while draining.",
               0 if state == "draining" else 1)
        lines.append("# HELP repro_server_state 1 for the daemon's "
                     "current state, 0 otherwise.")
        lines.append("# TYPE repro_server_state gauge")
        for known in SERVER_STATES:
            lines.append(f'repro_server_state{{state="{known}"}} '
                         f'{1 if known == state else 0}')
        metric("uptime_seconds", "gauge",
               "Seconds since the daemon started.", self.uptime)
        metric("queue_depth", "gauge",
               "Entries queued for execution (after coalescing).",
               queue_snapshot["depth"])
        metric("inflight", "gauge",
               "Entries currently executing on the pool.",
               queue_snapshot["inflight"])
        for name, help_ in (
                ("requests", "HTTP requests handled."),
                ("jobs_submitted", "Submissions admitted to the queue."),
                ("jobs_coalesced",
                 "Submissions that fanned in to an in-flight twin."),
                ("jobs_completed", "Submissions finished with stats."),
                ("jobs_failed", "Submissions finished with a failure."),
                ("jobs_cancelled", "Submissions cancelled (client/drain)."),
                ("jobs_rejected", "Submissions refused by backpressure."),
                ("jobs_shed", "Queued sweep jobs evicted for interactive "
                              "work."),
                ("jobs_replayed", "Incomplete jobs re-enqueued from the "
                                  "journal at startup."),
                ("jobs_rejected_degraded",
                 "Sweep submissions refused while degraded."),
                ("pool_restarts", "Supervised executor restarts after a "
                                  "dead batch."),
                ("circuit_trips", "Times the executor circuit breaker "
                                  "opened.")):
            metric(f"{name}_total", "counter", help_,
                   self.counters.get(name, 0))
        if journal is not None:
            metric("server_restarts_total", "counter",
                   "Daemon restarts recovered through the job journal.",
                   max(0, int(journal.get("epochs", 1)) - 1))
            metric("journal_records_total", "counter",
                   "Verified records replayed from the journal at "
                   "startup.", int(journal.get("records", 0)))
            metric("journal_quarantined_total", "counter",
                   "Torn/corrupt journal lines quarantined at startup.",
                   int(journal.get("quarantined", 0)))
        metric("sims_total", "counter",
               "Simulations actually executed by the pool.",
               executor_totals["sims_run"])
        metric("cache_hits_total", "counter",
               "Jobs served from the persistent disk cache.",
               executor_totals["disk_hits"], '{layer="disk"}')
        lines.append(f'repro_cache_hits_total{{layer="memo"}} '
                     f'{executor_totals["memo_hits"]}')
        metric("worker_restarts_total", "counter",
               "Worker-pool rebuilds after transient failures.",
               pool_restart_count())
        metric("sims_per_second", "gauge",
               "Simulation throughput since startup.",
               self.sims_per_second(executor_totals["sims_run"]))
        lines.append("# HELP repro_job_latency_seconds End-to-end job "
                     "latency (submit to terminal state).")
        lines.append("# TYPE repro_job_latency_seconds summary")
        lines.append(f'repro_job_latency_seconds{{quantile="0.5"}} '
                     f'{p50:.6g}')
        lines.append(f'repro_job_latency_seconds{{quantile="0.95"}} '
                     f'{p95:.6g}')
        lines.append(f"repro_job_latency_seconds_sum "
                     f"{self._latency_sum:.6g}")
        lines.append(f"repro_job_latency_seconds_count "
                     f"{self._latency_count}")
        return "\n".join(lines) + "\n"
