"""``repro serve`` — the async simulation service.

A long-running daemon owning one persistent runner pool and the result
cache, so interactive sweeps and CI jobs share warm state instead of
paying cold-start per invocation.  The serving layer re-applies the
paper's reuse idea at request granularity: identical in-flight requests
*coalesce* onto one execution (keyed by the runtime's content-addressed
cache key) exactly as the mechanism reuses a control-independent slice
instead of re-executing it.

Modules: ``protocol`` (versioned wire types), ``queue`` (priority +
fairness + coalescing), ``scheduler`` (admission control + dispatch +
pool supervision), ``journal`` (the crash-safety write-ahead log),
``server`` (asyncio front end), ``client`` (resilient wire client +
thin-client runner), ``metrics`` (Prometheus / healthz).
"""

from .client import RemoteRunner, ServeClient, ServeError, parse_address
from .journal import JobJournal, JournalReplay, replay_journal
from .metrics import ServerMetrics
from .protocol import (DEFAULT_PORT, PROTOCOL_VERSION, ErrorInfo, JobSpec,
                       JobStatus, ProtocolError)
from .queue import ServeQueue
from .scheduler import (AdmissionController, Dispatcher, PoolSupervisor,
                        SimExecutor)
from .server import ServeServer, serve_main

__all__ = [
    "AdmissionController",
    "DEFAULT_PORT",
    "Dispatcher",
    "ErrorInfo",
    "JobJournal",
    "JobSpec",
    "JobStatus",
    "JournalReplay",
    "PROTOCOL_VERSION",
    "PoolSupervisor",
    "ProtocolError",
    "RemoteRunner",
    "ServeClient",
    "ServeError",
    "ServeQueue",
    "ServeServer",
    "ServerMetrics",
    "SimExecutor",
    "parse_address",
    "replay_journal",
    "serve_main",
]
