"""Blocking client for the simulation service.

Two layers:

* :class:`ServeClient` — the wire client: one HTTP request per call
  (the server closes connections after each response), JSON envelopes
  parsed into protocol types, and a :meth:`ServeClient.run` convenience
  that submits a batch, honours ``retry_after`` backpressure, polls to
  terminal states and collects results.
* :class:`RemoteRunner` — an :class:`~repro.experiments.common.Runner`
  whose ``run_many`` ships every pending point to a daemon instead of a
  local worker pool.  Figures and suites built on ``Runner`` work
  unchanged (``repro suite --server``, ``repro figure --server``):
  stats come back as the same :class:`~repro.uarch.SimStats` values the
  daemon's runner produced, and failures surface as the same
  :class:`~repro.runtime.FailedResult` holes a local ``--keep-going``
  sweep would report.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..experiments.common import Runner
from ..runtime import FailedResult, ResultCache, RunSpec
from ..uarch import SimStats
from . import protocol
from .protocol import ErrorInfo, JobSpec, JobStatus

#: outcome of one spec: terminal status + stats payload (None on failure)
Outcome = Tuple[JobStatus, Optional[dict]]

#: status-poll interval while waiting on the daemon
POLL_INTERVAL = 0.1


class ServeError(RuntimeError):
    """The daemon is unreachable or answered outside the protocol."""


def parse_address(addr: str) -> Tuple[str, int]:
    """``host``, ``host:port`` or ``http://host:port`` -> (host, port)."""
    addr = addr.strip()
    for prefix in ("http://", "https://"):
        if addr.startswith(prefix):
            addr = addr[len(prefix):]
    addr = addr.rstrip("/")
    host, _, port = addr.partition(":")
    try:
        return host or "127.0.0.1", (int(port) if port
                                     else protocol.DEFAULT_PORT)
    except ValueError:
        raise ServeError(f"bad server address {addr!r} "
                         f"(expected host[:port])") from None


class ServeClient:
    """Synchronous wire client for one daemon address."""

    def __init__(self, addr: str, timeout: float = 30.0):
        self.host, self.port = parse_address(addr)
        self.timeout = timeout

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- wire ------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> Tuple[int, object]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body)
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
        except (OSError, http.client.HTTPException) as exc:
            raise ServeError(
                f"cannot reach repro serve at {self.base_url}: "
                f"{exc}") from None
        finally:
            conn.close()
        ctype = resp.headers.get("Content-Type", "")
        if ctype.startswith("application/json"):
            try:
                return resp.status, json.loads(raw)
            except ValueError:
                raise ServeError(
                    f"malformed JSON from {self.base_url}{path}") from None
        return resp.status, raw.decode("utf-8", "replace")

    @staticmethod
    def _envelope(status: int, body: object) -> dict:
        if not isinstance(body, dict) or "ok" not in body:
            raise ServeError(
                f"unexpected response (HTTP {status}): {body!r}")
        return body

    # -- endpoints -------------------------------------------------------
    def submit(self, specs: Sequence[JobSpec]) -> List[dict]:
        """Submit a batch; returns the per-job accept/reject decisions
        (``{"accepted", "id"?, "coalesced"?, "error"?}`` per spec)."""
        body = {"v": protocol.PROTOCOL_VERSION,
                "jobs": [s.to_dict() for s in specs]}
        status, raw = self._request(
            "POST", f"{protocol.API_PREFIX}/submit", body)
        env = self._envelope(status, raw)
        if not env.get("ok"):
            err = ErrorInfo.from_dict(env.get("error"))
            raise ServeError(f"submit rejected: {err.message}")
        jobs = env.get("jobs")
        if not isinstance(jobs, list) or len(jobs) != len(specs):
            raise ServeError("submit response does not match the batch")
        return jobs

    def status(self, job_id: str) -> JobStatus:
        status, raw = self._request(
            "GET", f"{protocol.API_PREFIX}/status?id={job_id}")
        env = self._envelope(status, raw)
        if not env.get("ok"):
            err = ErrorInfo.from_dict(env.get("error"))
            raise ServeError(f"status {job_id}: {err.message}")
        return JobStatus.from_dict(env.get("job"))

    def result(self, job_id: str) -> Outcome:
        """Terminal (status, stats) for one job; stats is None unless
        the job finished ``done``.  Frees the ticket server-side."""
        status, raw = self._request(
            "GET", f"{protocol.API_PREFIX}/result?id={job_id}")
        env = self._envelope(status, raw)
        if not env.get("ok"):
            err = ErrorInfo.from_dict(env.get("error"))
            raise ServeError(f"result {job_id}: {err.message}")
        job = JobStatus.from_dict(env.get("job"))
        stats = env.get("stats")
        return job, stats if isinstance(stats, dict) else None

    def cancel(self, job_id: str) -> bool:
        status, raw = self._request(
            "POST", f"{protocol.API_PREFIX}/cancel",
            {"v": protocol.PROTOCOL_VERSION, "id": job_id})
        env = self._envelope(status, raw)
        return bool(env.get("cancelled"))

    def health(self) -> dict:
        status, raw = self._request("GET", "/healthz")
        return self._envelope(status, raw)

    def metrics_text(self) -> str:
        status, raw = self._request("GET", "/metrics")
        if status != 200 or not isinstance(raw, str):
            raise ServeError(f"metrics endpoint answered HTTP {status}")
        return raw

    # -- convenience -----------------------------------------------------
    def run(self, specs: Sequence[JobSpec],
            on_update: Optional[Callable[[str, JobStatus], None]] = None,
            poll: float = POLL_INTERVAL,
            backoff_tries: int = 60) -> List[Outcome]:
        """Submit, ride out backpressure, poll to completion.

        Per-spec, order-preserving.  Rejections with a ``retry_after``
        hint are resubmitted (up to ``backoff_tries`` rounds); permanent
        refusals (bad request, draining, shedding) become synthetic
        ``failed`` outcomes so sweeps degrade like ``--keep-going``
        instead of aborting.  ``on_update(id, status)`` fires on every
        observed state change.
        """
        outcomes: List[Optional[Outcome]] = [None] * len(specs)
        waiting: Dict[str, int] = {}          # job id -> spec index
        todo = list(range(len(specs)))
        tries = 0
        while todo:
            decisions = self.submit([specs[i] for i in todo])
            retry: List[int] = []
            wait_hint = 0.0
            for i, decision in zip(todo, decisions):
                if decision.get("accepted"):
                    job_id = str(decision.get("id"))
                    waiting[job_id] = i
                    if on_update:
                        on_update(job_id, JobStatus(
                            id=job_id, kernel=specs[i].kernel,
                            state=str(decision.get("state",
                                                   protocol.QUEUED))))
                    continue
                err = ErrorInfo.from_dict(decision.get("error"))
                if err.kind == "rejected" and tries < backoff_tries:
                    retry.append(i)
                    wait_hint = max(wait_hint, err.retry_after)
                    continue
                outcomes[i] = (JobStatus(
                    id="", kernel=specs[i].kernel, state=protocol.FAILED,
                    source="failed", error=err), None)
            todo = retry
            if todo:
                tries += 1
                time.sleep(max(0.1, wait_hint or poll))
        seen: Dict[str, str] = {}
        while waiting:
            for job_id in list(waiting):
                st = self.status(job_id)
                if on_update and seen.get(job_id) != st.state:
                    seen[job_id] = st.state
                    on_update(job_id, st)
                if st.terminal:
                    idx = waiting.pop(job_id)
                    outcomes[idx] = self.result(job_id)
            if waiting:
                time.sleep(poll)
        assert all(o is not None for o in outcomes)
        return [o for o in outcomes if o is not None]


class RemoteRunner(Runner):
    """A ``Runner`` whose misses execute on a remote daemon.

    The local memo still deduplicates within the process; everything
    else — disk cache, worker pool, coalescing — lives on the server.
    Accounting mirrors the server's per-job ``source`` attribution so
    ``runtime_summary`` stays honest about where results came from.
    """

    def __init__(self, addr: str,
                 scale: Optional[float] = None,
                 seed: Optional[int] = None,
                 priority: str = "sweep",
                 client_name: str = "cli",
                 keep_going: bool = False,
                 on_update: Optional[Callable[[str, JobStatus],
                                              None]] = None):
        # jobs=1 and a disabled cache: this process does no local
        # simulation and must not shadow the daemon's persistent cache.
        super().__init__(scale=scale, seed=seed, jobs=1,
                         cache=ResultCache(enabled=False),
                         keep_going=keep_going)
        self.client = ServeClient(addr)
        self.priority = priority
        self.client_name = client_name
        self.on_update = on_update
        #: server-side source tallies (sim/disk/memo/coalesced/failed)
        self.server_sources: Dict[str, int] = {}

    def run_many(self, points: Sequence) -> List[SimStats]:
        """Resolve runs via the daemon, order-preserving.

        Accepts :class:`~repro.runtime.RunSpec` instances (or the
        deprecated ``(kernel, cfg)`` tuples).  Deduplication is by spec
        identity, *not* the canonical cache key: a thin client never
        builds programs locally — the daemon derives the shared key and
        coalesces — so two spellings of one run cost at most one wire
        round-trip each, never a local kernel build.
        """
        resolved: Dict[object, SimStats] = {}
        order: List[object] = []
        pending: List[object] = []
        for point in points:
            spec = self._as_spec(point)
            memo_key = (spec.kernel, spec.cfg) \
                if isinstance(point, tuple) else spec
            order.append(memo_key)
            if memo_key in resolved or memo_key in pending:
                continue
            st = self._memo.get(memo_key)
            if st is not None:
                self.memo_hits += 1
                self.sources[memo_key] = "memo"
                resolved[memo_key] = st
                continue
            pending.append(memo_key)
        if pending:
            sent: List[RunSpec] = []
            for memo_key in pending:
                spec = memo_key if isinstance(memo_key, RunSpec) \
                    else RunSpec(memo_key[0], self.scale, self.seed,
                                 memo_key[1])
                sent.append(spec)
            specs = [JobSpec(kernel=s.kernel, scale=s.scale, seed=s.seed,
                             cfg=s.cfg, policy=s.policy, faults=s.faults,
                             priority=self.priority,
                             client=self.client_name)
                     for s in sent]
            outcomes = self.client.run(specs, on_update=self.on_update)
            for memo_key, spec, (status, stats) in zip(pending, sent,
                                                       outcomes):
                source = status.source or status.state
                self.server_sources[source] = (
                    self.server_sources.get(source, 0) + 1)
                if status.state == protocol.DONE and stats is not None:
                    st = SimStats.from_dict(stats)
                    self._memo[memo_key] = resolved[memo_key] = st
                    self.sources[memo_key] = source
                    continue
                err = status.error or ErrorInfo(
                    kind="failed", message=f"job ended {status.state} "
                                           f"without stats")
                failed = err.to_failed_result(spec.kernel, spec.scale,
                                              spec.seed)
                if not self.keep_going:
                    raise ServeError(f"remote job failed: "
                                     f"{failed.describe()}")
                self.failures.append(failed)
                self.sources[memo_key] = "failed"
                resolved[memo_key] = failed
        return [resolved[k] for k in order]

    def runtime_summary(self) -> str:
        served = sum(self.server_sources.values())
        parts = [f"runtime: {served} job(s) served by "
                 f"{self.client.base_url}"]
        for source in ("sim", "disk", "memo", "coalesced"):
            n = self.server_sources.get(source, 0)
            if n:
                parts.append(f"{n} {source}")
        if self.memo_hits:
            parts.append(f"{self.memo_hits} local memo hit(s)")
        line = ", ".join(parts)
        if self.failures:
            line += f", {len(self.failures)} FAILED"
        return line
