"""Blocking client for the simulation service.

Two layers:

* :class:`ServeClient` — the wire client: one HTTP request per call
  (the server closes connections after each response), JSON envelopes
  parsed into protocol types, and a :meth:`ServeClient.run` convenience
  that submits a batch, honours ``retry_after`` backpressure, polls to
  terminal states and collects results.
* :class:`RemoteRunner` — an :class:`~repro.experiments.common.Runner`
  whose ``run_many`` ships every pending point to a daemon instead of a
  local worker pool.  Figures and suites built on ``Runner`` work
  unchanged (``repro suite --server``, ``repro figure --server``):
  stats come back as the same :class:`~repro.uarch.SimStats` values the
  daemon's runner produced, and failures surface as the same
  :class:`~repro.runtime.FailedResult` holes a local ``--keep-going``
  sweep would report.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..experiments.common import Runner
from ..runtime import FailedResult, ResultCache, RunSpec
from ..uarch import SimStats
from . import protocol
from .protocol import ErrorInfo, JobSpec, JobStatus

#: outcome of one spec: terminal status + stats payload (None on failure)
Outcome = Tuple[JobStatus, Optional[dict]]

#: status-poll interval while waiting on the daemon
POLL_INTERVAL = 0.1

#: wire-level reconnect attempts after a dropped connection / bare 5xx
#: (jittered exponential backoff between attempts — generous enough to
#: ride out a daemon restart, bounded enough to fail a dead one fast)
RECONNECT_TRIES = 8


class ServeError(RuntimeError):
    """The daemon is unreachable or answered outside the protocol.

    ``kind`` carries the server's :class:`ErrorInfo` kind when the
    failure was a protocol-level refusal ('' for wire-level failures),
    so callers can tell *unknown job id* (reattach and resubmit) from
    *cannot reach* (give up after the reconnect budget).
    """

    def __init__(self, message: str, kind: str = ""):
        super().__init__(message)
        self.kind = kind


def parse_address(addr: str) -> Tuple[str, int]:
    """``host``, ``host:port`` or ``http://host:port`` -> (host, port)."""
    addr = addr.strip()
    for prefix in ("http://", "https://"):
        if addr.startswith(prefix):
            addr = addr[len(prefix):]
    addr = addr.rstrip("/")
    host, _, port = addr.partition(":")
    try:
        return host or "127.0.0.1", (int(port) if port
                                     else protocol.DEFAULT_PORT)
    except ValueError:
        raise ServeError(f"bad server address {addr!r} "
                         f"(expected host[:port])") from None


class ServeClient:
    """Synchronous wire client for one daemon address.

    Resilient by default: every request runs under a per-request
    ``timeout`` and a dropped connection (or a bare 5xx outside the
    JSON protocol) is retried up to ``reconnect_tries`` times with
    jittered exponential backoff — enough to ride out a daemon restart
    mid-sweep.  Retrying a submit is safe by construction: jobs are
    content-addressed (:func:`repro.runtime.keys.run_key`), so a
    resubmission coalesces onto the journaled original instead of
    duplicating the simulation.  ``on_event`` (optional) receives
    human-readable resilience events — reconnect attempts, reattaches,
    degraded-server notices — for a client's stderr status stream.
    """

    def __init__(self, addr: str, timeout: float = 30.0,
                 reconnect_tries: int = RECONNECT_TRIES,
                 backoff_base: float = 0.25, backoff_cap: float = 4.0,
                 on_event: Optional[Callable[[str], None]] = None):
        self.host, self.port = parse_address(addr)
        self.timeout = timeout
        self.reconnect_tries = max(0, reconnect_tries)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.on_event = on_event
        self._rng = random.Random()
        #: chaos seam: when set, called as ``f(method, path)`` after the
        #: request is sent; returning True drops the connection before
        #: the response is read (exercises the reconnect path exactly
        #: where a real connection reset would land)
        self.chaos_drop: Optional[Callable[[str, str], bool]] = None

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _event(self, message: str) -> None:
        if self.on_event is not None:
            self.on_event(message)

    # -- wire ------------------------------------------------------------
    def _request_once(self, method: str, path: str,
                      body: Optional[dict] = None) -> Tuple[int, object]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body)
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            if self.chaos_drop is not None \
                    and self.chaos_drop(method, path):
                raise ConnectionResetError(
                    "chaos: connection dropped after send")
            resp = conn.getresponse()
            raw = resp.read()
        finally:
            conn.close()
        ctype = resp.headers.get("Content-Type", "")
        if ctype.startswith("application/json"):
            try:
                return resp.status, json.loads(raw)
            except ValueError:
                raise ServeError(
                    f"malformed JSON from {self.base_url}{path}") from None
        return resp.status, raw.decode("utf-8", "replace")

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> Tuple[int, object]:
        """One request with bounded jittered-backoff reconnect.

        Wire-level problems (connection refused/reset, timeouts, and
        5xx responses that carry no protocol envelope) are retried;
        protocol-level answers — including error envelopes — pass
        through untouched for the endpoint methods to interpret.
        """
        last: object = None
        for attempt in range(self.reconnect_tries + 1):
            try:
                status, parsed = self._request_once(method, path, body)
            except (OSError, http.client.HTTPException) as exc:
                last = exc
            else:
                enveloped = isinstance(parsed, dict) and "ok" in parsed
                if status >= 500 and not enveloped:
                    last = f"HTTP {status} without a protocol envelope"
                else:
                    return status, parsed
            if attempt >= self.reconnect_tries:
                break
            delay = min(self.backoff_cap,
                        self.backoff_base * (2 ** attempt))
            delay *= 0.5 + self._rng.random()   # jitter: 0.5x..1.5x
            self._event(f"connection to {self.base_url} failed ({last}); "
                        f"retrying in {delay:.1f}s "
                        f"({attempt + 1}/{self.reconnect_tries})")
            time.sleep(delay)
        raise ServeError(
            f"cannot reach repro serve at {self.base_url} after "
            f"{self.reconnect_tries + 1} attempt(s): {last}")

    @staticmethod
    def _envelope(status: int, body: object) -> dict:
        if not isinstance(body, dict) or "ok" not in body:
            raise ServeError(
                f"unexpected response (HTTP {status}): {body!r}")
        return body

    # -- endpoints -------------------------------------------------------
    def submit(self, specs: Sequence[JobSpec]) -> List[dict]:
        """Submit a batch; returns the per-job accept/reject decisions
        (``{"accepted", "id"?, "coalesced"?, "error"?}`` per spec)."""
        body = {"v": protocol.PROTOCOL_VERSION,
                "jobs": [s.to_dict() for s in specs]}
        status, raw = self._request(
            "POST", f"{protocol.API_PREFIX}/submit", body)
        env = self._envelope(status, raw)
        if not env.get("ok"):
            err = ErrorInfo.from_dict(env.get("error"))
            raise ServeError(f"submit rejected: {err.message}",
                             kind=err.kind)
        jobs = env.get("jobs")
        if not isinstance(jobs, list) or len(jobs) != len(specs):
            raise ServeError("submit response does not match the batch")
        return jobs

    def status(self, job_id: str) -> JobStatus:
        status, raw = self._request(
            "GET", f"{protocol.API_PREFIX}/status?id={job_id}")
        env = self._envelope(status, raw)
        if not env.get("ok"):
            err = ErrorInfo.from_dict(env.get("error"))
            raise ServeError(f"status {job_id}: {err.message}",
                             kind=err.kind)
        return JobStatus.from_dict(env.get("job"))

    def result(self, job_id: str) -> Outcome:
        """Terminal (status, stats) for one job; stats is None unless
        the job finished ``done``.  Frees the ticket server-side."""
        status, raw = self._request(
            "GET", f"{protocol.API_PREFIX}/result?id={job_id}")
        env = self._envelope(status, raw)
        if not env.get("ok"):
            err = ErrorInfo.from_dict(env.get("error"))
            raise ServeError(f"result {job_id}: {err.message}",
                             kind=err.kind)
        job = JobStatus.from_dict(env.get("job"))
        stats = env.get("stats")
        return job, stats if isinstance(stats, dict) else None

    def cancel(self, job_id: str) -> bool:
        status, raw = self._request(
            "POST", f"{protocol.API_PREFIX}/cancel",
            {"v": protocol.PROTOCOL_VERSION, "id": job_id})
        env = self._envelope(status, raw)
        return bool(env.get("cancelled"))

    def health(self) -> dict:
        status, raw = self._request("GET", "/healthz")
        return self._envelope(status, raw)

    def metrics_text(self) -> str:
        status, raw = self._request("GET", "/metrics")
        if status != 200 or not isinstance(raw, str):
            raise ServeError(f"metrics endpoint answered HTTP {status}")
        return raw

    # -- convenience -----------------------------------------------------
    def run(self, specs: Sequence[JobSpec],
            on_update: Optional[Callable[[str, JobStatus], None]] = None,
            poll: float = POLL_INTERVAL,
            backoff_tries: int = 60,
            on_poll: Optional[Callable[[int, int], None]] = None,
            ) -> List[Outcome]:
        """Submit, ride out backpressure and restarts, poll to completion.

        Per-spec, order-preserving.  Rejections with a ``retry_after``
        hint (queue full, degraded executor) are resubmitted up to
        ``backoff_tries`` rounds; permanent refusals (bad request,
        draining, shedding) become synthetic ``failed`` outcomes so
        sweeps degrade like ``--keep-going`` instead of aborting.

        Survives a server restart mid-sweep: when a poll answers
        *unknown job id* (the restarted daemon re-enqueued the work
        from its journal under fresh ids), the spec is resubmitted —
        content-addressing coalesces it onto the replayed job, so no
        simulation is duplicated and the final outcomes are identical
        to an uninterrupted run.

        ``on_update(id, status)`` fires on every observed state change;
        ``on_poll(done, total)`` fires once per poll round (the chaos
        harness's injection point).
        """
        outcomes: List[Optional[Outcome]] = [None] * len(specs)
        waiting: Dict[str, int] = {}          # job id -> spec index
        todo = list(range(len(specs)))
        tries = 0
        seen: Dict[str, str] = {}             # job id -> last state shown
        while todo or waiting:
            if todo:
                decisions = self.submit([specs[i] for i in todo])
                retry: List[int] = []
                wait_hint = 0.0
                for i, decision in zip(todo, decisions):
                    if decision.get("accepted"):
                        job_id = str(decision.get("id"))
                        waiting[job_id] = i
                        if on_update:
                            on_update(job_id, JobStatus(
                                id=job_id, kernel=specs[i].kernel,
                                state=str(decision.get("state",
                                                       protocol.QUEUED))))
                        continue
                    err = ErrorInfo.from_dict(decision.get("error"))
                    if err.kind in ("rejected", "degraded") \
                            and tries < backoff_tries:
                        if err.kind == "degraded":
                            self._event(f"server degraded: {err.message}")
                        retry.append(i)
                        wait_hint = max(wait_hint, err.retry_after)
                        continue
                    outcomes[i] = (JobStatus(
                        id="", kernel=specs[i].kernel,
                        state=protocol.FAILED, source="failed",
                        error=err), None)
                todo = retry
                if todo:
                    tries += 1
                    time.sleep(max(0.1, wait_hint or poll))
            reattach: List[int] = []
            for job_id in list(waiting):
                try:
                    st = self.status(job_id)
                except ServeError as exc:
                    if exc.kind == "not-found":
                        # The server restarted and this id died with it;
                        # the job itself was journaled and replayed.
                        reattach.append(waiting.pop(job_id))
                        continue
                    raise
                if on_update and seen.get(job_id) != st.state:
                    seen[job_id] = st.state
                    on_update(job_id, st)
                if st.terminal:
                    idx = waiting.pop(job_id)
                    try:
                        outcomes[idx] = self.result(job_id)
                    except ServeError as exc:
                        if exc.kind != "not-found":
                            raise
                        reattach.append(idx)
            if reattach:
                self._event(f"server lost {len(reattach)} job id(s) "
                            f"(restart?); resubmitting to reattach")
                todo.extend(reattach)
            if on_poll is not None:
                on_poll(sum(1 for o in outcomes if o is not None),
                        len(specs))
            if waiting and not todo:
                time.sleep(poll)
        assert all(o is not None for o in outcomes)
        return [o for o in outcomes if o is not None]


class RemoteRunner(Runner):
    """A ``Runner`` whose misses execute on a remote daemon.

    The local memo still deduplicates within the process; everything
    else — disk cache, worker pool, coalescing — lives on the server.
    Accounting mirrors the server's per-job ``source`` attribution so
    ``runtime_summary`` stays honest about where results came from.
    """

    def __init__(self, addr: str,
                 scale: Optional[float] = None,
                 seed: Optional[int] = None,
                 priority: str = "sweep",
                 client_name: str = "cli",
                 keep_going: bool = False,
                 on_update: Optional[Callable[[str, JobStatus],
                                              None]] = None,
                 on_event: Optional[Callable[[str], None]] = None,
                 sampling: Optional[str] = None):
        # jobs=1 and a disabled cache: this process does no local
        # simulation and must not shadow the daemon's persistent cache.
        super().__init__(scale=scale, seed=seed, jobs=1,
                         cache=ResultCache(enabled=False),
                         keep_going=keep_going, sampling=sampling)
        self.client = ServeClient(addr, on_event=on_event)
        self.priority = priority
        self.client_name = client_name
        self.on_update = on_update
        #: server-side source tallies (sim/disk/memo/coalesced/failed)
        self.server_sources: Dict[str, int] = {}

    def run_many(self, points: Sequence) -> List[SimStats]:
        """Resolve runs via the daemon, order-preserving.

        Accepts :class:`~repro.runtime.RunSpec` instances (or the
        deprecated ``(kernel, cfg)`` tuples).  Deduplication is by spec
        identity, *not* the canonical cache key: a thin client never
        builds programs locally — the daemon derives the shared key and
        coalesces — so two spellings of one run cost at most one wire
        round-trip each, never a local kernel build.
        """
        resolved: Dict[object, SimStats] = {}
        order: List[object] = []
        pending: List[object] = []
        for point in points:
            spec = self._as_spec(point)
            memo_key = (spec.kernel, spec.cfg) \
                if isinstance(point, tuple) else spec
            order.append(memo_key)
            if memo_key in resolved or memo_key in pending:
                continue
            st = self._memo.get(memo_key)
            if st is not None:
                self.memo_hits += 1
                self.sources[memo_key] = "memo"
                resolved[memo_key] = st
                continue
            pending.append(memo_key)
        if pending:
            sent: List[RunSpec] = []
            for memo_key in pending:
                if isinstance(memo_key, RunSpec):
                    spec = memo_key
                else:
                    spec = RunSpec(memo_key[0], self.scale, self.seed,
                                   memo_key[1])
                    if self.sampling is not None:
                        spec = replace(spec, sampling=self.sampling)
                sent.append(spec)
            specs = [JobSpec(kernel=s.kernel, scale=s.scale, seed=s.seed,
                             cfg=s.cfg, policy=s.policy, faults=s.faults,
                             sampling=s.sampling,
                             priority=self.priority,
                             client=self.client_name)
                     for s in sent]
            outcomes = self.client.run(specs, on_update=self.on_update)
            for memo_key, spec, (status, stats) in zip(pending, sent,
                                                       outcomes):
                source = status.source or status.state
                self.server_sources[source] = (
                    self.server_sources.get(source, 0) + 1)
                if status.state == protocol.DONE and stats is not None:
                    st = SimStats.from_dict(stats)
                    self._memo[memo_key] = resolved[memo_key] = st
                    self.sources[memo_key] = source
                    continue
                err = status.error or ErrorInfo(
                    kind="failed", message=f"job ended {status.state} "
                                           f"without stats")
                failed = err.to_failed_result(spec.kernel, spec.scale,
                                              spec.seed)
                if not self.keep_going:
                    raise ServeError(f"remote job failed: "
                                     f"{failed.describe()}")
                self.failures.append(failed)
                self.sources[memo_key] = "failed"
                resolved[memo_key] = failed
        return [resolved[k] for k in order]

    def runtime_summary(self) -> str:
        served = sum(self.server_sources.values())
        parts = [f"runtime: {served} job(s) served by "
                 f"{self.client.base_url}"]
        for source in ("sim", "disk", "memo", "coalesced"):
            n = self.server_sources.get(source, 0)
            if n:
                parts.append(f"{n} {source}")
        if self.memo_hits:
            parts.append(f"{self.memo_hits} local memo hit(s)")
        line = ", ".join(parts)
        if self.failures:
            line += f", {len(self.failures)} FAILED"
        return line
