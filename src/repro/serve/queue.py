"""Priority job queue with per-client fairness and request coalescing.

The queue applies the paper's reuse idea one level up: just as the
mechanism validates a control-independent slice once and *skips*
re-executing it, the server detects identical in-flight simulation
requests and runs them once.  Identity is the runtime's existing
content-addressed cache key (predecode image digest + resolved config +
scale/seed — :func:`repro.runtime.job_key`), so "identical" here means
*provably the same simulation*, not merely the same argument strings.

Structure:

* a :class:`Ticket` is one client-visible submission (what ``status`` /
  ``result`` address by id);
* an :class:`Entry` is one unit of execution — the fan-in point.  N
  tickets with the same key attach to one entry and fan out N responses
  when it finishes;
* entries queue in two priority lanes (``interactive`` before
  ``sweep``), each lane holding one FIFO per client, drained round-robin
  across clients so one chatty client cannot starve the rest.

Thread discipline: every method here runs on the server's event-loop
thread.  The executor thread only ever touches the ``Entry`` objects a
dispatch pass handed it.
"""

from __future__ import annotations

import itertools
import os
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Tuple

from . import protocol
from .protocol import ErrorInfo, JobSpec, JobStatus

_ids = itertools.count(1)


def _new_ticket_id() -> str:
    return f"j{next(_ids):06d}-{os.urandom(3).hex()}"


class Ticket:
    """One client-visible submission (identified by ``id``)."""

    __slots__ = ("id", "spec", "key", "state", "source", "error", "stats",
                 "submitted_at", "started_at", "finished_at", "coalesced",
                 "replayed")

    def __init__(self, spec: JobSpec, key: str, now: float,
                 replayed: bool = False):
        self.id = _new_ticket_id()
        self.spec = spec
        self.key = key
        self.state = protocol.QUEUED
        self.source = ""
        self.error: Optional[ErrorInfo] = None
        self.stats: Optional[dict] = None     # SimStats.to_dict payload
        self.submitted_at = now
        self.started_at = 0.0
        self.finished_at = 0.0
        #: True when this ticket attached to an entry that already existed
        self.coalesced = False
        #: True for a server-owned ticket resurrected by journal replay
        #: (no client holds its id; it exists so the re-enqueued job has
        #: a well-formed entry for resubmitting clients to coalesce on)
        self.replayed = replayed

    def status(self) -> JobStatus:
        return JobStatus(id=self.id, kernel=self.spec.kernel,
                         state=self.state, source=self.source,
                         error=self.error)

    @property
    def terminal(self) -> bool:
        return self.state in protocol.TERMINAL_STATES


class Entry:
    """One unit of execution: every ticket sharing one cache key."""

    __slots__ = ("key", "spec", "priority", "client", "tickets", "state",
                 "seq")

    _seq = itertools.count(1)

    def __init__(self, ticket: Ticket):
        self.key = ticket.key
        self.spec = ticket.spec             # representative spec
        self.priority = ticket.spec.priority
        self.client = ticket.spec.client    # fairness lane key
        self.tickets: List[Ticket] = [ticket]
        self.state = protocol.QUEUED
        self.seq = next(Entry._seq)         # arrival order (for shedding)


#: one lane: client name -> FIFO of queued entries
_Lane = "OrderedDict[str, Deque[Entry]]"


class ServeQueue:
    """The daemon's admission queue (coalescing + fairness, no policy).

    Admission *decisions* (reject/shed) live in the scheduler; this
    class only implements the structure they act on.
    """

    def __init__(self) -> None:
        #: key -> in-flight entry (queued or running): the coalesce index
        self.entries: Dict[str, Entry] = {}
        self._lanes: Dict[str, OrderedDict] = {
            p: OrderedDict() for p in protocol.PRIORITIES}
        #: queued (not yet dispatched) entries
        self.depth = 0
        #: entries currently executing
        self.inflight = 0

    # -- submission ------------------------------------------------------
    def coalesce(self, ticket: Ticket) -> Optional[Entry]:
        """Attach ``ticket`` to an in-flight entry with the same key.

        Returns the entry (ticket rides along; state mirrors the
        entry's), or None when no such entry exists.  An interactive
        ticket joining a *queued* sweep entry upgrades it — the fan-in
        must not leave an interactive client waiting behind sweep jobs.
        """
        entry = self.entries.get(ticket.key)
        if entry is None:
            return None
        entry.tickets.append(ticket)
        ticket.coalesced = True
        ticket.state = entry.state
        if entry.state == protocol.RUNNING:
            ticket.started_at = ticket.submitted_at
        elif (ticket.spec.priority == "interactive"
                and entry.priority == "sweep"):
            self._remove_queued(entry)
            entry.priority = "interactive"
            self._enqueue(entry)
        return entry

    def push(self, ticket: Ticket) -> Entry:
        """Queue a brand-new entry for ``ticket`` (no coalesce target)."""
        entry = Entry(ticket)
        self.entries[entry.key] = entry
        self._enqueue(entry)
        return entry

    def _enqueue(self, entry: Entry) -> None:
        lane = self._lanes[entry.priority]
        lane.setdefault(entry.client, deque()).append(entry)
        self.depth += 1

    def _remove_queued(self, entry: Entry) -> None:
        lane = self._lanes[entry.priority]
        dq = lane.get(entry.client)
        if dq is not None:
            try:
                dq.remove(entry)
            except ValueError:
                return
            if not dq:
                del lane[entry.client]
            self.depth -= 1

    # -- dispatch --------------------------------------------------------
    def pop_batch(self, max_n: int) -> List[Entry]:
        """Take up to ``max_n`` queued entries for execution.

        Interactive entries first; within a lane, one entry per client
        per round (round-robin) so clients progress evenly.  Popped
        entries transition to RUNNING (their tickets with them) and stay
        in the coalesce index until :meth:`finish`.
        """
        out: List[Entry] = []
        for priority in protocol.PRIORITIES:
            lane = self._lanes[priority]
            while lane and len(out) < max_n:
                for client in list(lane.keys()):
                    if len(out) >= max_n:
                        break
                    dq = lane.get(client)
                    if not dq:
                        lane.pop(client, None)
                        continue
                    out.append(dq.popleft())
                    if not dq:
                        lane.pop(client, None)
        for entry in out:
            entry.state = protocol.RUNNING
            for t in entry.tickets:
                t.state = protocol.RUNNING
        self.depth -= len(out)
        self.inflight += len(out)
        return out

    def finish(self, entry: Entry) -> None:
        """Retire a dispatched entry (tickets already finalised)."""
        self.entries.pop(entry.key, None)
        self.inflight -= 1

    # -- eviction / cancellation ----------------------------------------
    def shed_newest_sweep(self) -> Optional[Entry]:
        """Evict the most recently queued sweep entry (LIFO shed).

        Newest-first keeps the work already waiting longest; entries
        that gained an interactive ticket were upgraded out of the sweep
        lane and are never shed.
        """
        lane = self._lanes["sweep"]
        victim: Optional[Entry] = None
        for dq in lane.values():
            if dq and (victim is None or dq[-1].seq > victim.seq):
                victim = dq[-1]
        if victim is None:
            return None
        self._remove_queued(victim)
        del self.entries[victim.key]
        return victim

    def cancel(self, ticket: Ticket) -> bool:
        """Detach a *queued* ticket; True when it was cancelled.

        Cancelling the last ticket of an entry removes the entry; a
        coalesced sibling keeps the entry alive.  Running or terminal
        tickets are not cancellable (the pool owns them).
        """
        if ticket.state != protocol.QUEUED:
            return False
        entry = self.entries.get(ticket.key)
        if entry is None or ticket not in entry.tickets:
            return False
        entry.tickets.remove(ticket)
        if not entry.tickets:
            self._remove_queued(entry)
            del self.entries[entry.key]
        return True

    def drain(self) -> List[Entry]:
        """Remove every queued entry (shutdown path); returns them."""
        drained: List[Entry] = []
        for priority in protocol.PRIORITIES:
            lane = self._lanes[priority]
            for dq in lane.values():
                drained.extend(dq)
            lane.clear()
        for entry in drained:
            del self.entries[entry.key]
        self.depth -= len(drained)
        return drained

    # -- introspection ---------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        queued_tickets = sum(
            len(e.tickets) for e in self.entries.values()
            if e.state == protocol.QUEUED)
        return {"depth": self.depth, "inflight": self.inflight,
                "queued_tickets": queued_tickets}
