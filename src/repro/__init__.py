"""repro — reproduction of "Control-Flow Independence Reuse via Dynamic
Vectorization" (Pajuelo, Gonzalez, Valero, IPDPS 2005).

Public API quick tour::

    from repro import run_kernel, configs
    stats = run_kernel("bzip2", configs.ci(ports=1, regs=512))
    print(stats.ipc, stats.reuse_fraction)

See README.md for the full walkthrough and DESIGN.md for the system map.
"""

import os
from typing import Optional

from . import isa, observe, trace, uarch, workloads
from . import runtime
from .ci import CIEngine, MechanismPipeline, PolicySpec
from .isa import Program, assemble
from .observe import Observer
from .uarch import Core, Hooks, MechanismHooks, ProcessorConfig, SimStats, simulate
from .uarch import config as configs
from .workloads import build_program, build_suite, kernel_names

__version__ = "1.0.0"


def hooks_for(cfg: ProcessorConfig) -> Optional[MechanismHooks]:
    """The mechanism hooks matching ``cfg.ci_policy`` (None for baseline).

    The policy name resolves against the registry at attach time, so a
    policy registered after config construction still works."""
    return MechanismPipeline() if cfg.ci_policy else None


def run_program(program: Program, cfg: Optional[ProcessorConfig] = None,
                max_instructions: Optional[int] = None,
                observer: Optional[Observer] = None,
                faults=None, check: Optional[bool] = None) -> SimStats:
    """Simulate ``program`` under ``cfg`` with the right mechanism attached.

    ``faults`` (or ``REPRO_FAULTS``) is a fault-plan spec string or
    :class:`repro.faults.FaultPlan`; the run executes under a
    :class:`~repro.faults.FaultInjector`.  ``check`` (or ``REPRO_CHECK=1``)
    attaches the per-cycle invariant checker and the end-of-run
    architectural-state oracle, raising on the first violation.  With
    neither active this is the plain fast path — no fault machinery is
    even imported.
    """
    cfg = cfg or ProcessorConfig()
    if faults is None:
        faults = os.environ.get("REPRO_FAULTS") or None
    if check is None:
        check = os.environ.get("REPRO_CHECK", "").lower() in (
            "1", "on", "yes", "true")
    hooks = hooks_for(cfg)
    if faults is None and not check:
        return simulate(program, cfg, hooks=hooks,
                        max_instructions=max_instructions, observer=observer)
    from .faults import FaultInjector, FaultPlan, InvariantChecker
    from .faults.oracle import check_final_state
    from .observe import MultiObserver
    if faults is not None:
        plan = faults if isinstance(faults, FaultPlan) \
            else FaultPlan.parse(str(faults))
        hooks = FaultInjector(plan, inner=hooks)
    obs = observer
    if check:
        checker = InvariantChecker(strict=True)
        obs = checker if obs is None else MultiObserver([obs, checker])
    core = Core(cfg, program, hooks, observer=obs)
    stats = core.run(max_instructions=max_instructions)
    if check:
        check_final_state(core)
    return stats


def run_kernel(name: str, cfg: Optional[ProcessorConfig] = None,
               scale: float = 1.0, seed: int = 1,
               max_instructions: Optional[int] = None,
               observer: Optional[Observer] = None) -> SimStats:
    """Build one suite kernel and simulate it under ``cfg``."""
    return run_program(build_program(name, scale, seed), cfg,
                       max_instructions=max_instructions, observer=observer)


__all__ = [
    "CIEngine",
    "Core",
    "Hooks",
    "MechanismHooks",
    "MechanismPipeline",
    "PolicySpec",
    "ProcessorConfig",
    "Program",
    "SimStats",
    "assemble",
    "build_program",
    "build_suite",
    "configs",
    "hooks_for",
    "isa",
    "kernel_names",
    "observe",
    "Observer",
    "run_kernel",
    "run_program",
    "runtime",
    "simulate",
    "trace",
    "uarch",
    "workloads",
]
