"""Benchmark suite registry: the 12 SpecInt2000-like kernels."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..isa import Program, assemble
from . import kernels


@dataclass(frozen=True)
class KernelSpec:
    """One suite member: builder, reference model and characterisation."""

    name: str
    build_source: Callable[[float, int], str]
    reference: Callable[[float, int], Dict[int, int]]
    description: str
    traits: str

    def program(self, scale: float = 1.0, seed: int = 1) -> Program:
        return assemble(self.build_source(scale, seed), name=self.name)


#: Suite members in the paper's presentation order.
SUITE: List[KernelSpec] = [
    KernelSpec("bzip2", kernels.build_bzip2, kernels.ref_bzip2,
               "byte-frequency pass with prefix-sum store-out",
               "hard threshold hammock, unit-stride loads and stores"),
    KernelSpec("crafty", kernels.build_crafty, kernels.ref_crafty,
               "bitboard bit tests with in-place data evolution",
               "data-dependent bit-test hammock, unit-stride loads"),
    KernelSpec("eon", kernels.build_eon, kernels.ref_eon,
               "FP-flavoured pixel pass with highly biased branch",
               "easy branches (MBS filters them), FP unit pressure"),
    KernelSpec("gap", kernels.build_gap, kernels.ref_gap,
               "permutation walk with indirect value lookup",
               "mixed strided + indirect loads"),
    KernelSpec("gcc", kernels.build_gcc, kernels.ref_gcc,
               "branch-dense classification (2 hammocks + if-then)",
               "many hard branches, short CI regions"),
    KernelSpec("gzip", kernels.build_gzip, kernels.ref_gzip,
               "LZ-style match loop with geometric trip counts",
               "variable-trip inner loop, drifting strides"),
    KernelSpec("mcf", kernels.build_mcf, kernels.ref_mcf,
               "pointer chase over a random cycle",
               "non-strided loads: CI selected but rarely reused"),
    KernelSpec("parser", kernels.build_parser, kernels.ref_parser,
               "nested character classification",
               "nested hammocks, path-dependent token register"),
    KernelSpec("perlbmk", kernels.build_perlbmk, kernels.ref_perlbmk,
               "multiplicative hash chain",
               "self-recurrent vectorizable chain through INT_MUL"),
    KernelSpec("twolf", kernels.build_twolf, kernels.ref_twolf,
               "annealing accept/reject against evolving incumbent",
               "hard branch, one arm writes a CI-blocking register"),
    KernelSpec("vortex", kernels.build_vortex, kernels.ref_vortex,
               "record updates with in-place stores",
               "stride-16 loads, store/replica coherence pressure"),
    KernelSpec("vpr", kernels.build_vpr, kernels.ref_vpr,
               "|a-b| placement cost with both-arms-write hammock",
               "CI blocked for diff consumers, clean accumulator reusable"),
]

BY_NAME: Dict[str, KernelSpec] = {k.name: k for k in SUITE}


def kernel_names() -> List[str]:
    return [k.name for k in SUITE]


def get_kernel(name: str) -> KernelSpec:
    try:
        return BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown kernel {name!r}; known: {kernel_names()}") from None


def build_program(name: str, scale: float = 1.0, seed: int = 1) -> Program:
    """Assemble one suite kernel."""
    return get_kernel(name).program(scale, seed)


def build_suite(scale: float = 1.0, seed: int = 1) -> Dict[str, Program]:
    """Assemble the whole suite."""
    return {k.name: k.program(scale, seed) for k in SUITE}
