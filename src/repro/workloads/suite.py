"""Benchmark suite views over the workload registry.

The suite itself lives in :mod:`repro.workloads.registry` (one
:class:`~repro.workloads.registry.WorkloadSpec` per kernel, registered
in the paper's presentation order).  This module keeps the historical
suite-shaped API — ``SUITE`` / ``BY_NAME`` / ``kernel_names`` /
``get_kernel`` / ``build_program`` / ``build_suite`` — as thin views so
long-standing callers and tests keep working unchanged.
"""

from __future__ import annotations

from typing import Dict, List

from ..isa import Program
from .registry import (
    WorkloadSpec,
    all_workloads,
    get_workload,
    workload_names,
)

#: compatibility alias: a suite member is a registry workload spec
KernelSpec = WorkloadSpec

#: Suite members in the paper's presentation order (a registry view).
SUITE: List[KernelSpec] = all_workloads()

BY_NAME: Dict[str, KernelSpec] = {k.name: k for k in SUITE}


def kernel_names() -> List[str]:
    return workload_names()


def get_kernel(name: str) -> KernelSpec:
    """Resolve a kernel name (raises with did-you-mean suggestions)."""
    return get_workload(name)


def build_program(name: str, scale: float = 1.0, seed: int = 1) -> Program:
    """Assemble one suite kernel."""
    return get_workload(name).program(scale, seed)


def build_suite(scale: float = 1.0, seed: int = 1) -> Dict[str, Program]:
    """Assemble the whole suite."""
    return {k.name: k.program(scale, seed) for k in all_workloads()}
