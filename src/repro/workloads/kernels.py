"""The 12 SpecInt2000-like synthetic kernels.

Each kernel is named after the SpecInt2000 program whose *relevant traits*
it reproduces (branch predictability, hammock density, load stride
behaviour) — see DESIGN.md §2 for the substitution rationale.  Each comes
with a pure-Python reference model returning the expected final register
values, used by the test suite to pin functional correctness.

Common shapes:

* **if-then-else hammock** — forward branch to the else part, with an
  unconditional forward jump right above the else label (the shape the
  paper's re-convergence heuristic recognises, Figure 2c),
* **if-then** — forward branch over the then body (Figure 2b),
* **loop-closing backward branch** (Figure 2a),
* a *drifting threshold* (``r29``-style) where needed so branch outcomes
  do not repeat across laps (a 64K-entry gshare would otherwise memorise
  short synthetic traces, which 100M-instruction SPEC runs do not allow).
"""

from __future__ import annotations

from typing import Dict, List

from ..isa.opcodes import MASK64
from .builders import (
    biased_bits,
    data_words,
    data_zeros,
    join_sections,
    permutation_chain,
    random_words,
    rng_for,
    scaled,
)

WORD = 8


# ---------------------------------------------------------------------------
# bzip2 — byte-frequency pass: threshold hammock + prefix-sum store-out.
# ---------------------------------------------------------------------------

def build_bzip2(scale: float = 1.0, seed: int = 1) -> str:
    n, laps = scaled(384, scale), 3
    rng = rng_for("bzip2", seed)
    vals = random_words(rng, n, 0, 255)
    wts = random_words(rng, 4 * n, 0, 15)
    return join_sections(
        data_words("src", vals),
        data_words("wt", wts),
        data_zeros("out", n),
        f"""
    la   r8, src
    la   r11, wt
    la   r10, out
    li   r28, {laps}
    li   r31, {n}
    li   r29, 77
    li   r2, 0
    li   r3, 0
    li   r4, 0
    li   r30, 0
lap:
    li   r1, 0
    mov  r20, r8
    mov  r21, r10
    mov  r25, r11
loop:
    ld   r0, 0(r20)
    ld   r23, 0(r25)
    ld   r32, 8(r25)
    ld   r33, 16(r25)
    ld   r34, 24(r25)
    blt  r0, r29, below
    addi r3, r3, 1
    j    ip
below:
    addi r2, r2, 1
ip: add  r4, r4, r0
    add  r4, r4, r23
    add  r4, r4, r32
    add  r4, r4, r33
    add  r4, r4, r34
    ld   r22, 0(r21)
    add  r22, r22, r4
    st   r22, 0(r21)
    addi r20, r20, 8
    addi r21, r21, 8
    addi r25, r25, 32
    addi r1, r1, 1
    blt  r1, r31, loop
    addi r29, r29, 37
    andi r29, r29, 255
    addi r30, r30, 1
    blt  r30, r28, lap
    halt
""")


def ref_bzip2(scale: float = 1.0, seed: int = 1) -> Dict[int, int]:
    n, laps = scaled(384, scale), 3
    rng = rng_for("bzip2", seed)
    vals = random_words(rng, n, 0, 255)
    wts = random_words(rng, 4 * n, 0, 15)
    thr, below, above, acc = 77, 0, 0, 0
    out = [0] * n
    for _ in range(laps):
        for i, v in enumerate(vals):
            if v < thr:
                below += 1
            else:
                above += 1
            acc += v + sum(wts[4 * i: 4 * i + 4])
            out[i] = (out[i] + acc) & MASK64
        thr = (thr + 37) & 255
    return {2: below, 3: above, 4: acc & MASK64}


# ---------------------------------------------------------------------------
# crafty — bitboard bit tests; data evolves in place each lap.
# ---------------------------------------------------------------------------

def build_crafty(scale: float = 1.0, seed: int = 1) -> str:
    n, laps = scaled(320, scale), 3
    rng = rng_for("crafty", seed)
    vals = random_words(rng, n, 0, (1 << 32) - 1)
    atk = random_words(rng, 4 * n, 0, (1 << 32) - 1)
    return join_sections(
        data_words("bb", vals),
        data_words("atk", atk),
        f"""
    la   r8, bb
    la   r9, atk
    li   r28, {laps}
    li   r31, {n}
    li   r2, 0
    li   r3, 0
    li   r4, 0
    li   r5, 0
    li   r30, 0
lap:
    li   r1, 0
    mov  r20, r8
    mov  r21, r9
loop:
    ld   r0, 0(r20)
    ld   r26, 0(r21)
    ld   r32, 8(r21)
    ld   r33, 16(r21)
    ld   r34, 24(r21)
    andi r22, r1, 7
    srl  r23, r0, r22
    andi r23, r23, 1
    beqz r23, clear
    addi r2, r2, 1
    xor  r4, r4, r0
    j    ip
clear:
    addi r3, r3, 1
ip: srli r24, r0, 1
    xor  r24, r24, r0
    and  r25, r24, r26
    add  r5, r5, r25
    add  r5, r5, r32
    add  r5, r5, r33
    add  r5, r5, r34
    st   r24, 0(r20)
    addi r20, r20, 8
    addi r21, r21, 32
    addi r1, r1, 1
    blt  r1, r31, loop
    addi r30, r30, 1
    blt  r30, r28, lap
    halt
""")


def ref_crafty(scale: float = 1.0, seed: int = 1) -> Dict[int, int]:
    n, laps = scaled(320, scale), 3
    rng = rng_for("crafty", seed)
    vals = random_words(rng, n, 0, (1 << 32) - 1)
    atk = random_words(rng, 4 * n, 0, (1 << 32) - 1)
    mem = list(vals)
    set_c = clear_c = 0
    x4 = a5 = 0
    for _ in range(laps):
        for i in range(n):
            v = mem[i]
            if (v >> (i & 7)) & 1:
                set_c += 1
                x4 ^= v
            else:
                clear_c += 1
            g = (v >> 1) ^ v
            a5 = (a5 + (g & atk[4 * i]) + atk[4 * i + 1]
                  + atk[4 * i + 2] + atk[4 * i + 3]) & MASK64
            mem[i] = g
    return {2: set_c, 3: clear_c, 4: x4, 5: a5}


# ---------------------------------------------------------------------------
# eon — arithmetic-heavy with *highly biased* (easy) branches.
# ---------------------------------------------------------------------------

def build_eon(scale: float = 1.0, seed: int = 1) -> str:
    n, laps = scaled(384, scale), 4
    rng = rng_for("eon", seed)
    vals = random_words(rng, n, 0, 255)
    shade = random_words(rng, n, 0, 63)
    return join_sections(
        data_words("pix", vals),
        data_words("shade", shade),
        f"""
    la   r8, pix
    la   r9, shade
    li   r28, {laps}
    li   r31, {n}
    li   r27, 8
    li   r2, 0
    li   r4, 0
    li   r6, 0
    li   r30, 0
lap:
    li   r1, 0
    mov  r20, r8
    mov  r21, r9
loop:
    ld   r0, 0(r20)
    ld   r25, 0(r21)
    blt  r0, r27, rare
    itof r22, r0
    fmul r23, r22, r22
    fadd r6, r6, r23
    j    ip
rare:
    addi r2, r2, 1
ip: add  r4, r4, r0
    add  r4, r4, r25
    addi r20, r20, 8
    addi r21, r21, 8
    addi r1, r1, 1
    blt  r1, r31, loop
    addi r30, r30, 1
    blt  r30, r28, lap
    halt
""")


def ref_eon(scale: float = 1.0, seed: int = 1) -> Dict[int, int]:
    n, laps = scaled(384, scale), 4
    rng = rng_for("eon", seed)
    vals = random_words(rng, n, 0, 255)
    shade = random_words(rng, n, 0, 63)
    rare = 0
    acc = 0
    facc = 0.0
    for _ in range(laps):
        for i, v in enumerate(vals):
            if v < 8:
                rare += 1
            else:
                fv = float(v)
                facc = facc + fv * fv
            acc += v + shade[i]
    return {2: rare, 4: acc & MASK64, 6: facc}


# ---------------------------------------------------------------------------
# gap — permutation walk: strided perm load + indirect value load.
# ---------------------------------------------------------------------------

def build_gap(scale: float = 1.0, seed: int = 1) -> str:
    n, laps = scaled(384, scale), 3
    rng = rng_for("gap", seed)
    perm = list(range(n))
    rng.shuffle(perm)
    perm_off = [p * WORD for p in perm]
    vals = random_words(rng, n, 0, 255)
    wts = random_words(rng, 4 * n, 0, 31)
    return join_sections(
        data_words("perm", perm_off),
        data_words("val", vals),
        data_words("gwt", wts),
        f"""
    la   r8, perm
    la   r9, val
    la   r11, gwt
    li   r28, {laps}
    li   r31, {n}
    li   r29, 90
    li   r2, 0
    li   r3, 0
    li   r4, 0
    li   r5, 0
    li   r30, 0
lap:
    li   r1, 0
    mov  r20, r8
    mov  r25, r11
loop:
    ld   r0, 0(r20)
    ld   r24, 0(r25)
    ld   r32, 8(r25)
    ld   r33, 16(r25)
    ld   r34, 24(r25)
    add  r21, r9, r0
    ld   r22, 0(r21)
    blt  r22, r29, lows
    addi r3, r3, 1
    j    ip
lows:
    addi r2, r2, 1
ip: add  r4, r4, r0
    add  r4, r4, r24
    add  r4, r4, r32
    add  r4, r4, r33
    add  r4, r4, r34
    add  r5, r5, r22
    addi r20, r20, 8
    addi r25, r25, 32
    addi r1, r1, 1
    blt  r1, r31, loop
    addi r29, r29, 53
    andi r29, r29, 255
    addi r30, r30, 1
    blt  r30, r28, lap
    halt
""")


def ref_gap(scale: float = 1.0, seed: int = 1) -> Dict[int, int]:
    n, laps = scaled(384, scale), 3
    rng = rng_for("gap", seed)
    perm = list(range(n))
    rng.shuffle(perm)
    perm_off = [p * WORD for p in perm]
    vals = random_words(rng, n, 0, 255)
    wts = random_words(rng, 4 * n, 0, 31)
    thr, lo, hi, a4, a5 = 90, 0, 0, 0, 0
    for _ in range(laps):
        for i, off in enumerate(perm_off):
            v = vals[off // WORD]
            if v < thr:
                lo += 1
            else:
                hi += 1
            a4 += off + sum(wts[4 * i: 4 * i + 4])
            a5 += v
        thr = (thr + 53) & 255
    return {2: lo, 3: hi, 4: a4 & MASK64, 5: a5 & MASK64}


# ---------------------------------------------------------------------------
# gcc — branch-dense: two hammocks and an if-then per iteration.
# ---------------------------------------------------------------------------

def build_gcc(scale: float = 1.0, seed: int = 1) -> str:
    n, laps = scaled(320, scale), 3
    rng = rng_for("gcc", seed)
    vals = random_words(rng, n, 0, 255)
    tbl = random_words(rng, 4 * n, 0, 127)
    return join_sections(
        data_words("code", vals),
        data_words("tbl", tbl),
        f"""
    la   r8, code
    la   r11, tbl
    li   r28, {laps}
    li   r31, {n}
    li   r29, 101
    li   r2, 0
    li   r3, 0
    li   r4, 0
    li   r5, 0
    li   r6, 0
    li   r30, 0
lap:
    li   r1, 0
    mov  r20, r8
    mov  r25, r11
loop:
    ld   r0, 0(r20)
    ld   r24, 0(r25)
    ld   r32, 8(r25)
    ld   r33, 16(r25)
    ld   r34, 24(r25)
    andi r22, r0, 3
    beqz r22, case0
    addi r2, r2, 1
    j    h1
case0:
    addi r3, r3, 1
h1: andi r23, r0, 16
    beqz r23, skip1
    xor  r4, r4, r0
skip1:
    blt  r0, r29, low2
    addi r5, r5, 2
    j    ip
low2:
    addi r5, r5, 1
ip: add  r6, r6, r0
    add  r6, r6, r24
    add  r6, r6, r32
    add  r6, r6, r33
    add  r6, r6, r34
    addi r20, r20, 8
    addi r25, r25, 32
    addi r1, r1, 1
    blt  r1, r31, loop
    addi r29, r29, 29
    andi r29, r29, 255
    addi r30, r30, 1
    blt  r30, r28, lap
    halt
""")


def ref_gcc(scale: float = 1.0, seed: int = 1) -> Dict[int, int]:
    n, laps = scaled(320, scale), 3
    rng = rng_for("gcc", seed)
    vals = random_words(rng, n, 0, 255)
    tbl = random_words(rng, 4 * n, 0, 127)
    thr = 101
    c2 = c3 = x4 = c5 = a6 = 0
    for _ in range(laps):
        for i, v in enumerate(vals):
            if v & 3:
                c2 += 1
            else:
                c3 += 1
            if v & 16:
                x4 ^= v
            c5 += 2 if v >= thr else 1
            a6 += v + sum(tbl[4 * i: 4 * i + 4])
        thr = (thr + 29) & 255
    return {2: c2, 3: c3, 4: x4, 5: c5, 6: a6 & MASK64}


# ---------------------------------------------------------------------------
# gzip — LZ-style match loop with data-dependent trip count.
# ---------------------------------------------------------------------------

def build_gzip(scale: float = 1.0, seed: int = 1) -> str:
    n, laps = scaled(512, scale), 2
    rng = rng_for("gzip", seed)
    # Small alphabet => geometric match lengths (P(match) = 1/4 per symbol).
    s1 = random_words(rng, 3 * n, 0, 3)
    s2 = random_words(rng, 3 * n, 0, 3)
    huff = random_words(rng, 2 * n, 0, 31)
    return join_sections(
        data_words("s1", s1),
        # Guard gap: an overrunning s1 stream reads zeros, never s2's data,
        # matching the reference model's out-of-range-reads-zero semantics.
        data_zeros("pad1", 64),
        data_words("s2", s2),
        data_zeros("pad2", 64),
        data_words("huff", huff),
        f"""
    la   r8, s1
    la   r9, s2
    la   r12, huff
    li   r28, {laps}
    li   r31, {n}
    li   r27, 8
    li   r2, 0
    li   r3, 0
    li   r4, 0
    li   r30, 0
lap:
    li   r1, 0
    mov  r20, r8
    mov  r21, r9
    mov  r35, r12
loop:
    li   r22, 0
match:
    ld   r23, 0(r20)
    ld   r24, 0(r21)
    bne  r23, r24, mdone
    addi r22, r22, 1
    addi r20, r20, 8
    addi r21, r21, 8
    blt  r22, r27, match
mdone:
    slti r25, r22, 3
    beqz r25, bigmatch
    addi r2, r2, 1
    j    ip
bigmatch:
    addi r3, r3, 1
ip: add  r4, r4, r22
    ld   r32, 0(r35)
    ld   r33, 8(r35)
    add  r4, r4, r32
    add  r4, r4, r33
    addi r35, r35, 16
    addi r20, r20, 8
    addi r21, r21, 8
    addi r1, r1, 1
    blt  r1, r31, loop
    addi r30, r30, 1
    blt  r30, r28, lap
    halt
""")


def ref_gzip(scale: float = 1.0, seed: int = 1) -> Dict[int, int]:
    n, laps = scaled(512, scale), 2
    rng = rng_for("gzip", seed)
    s1 = random_words(rng, 3 * n, 0, 3)
    s2 = random_words(rng, 3 * n, 0, 3)
    huff = random_words(rng, 2 * n, 0, 31)

    def rd(stream: List[int], idx: int) -> int:
        return stream[idx] if 0 <= idx < len(stream) else 0

    lits = matches = total = 0
    for _ in range(laps):
        i = j = 0
        for outer in range(n):
            k = 0
            while rd(s1, i) == rd(s2, j) and k < 8:
                k += 1
                i += 1
                j += 1
            if k < 3:
                lits += 1
            else:
                matches += 1
            total += k + huff[2 * outer] + huff[2 * outer + 1]
            i += 1
            j += 1
    return {2: lits, 3: matches, 4: total}


# ---------------------------------------------------------------------------
# mcf — pointer chasing: loads are control-independent but NOT strided.
# ---------------------------------------------------------------------------

def build_mcf(scale: float = 1.0, seed: int = 1) -> str:
    n = scaled(256, scale)
    iters = 4 * n
    rng = rng_for("mcf", seed)
    nxt = permutation_chain(rng, n, word=WORD)
    cost = random_words(rng, n, 0, 255)
    aud = random_words(rng, iters, 0, 31)
    return join_sections(
        data_words("nxt", nxt),
        data_words("cost", cost),
        data_words("aud", aud),
        f"""
    la   r8, nxt
    la   r9, cost
    la   r25, aud
    li   r31, {iters}
    li   r29, 128
    li   r1, 0
    li   r2, 0
    li   r3, 0
    li   r4, 0
    li   r20, 0
loop:
    add  r21, r8, r20
    ld   r22, 0(r21)
    add  r23, r9, r20
    ld   r0, 0(r23)
    ld   r24, 0(r25)
    blt  r0, r29, cheap
    addi r3, r3, 1
    j    ip
cheap:
    addi r2, r2, 1
ip: add  r4, r4, r0
    add  r4, r4, r24
    mov  r20, r22
    addi r25, r25, 8
    addi r29, r29, 1
    andi r29, r29, 255
    addi r1, r1, 1
    blt  r1, r31, loop
    halt
""")


def ref_mcf(scale: float = 1.0, seed: int = 1) -> Dict[int, int]:
    n = scaled(256, scale)
    iters = 4 * n
    rng = rng_for("mcf", seed)
    nxt = permutation_chain(rng, n, word=WORD)
    cost = random_words(rng, n, 0, 255)
    aud = random_words(rng, iters, 0, 31)
    thr, cheap, costly, acc, ptr = 128, 0, 0, 0, 0
    for k in range(iters):
        slot = ptr // WORD
        c = cost[slot]
        if c < thr:
            cheap += 1
        else:
            costly += 1
        acc += c + aud[k]
        ptr = nxt[slot]
        thr = (thr + 1) & 255
    return {2: cheap, 3: costly, 4: acc & MASK64}


# ---------------------------------------------------------------------------
# parser — nested character classification (hammock inside a hammock arm).
# ---------------------------------------------------------------------------

def build_parser(scale: float = 1.0, seed: int = 1) -> str:
    n, laps = scaled(448, scale), 3
    rng = rng_for("parser", seed)
    vals = random_words(rng, n, 0, 127)
    dic = random_words(rng, 4 * n, 0, 63)
    return join_sections(
        data_words("txt", vals),
        data_words("dict", dic),
        data_zeros("toks", n),
        f"""
    la   r8, txt
    la   r11, dict
    la   r10, toks
    li   r28, {laps}
    li   r31, {n}
    li   r2, 0
    li   r4, 0
    li   r30, 0
lap:
    li   r1, 0
    mov  r20, r8
    mov  r21, r10
    mov  r25, r11
loop:
    ld   r0, 0(r20)
    ld   r26, 0(r25)
    ld   r32, 8(r25)
    ld   r33, 16(r25)
    ld   r34, 24(r25)
    slti r22, r0, 32
    bnez r22, ctl
    slti r23, r0, 97
    bnez r23, upper
    li   r24, 2
    j    join2
upper:
    li   r24, 1
join2:
    j    ip
ctl:
    li   r24, 0
    addi r2, r2, 1
ip: st   r24, 0(r21)
    add  r4, r4, r0
    add  r4, r4, r26
    add  r4, r4, r32
    add  r4, r4, r33
    add  r4, r4, r34
    addi r20, r20, 8
    addi r21, r21, 8
    addi r25, r25, 32
    addi r1, r1, 1
    blt  r1, r31, loop
    addi r30, r30, 1
    blt  r30, r28, lap
    halt
""")


def ref_parser(scale: float = 1.0, seed: int = 1) -> Dict[int, int]:
    n, laps = scaled(448, scale), 3
    rng = rng_for("parser", seed)
    vals = random_words(rng, n, 0, 127)
    dic = random_words(rng, 4 * n, 0, 63)
    ctl = acc = 0
    for _ in range(laps):
        for i, v in enumerate(vals):
            if v < 32:
                ctl += 1
            acc += v + sum(dic[4 * i: 4 * i + 4])
    return {2: ctl, 4: acc & MASK64}


# ---------------------------------------------------------------------------
# perlbmk — multiplicative hash chain; branch on evolving hash bit.
# ---------------------------------------------------------------------------

def build_perlbmk(scale: float = 1.0, seed: int = 1) -> str:
    n, laps = scaled(384, scale), 3
    rng = rng_for("perlbmk", seed)
    vals = random_words(rng, n, 0, 65535)
    salts = random_words(rng, 4 * n, 0, 255)
    return join_sections(
        data_words("keys", vals),
        data_words("salts", salts),
        data_zeros("htab", n),
        f"""
    la   r8, keys
    la   r9, salts
    la   r10, htab
    li   r28, {laps}
    li   r31, {n}
    li   r5, 5381
    li   r2, 0
    li   r3, 0
    li   r4, 0
    li   r30, 0
lap:
    li   r1, 0
    mov  r20, r8
    mov  r21, r10
    mov  r25, r9
loop:
    ld   r0, 0(r20)
    ld   r26, 0(r25)
    ld   r32, 8(r25)
    ld   r33, 16(r25)
    ld   r34, 24(r25)
    muli r22, r5, 31
    xor  r5, r22, r0
    andi r23, r5, 16
    beqz r23, even
    addi r2, r2, 1
    j    ip
even:
    addi r3, r3, 1
ip: st   r5, 0(r21)
    add  r4, r4, r0
    add  r4, r4, r26
    add  r4, r4, r32
    add  r4, r4, r33
    add  r4, r4, r34
    addi r20, r20, 8
    addi r21, r21, 8
    addi r25, r25, 32
    addi r1, r1, 1
    blt  r1, r31, loop
    addi r30, r30, 1
    blt  r30, r28, lap
    halt
""")


def ref_perlbmk(scale: float = 1.0, seed: int = 1) -> Dict[int, int]:
    n, laps = scaled(384, scale), 3
    rng = rng_for("perlbmk", seed)
    vals = random_words(rng, n, 0, 65535)
    salts = random_words(rng, 4 * n, 0, 255)
    h, odd, even, acc = 5381, 0, 0, 0
    for _ in range(laps):
        for i, v in enumerate(vals):
            h = ((h * 31) & MASK64) ^ v
            if h & 16:
                odd += 1
            else:
                even += 1
            acc += v + sum(salts[4 * i: 4 * i + 4])
    return {2: odd, 3: even, 4: acc & MASK64, 5: h}


# ---------------------------------------------------------------------------
# twolf — annealing accept/reject against an evolving incumbent.
# ---------------------------------------------------------------------------

def build_twolf(scale: float = 1.0, seed: int = 1) -> str:
    n, laps = scaled(384, scale), 3
    rng = rng_for("twolf", seed)
    vals = random_words(rng, n, 0, 1023)
    gain = random_words(rng, 4 * n, 0, 63)
    return join_sections(
        data_words("cost", vals),
        data_words("gain", gain),
        f"""
    la   r8, cost
    la   r9, gain
    li   r28, {laps}
    li   r31, {n}
    li   r5, 500
    li   r26, 16
    li   r2, 0
    li   r3, 0
    li   r4, 0
    li   r6, 0
    li   r30, 0
lap:
    li   r1, 0
    mov  r20, r8
    mov  r25, r9
loop:
    ld   r0, 0(r20)
    ld   r24, 0(r25)
    ld   r32, 8(r25)
    ld   r33, 16(r25)
    ld   r34, 24(r25)
    sub  r22, r0, r5
    blt  r22, r26, accept
    addi r3, r3, 1
    j    ip
accept:
    addi r2, r2, 1
    mov  r5, r0
ip: add  r4, r4, r0
    add  r4, r4, r24
    add  r4, r4, r32
    add  r4, r4, r33
    add  r4, r4, r34
    add  r6, r6, r5
    addi r5, r5, 16
    addi r20, r20, 8
    addi r25, r25, 32
    addi r26, r26, 3
    andi r26, r26, 63
    addi r1, r1, 1
    blt  r1, r31, loop
    addi r30, r30, 1
    blt  r30, r28, lap
    halt
""")


def ref_twolf(scale: float = 1.0, seed: int = 1) -> Dict[int, int]:
    n, laps = scaled(384, scale), 3
    rng = rng_for("twolf", seed)
    vals = random_words(rng, n, 0, 1023)
    gain = random_words(rng, 4 * n, 0, 63)
    best, slack = 500, 16
    acc6 = acc4 = accept = reject = 0
    for _ in range(laps):
        for i, v in enumerate(vals):
            if v - best < slack:
                accept += 1
                best = v
            else:
                reject += 1
            acc4 += v + sum(gain[4 * i: 4 * i + 4])
            acc6 += best
            best += 16
            slack = (slack + 3) & 63
    return {2: accept, 3: reject, 4: acc4 & MASK64, 5: best, 6: acc6 & MASK64}


# ---------------------------------------------------------------------------
# vortex — record updates with in-place stores (coherence pressure).
# ---------------------------------------------------------------------------

def build_vortex(scale: float = 1.0, seed: int = 1) -> str:
    n, laps = scaled(384, scale), 3
    rng = rng_for("vortex", seed)
    recs: List[int] = []
    for _ in range(n):
        recs.append(rng.randint(0, 255))       # key
        recs.append(rng.randint(0, 10_000))    # value
    aud = random_words(rng, 4 * n, 0, 31)
    return join_sections(
        data_words("recs", recs),
        data_words("vaud", aud),
        f"""
    la   r8, recs
    la   r9, vaud
    li   r28, {laps}
    li   r31, {n}
    li   r29, 80
    li   r2, 0
    li   r4, 0
    li   r30, 0
lap:
    li   r1, 0
    mov  r20, r8
    mov  r25, r9
loop:
    ld   r0, 0(r20)
    ld   r24, 0(r25)
    ld   r32, 8(r25)
    ld   r33, 16(r25)
    ld   r34, 24(r25)
    blt  r0, r29, skip
    ld   r23, 8(r20)
    add  r23, r23, r0
    st   r23, 8(r20)
    addi r2, r2, 1
skip:
    add  r4, r4, r0
    add  r4, r4, r24
    add  r4, r4, r32
    add  r4, r4, r33
    add  r4, r4, r34
    addi r20, r20, 16
    addi r25, r25, 32
    addi r29, r29, 31
    andi r29, r29, 255
    addi r1, r1, 1
    blt  r1, r31, loop
    addi r30, r30, 1
    blt  r30, r28, lap
    halt
""")


def ref_vortex(scale: float = 1.0, seed: int = 1) -> Dict[int, int]:
    n, laps = scaled(384, scale), 3
    rng = rng_for("vortex", seed)
    keys, values = [], []
    for _ in range(n):
        keys.append(rng.randint(0, 255))
        values.append(rng.randint(0, 10_000))
    aud = random_words(rng, 4 * n, 0, 31)
    thr, updated, acc = 80, 0, 0
    for _ in range(laps):
        for i in range(n):
            k = keys[i]
            if k >= thr:
                values[i] = (values[i] + k) & MASK64
                updated += 1
            acc += k + sum(aud[4 * i: 4 * i + 4])
            thr = (thr + 31) & 255
    return {2: updated, 4: acc & MASK64}


# ---------------------------------------------------------------------------
# vpr — |a-b| hammock (both arms write the same register) + clean accumulator.
# ---------------------------------------------------------------------------

def build_vpr(scale: float = 1.0, seed: int = 1) -> str:
    n, laps = scaled(384, scale), 3
    rng = rng_for("vpr", seed)
    ax = random_words(rng, n, 0, 255)
    bx = random_words(rng, n, 0, 255)
    net = random_words(rng, 4 * n, 0, 63)
    return join_sections(
        data_words("ax", ax),
        data_words("bx", bx),
        data_words("net", net),
        f"""
    la   r8, ax
    la   r9, bx
    la   r11, net
    li   r28, {laps}
    li   r31, {n}
    li   r2, 0
    li   r3, 0
    li   r4, 0
    li   r6, 0
    li   r30, 0
lap:
    li   r1, 0
    mov  r20, r8
    mov  r21, r9
    mov  r26, r11
loop:
    ld   r0, 0(r20)
    ld   r22, 0(r21)
    ld   r23, 0(r26)
    ld   r32, 8(r26)
    ld   r33, 16(r26)
    ld   r34, 24(r26)
    blt  r0, r22, bless
    sub  r5, r0, r22
    addi r3, r3, 1
    j    ip
bless:
    sub  r5, r22, r0
    addi r2, r2, 1
ip: add  r4, r4, r5
    add  r6, r6, r0
    add  r6, r6, r23
    add  r6, r6, r32
    add  r6, r6, r33
    add  r6, r6, r34
    andi r24, r22, 7
    add  r25, r0, r24
    st   r25, 0(r20)
    addi r20, r20, 8
    addi r21, r21, 8
    addi r26, r26, 32
    addi r1, r1, 1
    blt  r1, r31, loop
    addi r30, r30, 1
    blt  r30, r28, lap
    halt
""")


def ref_vpr(scale: float = 1.0, seed: int = 1) -> Dict[int, int]:
    n, laps = scaled(384, scale), 3
    rng = rng_for("vpr", seed)
    ax = random_words(rng, n, 0, 255)
    bx = random_words(rng, n, 0, 255)
    net = random_words(rng, 4 * n, 0, 63)
    a = list(ax)
    less = geq = diff_acc = a_acc = 0
    for _ in range(laps):
        for i in range(n):
            av, bv = a[i], bx[i]
            if av < bv:
                less += 1
                d = bv - av
            else:
                geq += 1
                d = av - bv
            diff_acc += d
            a_acc += av + sum(net[4 * i: 4 * i + 4])
            a[i] = (av + (bv & 7)) & MASK64
    return {2: less, 3: geq, 4: diff_acc & MASK64, 6: a_acc & MASK64}
