"""Microbenchmarks: isolated control-flow patterns ("the hammock zoo").

Where the main suite imitates whole programs, these kernels isolate one
mechanism-relevant property each, with a tunable knob:

* ``biased_hammock(bias)``   — if-then-else whose branch is taken with
  probability ``bias`` (sweeps the MBS filter's operating point),
* ``if_then(bias)``          — the Figure 2b shape,
* ``nested_hammock()``       — a hammock inside a hammock arm,
* ``deep_ci_region(depth)``  — a hammock followed by ``depth`` strided
  accumulations (how much control-independent work exists to reuse),
* ``non_strided_ci()``       — control independence *without* strided
  loads (selected but never vectorized — Figure 5's grey region),
* ``variable_trip_loop(p)``  — an inner loop with geometric trip counts
  (gzip-like loop-exit mispredictions),
* ``both_arms_write()``      — both hammock arms write the consumed
  register (CI blocked — Figure 5's white region).

Each builder returns assembly; ``micro_program`` assembles it, and every
pattern has a pure-Python reference in its docstring's spirit via the
shared accumulator checks in the tests.
"""

from __future__ import annotations

from typing import List

from ..isa import Program, assemble
from .builders import join_sections, random_words, rng_for, scaled


def _prologue(n: int, extra: str = "") -> str:
    return f"""
    la   r8, a
    li   r31, {n}
    li   r1, 0
    li   r2, 0
    li   r3, 0
    li   r4, 0
    mov  r20, r8
{extra}"""


def _epilogue() -> str:
    return """
    addi r20, r20, 8
    addi r1, r1, 1
    blt  r1, r31, loop
    halt
"""


def biased_hammock(bias: float = 0.5, n: int = 512, seed: int = 1) -> str:
    """If-then-else taken with probability ``bias`` (data-driven)."""
    rng = rng_for(f"micro-bias-{bias}", seed)
    vals = [1 if rng.random() < bias else 0 for _ in range(n)]
    return join_sections(
        f".dataw a {' '.join(map(str, vals))}",
        _prologue(n),
        """loop:
    ld   r0, 0(r20)
    bnez r0, then
    addi r3, r3, 1
    j    ip
then:
    addi r2, r2, 1
ip: add  r4, r4, r0
""",
        _epilogue())


def if_then(bias: float = 0.5, n: int = 512, seed: int = 1) -> str:
    """The Figure 2b shape: a forward branch over the then body."""
    rng = rng_for(f"micro-ifthen-{bias}", seed)
    vals = [1 if rng.random() < bias else 0 for _ in range(n)]
    return join_sections(
        f".dataw a {' '.join(map(str, vals))}",
        _prologue(n),
        """loop:
    ld   r0, 0(r20)
    beqz r0, skip
    addi r2, r2, 1
    xor  r3, r3, r0
skip:
    add  r4, r4, r0
""",
        _epilogue())


def nested_hammock(n: int = 512, seed: int = 1) -> str:
    """A hammock inside the then arm of another hammock."""
    vals = random_words(rng_for("micro-nested", seed), n, 0, 255)
    return join_sections(
        f".dataw a {' '.join(map(str, vals))}",
        _prologue(n, extra="    li   r30, 128"),
        """loop:
    ld   r0, 0(r20)
    blt  r0, r30, outer_else
    andi r22, r0, 1
    beqz r22, inner_else
    addi r2, r2, 1
    j    inner_ip
inner_else:
    addi r3, r3, 1
inner_ip:
    j    ip
outer_else:
    addi r5, r5, 1
ip: add  r4, r4, r0
""",
        _epilogue())


def deep_ci_region(depth: int = 8, n: int = 384, seed: int = 1) -> str:
    """A hammock followed by ``depth`` strided accumulate steps."""
    rng = rng_for(f"micro-deep-{depth}", seed)
    vals = random_words(rng, n, 0, 255)
    wts = random_words(rng, depth * n, 0, 15)
    body: List[str] = ["loop:", "    ld   r0, 0(r20)"]
    if depth > 16:
        raise ValueError("deep_ci_region supports depth <= 16")
    for d in range(depth):
        body.append(f"    ld   r{32 + d}, {d * 8}(r21)")
    body += ["    blt  r0, r30, below",
             "    addi r3, r3, 1",
             "    j    ip",
             "below:",
             "    addi r2, r2, 1",
             "ip:"]
    for d in range(depth):
        body.append(f"    add  r4, r4, r{32 + d}")
    body.append(f"    addi r21, r21, {depth * 8}")
    return join_sections(
        f".dataw a {' '.join(map(str, vals))}",
        f".dataw w {' '.join(map(str, wts))}",
        _prologue(n, extra="    la   r21, w\n    li   r30, 128"),
        "\n".join(body) + "\n",
        _epilogue())


def non_strided_ci(n: int = 384, seed: int = 1) -> str:
    """Control-independent work whose slice has no strided load."""
    rng = rng_for("micro-nonstrided", seed)
    from .builders import permutation_chain
    nxt = permutation_chain(rng, n)
    vals = random_words(rng, n, 0, 255)
    return join_sections(
        f".dataw nxt {' '.join(map(str, nxt))}",
        f".dataw a {' '.join(map(str, vals))}",
        f"""
    la   r8, nxt
    la   r9, a
    li   r31, {n}
    li   r30, 128
    li   r1, 0
    li   r2, 0
    li   r3, 0
    li   r4, 0
    li   r21, 0
loop:
    add  r22, r8, r21
    ld   r23, 0(r22)
    add  r24, r9, r21
    ld   r0, 0(r24)
    blt  r0, r30, below
    addi r3, r3, 1
    j    ip
below:
    addi r2, r2, 1
ip: add  r4, r4, r0
    mov  r21, r23
    addi r30, r30, 1
    andi r30, r30, 255
    addi r1, r1, 1
    blt  r1, r31, loop
    halt
""")


def variable_trip_loop(p_exit: float = 0.3, n: int = 256, seed: int = 1) -> str:
    """Inner loop with geometric trip count (loop-exit mispredictions)."""
    rng = rng_for(f"micro-trip-{p_exit}", seed)
    # Element value v means the inner loop runs v iterations, v geometric.
    vals = []
    for _ in range(n):
        k = 0
        while rng.random() > p_exit and k < 12:
            k += 1
        vals.append(k)
    return join_sections(
        f".dataw a {' '.join(map(str, vals))}",
        _prologue(n),
        """loop:
    ld   r0, 0(r20)
    mov  r22, r0
inner:
    beqz r22, done
    addi r4, r4, 1
    subi r22, r22, 1
    j    inner
done:
    add  r3, r3, r0
""",
        _epilogue())


def both_arms_write(n: int = 512, seed: int = 1) -> str:
    """Both arms write r5; its consumers are never control independent."""
    rng = rng_for("micro-botharms", seed)
    vals = random_words(rng, n, 0, 255)
    return join_sections(
        f".dataw a {' '.join(map(str, vals))}",
        _prologue(n, extra="    li   r30, 128"),
        """loop:
    ld   r0, 0(r20)
    blt  r0, r30, small
    addi r5, r0, 100
    j    ip
small:
    addi r5, r0, 1
ip: add  r4, r4, r5
    add  r3, r3, r0
""",
        _epilogue())


#: name -> builder (with default knobs) for the registry
MICRO_PATTERNS = {
    "biased50": lambda seed=1: biased_hammock(0.5, seed=seed),
    "biased90": lambda seed=1: biased_hammock(0.9, seed=seed),
    "biased99": lambda seed=1: biased_hammock(0.99, seed=seed),
    "if_then": lambda seed=1: if_then(0.5, seed=seed),
    "nested": lambda seed=1: nested_hammock(seed=seed),
    "deep4": lambda seed=1: deep_ci_region(4, seed=seed),
    "deep12": lambda seed=1: deep_ci_region(12, seed=seed),
    "non_strided": lambda seed=1: non_strided_ci(seed=seed),
    "variable_trip": lambda seed=1: variable_trip_loop(seed=seed),
    "both_arms": lambda seed=1: both_arms_write(seed=seed),
}


def micro_program(name: str, seed: int = 1) -> Program:
    """Assemble one micro pattern by registry name."""
    try:
        builder = MICRO_PATTERNS[name]
    except KeyError:
        raise KeyError(f"unknown micro pattern {name!r}; "
                       f"known: {sorted(MICRO_PATTERNS)}") from None
    return assemble(builder(seed=seed), name=f"micro-{name}")
