"""Helpers for emitting the synthetic kernels' assembly and data.

Every kernel is an assembly template plus seeded pseudo-random data.  The
helpers here generate the data sections and a few recurring code shapes.

Register conventions shared by the kernels (documented, not enforced):

====  =======================================================
r0    most recently loaded value (the hammock discriminant)
r1    inner loop index
r2-r7 hammock-path counters and control-independent accumulators
r8+   array base pointers
r20+  scratch
r30   outer-iteration counter
r31   inner loop bound
====  =======================================================
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence


def rng_for(name: str, seed: int) -> random.Random:
    """A deterministic per-kernel random stream."""
    return random.Random(f"{name}:{seed}")


def data_words(label: str, values: Sequence[int]) -> str:
    """Emit a ``.dataw`` directive for ``values``."""
    body = " ".join(str(int(v)) for v in values)
    return f".dataw {label} {body}"


def data_zeros(label: str, count: int) -> str:
    return f".data {label} {count}"


def random_words(rng: random.Random, n: int, lo: int, hi: int) -> List[int]:
    """``n`` uniform values in [lo, hi]."""
    return [rng.randint(lo, hi) for _ in range(n)]


def biased_bits(rng: random.Random, n: int, p_one: float) -> List[int]:
    """``n`` 0/1 values with P(1) = ``p_one`` (controls branch bias)."""
    return [1 if rng.random() < p_one else 0 for _ in range(n)]


def permutation_chain(rng: random.Random, n: int, word: int = 8) -> List[int]:
    """Next-pointer array encoding one random cycle over ``n`` slots.

    ``chain[i]`` holds the *byte offset* of the successor slot, so a
    pointer-chasing loop ``ptr <- base + MEM[ptr]`` visits every slot once
    per lap in a data-dependent, non-strided order (mcf-like behaviour).
    """
    order = list(range(1, n))
    rng.shuffle(order)
    order = [0] + order
    chain = [0] * n
    for pos in range(n):
        cur = order[pos]
        nxt = order[(pos + 1) % n]
        chain[cur] = nxt * word
    return chain


def scaled(base: int, scale: float, minimum: int = 4) -> int:
    """Scale an iteration/element count, keeping it at least ``minimum``."""
    return max(minimum, int(round(base * scale)))


def join_sections(*sections: Iterable[str] | str) -> str:
    """Join data and code fragments into one assembly source."""
    parts: List[str] = []
    for s in sections:
        if isinstance(s, str):
            parts.append(s)
        else:
            parts.extend(s)
    return "\n".join(parts) + "\n"
