"""Synthetic SpecInt2000-like workload suite (registry-backed)."""

from .registry import (
    UnknownWorkloadError,
    WorkloadSpec,
    all_workloads,
    get_workload,
    register_workload,
    workload_names,
)
from .suite import (
    BY_NAME,
    SUITE,
    KernelSpec,
    build_program,
    build_suite,
    get_kernel,
    kernel_names,
)

__all__ = [
    "BY_NAME",
    "KernelSpec",
    "SUITE",
    "UnknownWorkloadError",
    "WorkloadSpec",
    "all_workloads",
    "build_program",
    "build_suite",
    "get_kernel",
    "get_workload",
    "kernel_names",
    "register_workload",
    "workload_names",
]
