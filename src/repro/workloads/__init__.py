"""Synthetic SpecInt2000-like workload suite."""

from .suite import (
    BY_NAME,
    SUITE,
    KernelSpec,
    build_program,
    build_suite,
    get_kernel,
    kernel_names,
)

__all__ = [
    "BY_NAME",
    "KernelSpec",
    "SUITE",
    "build_program",
    "build_suite",
    "get_kernel",
    "kernel_names",
]
