"""The workload registry — suite kernels as data.

Mirrors the mechanism-policy registry (:mod:`repro.ci.registry`): one
:class:`WorkloadSpec` per kernel naming its assembly-source builder, its
functional reference model, a characterisation line and the scales it is
usually swept at.  Registration order is the paper's presentation order
and is what every suite sweep, figure, fault matrix and the serve layer
enumerate — there is no second private kernel list anywhere.

``repro kernels`` renders this table; :func:`get_workload` resolves
names with the shared did-you-mean helper, so an unknown kernel fails
identically at the CLI, in a ``RunSpec`` and over the serve protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..isa import Program, assemble
from ..suggest import unknown_name_message
from . import kernels

#: the scales sweeps usually run a kernel at: (smoke, test, experiment)
DEFAULT_SCALES: Tuple[float, ...] = (0.1, 0.3, 0.5)


class UnknownWorkloadError(KeyError):
    """An unregistered kernel name (message carries suggestions).

    Subclasses :class:`KeyError` for compatibility with the pre-registry
    lookup; ``str()`` returns the plain message (no ``KeyError`` repr
    quoting) so protocol and CLI errors can surface it verbatim.
    """

    def __str__(self) -> str:
        return self.args[0] if self.args else "unknown workload"


@dataclass(frozen=True)
class WorkloadSpec:
    """One suite member: builder, reference model and characterisation."""

    name: str
    build_source: Callable[[float, int], str]
    reference: Callable[[float, int], Dict[int, int]]
    description: str
    traits: str
    #: coarse behaviour class (what the kernel stresses)
    category: str = "mixed"
    #: the scales this kernel is usually swept at
    default_scales: Tuple[float, ...] = DEFAULT_SCALES

    def program(self, scale: float = 1.0, seed: int = 1) -> Program:
        return assemble(self.build_source(scale, seed), name=self.name)


_REGISTRY: Dict[str, WorkloadSpec] = {}


def register_workload(spec: WorkloadSpec) -> WorkloadSpec:
    """Register ``spec``; registration order is presentation order."""
    if not spec.name:
        raise ValueError("workload spec needs a name")
    _REGISTRY[spec.name] = spec
    return spec


def get_workload(name: str) -> WorkloadSpec:
    """Resolve a kernel name, with close-match suggestions on failure."""
    spec = _REGISTRY.get(name)
    if spec is not None:
        return spec
    raise UnknownWorkloadError(
        unknown_name_message("kernel", name, workload_names()))


def workload_names() -> List[str]:
    """Every registered kernel, in registration (paper) order."""
    return list(_REGISTRY)


def all_workloads() -> List[WorkloadSpec]:
    return list(_REGISTRY.values())


# ---------------------------------------------------------------------------
# Built-in suite: the 12 SpecInt2000-like kernels, paper order.
# ---------------------------------------------------------------------------

register_workload(WorkloadSpec(
    "bzip2", kernels.build_bzip2, kernels.ref_bzip2,
    "byte-frequency pass with prefix-sum store-out",
    "hard threshold hammock, unit-stride loads and stores",
    category="hammock"))

register_workload(WorkloadSpec(
    "crafty", kernels.build_crafty, kernels.ref_crafty,
    "bitboard bit tests with in-place data evolution",
    "data-dependent bit-test hammock, unit-stride loads",
    category="hammock"))

register_workload(WorkloadSpec(
    "eon", kernels.build_eon, kernels.ref_eon,
    "FP-flavoured pixel pass with highly biased branch",
    "easy branches (MBS filters them), FP unit pressure",
    category="biased"))

register_workload(WorkloadSpec(
    "gap", kernels.build_gap, kernels.ref_gap,
    "permutation walk with indirect value lookup",
    "mixed strided + indirect loads",
    category="indirect"))

register_workload(WorkloadSpec(
    "gcc", kernels.build_gcc, kernels.ref_gcc,
    "branch-dense classification (2 hammocks + if-then)",
    "many hard branches, short CI regions",
    category="branchy"))

register_workload(WorkloadSpec(
    "gzip", kernels.build_gzip, kernels.ref_gzip,
    "LZ-style match loop with geometric trip counts",
    "variable-trip inner loop, drifting strides",
    category="loopy"))

register_workload(WorkloadSpec(
    "mcf", kernels.build_mcf, kernels.ref_mcf,
    "pointer chase over a random cycle",
    "non-strided loads: CI selected but rarely reused",
    category="pointer"))

register_workload(WorkloadSpec(
    "parser", kernels.build_parser, kernels.ref_parser,
    "nested character classification",
    "nested hammocks, path-dependent token register",
    category="branchy"))

register_workload(WorkloadSpec(
    "perlbmk", kernels.build_perlbmk, kernels.ref_perlbmk,
    "multiplicative hash chain",
    "self-recurrent vectorizable chain through INT_MUL",
    category="chain"))

register_workload(WorkloadSpec(
    "twolf", kernels.build_twolf, kernels.ref_twolf,
    "annealing accept/reject against evolving incumbent",
    "hard branch, one arm writes a CI-blocking register",
    category="hammock"))

register_workload(WorkloadSpec(
    "vortex", kernels.build_vortex, kernels.ref_vortex,
    "record updates with in-place stores",
    "stride-16 loads, store/replica coherence pressure",
    category="stores"))

register_workload(WorkloadSpec(
    "vpr", kernels.build_vpr, kernels.ref_vpr,
    "|a-b| placement cost with both-arms-write hammock",
    "CI blocked for diff consumers, clean accumulator reusable",
    category="hammock"))
