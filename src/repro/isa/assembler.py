"""Two-pass assembler for the reproduction ISA.

Syntax (one statement per line, ``;`` or ``#`` start a comment)::

    .data   name N              ; reserve N zero words, label `name`
    .dataw  name v0 v1 ...      ; initialised words, label `name`
    label:                      ; code label (may share a line with an insn)
        li    r1, 0
        la    r2, name          ; rd <- byte address of data label
        ld    r3, 8(r2)         ; displacement(base)
        ld    r3, name(r1)      ; data-label displacement
        add   r4, r3, r1
        beq   r4, r1, label
        beqz  r4, label
        j     label
        halt

Registers are ``r0`` .. ``r63``.  Immediates are decimal, hex (0x..),
negative, a data label, or ``label+offset``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .instructions import Instruction, validate
from .opcodes import (
    REG_IMM_ALU,
    REG_REG_ALU,
    TWO_SRC_BRANCHES,
    Op,
)

#: Reg-reg opcode -> immediate-form opcode, for assembler convenience.
_IMM_FORM = {
    Op.ADD: Op.ADDI,
    Op.MUL: Op.MULI,
    Op.AND: Op.ANDI,
    Op.OR: Op.ORI,
    Op.XOR: Op.XORI,
    Op.SLL: Op.SLLI,
    Op.SRL: Op.SRLI,
    Op.SLT: Op.SLTI,
    Op.SEQ: Op.SEQI,
}
from .program import DATA_BASE, WORD, Program


class AssemblerError(ValueError):
    """Raised on malformed assembly input."""

    def __init__(self, msg: str, lineno: int = -1, line: str = ""):
        super().__init__(f"line {lineno}: {msg}: {line!r}" if lineno >= 0 else msg)
        self.lineno = lineno


_REG_RE = re.compile(r"^r(\d{1,2})$")
_MEM_RE = re.compile(r"^([^()\s]+)\((r\d{1,2})\)$")
_LABEL_OFF_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*\+\s*((?:0x[0-9a-fA-F]+|\d+))$")

#: Pseudo-ops expanded by the assembler.
_PSEUDO = {"la", "subi"}

_NO_OPERANDS = {"nop": Op.NOP, "halt": Op.HALT}

_ZCMP_BRANCHES = {Op.BEQZ, Op.BNEZ, Op.BLTZ, Op.BGEZ}


def _parse_reg(tok: str, lineno: int, line: str) -> int:
    m = _REG_RE.match(tok)
    if not m:
        raise AssemblerError(f"expected register, got {tok!r}", lineno, line)
    n = int(m.group(1))
    if n >= 64:
        raise AssemblerError(f"register out of range: {tok!r}", lineno, line)
    return n


def _parse_int(tok: str) -> Optional[int]:
    try:
        return int(tok, 0)
    except ValueError:
        return None


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self) -> None:
        self._code_labels: Dict[str, int] = {}
        self._data_labels: Dict[str, int] = {}
        self._data_init: Dict[int, int] = {}
        self._data_cursor = DATA_BASE

    # -- public entry point ------------------------------------------------
    def assemble(self, source: str, name: str = "") -> Program:
        statements = self._pass1(source)
        code = self._pass2(statements)
        return Program(
            code=code,
            labels=dict(self._code_labels),
            data_labels=dict(self._data_labels),
            data_init=dict(self._data_init),
            data_end=self._data_cursor,
            name=name,
        )

    # -- pass 1: labels, data layout, statement collection ------------------
    def _pass1(self, source: str) -> List[Tuple[int, str, List[str]]]:
        statements: List[Tuple[int, str, List[str]]] = []
        pc = 0
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = raw.split(";")[0].split("#")[0].strip()
            if not line:
                continue
            if line.startswith(".data"):
                self._directive(line, lineno, raw)
                continue
            while True:
                m = re.match(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$", line)
                if not m:
                    break
                label, rest = m.group(1), m.group(2)
                if label in self._code_labels:
                    raise AssemblerError(f"duplicate label {label!r}", lineno, raw)
                self._code_labels[label] = pc
                line = rest.strip()
            if not line:
                continue
            parts = line.replace(",", " ").split()
            statements.append((lineno, raw, parts))
            pc += 1
        return statements

    def _directive(self, line: str, lineno: int, raw: str) -> None:
        parts = line.replace(",", " ").split()
        kind = parts[0]
        if kind == ".data":
            if len(parts) != 3:
                raise AssemblerError(".data needs: .data name N", lineno, raw)
            name, count = parts[1], _parse_int(parts[2])
            if count is None or count < 0:
                raise AssemblerError("bad .data count", lineno, raw)
            self._alloc(name, count, lineno, raw)
        elif kind == ".dataw":
            if len(parts) < 3:
                raise AssemblerError(".dataw needs: .dataw name v0 ...", lineno, raw)
            name = parts[1]
            values = []
            for tok in parts[2:]:
                v = _parse_int(tok)
                if v is None:
                    raise AssemblerError(f"bad .dataw value {tok!r}", lineno, raw)
                values.append(v)
            base = self._alloc(name, len(values), lineno, raw)
            for i, v in enumerate(values):
                if v != 0:
                    self._data_init[base + i * WORD] = v & ((1 << 64) - 1)
        else:
            raise AssemblerError(f"unknown directive {kind!r}", lineno, raw)

    def _alloc(self, name: str, words: int, lineno: int, raw: str) -> int:
        if name in self._data_labels:
            raise AssemblerError(f"duplicate data label {name!r}", lineno, raw)
        base = self._data_cursor
        self._data_labels[name] = base
        self._data_cursor += words * WORD
        return base

    # -- pass 2: encode ------------------------------------------------------
    def _resolve_imm(self, tok: str, lineno: int, raw: str) -> int:
        v = _parse_int(tok)
        if v is not None:
            return v
        m = _LABEL_OFF_RE.match(tok)
        if m and m.group(1) in self._data_labels:
            return self._data_labels[m.group(1)] + int(m.group(2), 0)
        if tok in self._data_labels:
            return self._data_labels[tok]
        raise AssemblerError(f"unresolved immediate {tok!r}", lineno, raw)

    def _resolve_target(self, tok: str, lineno: int, raw: str) -> int:
        if tok in self._code_labels:
            return self._code_labels[tok]
        v = _parse_int(tok)
        if v is not None:
            return v
        raise AssemblerError(f"unresolved code label {tok!r}", lineno, raw)

    def _pass2(self, statements: List[Tuple[int, str, List[str]]]) -> List[Instruction]:
        code: List[Instruction] = []
        for pc, (lineno, raw, parts) in enumerate(statements):
            instr = self._encode(pc, lineno, raw, parts)
            try:
                validate(instr)
            except AssertionError as exc:
                raise AssemblerError(str(exc), lineno, raw) from exc
            code.append(instr)
        return code

    def _encode(self, pc: int, lineno: int, raw: str, parts: List[str]) -> Instruction:
        mnemonic, ops = parts[0].lower(), parts[1:]
        text = " ".join(parts)

        if mnemonic in _NO_OPERANDS:
            return Instruction(op=_NO_OPERANDS[mnemonic], pc=pc, text=text)

        if mnemonic == "la":  # pseudo: rd <- address of data label
            rd = _parse_reg(ops[0], lineno, raw)
            imm = self._resolve_imm(ops[1], lineno, raw)
            return Instruction(op=Op.LI, rd=rd, imm=imm, pc=pc, text=text)
        if mnemonic == "subi":  # pseudo: addi with negated immediate
            rd = _parse_reg(ops[0], lineno, raw)
            rs1 = _parse_reg(ops[1], lineno, raw)
            imm = self._resolve_imm(ops[2], lineno, raw)
            return Instruction(op=Op.ADDI, rd=rd, rs1=rs1, imm=-imm, pc=pc, text=text)

        try:
            op = Op[mnemonic.upper()]
        except KeyError:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", lineno, raw) from None

        if op is Op.LD:
            rd = _parse_reg(ops[0], lineno, raw)
            m = _MEM_RE.match(ops[1])
            if not m:
                raise AssemblerError("ld needs disp(base)", lineno, raw)
            imm = self._resolve_imm(m.group(1), lineno, raw)
            rs1 = _parse_reg(m.group(2), lineno, raw)
            return Instruction(op=op, rd=rd, rs1=rs1, imm=imm, pc=pc, text=text)
        if op is Op.ST:
            rs2 = _parse_reg(ops[0], lineno, raw)  # value to store
            m = _MEM_RE.match(ops[1])
            if not m:
                raise AssemblerError("st needs disp(base)", lineno, raw)
            imm = self._resolve_imm(m.group(1), lineno, raw)
            rs1 = _parse_reg(m.group(2), lineno, raw)
            return Instruction(op=op, rs1=rs1, rs2=rs2, imm=imm, pc=pc, text=text)
        if op is Op.J:
            return Instruction(op=op, target=self._resolve_target(ops[0], lineno, raw),
                               pc=pc, text=text)
        if op in TWO_SRC_BRANCHES:
            rs1 = _parse_reg(ops[0], lineno, raw)
            rs2 = _parse_reg(ops[1], lineno, raw)
            target = self._resolve_target(ops[2], lineno, raw)
            return Instruction(op=op, rs1=rs1, rs2=rs2, target=target, pc=pc, text=text)
        if op in _ZCMP_BRANCHES:
            rs1 = _parse_reg(ops[0], lineno, raw)
            target = self._resolve_target(ops[1], lineno, raw)
            return Instruction(op=op, rs1=rs1, target=target, pc=pc, text=text)
        if op is Op.LI:
            rd = _parse_reg(ops[0], lineno, raw)
            imm = self._resolve_imm(ops[1], lineno, raw)
            return Instruction(op=op, rd=rd, imm=imm, pc=pc, text=text)
        if op in (Op.MOV, Op.ITOF, Op.FTOI):
            rd = _parse_reg(ops[0], lineno, raw)
            rs1 = _parse_reg(ops[1], lineno, raw)
            return Instruction(op=op, rd=rd, rs1=rs1, pc=pc, text=text)

        # Remaining: three-operand ALU forms, reg-reg or reg-imm.
        if len(ops) != 3:
            raise AssemblerError(f"{mnemonic} needs 3 operands", lineno, raw)
        rd = _parse_reg(ops[0], lineno, raw)
        rs1 = _parse_reg(ops[1], lineno, raw)
        if _REG_RE.match(ops[2]):
            if op in REG_IMM_ALU:
                raise AssemblerError(f"{mnemonic} needs an immediate", lineno, raw)
            rs2 = _parse_reg(ops[2], lineno, raw)
            return Instruction(op=op, rd=rd, rs1=rs1, rs2=rs2, pc=pc, text=text)
        imm = self._resolve_imm(ops[2], lineno, raw)
        if op in REG_REG_ALU:
            # Convenience: reg-reg mnemonics with a literal third operand
            # assemble to the matching immediate form.
            if op is Op.SUB:
                op, imm = Op.ADDI, -imm
            elif op in _IMM_FORM:
                op = _IMM_FORM[op]
            else:
                raise AssemblerError(
                    f"{mnemonic} has no immediate form", lineno, raw)
        return Instruction(op=op, rd=rd, rs1=rs1, imm=imm, pc=pc, text=text)


def assemble(source: str, name: str = "") -> Program:
    """Assemble ``source`` into a :class:`Program`."""
    return Assembler().assemble(source, name=name)
