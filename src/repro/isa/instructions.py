"""Static instruction representation.

``Instruction`` is the decoded, label-resolved form a program is made of.
PCs are instruction indices (the ISA is word-addressed for code); the
paper's "instruction situated one location above the target address" is
``program.code[target - 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .opcodes import (
    COND_BRANCHES,
    FU_OF_OP,
    NO_SRC_ALU,
    ONE_SRC_ALU,
    REG_REG_ALU,
    TWO_SRC_BRANCHES,
    FUClass,
    Op,
)

NUM_LOGICAL_REGS = 64


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    ``rd``/``rs1``/``rs2`` are logical register numbers (or ``None``).
    ``imm`` is the immediate (also the displacement of loads/stores).
    ``target`` is the resolved branch/jump destination PC.
    """

    op: Op
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: int = 0
    target: Optional[int] = None
    pc: int = -1
    #: original assembly text — debugging metadata, excluded from equality
    text: str = field(default="", compare=False)
    srcs: Tuple[int, ...] = field(init=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "srcs", self._compute_srcs())

    def _compute_srcs(self) -> Tuple[int, ...]:
        op = self.op
        if op in REG_REG_ALU or op in TWO_SRC_BRANCHES:
            return (self.rs1, self.rs2)
        if op in ONE_SRC_ALU or op is Op.LD:
            return (self.rs1,)
        if op in COND_BRANCHES:  # single-source zero-compare branches
            return (self.rs1,)
        if op is Op.ST:
            return (self.rs1, self.rs2)  # address base, stored value
        return ()

    # -- structural properties -------------------------------------------
    @property
    def is_load(self) -> bool:
        return self.op is Op.LD

    @property
    def is_store(self) -> bool:
        return self.op is Op.ST

    @property
    def is_mem(self) -> bool:
        return self.op is Op.LD or self.op is Op.ST

    @property
    def is_cond_branch(self) -> bool:
        return self.op in COND_BRANCHES

    @property
    def is_jump(self) -> bool:
        return self.op is Op.J

    @property
    def is_control(self) -> bool:
        return self.op in COND_BRANCHES or self.op is Op.J

    @property
    def is_halt(self) -> bool:
        return self.op is Op.HALT

    @property
    def writes_reg(self) -> bool:
        return self.rd is not None

    @property
    def fu_class(self) -> FUClass:
        return FU_OF_OP[self.op]

    @property
    def is_backward_branch(self) -> bool:
        """True for a conditional branch whose target precedes it.

        The paper's re-convergence heuristic treats backward branches as
        loop-closing branches.
        """
        return self.is_cond_branch and self.target is not None and self.target <= self.pc

    @property
    def is_forward_branch(self) -> bool:
        return self.is_cond_branch and self.target is not None and self.target > self.pc

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.text:
            return f"{self.pc:5d}: {self.text}"
        return f"{self.pc:5d}: {self.op.name}"


def make_nop(pc: int = -1) -> Instruction:
    return Instruction(op=Op.NOP, pc=pc, text="nop")


_validity_checked = set()


def validate(instr: Instruction) -> None:
    """Sanity-check field population for an opcode (used by the assembler)."""
    op = instr.op
    if op in REG_REG_ALU:
        assert instr.rd is not None and instr.rs1 is not None and instr.rs2 is not None
    elif op in ONE_SRC_ALU:
        assert instr.rd is not None and instr.rs1 is not None
    elif op in NO_SRC_ALU:
        assert instr.rd is not None
    elif op is Op.LD:
        assert instr.rd is not None and instr.rs1 is not None
    elif op is Op.ST:
        assert instr.rs1 is not None and instr.rs2 is not None and instr.rd is None
    elif op in COND_BRANCHES or op is Op.J:
        assert instr.target is not None
    for r in instr.srcs + ((instr.rd,) if instr.rd is not None else ()):
        assert r is not None and 0 <= r < NUM_LOGICAL_REGS, f"bad register in {instr}"
