"""Static instruction representation.

``Instruction`` is the decoded, label-resolved form a program is made of.
PCs are instruction indices (the ISA is word-addressed for code); the
paper's "instruction situated one location above the target address" is
``program.code[target - 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .opcodes import (
    ALU_EVAL,
    BRANCH_COND,
    COND_BRANCHES,
    FU_OF_OP,
    NO_SRC_ALU,
    ONE_SRC_ALU,
    REG_REG_ALU,
    TWO_SRC_BRANCHES,
    FUClass,
    Op,
)

NUM_LOGICAL_REGS = 64

# Execution-dispatch kinds, precomputed per instruction so the timing
# core and the functional interpreter branch on one int instead of a
# chain of ``op in ALU_EVAL`` / ``op is Op.LD`` tests per dynamic
# instruction (measured hot path; see benchmarks/bench_runtime.py).
K_ALU = 0
K_LOAD = 1
K_STORE = 2
K_BRANCH = 3
K_JUMP = 4
K_NOP = 5
K_HALT = 6

#: op -> kind, indexable by ``int(op)``
KIND_OF_OP = [K_NOP] * (max(Op) + 1)
for _op in Op:
    if _op in ALU_EVAL:
        KIND_OF_OP[_op] = K_ALU
    elif _op is Op.LD:
        KIND_OF_OP[_op] = K_LOAD
    elif _op is Op.ST:
        KIND_OF_OP[_op] = K_STORE
    elif _op in BRANCH_COND:
        KIND_OF_OP[_op] = K_BRANCH
    elif _op is Op.J:
        KIND_OF_OP[_op] = K_JUMP
    elif _op is Op.HALT:
        KIND_OF_OP[_op] = K_HALT


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    ``rd``/``rs1``/``rs2`` are logical register numbers (or ``None``).
    ``imm`` is the immediate (also the displacement of loads/stores).
    ``target`` is the resolved branch/jump destination PC.
    """

    op: Op
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: int = 0
    target: Optional[int] = None
    pc: int = -1
    #: original assembly text — debugging metadata, excluded from equality
    text: str = field(default="", compare=False)
    srcs: Tuple[int, ...] = field(init=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "srcs", self._compute_srcs())
        self._precompute()

    def _precompute(self) -> None:
        """Materialise the structural predicates as plain attributes.

        These used to be ``@property`` lookups; the timing core reads
        them several times per dynamic instruction, so descriptor +
        enum-comparison overhead was a measurable slice of simulation
        time.  ``alu_fn``/``branch_fn`` are the evaluation callables
        (or ``None``), resolved once per *static* instruction.
        """
        op = self.op
        _set = object.__setattr__
        _set(self, "kind", KIND_OF_OP[op])
        _set(self, "is_load", op is Op.LD)
        _set(self, "is_store", op is Op.ST)
        _set(self, "is_mem", op is Op.LD or op is Op.ST)
        _set(self, "is_cond_branch", op in COND_BRANCHES)
        _set(self, "is_jump", op is Op.J)
        _set(self, "is_control", op in COND_BRANCHES or op is Op.J)
        _set(self, "is_halt", op is Op.HALT)
        _set(self, "writes_reg", self.rd is not None)
        _set(self, "fu_class", FU_OF_OP[op])
        has_target = self.target is not None
        is_cond = op in COND_BRANCHES
        _set(self, "is_backward_branch",
             is_cond and has_target and self.target <= self.pc)
        _set(self, "is_forward_branch",
             is_cond and has_target and self.target > self.pc)
        _set(self, "alu_fn", ALU_EVAL.get(op))
        _set(self, "branch_fn", BRANCH_COND.get(op))

    # The evaluation callables are module-level lambdas and do not
    # pickle; strip them from the state and rebuild on load.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("alu_fn", None)
        state.pop("branch_fn", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._precompute()

    def _compute_srcs(self) -> Tuple[int, ...]:
        op = self.op
        if op in REG_REG_ALU or op in TWO_SRC_BRANCHES:
            return (self.rs1, self.rs2)
        if op in ONE_SRC_ALU or op is Op.LD:
            return (self.rs1,)
        if op in COND_BRANCHES:  # single-source zero-compare branches
            return (self.rs1,)
        if op is Op.ST:
            return (self.rs1, self.rs2)  # address base, stored value
        return ()

    # -- structural attributes (set by ``_precompute``) ------------------
    # ``is_load`` / ``is_store`` / ``is_mem`` / ``is_cond_branch`` /
    # ``is_jump`` / ``is_control`` / ``is_halt`` / ``writes_reg`` —
    # structural predicates of the opcode.
    # ``fu_class`` — the functional-unit class (FU_OF_OP[op]).
    # ``kind`` — execution-dispatch kind (K_ALU, K_LOAD, ...).
    # ``is_backward_branch`` — conditional branch whose target precedes
    # it (the paper's re-convergence heuristic treats these as
    # loop-closing branches); ``is_forward_branch`` its complement.
    # ``alu_fn`` / ``branch_fn`` — evaluation callables or None.

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.text:
            return f"{self.pc:5d}: {self.text}"
        return f"{self.pc:5d}: {self.op.name}"


def make_nop(pc: int = -1) -> Instruction:
    return Instruction(op=Op.NOP, pc=pc, text="nop")


_validity_checked = set()


def validate(instr: Instruction) -> None:
    """Sanity-check field population for an opcode (used by the assembler)."""
    op = instr.op
    if op in REG_REG_ALU:
        assert instr.rd is not None and instr.rs1 is not None and instr.rs2 is not None
    elif op in ONE_SRC_ALU:
        assert instr.rd is not None and instr.rs1 is not None
    elif op in NO_SRC_ALU:
        assert instr.rd is not None
    elif op is Op.LD:
        assert instr.rd is not None and instr.rs1 is not None
    elif op is Op.ST:
        assert instr.rs1 is not None and instr.rs2 is not None and instr.rd is None
    elif op in COND_BRANCHES or op is Op.J:
        assert instr.target is not None
    for r in instr.srcs + ((instr.rd,) if instr.rd is not None else ()):
        assert r is not None and 0 <= r < NUM_LOGICAL_REGS, f"bad register in {instr}"
