"""Program container: assembled code plus the initial data image."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .instructions import Instruction

#: Base byte address of the data segment.  Code addresses (PCs) are
#: instruction indices in a separate space, so any base works; a non-zero
#: base makes accidental address/PC confusion easy to spot.
DATA_BASE = 0x10000
WORD = 8  # bytes per data word


@dataclass
class Program:
    """An assembled program.

    ``code``        decoded instructions; ``code[i].pc == i``.
    ``labels``      code label -> PC.
    ``data_labels`` data label -> byte address.
    ``data_init``   initial memory image, byte address -> word value.
    ``data_end``    first free byte address after the static data.
    """

    code: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    data_labels: Dict[str, int] = field(default_factory=dict)
    data_init: Dict[int, int] = field(default_factory=dict)
    data_end: int = DATA_BASE
    name: str = ""

    def __len__(self) -> int:
        return len(self.code)

    def initial_memory(self) -> Dict[int, int]:
        """A fresh mutable memory image for one execution."""
        return dict(self.data_init)

    def instruction_above(self, pc: int) -> Instruction | None:
        """The instruction one location above ``pc`` (paper's heuristic probe)."""
        if 0 < pc <= len(self.code):
            return self.code[pc - 1]
        return None

    def listing(self) -> str:
        """Human-readable disassembly with labels."""
        by_pc: Dict[int, List[str]] = {}
        for name, pc in self.labels.items():
            by_pc.setdefault(pc, []).append(name)
        lines = []
        for instr in self.code:
            for lab in by_pc.get(instr.pc, ()):
                lines.append(f"{lab}:")
            lines.append(f"  {instr.pc:5d}  {instr.text or instr.op.name}")
        return "\n".join(lines)
