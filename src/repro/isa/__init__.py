"""ISA substrate: opcodes, instructions, assembler, functional interpreter."""

from .assembler import Assembler, AssemblerError, assemble
from .instructions import NUM_LOGICAL_REGS, Instruction, make_nop
from .interp import (
    InterpError,
    InterpResult,
    InterpreterError,
    StepLimitExceeded,
    run,
)
from .opcodes import (
    ALU_EVAL,
    BRANCH_COND,
    COND_BRANCHES,
    FU_LATENCY,
    FU_OF_OP,
    MASK64,
    FUClass,
    Op,
    to_signed,
    to_unsigned,
)
from .predecode import ProgramImage, image_digest, predecode
from .program import DATA_BASE, WORD, Program

__all__ = [
    "ALU_EVAL",
    "Assembler",
    "AssemblerError",
    "BRANCH_COND",
    "COND_BRANCHES",
    "DATA_BASE",
    "FUClass",
    "FU_LATENCY",
    "FU_OF_OP",
    "Instruction",
    "InterpError",
    "InterpResult",
    "InterpreterError",
    "StepLimitExceeded",
    "MASK64",
    "NUM_LOGICAL_REGS",
    "Op",
    "Program",
    "ProgramImage",
    "WORD",
    "assemble",
    "image_digest",
    "make_nop",
    "predecode",
    "run",
    "to_signed",
    "to_unsigned",
]
from .encoding import (INSTRUCTION_SIZE, EncodingError, decode_instruction, decode_program, encode_instruction, encode_program)
