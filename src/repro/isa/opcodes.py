"""Opcode definitions and per-opcode semantic metadata.

The reproduction uses a small 64-bit RISC ISA (64 logical registers,
word-addressed loads/stores with byte addresses) that plays the role the
Alpha ISA played in the paper's SimpleScalar setup.  Every opcode carries:

* a functional-unit class (used by the timing model's FU pools),
* an evaluation function (used by the functional interpreter and by the
  speculative replica engine), and
* structural properties (does it write a register, is it a branch, ...).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict

MASK64 = (1 << 64) - 1
SIGN64 = 1 << 63


def to_signed(v: int) -> int:
    """Interpret a 64-bit unsigned value as two's-complement signed."""
    v &= MASK64
    return v - (1 << 64) if v & SIGN64 else v


def to_unsigned(v: int) -> int:
    """Wrap a Python int into the 64-bit unsigned domain."""
    return v & MASK64


class FUClass(enum.IntEnum):
    """Functional-unit classes, matching Table 1 of the paper."""

    INT_ALU = 0   # 6 units, 1-cycle latency
    INT_MUL = 1   # 3 units, 2-cycle latency
    INT_DIV = 2   # shares the 3 mul/div units, 12-cycle latency
    FP_ADD = 3    # 4 units, 2-cycle latency
    FP_MUL = 4    # 2 units, 4-cycle latency
    FP_DIV = 5    # shares the 2 FP mul/div units, 14-cycle latency
    MEM = 6       # load/store pipeline (address generation)
    BRANCH = 7    # resolved on an INT_ALU in hardware; tracked separately
    NONE = 8      # NOP / HALT


class Op(enum.IntEnum):
    """Instruction opcodes."""

    # Register-register ALU.
    ADD = enum.auto()
    SUB = enum.auto()
    MUL = enum.auto()
    DIV = enum.auto()
    REM = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    SLL = enum.auto()
    SRL = enum.auto()
    SRA = enum.auto()
    SLT = enum.auto()
    SLE = enum.auto()
    SEQ = enum.auto()
    MIN = enum.auto()
    MAX = enum.auto()
    # Register-immediate ALU.
    ADDI = enum.auto()
    MULI = enum.auto()
    ANDI = enum.auto()
    ORI = enum.auto()
    XORI = enum.auto()
    SLLI = enum.auto()
    SRLI = enum.auto()
    SLTI = enum.auto()
    SEQI = enum.auto()
    LI = enum.auto()     # rd <- imm
    MOV = enum.auto()    # rd <- rs1
    # Floating point (values live in the same registers, as Python floats).
    FADD = enum.auto()
    FSUB = enum.auto()
    FMUL = enum.auto()
    FDIV = enum.auto()
    ITOF = enum.auto()
    FTOI = enum.auto()
    # Memory.
    LD = enum.auto()     # rd <- MEM[rs1 + imm]
    ST = enum.auto()     # MEM[rs1 + imm] <- rs2
    # Control flow.
    BEQ = enum.auto()    # if rs1 == rs2 goto target
    BNE = enum.auto()
    BLT = enum.auto()
    BGE = enum.auto()
    BLE = enum.auto()
    BGT = enum.auto()
    BEQZ = enum.auto()   # if rs1 == 0 goto target
    BNEZ = enum.auto()
    BLTZ = enum.auto()
    BGEZ = enum.auto()
    J = enum.auto()      # unconditional direct jump
    # Misc.
    NOP = enum.auto()
    HALT = enum.auto()


def _div(a: int, b: int) -> int:
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return 0
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return to_unsigned(q)


def _rem(a: int, b: int) -> int:
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return 0
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return to_unsigned(r)


def _f(v: int) -> float:
    """View a register value as a float for the lightweight FP ops.

    Registers hold Python numbers; FP instructions simply operate in the
    float domain.  This keeps a single register file (as the paper's
    mechanism is about integer codes, FP only exercises the FP unit pools).
    """
    return float(v) if not isinstance(v, float) else v


# rd <- f(rs1_value, rs2_value, imm)
ALU_EVAL: Dict[Op, Callable[[int, int, int], int]] = {
    Op.ADD: lambda a, b, i: (a + b) & MASK64,
    Op.SUB: lambda a, b, i: (a - b) & MASK64,
    Op.MUL: lambda a, b, i: (a * b) & MASK64,
    Op.DIV: lambda a, b, i: _div(a, b),
    Op.REM: lambda a, b, i: _rem(a, b),
    Op.AND: lambda a, b, i: a & b,
    Op.OR: lambda a, b, i: a | b,
    Op.XOR: lambda a, b, i: a ^ b,
    Op.SLL: lambda a, b, i: (a << (b & 63)) & MASK64,
    Op.SRL: lambda a, b, i: (a & MASK64) >> (b & 63),
    Op.SRA: lambda a, b, i: to_unsigned(to_signed(a) >> (b & 63)),
    Op.SLT: lambda a, b, i: 1 if to_signed(a) < to_signed(b) else 0,
    Op.SLE: lambda a, b, i: 1 if to_signed(a) <= to_signed(b) else 0,
    Op.SEQ: lambda a, b, i: 1 if a == b else 0,
    Op.MIN: lambda a, b, i: a if to_signed(a) < to_signed(b) else b,
    Op.MAX: lambda a, b, i: a if to_signed(a) > to_signed(b) else b,
    Op.ADDI: lambda a, b, i: (a + i) & MASK64,
    Op.MULI: lambda a, b, i: (a * i) & MASK64,
    Op.ANDI: lambda a, b, i: a & (i & MASK64),
    Op.ORI: lambda a, b, i: a | (i & MASK64),
    Op.XORI: lambda a, b, i: a ^ (i & MASK64),
    Op.SLLI: lambda a, b, i: (a << (i & 63)) & MASK64,
    Op.SRLI: lambda a, b, i: (a & MASK64) >> (i & 63),
    Op.SLTI: lambda a, b, i: 1 if to_signed(a) < i else 0,
    Op.SEQI: lambda a, b, i: 1 if to_signed(a) == i else 0,
    Op.LI: lambda a, b, i: to_unsigned(i),
    Op.MOV: lambda a, b, i: a,
    Op.FADD: lambda a, b, i: _f(a) + _f(b),
    Op.FSUB: lambda a, b, i: _f(a) - _f(b),
    Op.FMUL: lambda a, b, i: _f(a) * _f(b),
    Op.FDIV: lambda a, b, i: _f(a) / _f(b) if _f(b) != 0.0 else 0.0,
    Op.ITOF: lambda a, b, i: float(to_signed(a) if isinstance(a, int) else a),
    Op.FTOI: lambda a, b, i: to_unsigned(int(_f(a))),
}

# Branch condition: f(rs1_value, rs2_value) -> bool
BRANCH_COND: Dict[Op, Callable[[int, int], bool]] = {
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.BLT: lambda a, b: to_signed(a) < to_signed(b),
    Op.BGE: lambda a, b: to_signed(a) >= to_signed(b),
    Op.BLE: lambda a, b: to_signed(a) <= to_signed(b),
    Op.BGT: lambda a, b: to_signed(a) > to_signed(b),
    Op.BEQZ: lambda a, b: a == 0,
    Op.BNEZ: lambda a, b: a != 0,
    Op.BLTZ: lambda a, b: to_signed(a) < 0,
    Op.BGEZ: lambda a, b: to_signed(a) >= 0,
}

COND_BRANCHES = frozenset(BRANCH_COND)
TWO_SRC_BRANCHES = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLE, Op.BGT})
REG_REG_ALU = frozenset({
    Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.REM, Op.AND, Op.OR, Op.XOR,
    Op.SLL, Op.SRL, Op.SRA, Op.SLT, Op.SLE, Op.SEQ, Op.MIN, Op.MAX,
    Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV,
})
REG_IMM_ALU = frozenset({
    Op.ADDI, Op.MULI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI, Op.SRLI,
    Op.SLTI, Op.SEQI,
})
ONE_SRC_ALU = frozenset({Op.MOV, Op.ITOF, Op.FTOI}) | REG_IMM_ALU
NO_SRC_ALU = frozenset({Op.LI})

FU_OF_OP: Dict[Op, FUClass] = {}
for _op in Op:
    if _op in (Op.MUL, Op.MULI):
        FU_OF_OP[_op] = FUClass.INT_MUL
    elif _op in (Op.DIV, Op.REM):
        FU_OF_OP[_op] = FUClass.INT_DIV
    elif _op in (Op.FADD, Op.FSUB, Op.ITOF, Op.FTOI):
        FU_OF_OP[_op] = FUClass.FP_ADD
    elif _op is Op.FMUL:
        FU_OF_OP[_op] = FUClass.FP_MUL
    elif _op is Op.FDIV:
        FU_OF_OP[_op] = FUClass.FP_DIV
    elif _op in (Op.LD, Op.ST):
        FU_OF_OP[_op] = FUClass.MEM
    elif _op in COND_BRANCHES or _op is Op.J:
        FU_OF_OP[_op] = FUClass.BRANCH
    elif _op in (Op.NOP, Op.HALT):
        FU_OF_OP[_op] = FUClass.NONE
    else:
        FU_OF_OP[_op] = FUClass.INT_ALU

#: Timing-model execution latency per FU class (cycles), per Table 1.
FU_LATENCY: Dict[FUClass, int] = {
    FUClass.INT_ALU: 1,
    FUClass.INT_MUL: 2,
    FUClass.INT_DIV: 12,
    FUClass.FP_ADD: 2,
    FUClass.FP_MUL: 4,
    FUClass.FP_DIV: 14,
    FUClass.MEM: 1,      # address generation; cache latency is added on top
    FUClass.BRANCH: 1,
    FUClass.NONE: 1,
}
