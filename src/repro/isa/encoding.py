"""Binary encoding of instructions and programs.

A fixed 16-byte little-endian record per instruction::

    byte 0      opcode
    byte 1      rd  (0xFF = none)
    byte 2      rs1 (0xFF = none)
    byte 3      rs2 (0xFF = none)
    bytes 4-11  imm (64-bit two's complement)
    bytes 12-15 target (0xFFFFFFFF = none)

``encode_program``/``decode_program`` wrap a whole :class:`Program`
(code + initial data image) in a small container with a magic header, so
assembled workloads can be cached on disk or shipped between tools
without re-running the assembler.
"""

from __future__ import annotations

import struct
from typing import Dict, List

from .instructions import Instruction, validate
from .opcodes import Op
from .program import Program

MAGIC = b"RPRO"
VERSION = 1
_NONE_REG = 0xFF
_NONE_TARGET = 0xFFFFFFFF
_RECORD = struct.Struct("<BBBBqI")

INSTRUCTION_SIZE = _RECORD.size  # 16 bytes


class EncodingError(ValueError):
    """Raised on malformed binary input."""


def encode_instruction(instr: Instruction) -> bytes:
    """Pack one instruction into its 16-byte record."""
    return _RECORD.pack(
        int(instr.op),
        _NONE_REG if instr.rd is None else instr.rd,
        _NONE_REG if instr.rs1 is None else instr.rs1,
        _NONE_REG if instr.rs2 is None else instr.rs2,
        instr.imm,
        _NONE_TARGET if instr.target is None else instr.target,
    )


def decode_instruction(blob: bytes, pc: int = -1) -> Instruction:
    """Unpack one 16-byte record (inverse of :func:`encode_instruction`)."""
    if len(blob) != INSTRUCTION_SIZE:
        raise EncodingError(f"expected {INSTRUCTION_SIZE} bytes, "
                            f"got {len(blob)}")
    op_v, rd, rs1, rs2, imm, target = _RECORD.unpack(blob)
    try:
        op = Op(op_v)
    except ValueError:
        raise EncodingError(f"unknown opcode value {op_v}") from None
    instr = Instruction(
        op=op,
        rd=None if rd == _NONE_REG else rd,
        rs1=None if rs1 == _NONE_REG else rs1,
        rs2=None if rs2 == _NONE_REG else rs2,
        imm=imm,
        target=None if target == _NONE_TARGET else target,
        pc=pc,
    )
    try:
        validate(instr)
    except AssertionError as exc:
        raise EncodingError(f"invalid instruction record: {exc}") from exc
    return instr


def encode_program(program: Program) -> bytes:
    """Serialise a whole program (code + initial data image)."""
    parts: List[bytes] = [
        MAGIC,
        struct.pack("<HIIQ", VERSION, len(program.code),
                    len(program.data_init), program.data_end),
    ]
    for instr in program.code:
        parts.append(encode_instruction(instr))
    for addr in sorted(program.data_init):
        parts.append(struct.pack("<QQ", addr, program.data_init[addr]))
    name = program.name.encode()[:255]
    parts.append(struct.pack("<B", len(name)))
    parts.append(name)
    return b"".join(parts)


def decode_program(blob: bytes) -> Program:
    """Inverse of :func:`encode_program` (labels are not preserved)."""
    if blob[:4] != MAGIC:
        raise EncodingError("bad magic")
    version, ncode, ndata, data_end = struct.unpack_from("<HIIQ", blob, 4)
    if version != VERSION:
        raise EncodingError(f"unsupported version {version}")
    off = 4 + struct.calcsize("<HIIQ")
    code: List[Instruction] = []
    for pc in range(ncode):
        code.append(decode_instruction(blob[off:off + INSTRUCTION_SIZE], pc))
        off += INSTRUCTION_SIZE
    data: Dict[int, int] = {}
    for _ in range(ndata):
        addr, value = struct.unpack_from("<QQ", blob, off)
        data[addr] = value
        off += 16
    (name_len,) = struct.unpack_from("<B", blob, off)
    off += 1
    name = blob[off:off + name_len].decode()
    return Program(code=code, data_init=data, data_end=data_end, name=name)
