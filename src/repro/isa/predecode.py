"""Decode-once program image (DESIGN.md §9).

A :class:`ProgramImage` compiles a :class:`~repro.isa.program.Program`
into flat, immutable arrays-of-structs indexed by PC: execution-dispatch
kind, a structural flag bitmask, operand registers, immediates, resolved
branch targets, source tuples and the evaluation callables.  Everything
the fetch/dispatch hot loops used to re-read through ``Instruction``
attribute lookups per *dynamic* instance is paid once per *static*
instruction and shared read-only by the timing core
(:mod:`repro.uarch.core` / :mod:`repro.uarch.frontend`), the functional
interpreter (:mod:`repro.isa.interp`) and the fault oracle
(:mod:`repro.faults.oracle`).

The image is cached on the program object (``program._image``) so sweeps
that re-run one kernel under dozens of configurations predecode it once;
:attr:`ProgramImage.digest` feeds the persistent result cache's key so
predecode-layer changes invalidate cleanly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .program import Program

#: bump when the image layout or encoding semantics change — part of the
#: result-cache key (see ``repro.runtime.keys.job_key``)
PREDECODE_VERSION = 1

# -- structural flag bits (``ProgramImage.flags``) -----------------------
F_LOAD = 1 << 0
F_STORE = 1 << 1
F_MEM = 1 << 2
F_COND_BRANCH = 1 << 3
F_JUMP = 1 << 4
F_HALT = 1 << 5
F_WRITES_REG = 1 << 6
F_BACKWARD = 1 << 7      # loop-closing conditional branch

# -- fetch control classes (``ProgramImage.ctrl``) -----------------------
# One int telling the fetch loop everything it needs about redirection:
CTRL_SEQ = 0             # falls through, nothing to predict
CTRL_COND_FWD = 1        # conditional, forward target
CTRL_COND_BWD = 2        # conditional, backward target
CTRL_JUMP = 3            # unconditional jump
CTRL_HALT = 4            # stops fetch


class ProgramImage:
    """Flat read-only decode of one program, indexed by PC.

    Every array is a tuple of length ``n`` (one slot per static
    instruction).  Register fields are encoded *or-zero*: a missing
    ``rs1``/``rs2`` reads register 0, which is safe because every
    evaluation callable ignores its unused operands (the encoding is
    asserted against ``Instruction.srcs`` at build time via ``srcs``
    staying the authoritative dependence list).  ``rd`` is only
    meaningful where ``flags & F_WRITES_REG``.
    """

    __slots__ = ("n", "kind", "flags", "ctrl", "rd", "rs1", "rs2", "imm",
                 "target", "srcs", "alu_fn", "branch_fn", "fu_class",
                 "_digest")

    def __init__(self, code) -> None:
        n = len(code)
        kind = [0] * n
        flags = [0] * n
        ctrl = [CTRL_SEQ] * n
        rd = [0] * n
        rs1 = [0] * n
        rs2 = [0] * n
        imm = [0] * n
        target = [0] * n
        srcs: list = [()] * n
        alu_fn: list = [None] * n
        branch_fn: list = [None] * n
        fu_class = [0] * n
        for pc, instr in enumerate(code):
            assert instr.pc == pc, "program invariant: code[i].pc == i"
            kind[pc] = instr.kind
            f = 0
            if instr.is_load:
                f |= F_LOAD
            if instr.is_store:
                f |= F_STORE
            if instr.is_mem:
                f |= F_MEM
            if instr.is_cond_branch:
                f |= F_COND_BRANCH
            if instr.is_jump:
                f |= F_JUMP
            if instr.is_halt:
                f |= F_HALT
            if instr.writes_reg:
                f |= F_WRITES_REG
            if instr.is_backward_branch:
                f |= F_BACKWARD
            flags[pc] = f
            if instr.is_cond_branch:
                ctrl[pc] = (CTRL_COND_BWD if instr.is_backward_branch
                            else CTRL_COND_FWD)
            elif instr.is_jump:
                ctrl[pc] = CTRL_JUMP
            elif instr.is_halt:
                ctrl[pc] = CTRL_HALT
            rd[pc] = instr.rd if instr.rd is not None else 0
            rs1[pc] = instr.rs1 if instr.rs1 is not None else 0
            rs2[pc] = instr.rs2 if instr.rs2 is not None else 0
            imm[pc] = instr.imm
            target[pc] = instr.target if instr.target is not None else 0
            srcs[pc] = instr.srcs
            alu_fn[pc] = instr.alu_fn
            branch_fn[pc] = instr.branch_fn
            fu_class[pc] = instr.fu_class
        self.n = n
        self.kind = tuple(kind)
        self.flags = tuple(flags)
        self.ctrl = tuple(ctrl)
        self.rd = tuple(rd)
        self.rs1 = tuple(rs1)
        self.rs2 = tuple(rs2)
        self.imm = tuple(imm)
        self.target = tuple(target)
        self.srcs = tuple(srcs)
        self.alu_fn = tuple(alu_fn)
        self.branch_fn = tuple(branch_fn)
        self.fu_class = tuple(fu_class)
        self._digest: Optional[str] = None

    @property
    def digest(self) -> str:
        """SHA-256 over the image encoding (plus ``PREDECODE_VERSION``).

        Hashing is owned by :mod:`repro.runtime.keys` (imported lazily —
        the runtime layer sits above the ISA layer); the result is
        cached here since digests feed every cache-key derivation.
        """
        if self._digest is None:
            from ..runtime.keys import digest_image
            self._digest = digest_image(self)
        return self._digest


def predecode(program: "Program") -> ProgramImage:
    """The (cached) decode-once image for ``program``.

    The image is immutable and safe to share across cores, the
    interpreter and the oracle; repeated calls return the same object.
    """
    image = getattr(program, "_image", None)
    if image is None:
        image = ProgramImage(program.code)
        program._image = image
    return image


def image_digest(program: "Program") -> str:
    """Convenience accessor: the predecode digest for a program."""
    return predecode(program).digest


__all__ = [
    "ProgramImage", "predecode", "image_digest", "PREDECODE_VERSION",
    "F_LOAD", "F_STORE", "F_MEM", "F_COND_BRANCH", "F_JUMP", "F_HALT",
    "F_WRITES_REG", "F_BACKWARD",
    "CTRL_SEQ", "CTRL_COND_FWD", "CTRL_COND_BWD", "CTRL_JUMP", "CTRL_HALT",
]
