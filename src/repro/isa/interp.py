"""Functional interpreter for the reproduction ISA.

Serves three roles:

* oracle for the timing simulator's correctness checks,
* dynamic-trace generator for the trace-driven analysis tools, and
* executable semantics for the workload test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .instructions import (
    K_ALU,
    K_BRANCH,
    K_HALT,
    K_JUMP,
    K_LOAD,
    K_NOP,
    K_STORE,
    NUM_LOGICAL_REGS,
    Instruction,
)
from .opcodes import ALU_EVAL, BRANCH_COND, Op
from .program import Program


class InterpreterError(RuntimeError):
    """Raised on runaway executions or malformed memory accesses."""


@dataclass
class InterpResult:
    """Outcome of one functional execution."""

    steps: int
    halted: bool
    regs: List[int]
    memory: Dict[int, int]
    #: dynamic conditional-branch count and taken count (quick stats)
    branches: int = 0
    taken: int = 0
    loads: int = 0
    stores: int = 0

    def reg(self, n: int) -> int:
        return self.regs[n]

    def mem_word(self, addr: int) -> int:
        return self.memory.get(addr, 0)


#: Optional per-instruction observer: fn(pc, instr, result_value, eff_addr)
TraceHook = Callable[[int, Instruction, Optional[int], Optional[int]], None]


def run(
    program: Program,
    max_steps: int = 2_000_000,
    trace_hook: Optional[TraceHook] = None,
    regs: Optional[List[int]] = None,
    memory: Optional[Dict[int, int]] = None,
) -> InterpResult:
    """Execute ``program`` functionally until HALT or ``max_steps``.

    ``regs``/``memory`` may be supplied to resume or seed state; they are
    mutated in place when given.
    """
    code = program.code
    ncode = len(code)
    if regs is None:
        regs = [0] * NUM_LOGICAL_REGS
    if memory is None:
        memory = program.initial_memory()

    pc = 0
    steps = branches = taken = loads = stores = 0
    mask64 = (1 << 64) - 1
    mem_get = memory.get

    # Dispatch on the precomputed per-instruction ``kind`` int and the
    # resolved ``alu_fn``/``branch_fn`` callables: one attribute read
    # replaces a chain of dict-membership tests per dynamic instruction.
    while 0 <= pc < ncode:
        if steps >= max_steps:
            raise InterpreterError(
                f"program {program.name!r} exceeded {max_steps} steps (pc={pc})")
        instr = code[pc]
        steps += 1
        kind = instr.kind
        next_pc = pc + 1
        result: Optional[int] = None
        eff_addr: Optional[int] = None

        if kind == K_ALU:
            a = regs[instr.rs1] if instr.rs1 is not None else 0
            b = regs[instr.rs2] if instr.rs2 is not None else 0
            result = instr.alu_fn(a, b, instr.imm)
            regs[instr.rd] = result
        elif kind == K_LOAD:
            eff_addr = (regs[instr.rs1] + instr.imm) & mask64
            result = mem_get(eff_addr, 0)
            regs[instr.rd] = result
            loads += 1
        elif kind == K_STORE:
            eff_addr = (regs[instr.rs1] + instr.imm) & mask64
            memory[eff_addr] = regs[instr.rs2]
            stores += 1
        elif kind == K_BRANCH:
            a = regs[instr.rs1]
            b = regs[instr.rs2] if instr.rs2 is not None else 0
            branches += 1
            if instr.branch_fn(a, b):
                taken += 1
                next_pc = instr.target
        elif kind == K_JUMP:
            next_pc = instr.target
        elif kind == K_HALT:
            if trace_hook is not None:
                trace_hook(pc, instr, None, None)
            return InterpResult(steps=steps, halted=True, regs=regs,
                                memory=memory, branches=branches, taken=taken,
                                loads=loads, stores=stores)
        elif kind == K_NOP:
            pass
        else:  # pragma: no cover - defensive
            raise InterpreterError(
                f"unimplemented opcode {instr.op!r} at pc={pc}")

        if trace_hook is not None:
            trace_hook(pc, instr, result, eff_addr)
        pc = next_pc

    return InterpResult(steps=steps, halted=False, regs=regs, memory=memory,
                        branches=branches, taken=taken, loads=loads,
                        stores=stores)
