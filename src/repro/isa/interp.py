"""Functional interpreter for the reproduction ISA.

Serves three roles:

* oracle for the timing simulator's correctness checks,
* dynamic-trace generator for the trace-driven analysis tools, and
* executable semantics for the workload test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .instructions import (
    K_ALU,
    K_BRANCH,
    K_HALT,
    K_JUMP,
    K_LOAD,
    K_NOP,
    K_STORE,
    NUM_LOGICAL_REGS,
    Instruction,
)
from .program import Program


class InterpError(RuntimeError):
    """Raised on runaway executions or malformed memory accesses.

    Step-limit exhaustion raises the :class:`StepLimitExceeded` subclass
    explicitly (unless the caller opts into partial results with
    ``allow_partial=True``), so a truncated functional run can never
    masquerade as a completed one.
    """


#: historical name, kept as an alias for existing callers/tests
InterpreterError = InterpError


class StepLimitExceeded(InterpError):
    """``run`` consumed ``max_steps`` without reaching HALT.

    Carries the in-flight :class:`InterpResult` (``halted=False``, with
    the ``pc`` cursor) as ``partial`` so diagnostic callers can inspect
    how far execution got without opting into ``allow_partial``.
    """

    def __init__(self, message: str, partial: "InterpResult"):
        super().__init__(message)
        self.partial = partial


@dataclass
class InterpResult:
    """Outcome of one functional execution."""

    steps: int
    halted: bool
    regs: List[int]
    memory: Dict[int, int]
    #: dynamic conditional-branch count and taken count (quick stats)
    branches: int = 0
    taken: int = 0
    loads: int = 0
    stores: int = 0
    #: resume cursor: the next PC to execute (the HALT's own pc when
    #: ``halted``; out of code range when execution ran off the end)
    pc: int = 0

    def reg(self, n: int) -> int:
        return self.regs[n]

    def mem_word(self, addr: int) -> int:
        return self.memory.get(addr, 0)


#: Optional per-instruction observer: fn(pc, instr, result_value, eff_addr)
TraceHook = Callable[[int, Instruction, Optional[int], Optional[int]], None]


def run(
    program: Program,
    max_steps: int = 2_000_000,
    trace_hook: Optional[TraceHook] = None,
    regs: Optional[List[int]] = None,
    memory: Optional[Dict[int, int]] = None,
    start_pc: int = 0,
    allow_partial: bool = False,
) -> InterpResult:
    """Execute ``program`` functionally until HALT or ``max_steps``.

    ``regs``/``memory`` may be supplied to resume or seed state; they are
    mutated in place when given, and ``start_pc`` sets the resume cursor
    (together these three are exactly a functional checkpoint — see
    :mod:`repro.sampling.checkpoint`).

    Exhausting ``max_steps`` raises :class:`StepLimitExceeded` so a
    truncated run cannot masquerade as a completed one.  Fast-forward
    callers that *want* to stop at an instruction boundary pass
    ``allow_partial=True`` and receive the partial :class:`InterpResult`
    (``halted=False``) with the ``pc`` cursor ready for resumption.
    """
    code = program.code
    if regs is None:
        regs = [0] * NUM_LOGICAL_REGS
    if memory is None:
        memory = program.initial_memory()

    # Interpret over the shared decode-once image (repro.isa.predecode):
    # flat per-pc tuples replace attribute chases, and the or-zero
    # register encoding makes operand reads branchless (evaluation
    # callables ignore their unused operands).
    from .predecode import predecode
    image = predecode(program)
    ncode = image.n
    kind_a = image.kind
    rd_a = image.rd
    rs1_a = image.rs1
    rs2_a = image.rs2
    imm_a = image.imm
    target_a = image.target
    alu_a = image.alu_fn
    branch_a = image.branch_fn

    pc = start_pc
    steps = branches = taken = loads = stores = 0
    mask64 = (1 << 64) - 1
    mem_get = memory.get

    while 0 <= pc < ncode:
        if steps >= max_steps:
            partial = InterpResult(steps=steps, halted=False, regs=regs,
                                   memory=memory, branches=branches,
                                   taken=taken, loads=loads, stores=stores,
                                   pc=pc)
            if allow_partial:
                return partial
            raise StepLimitExceeded(
                f"program {program.name!r} exceeded {max_steps} steps "
                f"(pc={pc}) without reaching HALT", partial)
        steps += 1
        kind = kind_a[pc]
        next_pc = pc + 1
        result: Optional[int] = None
        eff_addr: Optional[int] = None

        if kind == K_ALU:
            result = alu_a[pc](regs[rs1_a[pc]], regs[rs2_a[pc]], imm_a[pc])
            regs[rd_a[pc]] = result
        elif kind == K_LOAD:
            eff_addr = (regs[rs1_a[pc]] + imm_a[pc]) & mask64
            result = mem_get(eff_addr, 0)
            regs[rd_a[pc]] = result
            loads += 1
        elif kind == K_STORE:
            eff_addr = (regs[rs1_a[pc]] + imm_a[pc]) & mask64
            memory[eff_addr] = regs[rs2_a[pc]]
            stores += 1
        elif kind == K_BRANCH:
            branches += 1
            if branch_a[pc](regs[rs1_a[pc]], regs[rs2_a[pc]]):
                taken += 1
                next_pc = target_a[pc]
        elif kind == K_JUMP:
            next_pc = target_a[pc]
        elif kind == K_HALT:
            if trace_hook is not None:
                trace_hook(pc, code[pc], None, None)
            return InterpResult(steps=steps, halted=True, regs=regs,
                                memory=memory, branches=branches, taken=taken,
                                loads=loads, stores=stores, pc=pc)
        elif kind == K_NOP:
            pass
        else:  # pragma: no cover - defensive
            raise InterpError(
                f"unimplemented opcode {code[pc].op!r} at pc={pc}")

        if trace_hook is not None:
            trace_hook(pc, code[pc], result, eff_addr)
        pc = next_pc

    return InterpResult(steps=steps, halted=False, regs=regs, memory=memory,
                        branches=branches, taken=taken, loads=loads,
                        stores=stores, pc=pc)
