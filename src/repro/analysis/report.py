"""Plain-text rendering of experiment tables (the repo's "figures")."""

from __future__ import annotations

from typing import List, Sequence


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 floatfmt: str = "{:.3f}") -> str:
    """Render an aligned text table with a title rule."""
    def cell(v: object) -> str:
        if isinstance(v, float):
            if v != v:
                # NaN marks a failed simulation (runtime keep-going
                # holes) — render an explicit gap, not 'nan'.
                return "--"
            text = floatfmt.format(v)
            if getattr(v, "sampled_marker", False):
                # A sampled *estimate* (repro.sampling) — the ~ prefix
                # keeps estimated numbers visually distinct from exact
                # ones everywhere without per-table plumbing.
                return "~" + text
            return text
        return str(v)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "  "
    header = sep.join(h.rjust(w) for h, w in zip(headers, widths))
    rule = "-" * len(header)
    lines = [title, "=" * len(title), header, rule]
    for row in str_rows:
        lines.append(sep.join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_bar(fraction: float, width: int = 30, fill: str = "#") -> str:
    """A crude horizontal bar for terminal "figures"."""
    n = max(0, min(width, round(fraction * width)))
    return fill * n + "." * (width - n)


def pct(value: float) -> str:
    return f"{value:6.1f}%"
