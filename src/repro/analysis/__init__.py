"""Aggregation and reporting helpers for the experiment harness."""

from .metrics import (
    CIBreakdown,
    CommitBreakdown,
    aggregate_breakdown,
    ci_breakdown,
    commit_breakdown,
    harmonic_mean,
    speedup,
    suite_ipc,
)
from .report import format_bar, format_table, pct

__all__ = [
    "CIBreakdown",
    "CommitBreakdown",
    "aggregate_breakdown",
    "ci_breakdown",
    "commit_breakdown",
    "format_bar",
    "format_table",
    "harmonic_mean",
    "pct",
    "speedup",
    "suite_ipc",
]
