"""Aggregation helpers for the evaluation (harmonic means, breakdowns)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence

from ..uarch.stats import SimStats


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean, the paper's average for IPC across the suite."""
    vals = [v for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("harmonic mean requires positive values")
    return len(vals) / sum(1.0 / v for v in vals)


def speedup(new: float, base: float) -> float:
    """Relative improvement of ``new`` over ``base`` (0.178 = +17.8%)."""
    if base <= 0:
        raise ValueError("baseline must be positive")
    return new / base - 1.0


def suite_ipc(stats_by_kernel: Mapping[str, SimStats]) -> float:
    return harmonic_mean(s.ipc for s in stats_by_kernel.values())


@dataclass(frozen=True)
class CIBreakdown:
    """Figure 5's per-kernel classification of hard mispredictions."""

    events: int
    selected: int
    reused: int

    @property
    def not_found_pct(self) -> float:
        if not self.events:
            return 0.0
        return 100.0 * (self.events - self.selected) / self.events

    @property
    def selected_no_reuse_pct(self) -> float:
        if not self.events:
            return 0.0
        return 100.0 * (self.selected - self.reused) / self.events

    @property
    def reused_pct(self) -> float:
        if not self.events:
            return 0.0
        return 100.0 * self.reused / self.events


def ci_breakdown(stats: SimStats) -> CIBreakdown:
    return CIBreakdown(events=stats.ci_events, selected=stats.ci_selected,
                       reused=stats.ci_reused)


def aggregate_breakdown(stats_by_kernel: Mapping[str, SimStats]) -> CIBreakdown:
    return CIBreakdown(
        events=sum(s.ci_events for s in stats_by_kernel.values()),
        selected=sum(s.ci_selected for s in stats_by_kernel.values()),
        reused=sum(s.ci_reused for s in stats_by_kernel.values()))


@dataclass(frozen=True)
class CommitBreakdown:
    """Figure 12's instruction-count classification."""

    no_reuse: int      # committed without reusing a precomputed value
    reuse: int         # committed reusing a replica
    spec_bp: int       # fetched+dispatched, squashed by mispredictions
    spec_ci: int       # replica instructions executed by the mechanism

    @property
    def total(self) -> int:
        return self.no_reuse + self.reuse + self.spec_bp + self.spec_ci

    @property
    def reuse_pct_of_committed(self) -> float:
        committed = self.no_reuse + self.reuse
        return 100.0 * self.reuse / committed if committed else 0.0


def commit_breakdown(stats: SimStats) -> CommitBreakdown:
    return CommitBreakdown(
        no_reuse=stats.committed - stats.committed_reused,
        reuse=stats.committed_reused,
        spec_bp=stats.squashed,
        spec_ci=stats.replicas_executed)
