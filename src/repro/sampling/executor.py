"""Execute sampled runs: fast-forward, boot, warm up, measure, stitch.

Three entry points:

* :func:`run_interval` — one interval job (a :class:`RunSpec` whose
  ``sampling`` field is a concrete interval token).  This is what pool
  workers execute; the checkpoint is loaded from the shared store (or
  recomputed as a fallback when the store is cold/disabled).
* :func:`run_sampled_job` — worker-side dispatch for any spec carrying a
  ``sampling`` rider: interval tokens run one interval, parent specs
  run the whole plan in-process (the serial-runner path).
* :func:`resolve_sampled` — the :class:`ParallelRunner` hook: derives
  plans, performs the (shared) fast-forwards in the parent process, then
  fans the interval jobs back through ``runner.run_many`` so coalescing,
  the result cache, retries and ``--keep-going`` apply to them like any
  other job.

Also :func:`sample_program` — the plain in-process path used by
``repro run`` for ad-hoc programs (including assembled ``.s`` files)
that have no registry identity.
"""

from __future__ import annotations

import traceback
from dataclasses import replace
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..runtime.keys import program_fingerprint
from ..runtime.spec import RunSpec
from ..uarch.stats import SimStats
from .checkpoint import Checkpoint, CheckpointStore, ensure_checkpoints, \
    feature_pass, functional_length
from .estimate import combine, delta_stats
from .plan import GRANULARITY, Interval, SamplingPlan, SamplingSpec, \
    is_interval_token, parse_interval

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..isa import Program
    from ..runtime.parallel import ParallelRunner
    from ..uarch import ProcessorConfig


def _reject_riders(spec: RunSpec) -> None:
    if spec.faults or spec.observe:
        raise ValueError(
            "sampling does not compose with fault injection or "
            "observers: a stitched estimate has no contiguous cycle "
            "stream to perturb or observe "
            f"(spec: {spec.describe()})")


def plan_program(program: "Program", sampling: str,
                 store: CheckpointStore) -> SamplingPlan:
    """The concrete plan for one program + sampling spec (seed-free).

    Derived plans are cached in the checkpoint store keyed by
    (program fingerprint, spec text), so a policy/config sweep derives
    — and signature-passes — each program exactly once.
    """
    sspec = SamplingSpec.parse(sampling)
    fp = program_fingerprint(program)
    cached = store.plan_get(fp, sampling)
    if cached is not None:
        return cached
    if sspec.phased:
        total, feats = feature_pass(program, sspec.g or GRANULARITY,
                                    store)
        plan = SamplingPlan.phased(total, feats, sspec)
    else:
        plan = SamplingPlan.systematic(functional_length(program, store),
                                       sspec)
    store.plan_put(fp, sampling, plan)
    return plan


def plan_for(spec: RunSpec, store: CheckpointStore) -> SamplingPlan:
    """The concrete plan for a parent sampled spec."""
    return plan_program(spec.program(), spec.sampling or "auto", store)


def interval_specs(spec: RunSpec, plan: SamplingPlan) -> List[RunSpec]:
    """The per-interval jobs of one sampled run (same cfg/policy)."""
    return [replace(spec, sampling=plan.token(i)) for i in range(plan.k)]


def _warm_microarch(core, ckpt: Checkpoint) -> None:
    """Replay the checkpoint's event tails into this config's state.

    The tails are config-independent (addresses and branch outcomes);
    replaying them warms *this* core's cache hierarchy and branch
    predictor as an in-order machine executing the pre-boundary stream
    would have.  Cache warming touches tag/LRU state only (no MSHR
    pollution); predictor warming mirrors the commit path's
    predict/speculate/train/recover sequence.
    """
    hierarchy = core.hierarchy
    l1, l2, l3 = hierarchy.l1, hierarchy.l2, hierarchy.l3
    for _is_store, addr in ckpt.mem_tail:
        if not l1.access(addr):
            if not l2.access(addr):
                l3.access(addr)
    bpred = core.bpred
    for pc, taken in ckpt.branch_tail:
        history = bpred.checkpoint()
        predicted = bpred.predict(pc)
        bpred.speculate(predicted)
        bpred.train(pc, history, bool(taken))
        if predicted != bool(taken):
            bpred.recover(history, bool(taken))


def _measure_interval(program: "Program", cfg: "ProcessorConfig",
                      interval: Interval,
                      ckpt: Optional[Checkpoint]) -> SimStats:
    """Boot at the boundary, warm up, measure; return the window delta."""
    from .. import hooks_for
    from ..uarch import Core
    boot = None if interval.boundary == 0 else ckpt
    core = Core(cfg, program, hooks_for(cfg), boot=boot)
    if boot is not None:
        _warm_microarch(core, boot)
    if interval.warmup:
        core.run(max_instructions=interval.warmup)
    before = core.stats.to_dict()
    core.run(max_instructions=interval.warmup + interval.measure)
    delta = delta_stats(core.stats, before)
    if delta.committed <= 0:
        raise RuntimeError(
            f"interval {interval.index} at boundary {interval.boundary} "
            f"measured no instructions (program ended early?)")
    return delta


def run_interval(spec: RunSpec,
                 store: Optional[CheckpointStore] = None) -> SimStats:
    """Execute one interval job (spec.sampling is an interval token)."""
    _reject_riders(spec)
    interval, _total = parse_interval(spec.sampling)
    program = spec.program()
    if store is None:
        store = CheckpointStore()
    ckpt = store.get(program_fingerprint(program), interval.boundary)
    if ckpt is None:
        # Cold/disabled store fallback: recompute this boundary's
        # checkpoint (and persist it for siblings when possible).
        ckpt = ensure_checkpoints(program, [interval.boundary],
                                  store)[interval.boundary]
    return _measure_interval(program, spec.resolved_cfg(), interval, ckpt)


def run_sampled_spec(spec: RunSpec,
                     store: Optional[CheckpointStore] = None) -> SimStats:
    """Whole sampled run, in-process (no pool): plan, ensure, stitch."""
    _reject_riders(spec)
    if store is None:
        store = CheckpointStore()
    plan = plan_for(spec, store)
    program = spec.program()
    checkpoints = ensure_checkpoints(program, plan.boundaries, store)
    cfg = spec.resolved_cfg()
    deltas = [_measure_interval(program, cfg, iv,
                                checkpoints[iv.boundary])
              for iv in plan.intervals]
    return combine(plan, deltas)


def run_sampled_job(job: RunSpec) -> SimStats:
    """Worker-side dispatch for any spec with a ``sampling`` rider."""
    if is_interval_token(job.sampling):
        return run_interval(job)
    return run_sampled_spec(job)


def sample_program(program: "Program", cfg: "ProcessorConfig",
                   sampling: str,
                   store: Optional[CheckpointStore] = None
                   ) -> Tuple[SimStats, SamplingPlan]:
    """Sampled estimate for an ad-hoc program (``repro run`` path)."""
    if store is None:
        store = CheckpointStore()
    plan = plan_program(program, sampling or "auto", store)
    checkpoints = ensure_checkpoints(program, plan.boundaries, store)
    deltas = [_measure_interval(program, cfg, iv,
                                checkpoints[iv.boundary])
              for iv in plan.intervals]
    return combine(plan, deltas), plan


def resolve_sampled(runner: "ParallelRunner", items: Sequence[Tuple]
                    ) -> List[Tuple]:
    """Resolve parent sampled specs through the runner's machinery.

    ``items`` is ``[(ident, point, spec), ...]`` for specs whose
    ``sampling`` is a *parent* token that missed the memo/disk caches.
    Plans are derived and checkpoints ensured here, in the parent
    process — one fast-forward per (program, boundary) no matter how
    many policies/configs are being swept — then every interval job is
    pushed through ``runner.run_many`` (pool fan-out, interval-level
    result caching, retries, keep-going).  Returns
    ``[(ident, point, spec, stats-or-FailedResult), ...]``.
    """
    from ..runtime.parallel import FailedResult, WorkerError, \
        aggregate_failure_report
    store = runner.checkpoint_store()
    prepared = []
    out: List[Tuple] = []
    for ident, point, spec in items:
        try:
            _reject_riders(spec)
            plan = plan_for(spec, store)
            ensure_checkpoints(spec.program(), plan.boundaries, store)
            prepared.append((ident, point, spec, plan,
                             interval_specs(spec, plan)))
        except Exception:
            fr = FailedResult(spec.kernel, spec.scale, spec.seed,
                              error=traceback.format_exc(),
                              phase="sampling")
            if not runner.keep_going:
                raise WorkerError(aggregate_failure_report([fr])) \
                    from None
            out.append((ident, point, spec, fr))
    all_children: List[RunSpec] = []
    for _, _, _, _, children in prepared:
        all_children.extend(children)
    child_stats = runner.run_many(all_children) if all_children else []
    cursor = 0
    for ident, point, spec, plan, children in prepared:
        deltas = child_stats[cursor:cursor + len(children)]
        cursor += len(children)
        holes = [d for d in deltas if isinstance(d, FailedResult)]
        if holes:
            fr = FailedResult(spec.kernel, spec.scale, spec.seed,
                              error=holes[0].error, phase=holes[0].phase,
                              attempts=holes[0].attempts)
            out.append((ident, point, spec, fr))
            continue
        try:
            est = combine(plan, deltas)
        except Exception:
            fr = FailedResult(spec.kernel, spec.scale, spec.seed,
                              error=traceback.format_exc(),
                              phase="sampling")
            if not runner.keep_going:
                raise WorkerError(aggregate_failure_report([fr])) \
                    from None
            out.append((ident, point, spec, fr))
            continue
        out.append((ident, point, spec, est))
    return out
