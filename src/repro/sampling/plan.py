"""Sampling plans: phased (feature change-point) or systematic.

A :class:`SamplingPlan` names ``k`` detailed *intervals* of one
program's dynamic instruction stream.  Each interval is simulated in
detail from the functional checkpoint at its ``boundary``: ``warmup``
instructions re-warm microarchitectural state, then ``measure``
instructions are measured; the measured window's rates stand for
``weight`` instructions of the whole run
(:mod:`repro.sampling.estimate`).

Two plan shapes share that structure:

* **Phased** (``auto``, the default): the functional pass summarises
  every ``g``-instruction micro-interval by cheap data-driven features
  (probe-cache miss rate, taken rate, memory fraction — see
  :func:`repro.sampling.checkpoint.feature_pass`), change-points in the
  feature stream segment the run into phases, and detailed coverage is
  *scaled to the run length*: short runs measure every phase
  contiguously (one boot per phase — near-exact), long runs spread a
  fixed detail budget of windows across the phases in proportion to
  their length.  SimPoint-style pc-profile clustering is useless for
  this repo's kernels — they are single loop nests whose pc mix barely
  changes while their data locality (and hence CPI) swings — so phases
  are cut on functional *data* behaviour instead.
* **Systematic** (``k=8,...`` — the SMARTS shape): ``k`` equal strides,
  one window at each stride start, stride length as the weight.

Plans are **seed-free and reproducible**: everything derives from the
program's dynamic execution and the spec string, never from a random
source, so the same spec over the same program always produces the same
plan — which is what lets the checkpoint store be shared across sweeps,
pool workers and serve sessions.

Spec grammar (the ``RunSpec.sampling`` / ``--sample`` string):

* ``auto`` — phased with default granularity/windows;
* ``g=250,w=250,m=350`` — phased with explicit micro-interval
  granularity ``g``, per-window warmup ``w`` and/or window length ``m``;
* ``k=8,w=150,m=250`` — systematic with interval count ``k``, warmup
  ``w`` and measured window ``m`` (missing parts take defaults).

Interval jobs (internal) use the fully concrete token
``i=3,b=5250,w=150,m=250,n=23699`` — self-describing, so a pool worker
can execute its interval without re-deriving the plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: phased-plan constants, validated against exact simulation on the
#: registry suite (see DESIGN §13 for the calibration evidence):
#: micro-interval granularity of the feature pass,
GRANULARITY = 250
#: feature-distance change-point threshold (phase boundary),
THETA = 0.2
#: run lengths below N_DENSE take full coverage, above N_SPARSE the
#: sparse coverage floor, linear taper between,
N_DENSE = 8000
N_SPARSE = 15000
C_SPARSE = 0.10
#: dense mode: detailed warmup before each contiguously-measured phase
#: (long, because one warmup amortises over a whole phase),
W_DENSE = 800
#: phases shorter than this merge into a neighbour before planning,
MERGE_DENSE = 1000
#: sparse mode: per-window warmup / measured length and the minimum
#: window count,
W_WIN = 250
M_WIN = 350
K_MIN = 3

#: systematic defaults
WARMUP = 150
SYSTEMATIC_MEASURE = 250


class SamplingError(ValueError):
    """A sampling spec or plan that cannot be honoured."""


@dataclass(frozen=True)
class SamplingSpec:
    """Parsed user-facing sampling spec (unset fields take defaults).

    ``k`` set selects the systematic shape; otherwise phased.
    """

    k: Optional[int] = None
    w: Optional[int] = None
    m: Optional[int] = None
    g: Optional[int] = None

    @property
    def phased(self) -> bool:
        return self.k is None

    @classmethod
    def parse(cls, text: str) -> "SamplingSpec":
        text = (text or "").strip()
        if not text or text == "auto":
            return cls()
        fields = _parse_fields(text)
        if "i" in fields:
            raise SamplingError(
                f"{text!r} is an internal interval token, not a "
                f"sampling spec ('auto' or k=/w=/m=/g=)")
        unknown = set(fields) - {"k", "w", "m", "g"}
        if unknown:
            raise SamplingError(
                f"unknown sampling spec field(s) {sorted(unknown)} in "
                f"{text!r} (expected 'auto' or a subset of k=,w=,m=,g=)")
        for name, floor in (("k", 1), ("w", 0), ("m", 1), ("g", 16)):
            v = fields.get(name)
            if v is not None and v < floor:
                raise SamplingError(
                    f"sampling spec needs {name} >= {floor}, got {v}")
        if fields.get("k") is not None and fields.get("g") is not None:
            raise SamplingError("sampling spec cannot set both k= "
                                "(systematic) and g= (phased)")
        return cls(k=fields.get("k"), w=fields.get("w"),
                   m=fields.get("m"), g=fields.get("g"))


def _parse_fields(text: str) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, value = part.partition("=")
        if not sep:
            raise SamplingError(f"malformed sampling spec part {part!r} "
                                f"(expected name=value)")
        try:
            out[name.strip()] = int(value)
        except ValueError:
            raise SamplingError(f"sampling spec {name.strip()!r} must be "
                                f"an integer, got {value!r}") from None
    return out


@dataclass(frozen=True)
class Interval:
    """One detailed interval of a plan."""

    index: int
    #: checkpoint boundary the core boots from
    boundary: int
    #: detailed instructions executed before measurement begins
    warmup: int
    #: measured-window length (instructions)
    measure: int
    #: whole-run instructions this window stands for
    weight: int

    def token(self, total: int) -> str:
        """The self-describing interval-job spec string."""
        return (f"i={self.index},b={self.boundary},w={self.warmup},"
                f"m={self.measure},n={total}")


@dataclass(frozen=True)
class SamplingPlan:
    """One concrete plan: ``k`` detailed intervals of a ``total``-long run."""

    total: int
    intervals: Tuple[Interval, ...]

    @property
    def k(self) -> int:
        return len(self.intervals)

    @property
    def boundaries(self) -> Tuple[int, ...]:
        return tuple(iv.boundary for iv in self.intervals)

    @property
    def weights(self) -> Tuple[int, ...]:
        return tuple(iv.weight for iv in self.intervals)

    @property
    def detailed_instructions(self) -> int:
        """Upper bound on instructions simulated in detail."""
        return sum(iv.warmup + iv.measure for iv in self.intervals)

    def token(self, index: int) -> str:
        if not 0 <= index < self.k:
            raise SamplingError(f"interval index {index} out of range "
                                f"for a {self.k}-interval plan")
        return self.intervals[index].token(self.total)

    # -- construction ---------------------------------------------------
    @classmethod
    def systematic(cls, total: int, spec: SamplingSpec) -> "SamplingPlan":
        """``k`` equal strides, one window at each stride start."""
        if total < 1:
            raise SamplingError(f"cannot sample a {total}-instruction run")
        k = max(1, min(spec.k or 1, total))
        stride = -(-total // k)  # ceil
        starts = [b for b in (i * stride for i in range(k)) if b < total]
        w = spec.w if spec.w is not None else WARMUP
        m = spec.m if spec.m is not None else SYSTEMATIC_MEASURE
        intervals = []
        for i, start in enumerate(starts):
            end = starts[i + 1] if i + 1 < len(starts) else total
            wi = min(w, max(0, total - start - 1))
            mi = max(1, min(m, total - start - wi))
            intervals.append(Interval(index=i, boundary=start, warmup=wi,
                                      measure=mi, weight=end - start))
        return cls(total=total, intervals=tuple(intervals))

    @classmethod
    def phased(cls, total: int,
               features: Sequence[Dict[str, int]],
               spec: SamplingSpec) -> "SamplingPlan":
        """Phase-segmented plan from per-micro-interval feature vectors.

        ``features[j]`` summarises the j-th ``g``-instruction
        micro-interval (the last one may be partial) as produced by
        :func:`repro.sampling.checkpoint.feature_pass`.  Consecutive
        micro-intervals whose feature distance exceeds :data:`THETA`
        start a new phase; phases shorter than :data:`MERGE_DENSE`
        merge forward.  Coverage then scales with run length
        (:func:`coverage_for`):

        * **dense** (coverage >= 0.8, i.e. short runs): every phase is
          measured contiguously end-to-end after one :data:`W_DENSE`
          detailed warmup — one boot per phase, weight = phase length;
        * **sparse** (long runs): a global budget of
          ``max(K_MIN, round(coverage * total / (w + m)))`` windows is
          distributed across phases by largest remainder, each window
          centred in its equal-length chunk of the phase and weighted
          by the chunk — so every window stands for the instructions
          around it, and phase totals are represented exactly.

        Deterministic throughout: no random placement, ties broken by
        position.
        """
        if total < 1:
            raise SamplingError(f"cannot sample a {total}-instruction run")
        n_micro = len(features)
        if n_micro == 0:
            raise SamplingError("no features supplied for phase planning")
        g = spec.g or GRANULARITY
        sizes = [g] * n_micro
        sizes[-1] = total - g * (n_micro - 1)
        if sizes[-1] <= 0 or sizes[-1] > g:
            raise SamplingError(
                f"{n_micro} micro-intervals of {g} instructions do not "
                f"tile a {total}-instruction run")
        rs = [_rates(f) for f in features]
        spans: List[Tuple[int, int]] = []
        start, length = 0, sizes[0]
        for j in range(1, n_micro):
            if _feature_distance(rs[j - 1], rs[j]) > THETA:
                spans.append((start, length))
                start, length = j * g, 0
            length += sizes[j]
        spans.append((start, length))
        spans = _merge_spans(spans, MERGE_DENSE)
        coverage = coverage_for(total)
        intervals: List[Interval] = []
        if coverage >= 0.8:
            w_dense = spec.w if spec.w is not None else W_DENSE
            for i, (s, length) in enumerate(spans):
                b = max(0, s - w_dense)
                intervals.append(Interval(index=i, boundary=b,
                                          warmup=s - b, measure=length,
                                          weight=length))
            return cls(total=total, intervals=tuple(intervals))
        w_win = spec.w if spec.w is not None else W_WIN
        m_win = spec.m if spec.m is not None else M_WIN
        k_target = max(K_MIN, round(coverage * total / (w_win + m_win)))
        quotas = [k_target * length / total for _, length in spans]
        alloc = [int(q) for q in quotas]
        # Largest-remainder seats; zero-window phases get theirs first so
        # no phase is silently unrepresented while another holds several.
        order = sorted(range(len(spans)),
                       key=lambda i: (alloc[i] > 0,
                                      -(quotas[i] - alloc[i])))
        for i in order:
            if sum(alloc) >= k_target:
                break
            alloc[i] += 1
        # Any phase still at zero folds into its predecessor's span so
        # its instructions are represented by a neighbouring window.
        folded: List[Tuple[int, int, int]] = []
        for (s, length), n_w in zip(spans, alloc):
            if n_w == 0 and folded:
                s0, l0, w0 = folded[-1]
                folded[-1] = (s0, l0 + length, w0)
            elif n_w == 0:
                folded.append((s, length, 1))
            else:
                folded.append((s, length, n_w))
        idx = 0
        for s, length, n_w in folded:
            bounds = [s + (length * t) // n_w for t in range(n_w + 1)]
            for t in range(n_w):
                cs, ce = bounds[t], bounds[t + 1]
                m = max(1, min(m_win, ce - cs))
                ws = cs + max(0, (ce - cs - m) // 2)
                b = max(0, ws - w_win)
                intervals.append(Interval(index=idx, boundary=b,
                                          warmup=ws - b, measure=m,
                                          weight=ce - cs))
                idx += 1
        return cls(total=total, intervals=tuple(intervals))

    # -- persistence (checkpoint-store plan meta) -----------------------
    def to_payload(self) -> dict:
        return {"total": self.total,
                "intervals": [[iv.boundary, iv.warmup, iv.measure,
                               iv.weight] for iv in self.intervals]}

    @classmethod
    def from_payload(cls, payload: dict) -> "SamplingPlan":
        try:
            intervals = tuple(
                Interval(index=i, boundary=int(b), warmup=int(w),
                         measure=int(m), weight=int(r))
                for i, (b, w, m, r) in enumerate(payload["intervals"]))
            return cls(total=int(payload["total"]), intervals=intervals)
        except (KeyError, TypeError, ValueError) as exc:
            raise SamplingError(
                f"plan payload does not deserialise: {exc}") from None


def _rates(f: Dict[str, int]) -> Tuple[float, float, float]:
    """One micro-interval's feature vector as behaviour *rates*.

    (probe-cache miss rate, taken-branch rate, memory-op fraction) —
    the three axes along which the kernels' data-driven phases move.
    """
    n = max(1, f["n"])
    return (f["miss"] / max(1, f["acc"]),
            f["taken"] / max(1, f["branches"]),
            (f["loads"] + f["stores"]) / n)


def _feature_distance(a: Tuple[float, float, float],
                      b: Tuple[float, float, float]) -> float:
    """Weighted L1 distance between rate vectors.

    Miss rate dominates (it tracks local CPI with correlation 0.86-0.97
    on the registry suite); memory fraction separates compute-heavy
    from memory-heavy stretches; taken rate is a weak tie-breaker.
    """
    return (6.0 * abs(a[0] - b[0]) + 0.5 * abs(a[1] - b[1])
            + 2.0 * abs(a[2] - b[2]))


def coverage_for(total: int) -> float:
    """Detailed-coverage fraction for a ``total``-instruction run.

    Full coverage below :data:`N_DENSE` (dense plans are near-exact and
    still cheap there), the :data:`C_SPARSE` floor above
    :data:`N_SPARSE`, linear in between — so accuracy degrades
    gracefully as runs grow instead of falling off a cliff.
    """
    if total <= N_DENSE:
        return 1.0
    if total >= N_SPARSE:
        return C_SPARSE
    return 1.0 + (total - N_DENSE) / (N_SPARSE - N_DENSE) \
        * (C_SPARSE - 1.0)


def _merge_spans(spans: Sequence[Tuple[int, int]],
                 min_len: int) -> List[Tuple[int, int]]:
    """Merge spans shorter than ``min_len`` into their successor.

    A trailing short span merges backward into the last kept span, so
    the result always tiles the original extent exactly.
    """
    merged: List[Tuple[int, int]] = []
    pend: Optional[Tuple[int, int]] = None
    for start, length in spans:
        if pend is not None:
            start, length = pend[0], pend[1] + length
            pend = None
        if length < min_len:
            pend = (start, length)
        else:
            merged.append((start, length))
    if pend is not None:
        if merged:
            s0, l0 = merged[-1]
            merged[-1] = (s0, l0 + pend[1])
        else:
            merged.append(pend)
    return merged


def is_interval_token(text: Optional[str]) -> bool:
    """True when a sampling string names one interval job (has ``i=``)."""
    return bool(text) and "i=" in str(text)


def parse_interval(text: str) -> Tuple[Interval, int]:
    """Rebuild one interval (weightless) + the run total from its token."""
    fields = _parse_fields(text)
    missing = {"i", "b", "w", "m", "n"} - set(fields)
    if missing:
        raise SamplingError(f"interval token {text!r} is missing "
                            f"{sorted(missing)}")
    total = fields["n"]
    iv = Interval(index=fields["i"], boundary=fields["b"],
                  warmup=fields["w"], measure=fields["m"], weight=0)
    if iv.boundary < 0 or iv.warmup < 0 or iv.measure < 1 \
            or iv.boundary + iv.warmup + iv.measure > total:
        raise SamplingError(f"interval token {text!r} does not fit a "
                            f"{total}-instruction run")
    return iv, total
