"""Sampled simulation: functional fast-forward + detailed intervals.

Strictly opt-in (``repro ... --sample``, ``RunSpec.sampling``): the
exact execution paths and their goldens are untouched.  See DESIGN §13
for the subsystem design and error-bar semantics.

* :mod:`repro.sampling.plan` — seed-free systematic sampling plans;
* :mod:`repro.sampling.checkpoint` — functional checkpoints, content
  addressed by (program fingerprint, boundary) and shared across every
  config/policy point of a sweep;
* :mod:`repro.sampling.estimate` — interval stitching with
  interval-variance confidence intervals (``sampled=True`` provenance);
* :mod:`repro.sampling.executor` — execution entry points for workers,
  runners and ``repro run``.
"""

from .checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointStore,
    ensure_checkpoints,
    feature_pass,
    functional_length,
)
from .estimate import combine, delta_stats, relative_ci
from .executor import (
    interval_specs,
    plan_for,
    plan_program,
    resolve_sampled,
    run_interval,
    run_sampled_job,
    run_sampled_spec,
    sample_program,
)
from .plan import (
    Interval,
    SamplingError,
    SamplingPlan,
    SamplingSpec,
    is_interval_token,
    parse_interval,
)

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "Interval",
    "SamplingError",
    "SamplingPlan",
    "SamplingSpec",
    "combine",
    "delta_stats",
    "ensure_checkpoints",
    "feature_pass",
    "functional_length",
    "interval_specs",
    "is_interval_token",
    "parse_interval",
    "plan_for",
    "plan_program",
    "relative_ci",
    "resolve_sampled",
    "run_interval",
    "run_sampled_job",
    "run_sampled_spec",
    "sample_program",
]
