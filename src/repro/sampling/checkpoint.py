"""Functional checkpoints and their content-addressed store.

A checkpoint is pure *architectural* state at an instruction boundary:
the logical register file, the memory delta against the program's
initial image, and the instruction/PC cursor.  It is produced by the
functional interpreter's resumable ``regs``/``memory`` path
(:func:`repro.isa.interp.run` with ``allow_partial=True``) and consumed
by the detailed core's boot-from-checkpoint entry
(:class:`repro.uarch.core.Core` ``boot=``).

The load-bearing property: architectural state at an instruction
boundary depends only on the *program* — never on the config, policy,
ports or register-file size being swept — so checkpoints are keyed by
:func:`repro.runtime.keys.checkpoint_key` (program fingerprint +
boundary) alone, and ``N policies x K configs x 1 kernel`` performs
exactly one fast-forward per boundary.  The store lives on disk under
``<cache root>/checkpoints/`` and is shared across pool workers,
concurrent sessions and ``repro serve``.

Storage discipline mirrors :mod:`repro.runtime.cache` exactly: two-level
sharding, write-to-temp + atomic rename, a checksummed envelope
``{"schema": N, "sha256": <digest>, "payload": {...}}``, and corrupt
entries quarantined under ``<root>/quarantine/`` so a torn write can
never boot a core from garbage state.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from ..isa.instructions import K_BRANCH, K_LOAD, K_STORE, NUM_LOGICAL_REGS
from ..runtime.cache import (
    CHECKPOINT_SUBDIR,
    QUARANTINE_DIR,
    cache_enabled,
    default_cache_dir,
)
from ..runtime.keys import (
    CHECKPOINT_SCHEMA,
    checkpoint_key,
    program_fingerprint,
    stats_digest as _payload_digest,
)

from .plan import SamplingError, SamplingPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..isa import Program

#: functional-warming tails (SMARTS-style): the fast-forward records the
#: most recent memory accesses and conditional-branch outcomes before
#: each boundary.  The tails are *config-independent events* — each
#: interval job replays them through its own config's cache hierarchy
#: and branch predictor at boot, so warmed microarchitectural state
#: never breaks the share-one-checkpoint-across-configs property.
TAIL_MEM = 4096
TAIL_BRANCH = 2048


class CheckpointError(ValueError):
    """A checkpoint entry exists but cannot be trusted."""


@dataclass
class Checkpoint:
    """Architectural state at one dynamic-instruction boundary."""

    #: dynamic instruction index this state corresponds to (the first
    #: ``inst_index`` instructions have fully executed)
    inst_index: int
    #: next PC to execute
    pc: int
    #: full logical register file
    regs: List[int]
    #: memory delta against ``program.initial_memory()``
    mem_delta: Dict[int, int] = field(default_factory=dict)
    #: functional-warming tails: recent ``(is_store, addr)`` memory
    #: accesses and ``(pc, taken)`` branch outcomes preceding the
    #: boundary (config-independent; replayed per config at boot)
    mem_tail: List[Tuple[int, int]] = field(default_factory=list)
    branch_tail: List[Tuple[int, int]] = field(default_factory=list)

    @classmethod
    def initial(cls) -> "Checkpoint":
        """The trivial boundary-0 checkpoint (reset state)."""
        return cls(inst_index=0, pc=0, regs=[0] * NUM_LOGICAL_REGS)

    @classmethod
    def capture(cls, program: "Program", inst_index: int, pc: int,
                regs: List[int], memory: Dict[int, int],
                mem_tail: Iterable[Tuple[int, int]] = (),
                branch_tail: Iterable[Tuple[int, int]] = ()
                ) -> "Checkpoint":
        """Snapshot interpreter state as a checkpoint (delta-encoded)."""
        init = program.data_init
        absent = object()
        delta = {a: v for a, v in memory.items()
                 if init.get(a, absent) != v}
        return cls(inst_index=inst_index, pc=pc, regs=list(regs),
                   mem_delta=delta, mem_tail=list(mem_tail),
                   branch_tail=list(branch_tail))

    def to_payload(self) -> dict:
        """JSON-serialisable form (memory as sorted [addr, val] pairs)."""
        return {"inst_index": self.inst_index, "pc": self.pc,
                "regs": list(self.regs),
                "mem": [[a, self.mem_delta[a]]
                        for a in sorted(self.mem_delta)],
                "mem_tail": [list(t) for t in self.mem_tail],
                "branch_tail": [list(t) for t in self.branch_tail]}

    @classmethod
    def from_payload(cls, payload: dict) -> "Checkpoint":
        try:
            regs = [int(r) for r in payload["regs"]]
            mem = {int(a): int(v) for a, v in payload["mem"]}
            mem_tail = [(int(s), int(a)) for s, a in payload["mem_tail"]]
            branch_tail = [(int(p), int(t))
                           for p, t in payload["branch_tail"]]
            return cls(inst_index=int(payload["inst_index"]),
                       pc=int(payload["pc"]), regs=regs, mem_delta=mem,
                       mem_tail=mem_tail, branch_tail=branch_tail)
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint payload does not deserialise: {exc}") from None


def _decode_envelope(text: str) -> Optional[dict]:
    """Parse + verify one envelope; payload dict, None on schema skew."""
    try:
        envelope = json.loads(text)
    except ValueError as exc:
        raise CheckpointError(f"unparsable JSON: {exc}") from None
    if not isinstance(envelope, dict) or "payload" not in envelope \
            or "sha256" not in envelope or "schema" not in envelope:
        raise CheckpointError("not a checkpoint envelope")
    if envelope["schema"] != CHECKPOINT_SCHEMA:
        return None  # another version's valid data: a miss
    payload = envelope["payload"]
    if _payload_digest(payload) != envelope["sha256"]:
        raise CheckpointError("checksum mismatch")
    return payload


class CheckpointStore:
    """On-disk functional-checkpoint store (atomic, checksummed).

    Cheap to construct; the root directory appears on first write.
    Shares the result cache's enable switches (``REPRO_CACHE=0`` turns
    it off, in which case every sampled run re-fast-forwards — slower,
    never wrong).  In-memory counters track this instance's activity:
    ``fast_forwards`` (checkpoint-producing functional passes),
    ``lengths_measured`` (full functional passes that established a
    program's dynamic length) and ``checkpoint_hits`` (boots served
    from the store) — the numbers the sharing guarantees are asserted
    on.
    """

    def __init__(self, root: Optional[str] = None,
                 enabled: Optional[bool] = None):
        self.root = root or os.path.join(default_cache_dir(),
                                         CHECKPOINT_SUBDIR)
        self.enabled = cache_enabled() if enabled is None else enabled
        self.quarantined: List[str] = []
        self.fast_forwards = 0
        self.lengths_measured = 0
        self.checkpoint_hits = 0
        self.checkpoints_written = 0
        #: in-process mirror so repeated boots of one boundary (many
        #: configs x one kernel in a single runner) parse the entry once
        self._memo: Dict[str, Checkpoint] = {}
        self._meta_memo: Dict[str, dict] = {}
        self._plan_memo: Dict[str, SamplingPlan] = {}

    # -- paths / plumbing (mirrors ResultCache) --------------------------
    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def _quarantine(self, path: str) -> None:
        qdir = os.path.join(self.root, QUARANTINE_DIR)
        try:
            os.makedirs(qdir, exist_ok=True)
            os.replace(path, os.path.join(qdir, os.path.basename(path)))
            self.quarantined.append(path)
        except OSError:
            pass

    def _read_payload(self, key: str) -> Optional[dict]:
        path = self.path_for(key)
        try:
            with open(path) as fh:
                text = fh.read()
        except OSError:
            return None
        try:
            return _decode_envelope(text)
        except CheckpointError:
            self._quarantine(path)
            return None

    def _write_payload(self, key: str, payload: dict,
                       meta: Optional[dict] = None) -> None:
        envelope: Dict[str, object] = {
            "schema": CHECKPOINT_SCHEMA,
            "sha256": _payload_digest(payload),
            "payload": payload}
        if meta:
            envelope.update(meta)
        path = self.path_for(key)
        shard = os.path.dirname(path)
        try:
            os.makedirs(shard, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=shard, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(envelope, fh, separators=(",", ":"))
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass  # a read-only or full store never fails the run

    # -- checkpoints -----------------------------------------------------
    def get(self, fingerprint: str, boundary: int) -> Optional[Checkpoint]:
        if boundary == 0:
            return Checkpoint.initial()
        key = checkpoint_key(fingerprint, boundary)
        memo = self._memo.get(key)
        if memo is not None:
            self.checkpoint_hits += 1
            return memo
        if not self.enabled:
            return None
        payload = self._read_payload(key)
        if payload is None:
            return None
        try:
            ckpt = Checkpoint.from_payload(payload)
        except CheckpointError:
            self._quarantine(self.path_for(key))
            return None
        self._memo[key] = ckpt
        self.checkpoint_hits += 1
        return ckpt

    def put(self, fingerprint: str, ckpt: Checkpoint) -> None:
        key = checkpoint_key(fingerprint, ckpt.inst_index)
        self._memo[key] = ckpt
        self.checkpoints_written += 1
        if not self.enabled:
            return
        self._write_payload(key, ckpt.to_payload(),
                            meta={"kind": "checkpoint",
                                  "program": fingerprint,
                                  "boundary": ckpt.inst_index})

    # -- per-program metadata (dynamic length) ---------------------------
    def meta_get(self, fingerprint: str) -> Optional[dict]:
        memo = self._meta_memo.get(fingerprint)
        if memo is not None:
            return memo
        if not self.enabled:
            return None
        payload = self._read_payload(checkpoint_key(fingerprint, "meta"))
        if payload is None or not isinstance(payload.get("total"), int):
            return None
        self._meta_memo[fingerprint] = payload
        return payload

    def meta_put(self, fingerprint: str, meta: dict) -> None:
        self._meta_memo[fingerprint] = meta
        if not self.enabled:
            return
        self._write_payload(checkpoint_key(fingerprint, "meta"), meta,
                            meta={"kind": "meta", "program": fingerprint})

    # -- derived sampling plans (per program x spec text) ----------------
    def plan_get(self, fingerprint: str,
                 spec_text: str) -> Optional[SamplingPlan]:
        key = checkpoint_key(fingerprint, f"plan:{spec_text}")
        memo = self._plan_memo.get(key)
        if memo is not None:
            return memo
        if not self.enabled:
            return None
        payload = self._read_payload(key)
        if payload is None:
            return None
        try:
            plan = SamplingPlan.from_payload(payload)
        except SamplingError:
            self._quarantine(self.path_for(key))
            return None
        self._plan_memo[key] = plan
        return plan

    def plan_put(self, fingerprint: str, spec_text: str,
                 plan: SamplingPlan) -> None:
        key = checkpoint_key(fingerprint, f"plan:{spec_text}")
        self._plan_memo[key] = plan
        if not self.enabled:
            return
        self._write_payload(key, plan.to_payload(),
                            meta={"kind": "plan", "program": fingerprint,
                                  "spec": spec_text})

    # -- auditing (repro cache info|verify|clear) ------------------------
    def _entries(self):
        for dirpath, dirnames, filenames in os.walk(self.root):
            if os.path.basename(dirpath) == QUARANTINE_DIR:
                dirnames[:] = []
                continue
            for name in sorted(filenames):
                if name.endswith(".json"):
                    yield os.path.join(dirpath, name)

    def info(self) -> Dict[str, object]:
        entries = size = quarantined = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            in_quarantine = os.path.basename(dirpath) == QUARANTINE_DIR
            for name in filenames:
                if not name.endswith(".json"):
                    continue
                if in_quarantine:
                    quarantined += 1
                    continue
                entries += 1
                try:
                    size += os.path.getsize(os.path.join(dirpath, name))
                except OSError:
                    pass
        return {"root": self.root, "enabled": self.enabled,
                "entries": entries, "bytes": size,
                "quarantined": quarantined}

    def verify(self, quarantine: bool = True) -> Dict[str, object]:
        """Audit every entry: parse, checksum, deserialise."""
        ok = stale = 0
        bad: List[Tuple[str, str]] = []
        for path in self._entries():
            try:
                with open(path) as fh:
                    text = fh.read()
                payload = _decode_envelope(text)
                if payload is None:
                    stale += 1
                    continue
                if "regs" in payload:
                    Checkpoint.from_payload(payload)
                elif "intervals" in payload:
                    try:
                        SamplingPlan.from_payload(payload)
                    except SamplingError as exc:
                        raise CheckpointError(str(exc)) from None
                elif not isinstance(payload.get("total"), int):
                    raise CheckpointError("meta entry without a total")
                ok += 1
            except CheckpointError as exc:
                bad.append((path, str(exc)))
            except OSError as exc:  # pragma: no cover - racing deletion
                bad.append((path, str(exc)))
        if quarantine:
            for path, _reason in bad:
                self._quarantine(path)
        qdir = os.path.join(self.root, QUARANTINE_DIR)
        try:
            parked = sum(1 for name in os.listdir(qdir)
                         if name.endswith(".json"))
        except OSError:
            parked = 0
        if not quarantine:
            parked += len(bad)
        return {"root": self.root, "ok": ok, "stale": stale,
                "corrupt": len(bad), "quarantined": parked,
                "bad": [{"path": p, "reason": r} for p, r in bad]}

    def clear(self) -> int:
        removed = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(".json") or name.endswith(".tmp"):
                    try:
                        os.unlink(os.path.join(dirpath, name))
                        removed += 1
                    except OSError:
                        pass
        self._memo.clear()
        self._meta_memo.clear()
        self._plan_memo.clear()
        return removed


# -- fast-forward producers ---------------------------------------------------

def functional_length(program: "Program", store: CheckpointStore) -> int:
    """The program's total dynamic instruction count (meta-cached).

    One full functional pass on a cold store; every later plan
    derivation for the same program reads the meta entry.
    """
    fp = program_fingerprint(program)
    meta = store.meta_get(fp)
    if meta is not None:
        return meta["total"]
    from ..isa import interp
    res = interp.run(program)  # raises StepLimitExceeded on runaways
    store.lengths_measured += 1
    store.meta_put(fp, {"total": res.steps, "halted": res.halted})
    return res.steps


#: feature-pass probe cache: a tiny direct-mapped tag array over the
#: access stream (64-byte lines, 256 sets).  Its miss rate is a purely
#: functional stand-in for data locality — on the registry suite it
#: tracks the detailed model's local CPI with correlation 0.86-0.97,
#: where pc profiles are near-constant and useless.
PROBE_LINE_SHIFT = 6
PROBE_SETS = 256


def feature_pass(program: "Program", granularity: int,
                 store: CheckpointStore
                 ) -> Tuple[int, List[Dict[str, int]]]:
    """Full functional pass collecting per-micro-interval features.

    Returns the program's dynamic length and, for every
    ``granularity``-instruction micro-interval (the last may be
    partial), a feature vector ``{loads, stores, branches, taken, miss,
    acc, n}`` — instruction-mix counts, taken-branch count, and the
    probe cache's miss/access counts.  Raw material for
    :meth:`SamplingPlan.phased`.  Also establishes the program's length
    meta entry, so a later :func:`functional_length` is free.
    """
    from ..isa import interp
    from ..isa.predecode import predecode
    kind_a = predecode(program).kind
    feats: List[Dict[str, int]] = []
    cur = {"loads": 0, "stores": 0, "branches": 0, "taken": 0,
           "miss": 0, "acc": 0, "n": 0}
    probe: Dict[int, int] = {}
    pending_branch: List[Optional[int]] = [None]

    def hook(hpc: int, _instr, _result, eff_addr) -> None:
        pb = pending_branch[0]
        if pb is not None:
            cur["taken"] += int(hpc != pb + 1)
            pending_branch[0] = None
        k = kind_a[hpc]
        if k == K_LOAD or k == K_STORE:
            cur["loads" if k == K_LOAD else "stores"] += 1
            line = eff_addr >> PROBE_LINE_SHIFT
            idx = line & (PROBE_SETS - 1)
            cur["acc"] += 1
            if probe.get(idx) != line:
                cur["miss"] += 1
                probe[idx] = line
        elif k == K_BRANCH:
            cur["branches"] += 1
            pending_branch[0] = hpc
        cur["n"] += 1
        if cur["n"] == granularity:
            feats.append(dict(cur))
            for name in cur:
                cur[name] = 0

    res = interp.run(program, trace_hook=hook)
    if cur["n"]:
        feats.append(dict(cur))
    store.lengths_measured += 1
    store.meta_put(program_fingerprint(program),
                   {"total": res.steps, "halted": res.halted})
    return res.steps, feats


def ensure_checkpoints(program: "Program", boundaries: Iterable[int],
                       store: CheckpointStore) -> Dict[int, Checkpoint]:
    """Make every boundary's checkpoint available; at most ONE pass.

    Boundaries already in the store are reused; the missing ones are
    produced by a single resumable functional fast-forward that starts
    from the best available checkpoint at or below the first gap.  A
    fully warm store performs zero functional execution — this is the
    property that lets a whole policy/config sweep share one
    fast-forward.
    """
    fp = program_fingerprint(program)
    have: Dict[int, Checkpoint] = {}
    missing: List[int] = []
    for b in sorted(set(int(b) for b in boundaries)):
        if b < 0:
            raise ValueError(f"negative checkpoint boundary {b}")
        ckpt = store.get(fp, b)
        if ckpt is not None:
            have[b] = ckpt
        else:
            missing.append(b)
    if not missing:
        return have
    from ..isa import interp
    from ..isa.predecode import predecode
    store.fast_forwards += 1
    start = max((b for b in have if b <= missing[0]), default=0)
    state = have.get(start) or Checkpoint.initial()
    regs = list(state.regs)
    memory = program.initial_memory()
    memory.update(state.mem_delta)
    pc = state.pc
    done = start
    # Functional-warming tails, seeded from the resume checkpoint's own
    # (events older than the tail window are forgotten either way, so
    # resuming mid-stream loses nothing).
    mem_tail: deque = deque(state.mem_tail, maxlen=TAIL_MEM)
    branch_tail: deque = deque(state.branch_tail, maxlen=TAIL_BRANCH)
    kind_a = predecode(program).kind
    pending_branch: List[Optional[int]] = [None]

    def hook(hpc: int, _instr, _result, eff_addr) -> None:
        pb = pending_branch[0]
        if pb is not None:
            # The previous instruction was a conditional branch; this
            # instruction's pc reveals whether it was taken.
            branch_tail.append((pb, int(hpc != pb + 1)))
            pending_branch[0] = None
        k = kind_a[hpc]
        if k == K_LOAD:
            mem_tail.append((0, eff_addr))
        elif k == K_STORE:
            mem_tail.append((1, eff_addr))
        elif k == K_BRANCH:
            pending_branch[0] = hpc

    for b in missing:
        res = interp.run(program, max_steps=b - done, regs=regs,
                         memory=memory, start_pc=pc, allow_partial=True,
                         trace_hook=hook)
        done += res.steps
        pc = res.pc
        if res.halted or done != b:
            raise CheckpointError(
                f"program {program.name!r} ended after {done} "
                f"instructions, before checkpoint boundary {b} — was the "
                f"plan derived from a different program?")
        ckpt = Checkpoint.capture(program, b, pc, regs, memory,
                                  mem_tail, branch_tail)
        store.put(fp, ckpt)
        have[b] = ckpt
    return have
