"""Stitch per-interval measurements into whole-run estimates.

Each interval contributes the *delta* of the core's counters over its
measured window (warmup cycles excluded).  The estimator extrapolates
every additive counter by the interval's represented-instruction weight
``rep_i / committed_i`` and sums across intervals; ``committed`` itself
is set to the program's exact dynamic length (known, not estimated).
Peak-style fields take the max.

Uncertainty: the per-interval CPI series gives a standard error of the
mean; ``sample_rel_ci`` carries the 95% relative half-width so tables
and the serve layer can report ``ipc ~2.95 (+-1.2%)``.  Estimates are
flagged ``sampled=True`` — provenance that survives SimStats round
trips, cache envelopes and serve responses, and that makes derived IPC
render with a ``~`` marker (:class:`repro.uarch.stats.SampledFloat`).
"""

from __future__ import annotations

import math
from dataclasses import fields
from typing import Dict, List, Optional, Sequence

from ..uarch.stats import SimStats
from .plan import SamplingError, SamplingPlan

#: fields that are not additive counters: plan bookkeeping, provenance,
#: and the IPC-timeline knobs (an estimate has no contiguous timeline)
_NON_ADDITIVE = {"interval_cycles", "interval_committed",
                 "sampled", "sample_intervals", "sample_rel_ci"}

#: fields combined by max, not extrapolated sums
_PEAK = {"regs_in_use_peak"}


def delta_stats(after: SimStats, before: Dict[str, object]) -> SimStats:
    """Counters accumulated since the ``to_dict`` snapshot ``before``."""
    out = SimStats()
    for f in fields(SimStats):
        name = f.name
        if name in _NON_ADDITIVE:
            continue
        value = getattr(after, name)
        if name in _PEAK:
            setattr(out, name, value)
        else:
            setattr(out, name, value - before[name])
    return out


def combine(plan: SamplingPlan, intervals: Sequence[SimStats]) -> SimStats:
    """One whole-run estimate from the plan's interval measurements."""
    if len(intervals) != plan.k:
        raise SamplingError(
            f"plan has {plan.k} intervals but {len(intervals)} "
            f"measurements were supplied")
    reps = plan.weights
    sums: Dict[str, float] = {}
    peaks: Dict[str, int] = {}
    cpis: List[float] = []
    for st, rep in zip(intervals, reps):
        measured = st.committed
        if measured <= 0:
            raise SamplingError(
                "an interval measured zero committed instructions — the "
                "plan does not fit this program")
        weight = rep / measured
        cpis.append(st.cycles / measured)
        for f in fields(SimStats):
            name = f.name
            if name in _NON_ADDITIVE:
                continue
            value = getattr(st, name)
            if name in _PEAK:
                if value > peaks.get(name, 0):
                    peaks[name] = value
            else:
                sums[name] = sums.get(name, 0.0) + value * weight
    est = SimStats()
    for name, value in sums.items():
        setattr(est, name, int(round(value)))
    for name, value in peaks.items():
        setattr(est, name, value)
    # The dynamic length is exact knowledge (the fast-forward walked
    # every instruction); only the rates are estimated.
    est.committed = plan.total
    est.cycles = max(1, est.cycles)
    est.sampled = True
    est.sample_intervals = len(intervals)
    # Finite-population correction: a dense plan that measured (nearly)
    # the whole run has (nearly) no sampling uncertainty even though its
    # phases' CPIs differ wildly — the between-phase spread is real
    # behaviour the weighted sum accounts for exactly, not noise.
    measured = sum(iv.measure for iv in plan.intervals)
    fpc = math.sqrt(max(0.0, 1.0 - measured / plan.total))
    est.sample_rel_ci = relative_ci(cpis, reps) * fpc
    return est


def relative_ci(cpis: Sequence[float],
                weights: Optional[Sequence[int]] = None) -> float:
    """95% relative half-width of a (weighted) CPI-series mean.

    Unweighted, this is the plain SMARTS interval-variance CI.  With
    weights (phase-clustered plans, where each interval stands for a
    different share of the run) the variance is weight-weighted and the
    sample size replaced by the Kish effective size — a deliberately
    conservative bound, since between-cluster spread also contains true
    phase differences the estimator accounts for exactly.  0 if k<2.
    """
    k = len(cpis)
    if k < 2:
        return 0.0
    if weights is None:
        fracs = [1.0 / k] * k
    else:
        wsum = float(sum(weights)) or 1.0
        fracs = [w / wsum for w in weights]
    mean = sum(f * c for f, c in zip(fracs, cpis))
    if mean <= 0:
        return 0.0
    var = sum(f * (c - mean) ** 2 for f, c in zip(fracs, cpis))
    n_eff = 1.0 / sum(f * f for f in fracs)
    if n_eff <= 1.0:
        return 0.0
    half = 1.96 * math.sqrt(var / (n_eff - 1.0))
    return half / mean
