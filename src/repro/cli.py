"""Command-line interface: ``python -m repro <command>``.

Commands
========

``run``      simulate one kernel (or an assembly file) under a named scheme
``kernels``  list the workload registry (suite kernel names)
``policies`` list the mechanism policy registry (``--policy`` values)
``suite``    run all 12 kernels under one scheme and print the table
``figure``   regenerate one of the paper's figures (fig04 ... fig14, intext)
``ablation`` run one of the design-choice ablations
``list``     list kernels, figures and ablations
``trace``    trace-driven profile of a kernel (branches, strides, reconv.)
``faults``   fault-injection sweep: seeded mechanism faults across the
             suite, each run held to the invariant checker + state oracle
``chaos``    service-layer chaos drill: kill/corrupt a journaled
             ``repro serve`` subprocess mid-sweep, assert clean recovery
``cache``    inspect, verify or clear the persistent simulation-result cache
``serve``    run the simulation service daemon (async HTTP/JSON front end
             over one persistent runner pool; see DESIGN.md §10)
``submit``   submit kernels to a running daemon and stream status lines
``profile``  cProfile one kernel simulation (hot-loop work)
``pipeview`` per-instruction pipeline trace (text / Konata / JSONL)
``why``      CPI stack + CI-mechanism audit: why cycles are spent and
             why each hard branch was (not) reused

``run`` takes ``--observe SPEC`` (or ``REPRO_OBSERVE``) to attach
observers (``cpi``, ``audit``, ``trace``) and print their reports after
the stats; observation never changes simulation results.

``suite``/``figure``/``ablation`` accept ``--jobs N`` (or ``REPRO_JOBS``)
to fan simulations out over a worker-process pool; results persist in
the disk cache so repeat invocations pay only for new configurations.
A one-line runtime summary (simulations run / cache hits) goes to
stderr, keeping stdout byte-identical between serial and parallel runs.

They also accept the resilience knobs (DESIGN.md §8): ``--keep-going``
(or ``REPRO_KEEP_GOING=1``) degrades job failures into explicit table
holes and a nonzero exit instead of aborting the sweep; ``--timeout``
(``REPRO_TIMEOUT``) arms the stall watchdog; ``--retries``
(``REPRO_RETRIES``) bounds transient-failure retries; ``--server ADDR``
runs the sweep as a thin client of a ``repro serve`` daemon (stdout
stays byte-identical to a local run).  ``run`` takes
``--faults SPEC`` / ``--check`` (``REPRO_FAULTS`` / ``REPRO_CHECK``) to
inject mechanism faults and arm the invariant checker + state oracle.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import run_program
from .analysis import format_table, harmonic_mean
from .isa import assemble
from .uarch import ProcessorConfig, ci, scal, wb, with_spec_mem
from .uarch.config import INF_REGS
from .workloads import UnknownWorkloadError, build_program, kernel_names

SCHEMES = ("scal", "wb", "ci", "ci-iw", "vect")


def make_config(args: argparse.Namespace) -> ProcessorConfig:
    regs = INF_REGS if args.regs == "inf" else int(args.regs)
    scheme = args.scheme
    policy = getattr(args, "policy", None)
    try:
        if policy is not None:
            # An explicit registry policy wins over --scheme.
            cfg = ci(args.ports, regs, replicas=args.replicas, policy=policy)
        elif scheme == "scal":
            cfg = scal(args.ports, regs)
        elif scheme == "wb":
            cfg = wb(args.ports, regs)
        elif scheme in ("ci", "ci-iw", "vect"):
            cfg = ci(args.ports, regs, replicas=args.replicas, policy=scheme)
        else:  # pragma: no cover - argparse restricts choices
            raise SystemExit(f"unknown scheme {scheme!r}")
    except ValueError as exc:  # unknown --policy: registry suggests fixes
        print(f"error: {exc}", file=sys.stderr)
        print("hint: 'repro policies' lists the registered policies",
              file=sys.stderr)
        raise SystemExit(2) from None
    if args.spec_mem:
        cfg = with_spec_mem(cfg, args.spec_mem)
    return cfg


def _add_machine_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scheme", choices=SCHEMES, default="ci",
                   help="machine configuration (default: ci)")
    p.add_argument("--policy", default=None, metavar="NAME",
                   help="mechanism policy from the registry (overrides "
                        "--scheme; see 'repro policies')")
    p.add_argument("--regs", default="512",
                   help="physical registers (int or 'inf')")
    p.add_argument("--ports", type=int, default=1, help="L1 data ports")
    p.add_argument("--replicas", type=int, default=4,
                   help="speculative replicas per vectorized instruction")
    p.add_argument("--spec-mem", type=int, default=0, metavar="POSITIONS",
                   help="attach the speculative data memory")
    p.add_argument("--scale", type=float, default=0.5,
                   help="workload scale factor")
    p.add_argument("--seed", type=int, default=1, help="workload data seed")


def _add_jobs_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="simulation worker processes (default: REPRO_JOBS "
                        "or the machine's core count; 1 = in-process)")
    p.add_argument("--keep-going", action="store_true",
                   help="don't abort the sweep on a failed simulation: "
                        "render an explicit hole, report every failure, "
                        "exit nonzero (default: REPRO_KEEP_GOING)")
    p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                   help="stall watchdog: declare pending jobs hung after "
                        "SEC seconds without progress (default: "
                        "REPRO_TIMEOUT; 0 disables)")
    p.add_argument("--retries", type=int, default=None, metavar="N",
                   help="retries for transient job failures — timeouts, "
                        "pool breakage (default: REPRO_RETRIES or 1)")
    p.add_argument("--server", default=None, metavar="ADDR",
                   help="run on a 'repro serve' daemon at host[:port] "
                        "instead of a local pool (--jobs/--timeout/"
                        "--retries then apply daemon-side)")


def _add_sample_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--sample", nargs="?", const="auto", default=None,
                   metavar="SPEC",
                   help="statistical sampling: estimate each run from "
                        "detailed intervals booted off shared functional "
                        "checkpoints instead of simulating every "
                        "instruction ('auto', or 'k=8,w=150,m=250'); "
                        "IPC values are then estimates marked with '~'")


def _make_runner(args: argparse.Namespace, scale=None, seed=None):
    """The sweep runner: local pool, or a thin client of ``--server``."""
    sampling = getattr(args, "sample", None)
    if getattr(args, "server", None):
        import os
        from .serve.client import RemoteRunner
        return RemoteRunner(args.server, scale=scale, seed=seed,
                            keep_going=args.keep_going,
                            client_name=f"cli-{os.getpid()}",
                            on_event=lambda m: print(
                                f"repro: {m}", file=sys.stderr),
                            sampling=sampling)
    from .experiments.common import Runner
    return Runner(scale=scale, seed=seed, jobs=args.jobs,
                  keep_going=args.keep_going, timeout=args.timeout,
                  retries=args.retries, sampling=sampling)


def _finish_sweep(runner) -> int:
    """Common sweep epilogue: runtime summary + aggregated failures."""
    print(runner.runtime_summary(), file=sys.stderr)
    if runner.failures:
        print(runner.failure_report(), file=sys.stderr)
        return 1
    return 0


def _load_program(args: argparse.Namespace):
    if args.kernel.endswith(".s") or args.kernel.endswith(".asm"):
        with open(args.kernel) as fh:
            return assemble(fh.read(), name=args.kernel)
    return build_program(args.kernel, args.scale, args.seed)


def cmd_run(args: argparse.Namespace) -> int:
    import os
    from .observe import make_observer
    prog = _load_program(args)
    if args.sample is not None:
        return _run_sampled(args, prog)
    spec = args.observe if args.observe is not None \
        else os.environ.get("REPRO_OBSERVE")
    observer = make_observer(spec)
    cfg = make_config(args)
    check = True if args.check else None   # None = honour REPRO_CHECK
    try:
        st = run_program(prog, cfg, observer=observer,
                         faults=args.faults, check=check)
    except ValueError as exc:              # bad --faults spec
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:
        from .faults import InjectedCrash, InvariantViolation, OracleMismatch
        if isinstance(exc, InjectedCrash):
            print(f"simulated crash: {exc}", file=sys.stderr)
            return 1
        if isinstance(exc, (InvariantViolation, OracleMismatch)):
            print(f"CHECK FAILED: {exc}", file=sys.stderr)
            return 1
        raise
    print(f"program            : {prog.name} ({len(prog)} static instrs)")
    print(f"committed / cycles : {st.committed} / {st.cycles}")
    print(f"IPC                : {st.ipc:.3f}")
    print(f"branch mispredicts : {st.mispredicts} "
          f"({st.mispredict_rate:.1%} of conditional branches)")
    if cfg.ci_policy is not None:
        print(f"reused instructions: {st.committed_reused} "
              f"({st.reuse_fraction:.1%} of committed)")
        print(f"replicas created   : {st.replicas_created} "
              f"(validated {st.replica_validations}, "
              f"failed {st.replica_validation_failures})")
        print(f"CI events          : {st.ci_events} examined, "
              f"{st.ci_selected} selected, {st.ci_reused} reused")
        print(f"coherence squashes : {st.coherence_squashes}")
    print(f"L1 accesses        : {st.l1d_accesses} "
          f"({st.l1d_misses} misses)")
    print(f"avg regs in use    : {st.avg_regs_in_use:.0f} "
          f"(peak {st.regs_in_use_peak})")
    series = st.interval_ipc
    if series:
        # One digit per interval, 0-9 ~ IPC 0-4.5+ (warm-up at a glance).
        timeline = "".join(str(min(9, int(x * 2))) for x in series)
        print(f"IPC timeline       : {timeline}")
    if observer is not None:
        report = observer.render()
        if report:
            print()
            print(report)
    return 0


def _run_sampled(args: argparse.Namespace, prog) -> int:
    """``repro run --sample``: a sampled estimate for one program.

    Works for registry kernels and ad-hoc ``.s`` files alike — the
    checkpoint store keys on the program's content fingerprint, not its
    registry name.
    """
    if args.observe or args.faults or args.check:
        print("error: --sample does not compose with --observe, "
              "--faults or --check (a stitched estimate has no "
              "contiguous cycle stream)", file=sys.stderr)
        return 2
    from .sampling import SamplingError, sample_program
    cfg = make_config(args)
    try:
        st, plan = sample_program(prog, cfg, args.sample)
    except (SamplingError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    measured = sum(iv.measure for iv in plan.intervals)
    warm = plan.detailed_instructions - measured
    print(f"program            : {prog.name} ({len(prog)} static instrs)")
    print(f"sampled            : {plan.k} interval(s), {measured} of "
          f"{plan.total} instrs measured ({measured / plan.total:.1%}, "
          f"+{warm} warmup), ±{st.sample_rel_ci:.1%} CI")
    print(f"committed / cycles : {st.committed} / ~{st.cycles}")
    print(f"IPC                : ~{float(st.ipc):.3f}")
    print(f"branch mispredicts : ~{st.mispredicts} "
          f"({st.mispredict_rate:.1%} of conditional branches)")
    if cfg.ci_policy is not None:
        print(f"reused instructions: ~{st.committed_reused} "
              f"({st.reuse_fraction:.1%} of committed)")
    print(f"L1 accesses        : ~{st.l1d_accesses} "
          f"({st.l1d_misses} misses)")
    return 0


def cmd_pipeview(args: argparse.Namespace) -> int:
    from .observe import PipeTracer
    prog = _load_program(args)
    tracer = PipeTracer(limit=args.limit)
    run_program(prog, make_config(args), observer=tracer)
    if args.format == "text":
        out = tracer.render_text(limit=args.limit or 32, width=args.width)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(out + "\n")
        else:
            print(out)
    else:
        writer = tracer.to_konata if args.format == "konata" \
            else tracer.to_jsonl
        if args.out:
            with open(args.out, "w") as fh:
                n = writer(fh)
            print(f"wrote {n} instruction(s) to {args.out} "
                  f"({args.format})", file=sys.stderr)
        else:
            writer(sys.stdout)
    return 0


def cmd_why(args: argparse.Namespace) -> int:
    from .observe import AuditTrail, CPIStack, MultiObserver
    prog = _load_program(args)
    observer = MultiObserver([CPIStack(), AuditTrail()])
    st = run_program(prog, make_config(args), observer=observer)
    print(f"{prog.name}: {st.committed} committed / {st.cycles} cycles "
          f"(IPC {st.ipc:.3f}) under {args.scheme}")
    print()
    print(observer.render())
    return 0


def _suite_table(stats, runner, cfg, args: argparse.Namespace) -> str:
    """The suite results table (shared by ``suite`` and ``submit`` so a
    served sweep prints byte-identical stdout to a local one)."""
    rows = []
    ipcs = []
    for name, st in stats.items():
        if getattr(st, "failed", False):
            # A keep-going hole: mark it, keep the table complete.
            rows.append([name, float("nan"), "--", "--", "FAILED"])
            continue
        ipcs.append(st.ipc)
        rows.append([name, st.ipc, f"{st.mispredict_rate:.1%}",
                     f"{st.reuse_fraction:.1%}", st.cycles])
    hmean = harmonic_mean(ipcs) if ipcs else float("nan")
    if any(getattr(ipc, "sampled_marker", False) for ipc in ipcs):
        from .uarch.stats import SampledFloat
        hmean = SampledFloat(hmean)
    rows.append(["INT(hmean)", hmean,
                 "" if not runner.failures else "(partial)", "", ""])
    label = cfg.ci_policy if cfg.ci_policy is not None else args.scheme
    return format_table(
        f"suite under {label} ({args.regs} regs, {args.ports} port(s))",
        ["kernel", "IPC", "mispred", "reuse", "cycles"], rows)


def cmd_suite(args: argparse.Namespace) -> int:
    cfg = make_config(args)
    runner = _make_runner(args, scale=args.scale, seed=args.seed)
    stats = runner.run_suite(cfg)
    print(_suite_table(stats, runner, cfg, args))
    return _finish_sweep(runner)


def cmd_figure(args: argparse.Namespace) -> int:
    import os
    os.environ["REPRO_SCALE"] = str(args.scale)
    from .experiments import ALL_EXPERIMENTS, generate_report
    runner = _make_runner(args)
    if args.name == "all":
        print(generate_report(runner))
        return _finish_sweep(runner)
    key = args.name if args.name.startswith(("fig", "intext")) \
        else f"fig{int(args.name):02d}"
    if key not in ALL_EXPERIMENTS:
        print(f"unknown figure {args.name!r}; known: "
              f"{', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    print(ALL_EXPERIMENTS[key](runner).render())
    return _finish_sweep(runner)


def cmd_ablation(args: argparse.Namespace) -> int:
    import os
    os.environ["REPRO_SCALE"] = str(args.scale)
    from .experiments import ALL_ABLATIONS
    if args.name not in ALL_ABLATIONS:
        print(f"unknown ablation {args.name!r}; known: "
              f"{', '.join(sorted(ALL_ABLATIONS))}", file=sys.stderr)
        return 2
    runner = _make_runner(args)
    print(ALL_ABLATIONS[args.name](runner).render())
    return _finish_sweep(runner)


def cmd_cache(args: argparse.Namespace) -> int:
    from .runtime import CACHE_SCHEMA, ResultCache
    from .sampling import CheckpointStore
    cache = ResultCache()
    store = CheckpointStore()
    if args.action == "info":
        info = cache.info()
        print(f"cache root : {info['root']}")
        print(f"enabled    : {info['enabled']} (REPRO_CACHE=0 disables)")
        print(f"schema     : v{CACHE_SCHEMA}")
        print(f"entries    : {info['entries']}")
        print(f"size       : {info['bytes'] / 1024:.1f} KiB")
        print(f"quarantined: {info['quarantined']}")
        print(f"hits       : {info['hits']}")
        print(f"misses     : {info['misses']}")
        print(f"coalesced  : {info['coalesced']}")
        cinfo = store.info()
        print(f"checkpoints: {cinfo['entries']} entr"
              f"{'y' if cinfo['entries'] == 1 else 'ies'}, "
              f"{cinfo['bytes'] / 1024:.1f} KiB, "
              f"{cinfo['quarantined']} quarantined "
              f"({cinfo['root']})")
    elif args.action == "verify":
        report = cache.verify()
        print(f"cache root : {report['root']}")
        print(f"verified   : {report['ok']} ok, {report['stale']} stale "
              f"(other schema), {report['corrupt']} corrupt")
        print(f"quarantined: {report['quarantined']}")
        for item in report["bad"]:
            print(f"  quarantined {item['path']}: {item['reason']}")
        creport = store.verify()
        print(f"checkpoints: {creport['ok']} ok, {creport['stale']} "
              f"stale, {creport['corrupt']} corrupt, "
              f"{creport['quarantined']} quarantined")
        for item in creport["bad"]:
            print(f"  quarantined {item['path']}: {item['reason']}")
        if report["corrupt"] or creport["corrupt"]:
            return 1
        if args.strict and (report["quarantined"]
                            or creport["quarantined"]):
            print("strict: quarantined entries present; inspect or clear "
                  f"{report['root']}/quarantine", file=sys.stderr)
            return 1
    else:  # clear
        removed = cache.clear()
        cremoved = store.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.root}")
        print(f"removed {cremoved} checkpoint entr"
              f"{'y' if cremoved == 1 else 'ies'} from {store.root}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import os
    from .serve.server import serve_main
    journal = None
    if not args.no_journal:
        if args.journal:
            journal = args.journal
        else:
            from .runtime.cache import default_cache_dir
            journal = os.path.join(default_cache_dir(),
                                   "serve-journal.jsonl")
    return serve_main(host=args.host, port=args.port, jobs=args.jobs,
                      queue_depth=args.queue_depth, timeout=args.timeout,
                      retries=args.retries, batch_max=args.batch_max,
                      journal=journal)


def cmd_chaos(args: argparse.Namespace) -> int:
    from .faults.chaos import DEFAULT_PLAN, ChaosPlan, run_chaos
    seeds = [int(s) for s in args.seeds.split(",")] if args.seeds \
        else [args.seed]
    kernels = args.kernels.split(",") if args.kernels else None
    on_event = (lambda m: print(f"repro chaos: {m}", file=sys.stderr)) \
        if args.verbose else None
    bad = 0
    for i, seed in enumerate(seeds):
        text = args.plan or DEFAULT_PLAN
        if "seed=" not in text:
            text = f"{text},seed={seed}"
        try:
            plan = ChaosPlan.parse(text)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        report = run_chaos(plan, kernels, scale=args.scale,
                           data_seed=args.data_seed, jobs=args.jobs,
                           on_event=on_event)
        if i:
            print()
        print(report.render())
        if not report.ok:
            bad += 1
    if len(seeds) > 1:
        print(f"\n{len(seeds) - bad}/{len(seeds)} drill(s) passed")
    return 1 if bad else 0


def cmd_submit(args: argparse.Namespace) -> int:
    from .serve.client import RemoteRunner
    from .workloads import get_workload
    cfg = make_config(args)
    kernels = kernel_names() if args.kernels in ([], ["suite"]) \
        else args.kernels
    for k in kernels:
        get_workload(k)  # unknown name: did-you-mean error, exit 2

    def on_update(job_id, status):
        if not args.quiet:
            print(f"  {status.kernel:9s} {status.state}"
                  f"{' [' + status.source + ']' if status.source else ''}"
                  f"  ({job_id})", file=sys.stderr)

    def on_event(message):
        print(f"  ! {message}", file=sys.stderr)

    import os
    from .runtime import RunSpec
    from .serve.client import ServeClient, ServeError
    try:
        # Surface the daemon's structured /healthz state up front, so
        # "why is my sweep refused" is answered before the first job.
        state = ServeClient(args.server).health().get("status", "")
        if state and state != "ok":
            print(f"repro submit: server reports {state}",
                  file=sys.stderr)
    except ServeError:
        pass   # run() below reports unreachability with full context
    client_name = args.client or f"submit-{os.getpid()}"
    runner = RemoteRunner(args.server, scale=args.scale, seed=args.seed,
                          priority=args.priority, client_name=client_name,
                          keep_going=True, on_update=on_update,
                          on_event=on_event)
    stats = dict(zip(kernels, runner.run_many(
        [RunSpec(k, args.scale, args.seed, cfg) for k in kernels])))
    print(_suite_table(stats, runner, cfg, args))
    return _finish_sweep(runner)


def cmd_faults(args: argparse.Namespace) -> int:
    from .faults import plan_for_run, run_checked
    from .uarch import ci as ci_config
    kernels = args.kernels.split(",") if args.kernels else kernel_names()
    policies = args.policies.split(",")
    rows = []
    injected = unapplied = bad = 0
    for policy in policies:
        cfg = ci_config(args.ports, int(args.regs), policy=policy.strip())
        for i, kernel in enumerate(kernels):
            prog = build_program(kernel, args.scale, args.seed)
            # A distinct plan seed per (kernel, policy) point, stable
            # across runs, so the sweep exercises varied schedules.
            plan = plan_for_run(prog, cfg, count=args.count,
                                seed=args.plan_seed + i * len(policies)
                                + policies.index(policy))
            rep = run_checked(prog, cfg, plan=plan)
            injected += len(rep.injected)
            unapplied += rep.unapplied
            if not rep.ok:
                bad += 1
            rows.append([kernel, policy, len(rep.injected), rep.unapplied,
                         len(rep.violations), len(rep.oracle_diffs),
                         "OK" if rep.ok else "FAIL"])
            if args.verbose and (rep.violations or rep.oracle_diffs):
                for v in rep.violations + rep.oracle_diffs:
                    print(f"  {kernel}[{policy}]: {v}", file=sys.stderr)
    print(format_table(
        f"fault-injection sweep ({args.count} fault(s)/run, "
        f"plan seed {args.plan_seed}, scale {args.scale})",
        ["kernel", "policy", "injected", "unapplied", "invariant",
         "oracle", "verdict"], rows))
    print(f"{injected} fault(s) injected across {len(rows)} run(s); "
          f"{unapplied} never armed; {bad} run(s) failed checks")
    return 1 if bad else 0


def cmd_profile(args: argparse.Namespace) -> int:
    from .runtime import profile_kernel
    limit = args.top if args.top is not None else args.limit
    stats, report = profile_kernel(
        args.kernel, make_config(args), scale=args.scale, seed=args.seed,
        sort=args.sort, limit=limit)
    header = (f"{args.kernel}: {stats.committed} committed / {stats.cycles} "
              f"cycles (IPC {stats.ipc:.3f})")
    print(header)
    print(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(header + "\n" + report)
        print(f"profile report written to {args.out}")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    from .ci import policy_names
    from .experiments import ALL_ABLATIONS, ALL_EXPERIMENTS
    from .workloads import all_workloads
    print("kernels:")
    for spec in all_workloads():
        print(f"  {spec.name:9s} {spec.description} [{spec.traits}]")
    print("figures:", ", ".join(ALL_EXPERIMENTS))
    print("ablations:", ", ".join(sorted(ALL_ABLATIONS)))
    print("schemes:", ", ".join(SCHEMES))
    print("policies:", ", ".join(policy_names()))
    return 0


def cmd_kernels(args: argparse.Namespace) -> int:
    from .workloads import all_workloads
    print("registered suite kernels (run/suite/submit KERNEL values):")
    print()
    for spec in all_workloads():
        scales = "/".join(f"{s:g}" for s in spec.default_scales)
        print(f"  {spec.name:9s} {spec.category:8s} scales {scales}")
        if args.verbose:
            print(f"  {'':9s} {spec.description}")
            print(f"  {'':9s} traits: {spec.traits}")
    return 0


def cmd_policies(args: argparse.Namespace) -> int:
    from .ci import all_policies
    print("registered mechanism policies (use with --policy):")
    print()
    for spec in all_policies():
        print(f"  {spec.name:16s} {spec.description}")
        if args.verbose:
            parts = [f"filter={spec.filter}"]
            if spec.tracker:
                parts.append(f"tracker={spec.tracker}")
            if spec.selector:
                parts.append(f"selector={spec.selector}")
            if spec.replicas:
                parts.append(f"replicas={spec.replicas}")
            if spec.squash_reuse:
                parts.append("squash_reuse")
            print(f"  {'':16s} components: {', '.join(parts)}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .trace import check_reconvergence, collect_trace, profile_trace
    prog = build_program(args.kernel, args.scale, args.seed)
    events = collect_trace(prog)
    prof = profile_trace(events)
    checks = check_reconvergence(prog, events)
    rows = []
    for pc in sorted(prof.branches):
        b = prof.branches[pc]
        chk = checks.get(pc)
        rows.append([pc, prog.code[pc].text, b.execs,
                     f"{b.taken_rate:.1%}",
                     "hard" if b.is_hard else "easy",
                     f"{chk.hit_rate:.1%}" if chk else "-"])
    print(format_table(f"{args.kernel}: branch anatomy "
                       f"({len(events)} dynamic instructions)",
                       ["pc", "branch", "execs", "taken", "class",
                        "reconv hit"], rows))
    rows = [[pc, l.execs, l.dominant_stride, f"{l.stride_rate:.1%}"]
            for pc, l in sorted(prof.loads.items())]
    print()
    print(format_table(f"{args.kernel}: load strides",
                       ["pc", "execs", "stride", "strided"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Control-Flow Independence Reuse via "
                    "Dynamic Vectorization' (IPDPS 2005)")
    sub = p.add_subparsers(dest="command", required=True)

    pr = sub.add_parser("run", help="simulate one kernel or .s file")
    pr.add_argument("kernel", help="suite kernel name or assembly file")
    _add_machine_args(pr)
    pr.add_argument("--observe", default=None, metavar="SPEC",
                    help="attach observers (comma list of cpi, audit, "
                         "trace; default: REPRO_OBSERVE)")
    pr.add_argument("--faults", default=None, metavar="PLAN",
                    help="inject mechanism faults, e.g. 'squash@400' or "
                         "'valfail*3,seed=7' (default: REPRO_FAULTS)")
    pr.add_argument("--check", action="store_true",
                    help="arm the per-cycle invariant checker and the "
                         "final-state oracle (default: REPRO_CHECK)")
    _add_sample_arg(pr)
    pr.set_defaults(fn=cmd_run)

    pv = sub.add_parser("pipeview",
                        help="per-instruction pipeline trace/diagram")
    pv.add_argument("kernel", help="suite kernel name or assembly file")
    _add_machine_args(pv)
    pv.add_argument("--format", choices=("text", "konata", "jsonl"),
                    default="text",
                    help="text diagram, Konata/Kanata log, or JSONL")
    pv.add_argument("--out", default=None, metavar="FILE",
                    help="write to FILE instead of stdout")
    pv.add_argument("--limit", type=int, default=None, metavar="N",
                    help="trace at most N dynamic instructions")
    pv.add_argument("--width", type=int, default=72,
                    help="text diagram width in cycles")
    pv.set_defaults(fn=cmd_pipeview)

    pw = sub.add_parser("why",
                        help="CPI stack + why branches were (not) reused")
    pw.add_argument("kernel", help="suite kernel name or assembly file")
    _add_machine_args(pw)
    pw.set_defaults(fn=cmd_why)

    ps = sub.add_parser("suite", help="run all kernels under one scheme")
    _add_machine_args(ps)
    _add_jobs_arg(ps)
    _add_sample_arg(ps)
    ps.set_defaults(fn=cmd_suite)

    pf = sub.add_parser("figure", help="regenerate a paper figure")
    pf.add_argument("name",
                    help="fig04..fig14, intext, a number, or 'all' "
                         "(the full EXPERIMENTS.md report)")
    pf.add_argument("--scale", type=float, default=0.5)
    _add_jobs_arg(pf)
    _add_sample_arg(pf)
    pf.set_defaults(fn=cmd_figure)

    pa = sub.add_parser("ablation", help="run a design-choice ablation")
    pa.add_argument("name")
    pa.add_argument("--scale", type=float, default=0.35)
    _add_jobs_arg(pa)
    pa.set_defaults(fn=cmd_ablation)

    pl = sub.add_parser("list", help="list kernels/figures/ablations")
    pl.set_defaults(fn=cmd_list)

    pk = sub.add_parser("kernels",
                        help="list the registered suite kernels")
    pk.add_argument("--verbose", "-v", action="store_true",
                    help="also show each kernel's description and traits")
    pk.set_defaults(fn=cmd_kernels)

    pp2 = sub.add_parser("policies",
                         help="list registered mechanism policies")
    pp2.add_argument("--verbose", "-v", action="store_true",
                     help="also show each policy's component assembly")
    pp2.set_defaults(fn=cmd_policies)

    pt = sub.add_parser("trace", help="trace-driven kernel profile")
    pt.add_argument("kernel")
    pt.add_argument("--scale", type=float, default=0.5)
    pt.add_argument("--seed", type=int, default=1)
    pt.set_defaults(fn=cmd_trace)

    pc = sub.add_parser("cache", help="persistent result-cache maintenance")
    pc.add_argument("action", choices=("info", "verify", "clear"))
    pc.add_argument("--strict", action="store_true",
                    help="with 'verify': also exit nonzero while any "
                         "quarantined entry remains parked (CI gate)")
    pc.set_defaults(fn=cmd_cache)

    from .serve.protocol import DEFAULT_PORT
    psv = sub.add_parser(
        "serve", help="run the simulation service daemon")
    psv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default: 127.0.0.1)")
    psv.add_argument("--port", type=int, default=DEFAULT_PORT,
                     help=f"TCP port (default: {DEFAULT_PORT}; 0 = any)")
    psv.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="worker processes (default: REPRO_JOBS or the "
                          "machine's usable core count)")
    psv.add_argument("--queue-depth", type=int, default=256, metavar="N",
                     help="admission limit before backpressure "
                          "(default: 256)")
    psv.add_argument("--timeout", type=float, default=None, metavar="SEC",
                     help="per-batch stall watchdog (default: "
                          "REPRO_TIMEOUT)")
    psv.add_argument("--retries", type=int, default=None, metavar="N",
                     help="transient-failure retries (default: "
                          "REPRO_RETRIES or 1)")
    psv.add_argument("--journal", default=None, metavar="FILE",
                     help="crash-safety job journal path (default: "
                          "<cache root>/serve-journal.jsonl)")
    psv.add_argument("--no-journal", action="store_true",
                     help="disable the crash-safety journal (accepted "
                          "jobs do not survive a daemon crash)")
    psv.add_argument("--batch-max", type=int, default=32, metavar="N",
                     help="max queue entries dispatched per executor "
                          "batch (default: 32)")
    psv.set_defaults(fn=cmd_serve)

    psm = sub.add_parser(
        "submit", help="submit kernels to a running daemon")
    psm.add_argument("kernels", nargs="*", metavar="KERNEL",
                     help="kernels to run (default: the whole suite; "
                          "'suite' is an explicit alias)")
    _add_machine_args(psm)
    psm.add_argument("--server", default=f"127.0.0.1:{DEFAULT_PORT}",
                     metavar="ADDR", help="daemon address host[:port] "
                     f"(default: 127.0.0.1:{DEFAULT_PORT})")
    psm.add_argument("--priority", choices=("interactive", "sweep"),
                     default="interactive",
                     help="admission class (default: interactive)")
    psm.add_argument("--client", default=None, metavar="NAME",
                     help="fairness-lane name (default: submit-<pid>)")
    psm.add_argument("--quiet", "-q", action="store_true",
                     help="suppress the per-job status stream on stderr")
    psm.set_defaults(fn=cmd_submit)

    pch = sub.add_parser(
        "chaos",
        help="service-layer chaos drill: crash/restart a journaled "
             "'repro serve' subprocess mid-sweep and audit recovery")
    pch.add_argument("--plan", default=None, metavar="SPEC",
                     help="chaos plan, e.g. 'kill-server@mid,drop-conn' "
                          "(default: every kind once at seeded "
                          "positions)")
    pch.add_argument("--seed", type=int, default=0, metavar="S",
                     help="plan seed for unpinned event positions "
                          "(default: 0)")
    pch.add_argument("--seeds", default=None, metavar="A,B,...",
                     help="run the drill once per seed (overrides "
                          "--seed)")
    pch.add_argument("--kernels", default=None, metavar="A,B,...",
                     help="kernels to sweep (default: the whole suite)")
    pch.add_argument("--scale", type=float, default=0.05,
                     help="workload scale factor (default: 0.05)")
    pch.add_argument("--data-seed", type=int, default=1, metavar="N",
                     help="workload data seed (default: 1)")
    pch.add_argument("--jobs", type=int, default=2, metavar="N",
                     help="daemon worker processes (default: 2 — the "
                          "kill-worker event needs a real pool)")
    pch.add_argument("--verbose", "-v", action="store_true",
                     help="stream drill events to stderr")
    pch.set_defaults(fn=cmd_chaos)

    pfa = sub.add_parser(
        "faults",
        help="seeded fault-injection sweep with invariant + oracle checks")
    pfa.add_argument("--kernels", default=None, metavar="A,B,...",
                     help="kernels to sweep (default: the whole suite)")
    pfa.add_argument("--policies", default="ci,vect", metavar="A,B,...",
                     help="mechanism policies to sweep (default: ci,vect)")
    pfa.add_argument("--count", type=int, default=5, metavar="N",
                     help="faults per (kernel, policy) run (default: 5)")
    pfa.add_argument("--plan-seed", type=int, default=0, metavar="S",
                     help="base seed for the generated fault plans")
    pfa.add_argument("--scale", type=float, default=0.05,
                     help="workload scale factor (default: 0.05)")
    pfa.add_argument("--seed", type=int, default=1,
                     help="workload data seed")
    pfa.add_argument("--regs", default="512",
                     help="physical registers")
    pfa.add_argument("--ports", type=int, default=1, help="L1 data ports")
    pfa.add_argument("--verbose", "-v", action="store_true",
                     help="print each violation/diff to stderr")
    pfa.set_defaults(fn=cmd_faults)

    pp = sub.add_parser("profile",
                        help="cProfile one kernel simulation")
    pp.add_argument("kernel", help="suite kernel name")
    _add_machine_args(pp)
    pp.add_argument("--sort", choices=("cumulative", "tottime", "ncalls"),
                    default="cumulative", help="pstats sort order")
    pp.add_argument("--limit", type=int, default=30,
                    help="rows of the profile to print")
    pp.add_argument("--top", type=int, default=None, metavar="N",
                    help="rows of the profile to print (overrides --limit)")
    pp.add_argument("--out", metavar="FILE", default=None,
                    help="also write the profile report to FILE")
    pp.set_defaults(fn=cmd_profile)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from .runtime import WorkerError
    try:
        return args.fn(args)
    except UnknownWorkloadError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print("hint: 'repro kernels' lists the registered kernels",
              file=sys.stderr)
        return 2
    except WorkerError as exc:
        # Sweep-level failure: the aggregated report, not a traceback.
        # A SIGINT drain exits 130 like any interrupted Unix process.
        print(f"error: {exc}", file=sys.stderr)
        return 130 if exc.interrupted else 1
    except Exception as exc:
        from .serve.client import ServeError
        if isinstance(exc, ServeError):
            print(f"error: {exc}", file=sys.stderr)
            return 2
        raise


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
