"""MBS — Mispredicted Branch Status table (Section 2.3.1).

A 4-way × 64-set table of 4-bit saturating up/down counters.  The counter
moves toward an extreme while the branch keeps repeating one direction and
snaps back to the middle when the direction flips.  A branch whose counter
sits at either extreme is *highly biased* (easy); anything else is
considered hard-to-predict, which activates the control-independence
scheme for its mispredictions.
"""

from __future__ import annotations

from dataclasses import dataclass

from .assoc import SetAssocTable

COUNTER_MAX = 15
COUNTER_MID = 8


@dataclass
class MBSEntry:
    counter: int = COUNTER_MID
    last_taken: bool | None = None


class MBS:
    """Hard-to-predict branch filter."""

    def __init__(self, sets: int = 64, ways: int = 4):
        self.table: SetAssocTable[MBSEntry] = SetAssocTable(sets, ways)

    def update(self, pc: int, taken: bool) -> None:
        e = self.table.lookup(pc)
        if e is None:
            e = MBSEntry()
            self.table.insert(pc, e)
        if e.last_taken is None or e.last_taken == taken:
            if taken:
                e.counter = min(COUNTER_MAX, e.counter + 1)
            else:
                e.counter = max(0, e.counter - 1)
        else:
            e.counter = COUNTER_MID
        e.last_taken = taken

    def is_hard(self, pc: int) -> bool:
        """True unless the branch has proven highly biased.

        Unknown branches default to hard (their counter would start at the
        middle of the range), as in the paper.
        """
        e = self.table.lookup(pc, refresh=False)
        if e is None:
            return True
        return 0 < e.counter < COUNTER_MAX
