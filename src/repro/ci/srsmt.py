"""SRSMT — Scalar Register Set Map Table — and replica scheduling.

Each entry (Figure 6) manages one vectorized static instruction's set of
speculative replicas: the allocated destination registers (or speculative-
data-memory positions), the ``decode``/``commit`` validation cursors, the
in-flight ``issue`` count, the DAEC dead-association counter, the producer
identifiers ``seq1``/``seq2``, and — for loads — the address ``Range`` the
replicas read (used by the store coherence check of Section 2.4.3).

Replicas themselves are lightweight µops executed by :class:`ReplicaScheduler`
with *leftover* issue slots and cache ports only (Section 2.4.1: lowest
priority, never squashed by branch recoveries, retired at write-back).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..isa import ALU_EVAL, FU_LATENCY, Instruction
from .assoc import SetAssocTable

#: operand kinds for vectorized ALU instructions
VEC, SELF, SCALAR = "vec", "self", "scalar"


@dataclass
class Operand:
    """One source of a vectorized ALU instruction.

    ``vec``    — produced by another vectorized instruction; replica *n*
                 of the consumer uses the producer's replica ``base + n``.
    ``self``   — the instruction's own previous output (accumulators);
                 replica 0 seeds from the triggering dynamic instance.
    ``scalar`` — a plain register value captured at vectorization time.
    """

    kind: str
    producer: Optional["SRSMTEntry"] = None
    producer_generation: int = -1
    base: int = 0
    value: int = 0

    def seq_id(self) -> Optional[int]:
        """The paper's seq field: producer PC for vector operands."""
        return self.producer.pc if self.kind == VEC and self.producer else None


class SRSMTEntry:
    """One vectorized static instruction's replica set."""

    __slots__ = (
        "pc", "instr", "is_load", "nregs", "decode", "commit", "issue",
        "daec", "base_addr", "stride", "range_lo", "range_hi", "operands",
        "values", "done", "issued", "event", "generation", "regs_held",
        "storage", "addr_operand", "addrs",
    )

    def __init__(self, pc: int, instr: Instruction, nregs: int,
                 storage: str = "rf"):
        self.pc = pc
        self.instr = instr
        self.is_load = instr.is_load
        self.nregs = nregs
        self.decode = 0
        self.commit = 0
        self.issue = 0
        self.daec = 0
        self.base_addr = 0
        self.stride = 0
        self.range_lo = 0
        self.range_hi = 0
        self.operands: List[Operand] = []
        self.values: List[Optional[int]] = [None] * nregs
        self.done: List[bool] = [False] * nregs
        self.issued: List[bool] = [False] * nregs
        self.event = None
        self.generation = 0
        self.regs_held = nregs
        self.storage = storage
        #: dependent ("gather") loads: address comes from a vectorized
        #: producer instead of a stride pattern (step 3's dependence rule)
        self.addr_operand: Optional[Operand] = None
        self.addrs: List[Optional[int]] = [None] * nregs

    def set_load_pattern(self, base_addr: int, stride: int) -> None:
        self.base_addr = base_addr
        self.stride = stride
        addrs = [base_addr + stride * (i + 1) for i in range(self.nregs)]
        self.range_lo = min(addrs)
        self.range_hi = max(addrs)

    def replica_addr(self, idx: int) -> int:
        return self.base_addr + self.stride * (idx + 1)

    def contains_addr(self, addr: int) -> bool:
        """Conservative Range check for the store coherence mechanism."""
        if not self.is_load:
            return False
        if self.addr_operand is not None:
            return any(a == addr for a in self.addrs if a is not None)
        return self.range_lo <= addr <= self.range_hi

    @property
    def exhausted(self) -> bool:
        return self.decode >= self.nregs

    @property
    def fully_committed(self) -> bool:
        return self.commit >= self.nregs

    def rollback_decode(self) -> None:
        """Branch-misprediction recovery: copy commit into decode."""
        self.decode = self.commit

    def __repr__(self) -> str:  # pragma: no cover
        kind = "LD" if self.is_load else self.instr.op.name
        return (f"<SRSMT pc={self.pc} {kind} n={self.nregs} "
                f"d={self.decode} c={self.commit} daec={self.daec}>")


class SRSMT:
    """The table proper: 4-way × 64-set, LRU within a set.

    Deallocation requires ``decode == commit`` and ``issue == 0``; the
    engine passes a ``release`` callback that returns the entry's registers
    to whichever pool they came from.
    """

    def __init__(self, sets: int = 64, ways: int = 4,
                 release: Optional[Callable[["SRSMTEntry"], None]] = None):
        self.table: SetAssocTable[SRSMTEntry] = SetAssocTable(sets, ways)
        self.release = release or (lambda e: None)
        self.alloc_failures = 0
        #: flat pc → entry mirror of the table.  ``lookup`` runs on the
        #: per-dispatch hot path; the set-associative walk only matters
        #: for capacity and eviction policy, so reads take the flat path.
        self._by_pc: dict = {}

    def lookup(self, pc: int) -> Optional[SRSMTEntry]:
        return self._by_pc.get(pc)

    def deallocate(self, entry: SRSMTEntry) -> None:
        """Free an entry and its remaining resources."""
        entry.generation += 1
        self.release(entry)
        entry.regs_held = 0
        self.table.remove(entry.pc)
        self._by_pc.pop(entry.pc, None)

    def try_insert(self, entry: SRSMTEntry) -> bool:
        """Insert a new entry, evicting a dead LRU entry if necessary.

        An entry can be evicted only when its replicas are neither awaited
        (decode == commit) nor executing (issue == 0) — Section 2.3.3.
        """
        s = self.table._set_of(entry.pc)
        if entry.pc in s:
            self.deallocate(s[entry.pc])
        if len(s) >= self.table.ways:
            victim = None
            for e in s.values():  # oldest (LRU) first
                if e.decode == e.commit and e.issue == 0:
                    victim = e
                    break
            if victim is None:
                self.alloc_failures += 1
                return False
            self.deallocate(victim)
        self.table.insert(entry.pc, entry)
        self._by_pc[entry.pc] = entry
        return True

    def all_entries(self) -> List[SRSMTEntry]:
        # Snapshot from the flat mirror: callers deallocate while
        # iterating, and the store-coherence check runs per committed
        # store — walking the 64 per-set dicts each time is pure waste.
        return list(self._by_pc.values())

    def __bool__(self) -> bool:
        return bool(self._by_pc)

    def on_recovery(self) -> List[SRSMTEntry]:
        """Branch-misprediction recovery (Sections 2.3.3 / 2.4.2 / 2.4.4).

        Rolls every entry's decode cursor back to its commit cursor and
        applies the DAEC policy; returns entries whose DAEC expired (the
        caller deallocates them).
        """
        dead: List[SRSMTEntry] = []
        for e in self.all_entries():
            if e.decode == e.commit:
                e.daec += 1
                if e.daec >= 2:
                    dead.append(e)
            else:
                e.daec = 0
            e.rollback_decode()
        return dead


@dataclass(order=True)
class _Completion:
    cycle: int
    tick: int
    entry: SRSMTEntry = field(compare=False)
    idx: int = field(compare=False)
    generation: int = field(compare=False)


class ReplicaScheduler:
    """Executes replica µops with leftover issue slots and cache ports."""

    def __init__(self, load_latency: Callable[[int, int], int],
                 mem_read: Callable[[int], int]):
        #: scannable replicas, a heap of (idx, serial, entry, generation).
        #: The serial is a global enqueue counter, so (idx, serial) is a
        #: unique key reproducing the paper's replica-index issue order
        #: (same-index replicas in batch-arrival order) no matter how
        #: items move between this heap and the wait lists — and when the
        #: per-cycle issue budget runs out the scan just stops popping,
        #: leaving the untouched tail exactly where it is.
        self.pending: List[Tuple[int, int, SRSMTEntry, int]] = []
        self.completions: List[_Completion] = []
        self._tick = 0
        self._serial = 0
        self.load_latency = load_latency
        self.mem_read = mem_read
        self.executed = 0
        #: operand-blocked replicas parked off the scan path, keyed by the
        #: producer replica they wait on: (id(producer_entry), replica_idx)
        #: → items.  A drained completion for that replica re-activates
        #: them.  Replica readiness is monotonic (``done`` flags are only
        #: ever set, never cleared; deallocation kills by generation), so
        #: parking is sound: a parked item can never become issuable before
        #: its wake event.  Items whose producer dies un-woken linger here
        #: harmlessly — they are dead-generation and would be dropped on
        #: any scan.
        self._waiters: dict = {}

    def enqueue_batch(self, entry: SRSMTEntry) -> None:
        serial = self._serial
        gen = entry.generation
        push = heapq.heappush
        for i in range(entry.nregs):
            push(self.pending, (i, serial + i, entry, gen))
        self._serial = serial + entry.nregs

    _DEAD = object()

    def _operand_value(self, entry: SRSMTEntry, opnd: Operand, idx: int):
        """The operand's value, None if still pending, _DEAD if unobtainable."""
        if opnd.kind == SCALAR:
            return opnd.value
        if opnd.kind == SELF:
            if idx == 0:
                return opnd.value
            return entry.values[idx - 1] if entry.done[idx - 1] else None
        prod = opnd.producer
        if prod is None or prod.generation != opnd.producer_generation:
            return self._DEAD
        j = opnd.base + idx
        if j >= prod.nregs:
            return self._DEAD
        if not prod.done[j]:
            return None
        return prod.values[j]

    def drain_completions(self, now: int) -> None:
        while self.completions and self.completions[0].cycle <= now:
            c = heapq.heappop(self.completions)
            e = c.entry
            woken = self._waiters.pop((id(e), c.idx), None)
            if woken is not None:
                # Re-activate parked consumers; the (idx, serial) heap key
                # restores their exact scan position.
                for item in woken:
                    heapq.heappush(self.pending, item)
            if e.generation != c.generation:
                continue  # entry was deallocated while executing
            e.done[c.idx] = True
            e.issue -= 1

    def issue(self, now: int, slots: int, ports, stats,
              max_mem_writes: Optional[int] = None) -> int:
        """Issue up to ``slots`` ready replicas; returns the number issued."""
        pending = self.pending
        if slots <= 0 or not pending:
            return 0
        issued = 0
        writes = 0
        # Resource-blocked items (cache ports are a per-cycle resource)
        # go back on the heap after the scan — appending them during the
        # scan could re-pop them in the same cycle.
        keep: List[Tuple[int, int, SRSMTEntry, int]] = []
        waiters = self._waiters
        pop = heapq.heappop
        # Issue in replica-index order so sibling entries' same-iteration
        # loads (which usually share a cache line) group into one wide
        # access, as the scalar loads they shadow would.  The heap pops
        # in (idx, serial) order; when the budget runs out we simply stop.
        while pending:
            if issued >= slots or (max_mem_writes is not None
                                   and writes >= max_mem_writes):
                break
            item = pop(pending)
            idx, _serial, entry, gen = item
            if entry.generation != gen:
                continue  # dead batch: drop silently
            value: Optional[int] = None
            lat = 0
            if entry.is_load:
                if entry.addr_operand is not None:
                    opnd = entry.addr_operand
                    base = self._operand_value(entry, opnd, idx)
                    if base is self._DEAD:
                        continue
                    if base is None:
                        key = ((id(entry), idx - 1) if opnd.kind == SELF
                               else (id(opnd.producer), opnd.base + idx))
                        waiters.setdefault(key, []).append(item)
                        continue
                    addr = (base + entry.instr.imm) & ((1 << 64) - 1)
                else:
                    addr = entry.replica_addr(idx)
                line = ports.hierarchy.line_of(addr)
                if not ports.can_load(line):
                    keep.append(item)
                    continue
                ports.do_load(line, replica=True)
                entry.addrs[idx] = addr
                value = self.mem_read(addr)
                lat = self.load_latency(addr, now)
            else:
                # Inlined _operand_value: collect values until the first
                # not-yet-done producer replica, and park on it.
                vals = []
                dead = False
                wait_key = None
                for opnd in entry.operands:
                    kind = opnd.kind
                    if kind == SCALAR:
                        vals.append(opnd.value)
                        continue
                    if kind == SELF:
                        if idx == 0:
                            vals.append(opnd.value)
                            continue
                        if entry.done[idx - 1]:
                            vals.append(entry.values[idx - 1])
                            continue
                        wait_key = (id(entry), idx - 1)
                        break
                    prod = opnd.producer
                    if prod is None \
                            or prod.generation != opnd.producer_generation:
                        dead = True
                        break
                    j = opnd.base + idx
                    if j >= prod.nregs:
                        dead = True
                        break
                    if not prod.done[j]:
                        wait_key = (id(prod), j)
                        break
                    vals.append(prod.values[j])
                if dead:
                    continue  # producers gone: replica can never execute
                if wait_key is not None:
                    waiters.setdefault(wait_key, []).append(item)
                    continue
                a = vals[0] if vals else 0
                b = vals[1] if len(vals) > 1 else 0
                value = ALU_EVAL[entry.instr.op](a, b, entry.instr.imm)
                lat = FU_LATENCY[entry.instr.fu_class]
            entry.values[idx] = value
            entry.issued[idx] = True
            entry.issue += 1
            issued += 1
            writes += 1
            self.executed += 1
            stats.replicas_executed += 1
            self._tick += 1
            heapq.heappush(self.completions,
                           _Completion(now + lat, self._tick, entry, idx,
                                       entry.generation))
        for item in keep:
            heapq.heappush(pending, item)
        return issued
