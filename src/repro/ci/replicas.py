"""Replica management — SRSMT allocation, execution, validation (steps 3–4).

The fourth component of the mechanism pipeline: once the selector marks
a strided load (or the dependence-propagation rule reaches one of its
consumers), the replica manager allocates an SRSMT entry, pre-executes
the replica batch with leftover issue slots, and validates later dynamic
instances against the precomputed results so they can skip execution.

Two operating modes, chosen by the policy registry:

* ``greedy=False`` — the paper's scheme: replicas are lowest-priority
  (allocation headroom, never blocks dispatch), one rename register per
  replica, chronically failing PCs back off;
* ``greedy=True``  — the full dynamic-vectorization comparator [12]:
  vector instructions live in the pipeline (dispatch *blocks* until the
  whole register set allocates), carry double register cost, tolerate 4x
  the store conflicts, and never back off — which is exactly why the
  scheme collapses at small register files (Figure 14).

Validation is value-checked on top of the paper's producer-seq and
stride checks (DESIGN.md §5): a replica is reused only if its
precomputed value matches the oracle result, so the simplified model
never commits wrong values — mismatches count as validation failures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..isa.predecode import F_LOAD, F_WRITES_REG
from .srsmt import SCALAR, SELF, VEC, Operand, ReplicaScheduler, SRSMT, SRSMTEntry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..uarch.core import PortState
    from ..uarch.rob import DynInst
    from .pipeline import MechanismPipeline


class ReplicaManager:
    """SRSMT + replica scheduler + validation."""

    kind = "ci"

    def __init__(self, greedy: bool = False):
        self.greedy = greedy

    def attach(self, pipeline: "MechanismPipeline") -> None:
        self.pipeline = pipeline
        core = pipeline.core
        cfg = pipeline.cfg
        self.core = core
        self.cfg = cfg
        self.obs = pipeline.obs
        self.stats = pipeline.stats
        self.stride = pipeline.selector.stride
        self.srsmt = SRSMT(cfg.srsmt_sets, cfg.srsmt_ways,
                           release=self._release_entry_regs)
        self.scheduler = ReplicaScheduler(
            load_latency=core.hierarchy.load_latency,
            mem_read=lambda addr: core.mem.get(addr, 0))
        self._vect_wait = False
        #: scalar registers charged per replica (2 for the vect comparator)
        self._vect_factor = 2 if self.greedy else 1
        #: consecutive validation failures per PC; instructions that can
        #: never validate (loop-variant scalar operands) stop re-vectorizing
        self._fail_streak: Dict[int, int] = {}
        # Per-PC dispatch classification from the decode-once image:
        # 1 = load with a destination, 2 = ALU-evaluable with a
        # destination, 0 = nothing for the replica manager to do.  The
        # dispatch hook runs for every dynamic instruction (wrong paths
        # included), so the filter must be one indexed read.
        image = core.image
        disp = bytearray(image.n)
        for pc in range(image.n):
            f = image.flags[pc]
            if f & F_WRITES_REG:
                if f & F_LOAD:
                    disp[pc] = 1
                elif image.alu_fn[pc] is not None:
                    disp[pc] = 2
        self._disp_kind = bytes(disp)

    # ------------------------------------------------------------------
    # Resource accounting for replica destinations.
    # ------------------------------------------------------------------
    def _alloc_replicas(self, want: int) -> int:
        faults = self.pipeline.faults
        if faults is not None and faults.deny_alloc():
            # Injected allocation pressure: refuse this batch outright.
            # Callers take their normal "no-regs" failure path.
            return 0
        spec_mem = self.pipeline.spec_mem
        if spec_mem is not None:
            got = spec_mem.alloc_up_to(want)
            if got < want:
                self.stats.spec_mem_alloc_failures += 1
            return got
        fl = self.core.freelist
        if self.greedy:
            # The full dynamic-vectorization comparator [12] is greedy: its
            # vector instructions live in the pipeline, carry full vector
            # state (we charge two scalar registers per replica), and
            # *block dispatch* until the whole set can be allocated — which
            # is exactly why the scheme collapses at small register files
            # (Figure 14).
            if not fl.alloc(want * self._vect_factor):
                self._vect_wait = True
                return 0
            return want
        # Replicas have the lowest priority (Section 2.4.1): leave headroom
        # in the free list so the conventional rename path keeps flowing.
        budget = fl.free - self.cfg.ci_alloc_headroom
        if budget <= 0:
            return 0
        return fl.alloc_up_to(min(want, budget))

    def _conflict_blacklist(self) -> int:
        """Store-conflict tolerance before a load stops re-vectorizing.

        The greedy comparator [12] keeps re-vectorizing conflicting loads
        far longer (4x), one source of its extra useless speculation."""
        base = self.cfg.ci_conflict_blacklist
        return base * 4 if self.greedy else base

    def _release_regs(self, n: int) -> None:
        if n <= 0:
            return
        spec_mem = self.pipeline.spec_mem
        if spec_mem is not None:
            spec_mem.release(n)
        else:
            self.core.freelist.release(n)

    def _release_entry_regs(self, entry: SRSMTEntry) -> None:
        self._release_regs(entry.regs_held)

    def _chronically_failing(self, pc: int) -> bool:
        """Gate for PCs whose validations (almost) never succeed.

        The streak decays while the gate holds, so a PC is retried after a
        cooling-off period instead of being disabled forever (a transient
        failure burst must not permanently lose a valid chain)."""
        streak = self._fail_streak.get(pc, 0)
        if streak >= 8:
            self._fail_streak[pc] = streak - 1
            return True
        return False

    def _vect_pc_of(self, inst: "DynInst", r: int):
        """The V/S+Seq rename state of ``r`` as *this* instruction read it.

        The core renames the destination before the hook runs, so for a
        source that is also the destination (accumulators) the pre-rename
        state lives in the instruction's undo record."""
        if inst.instr.rd == r and inst.rename_undo is not None:
            return inst.rename_undo[2]
        return self.core.rename.vect_pc[r]

    # ------------------------------------------------------------------
    # Dispatch: stride propagation, validation, replication.
    # ------------------------------------------------------------------
    def on_dispatch(self, inst: "DynInst") -> None:
        k = self._disp_kind[inst.pc]
        if k:
            if k == 1:
                self._dispatch_load(inst)
            else:
                self._dispatch_alu(inst)

    def _dispatch_load(self, inst: "DynInst") -> None:
        instr = inst.instr
        rename = self.core.rename
        se = self.stride.confident(inst.pc)
        if se is not None:
            rename.strided_pcs[instr.rd] = (inst.pc,)
            rename.assign_count += 1
            rename.assign_sum += 1
        entry = self.srsmt.lookup(inst.pc)
        if entry is not None:
            if self._validate(inst, entry):
                rename.vect_pc[instr.rd] = inst.pc
                return
            entry = None  # validation failed; entry was deallocated
        blacklist = self._conflict_blacklist()
        wants_vector = (
            se is not None
            and (self.greedy or se.selected)
            and not (blacklist and se.conflicts >= blacklist))
        if wants_vector:
            created = self._create_load_entry(inst, se.stride,
                                              se.event if se else None)
            if created:
                rename.vect_pc[instr.rd] = inst.pc
            return
        # Dependent ("gather") load: the address register is the outcome of
        # a vectorized instruction (step 3's dependence-propagation rule).
        vpc = self._vect_pc_of(inst, instr.rs1)
        if vpc is not None and vpc != inst.pc \
                and (self.greedy
                     or not self._chronically_failing(inst.pc)):
            # The conflict blacklist covers gather loads too: their stride
            # entry exists (every committed load trains the predictor) even
            # though its confidence never builds.
            se_any = self.stride.lookup(inst.pc)
            if (blacklist and se_any is not None
                    and se_any.conflicts >= blacklist):
                return
            prod = self.srsmt.lookup(vpc)
            if prod is not None and self._create_dep_load_entry(inst, prod):
                rename.vect_pc[instr.rd] = inst.pc

    def _create_dep_load_entry(self, inst: "DynInst", prod) -> bool:
        nregs = self._alloc_replicas(self.cfg.replicas)
        if nregs == 0:
            if self.obs is not None:
                self.obs.on_srsmt_alloc_fail(inst.pc, prod.event, "no-regs",
                                             self.core.cycle)
            return False
        spec_mem = self.pipeline.spec_mem
        entry = SRSMTEntry(inst.pc, inst.instr, nregs,
                           storage="specmem" if spec_mem else "rf")
        entry.regs_held = nregs * self._vect_factor
        entry.addr_operand = Operand(VEC, producer=prod,
                                     producer_generation=prod.generation,
                                     base=prod.decode)
        entry.event = prod.event
        if not self.srsmt.try_insert(entry):
            self._release_regs(nregs * self._vect_factor)
            self.stats.srsmt_alloc_failures += 1
            if self.obs is not None:
                self.obs.on_srsmt_alloc_fail(inst.pc, prod.event,
                                             "no-srsmt-way", self.core.cycle)
            return False
        self.scheduler.enqueue_batch(entry)
        self.stats.replicas_created += nregs
        self.stats.replica_batches += 1
        if self.obs is not None:
            self.obs.on_replicas_created(inst.pc, nregs, prod.event,
                                         self.core.cycle)
        return True

    def _create_load_entry(self, inst: "DynInst", stride: int, event) -> bool:
        nregs = self._alloc_replicas(self.cfg.replicas)
        if nregs == 0:
            if self.obs is not None:
                self.obs.on_srsmt_alloc_fail(inst.pc, event, "no-regs",
                                             self.core.cycle)
            return False
        spec_mem = self.pipeline.spec_mem
        entry = SRSMTEntry(inst.pc, inst.instr, nregs,
                           storage="specmem" if spec_mem else "rf")
        entry.regs_held = nregs * self._vect_factor
        entry.set_load_pattern(inst.eff_addr, stride)
        entry.event = event
        if not self.srsmt.try_insert(entry):
            self._release_regs(nregs * self._vect_factor)
            self.stats.srsmt_alloc_failures += 1
            if self.obs is not None:
                self.obs.on_srsmt_alloc_fail(inst.pc, event, "no-srsmt-way",
                                             self.core.cycle)
            return False
        self.scheduler.enqueue_batch(entry)
        self.stats.replicas_created += nregs
        self.stats.replica_batches += 1
        if self.obs is not None:
            self.obs.on_replicas_created(inst.pc, nregs, event,
                                         self.core.cycle)
        return True

    # -- ALU dependents: vectorize when a source is vectorized ------------
    def _dispatch_alu(self, inst: "DynInst") -> None:
        instr = inst.instr
        rename = self.core.rename
        entry = self.srsmt.lookup(inst.pc)
        if entry is not None:
            if self._validate(inst, entry):
                rename.vect_pc[instr.rd] = inst.pc
                return
            entry = None
        # Fast early-out (inlined _vect_pc_of): most ALU instructions have
        # no vectorized source and leave here after two table reads.
        vect_pc = rename.vect_pc
        undo = inst.rename_undo
        rd = instr.rd
        for r in instr.srcs:
            v = undo[2] if (undo is not None and r == rd) else vect_pc[r]
            if v is not None:
                break
        else:
            return
        if self._chronically_failing(inst.pc):
            return  # this PC (almost) never validates: stop churning
        operands: List[Operand] = []
        sregs = self.core.sregs
        for r in instr.srcs:
            vpc = self._vect_pc_of(inst, r)
            if vpc == inst.pc:
                # Self-recurrence: replica 0 seeds from this instance's
                # own output.
                operands.append(Operand(SELF, value=inst.result))
            elif vpc is not None:
                prod = self.srsmt.lookup(vpc)
                if prod is None:
                    operands.append(Operand(
                        SCALAR,
                        value=inst.sreg_old if r == instr.rd else sregs[r]))
                else:
                    operands.append(Operand(VEC, producer=prod,
                                            producer_generation=prod.generation,
                                            base=prod.decode))
            else:
                operands.append(Operand(
                    SCALAR,
                    value=inst.sreg_old if r == instr.rd else sregs[r]))
        # Attribute to the first producer's event (reuse chains propagate
        # their originating misprediction for Figure 5).
        event = next((o.producer.event for o in operands
                      if o.kind == VEC and o.producer is not None
                      and o.producer.event), None)
        nregs = self._alloc_replicas(self.cfg.replicas)
        if nregs == 0:
            if self.obs is not None:
                self.obs.on_srsmt_alloc_fail(inst.pc, event, "no-regs",
                                             self.core.cycle)
            return
        spec_mem = self.pipeline.spec_mem
        entry = SRSMTEntry(inst.pc, instr, nregs,
                           storage="specmem" if spec_mem else "rf")
        entry.regs_held = nregs * self._vect_factor
        entry.operands = operands
        entry.event = event
        if not self.srsmt.try_insert(entry):
            self._release_regs(nregs * self._vect_factor)
            self.stats.srsmt_alloc_failures += 1
            if self.obs is not None:
                self.obs.on_srsmt_alloc_fail(inst.pc, event, "no-srsmt-way",
                                             self.core.cycle)
            return
        self.scheduler.enqueue_batch(entry)
        self.stats.replicas_created += nregs
        self.stats.replica_batches += 1
        if self.obs is not None:
            self.obs.on_replicas_created(inst.pc, nregs, event,
                                         self.core.cycle)
        rename.vect_pc[instr.rd] = inst.pc

    # -- validation (step 4) ----------------------------------------------
    def _validate(self, inst: "DynInst", entry: SRSMTEntry) -> bool:
        """Try to reuse replica ``entry.decode`` for this dynamic instance.

        On success the instruction skips execution.  On failure the entry
        is deallocated (the paper recreates replicas with new operands; the
        re-creation happens naturally on a later fetch)."""
        instr = inst.instr
        idx = entry.decode
        obs = self.obs
        if idx >= entry.nregs:
            # Batch exhausted: re-batch immediately from this instance (it
            # executes normally and seeds the next replica set).  Waiting
            # for full commit would desynchronise chained entries.
            event = entry.event
            self.srsmt.deallocate(entry)
            if obs is not None:
                obs.on_validation(inst.pc, event, False, "batch-exhausted",
                                  self.core.cycle)
            if instr.is_load:
                se = self.stride.confident(inst.pc)
                blacklist = self.cfg.ci_conflict_blacklist
                if se is not None \
                        and (self.greedy or se.selected) \
                        and not (blacklist and se.conflicts >= blacklist):
                    self._create_load_entry(inst, se.stride, event)
            # ALU entries are recreated by the dependent-vectorization
            # path on this same dispatch (caller re-checks sources).
            return False
        # The paper's check compares the producer identifiers (PCs)
        # currently in the rename table against seq1/seq2 — a producer that
        # merely started a new replica batch still matches; the value check
        # below arbitrates actual staleness.
        ok = entry.done[idx]
        reason = "ok" if ok else "replica-not-ready"
        if ok and instr.is_load:
            if entry.addr_operand is not None:
                opnd = entry.addr_operand
                if not (entry.addrs[idx] == inst.eff_addr
                        and self._vect_pc_of(inst, instr.rs1)
                        == opnd.seq_id()):
                    ok, reason = False, "producer-mismatch"
            elif inst.eff_addr != entry.replica_addr(idx):
                ok, reason = False, "stride-break"
        elif ok:
            for r, opnd in zip(instr.srcs, entry.operands):
                if opnd.kind == SELF:
                    continue
                if opnd.kind == VEC:
                    if self._vect_pc_of(inst, r) != opnd.seq_id():
                        ok, reason = False, "producer-mismatch"
                        break
                elif self._vect_pc_of(inst, r) is not None:
                    # A previously scalar operand became vectorized: the
                    # stored scalar value is stale by construction.
                    ok, reason = False, "stale-scalar"
                    break
        if ok and entry.values[idx] != inst.result:
            ok, reason = False, "value-mismatch"  # model-level safety net
        if ok:
            faults = self.pipeline.faults
            if faults is not None \
                    and faults.force_validation_failure(inst.pc):
                # Injected after the natural checks, so it only downgrades
                # a validation that would have succeeded — and then rides
                # the full failure path (stats, streaks, deallocation).
                ok, reason = False, "fault-injected"
        if obs is not None:
            obs.on_validation(inst.pc, entry.event, ok, reason,
                              self.core.cycle)
        if not ok:
            self.stats.replica_validation_failures += 1
            self._fail_streak[inst.pc] = min(
                32, self._fail_streak.get(inst.pc, 0) + 1)
            self.srsmt.deallocate(entry)
            return False
        self._fail_streak[inst.pc] = 0
        entry.decode += 1
        inst.validated = True
        inst.validated_entry = (entry, entry.generation)
        self.stats.replica_validations += 1
        self.pipeline.credit_reuse(entry.event)
        return True

    # ------------------------------------------------------------------
    # Recovery / commit.
    # ------------------------------------------------------------------
    def on_recovery(self) -> None:
        """A branch recovery happened: squash-younger the SRSMT."""
        dead = self.srsmt.on_recovery()
        if self.cfg.ci_daec:
            for entry in dead:
                self.srsmt.deallocate(entry)
        if self.cfg.ci_recovery_repair:
            self._repair_decode_cursors()

    def _repair_decode_cursors(self) -> None:
        """Advance decode past validations that survived the squash.

        The paper's plain decode<-commit rollback forgets in-flight
        validated instances that are older than the mispredicted branch;
        their replicas would be re-validated (and value-fail) on the next
        fetch, deallocating the whole batch.  A recovery-time repair scan
        of the window fixes the cursors (DESIGN.md §5)."""
        survivors: Dict[int, int] = {}
        for inst in self.core.window:
            if inst.validated and inst.validated_entry is not None \
                    and not inst.committed:
                entry, generation = inst.validated_entry
                if entry.generation == generation:
                    survivors[id(entry)] = survivors.get(id(entry), 0) + 1
        if not survivors:
            return
        for entry in self.srsmt.all_entries():
            n = survivors.get(id(entry))
            if n:
                entry.decode = min(entry.nregs, entry.commit + n)

    def on_commit(self, inst: "DynInst") -> None:
        """A non-branch instruction retired: train + advance cursors."""
        instr = inst.instr
        if instr.is_load:
            self.stride.update(inst.pc, inst.eff_addr)
        if inst.validated and inst.validated_entry is not None:
            entry, generation = inst.validated_entry
            if entry.generation == generation and entry.commit < entry.nregs:
                # The replica's register keeps holding the value until the
                # whole batch retires (stretched lifetimes, Section 2.4.2);
                # deallocation/re-batch releases the set.
                entry.commit += 1

    def on_store_commit(self, inst: "DynInst") -> bool:
        if not self.srsmt:
            return False  # nothing replicated: nothing to check
        conflict = False
        addr = inst.eff_addr
        exact = self.cfg.ci_exact_range_check
        for entry in self.srsmt.all_entries():
            if not entry.contains_addr(addr):
                continue
            if exact and entry.stride and (addr - entry.range_lo) % abs(entry.stride):
                continue  # store falls between the replicas' addresses
            # De-select the load so it does not immediately re-vectorize
            # into the same store stream (it must be re-selected by a
            # future misprediction event first).
            se = self.stride.lookup(entry.pc)
            if se is not None:
                se.selected = False
                se.conflicts += 1
            if self.obs is not None:
                self.obs.on_coherence_conflict(entry.pc, addr,
                                               self.core.cycle)
            self.srsmt.deallocate(entry)
            conflict = True
        return conflict

    # ------------------------------------------------------------------
    # Per-cycle replica execution.
    # ------------------------------------------------------------------
    def dispatch_gate(self) -> bool:
        if not self._vect_wait:
            return True
        # The stalled in-pipeline vector instruction blocks dispatch until
        # enough registers free up; under real shortage that means waiting
        # for the machine to drain — the thrashing behaviour that makes the
        # full vectorization scheme collapse on small register files.
        fl = self.core.freelist
        threshold = min(fl.capacity - 4,
                        self.cfg.replicas * self._vect_factor + 16)
        if fl.free >= threshold:
            self._vect_wait = False
            return True
        if not self.core.window:
            # Fully drained: reclaim dead vector register sets and resume.
            for e in self.srsmt.all_entries():
                if e.decode == e.commit and e.issue == 0:
                    self.srsmt.deallocate(e)
            self._vect_wait = False
            return True
        return False

    def on_cycle(self, leftover_issue_slots: int, ports: "PortState") -> None:
        now = self.core.cycle
        self.scheduler.drain_completions(now)
        spec_mem = self.pipeline.spec_mem
        max_writes = (spec_mem.write_ports if spec_mem else None)
        self.scheduler.issue(now, leftover_issue_slots, ports, self.stats,
                             max_mem_writes=max_writes)

    def next_event_cycle(self):
        if self._vect_wait:
            # The dispatch gate's drain/reclaim logic must re-evaluate the
            # free list every cycle while a vector instruction is stalled.
            return 0
        sched = self.scheduler
        if sched.pending:
            return 0  # replicas may issue with leftover slots any cycle
        if sched.completions:
            # Operand-blocked replicas are parked on producer completions;
            # the next drain is the next possible wake-up.
            return sched.completions[0].cycle
        return None
