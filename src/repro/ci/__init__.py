"""The paper's contribution: control-flow independence reuse via dynamic
vectorization (MBS, NRBQ/CRP, stride predictor, SRSMT, replicas, the
speculative data memory, and the ci / ci-iw / vect policies)."""

from .engine import CIEngine
from .events import CIEvent
from .mbs import MBS, MBSEntry
from .reconverge import CRP, NRBQ, NRBQEntry, estimate_reconvergent_point
from .specmem import SpecDataMemory
from .squash_reuse import ReuseRecord, SquashReuseBuffer
from .srsmt import Operand, ReplicaScheduler, SRSMT, SRSMTEntry
from .stride import StrideEntry, StridePredictor

__all__ = [
    "CIEngine",
    "CIEvent",
    "CRP",
    "MBS",
    "MBSEntry",
    "NRBQ",
    "NRBQEntry",
    "Operand",
    "ReplicaScheduler",
    "ReuseRecord",
    "SRSMT",
    "SRSMTEntry",
    "SpecDataMemory",
    "SquashReuseBuffer",
    "StrideEntry",
    "StridePredictor",
    "estimate_reconvergent_point",
]
