"""The paper's contribution: control-flow independence reuse via dynamic
vectorization, as a composable pipeline of typed components.

Structures: MBS, NRBQ/CRP, stride predictor, SRSMT, replica scheduler,
the speculative data memory, and the squash-reuse buffer.  Components:
hard-branch filters, re-convergence trackers, slice selectors, replica
managers.  Policies (``ci`` / ``ci-iw`` / ``vect`` / ablations) are
registry entries assembling those components — see
:mod:`repro.ci.registry`.
"""

from ..observe.events import ReuseEvent
from .filters import (
    AlwaysHardFilter,
    HardBranchFilter,
    MBSFilter,
    NeverHardFilter,
    OracleBiasFilter,
)
from .mbs import MBS, MBSEntry
from .pipeline import CIEngine, MechanismPipeline
from .reconverge import CRP, NRBQ, NRBQEntry, estimate_reconvergent_point
from .registry import (
    PolicySpec,
    all_policies,
    build_components,
    get_policy,
    policy_names,
    register_policy,
)
from .replicas import ReplicaManager
from .selection import GreedySliceSelector, SliceSelector
from .specmem import SpecDataMemory
from .squash_reuse import ReuseRecord, SquashReuseBuffer, SquashReuseUnit
from .srsmt import Operand, ReplicaScheduler, SRSMT, SRSMTEntry
from .stride import StrideEntry, StridePredictor
from .tracking import (
    IdealReconvergenceTracker,
    ReconvergenceTracker,
    compute_ipdoms,
)

#: compatibility alias for the pre-unification name
CIEvent = ReuseEvent

__all__ = [
    "AlwaysHardFilter",
    "CIEngine",
    "CIEvent",
    "CRP",
    "GreedySliceSelector",
    "HardBranchFilter",
    "IdealReconvergenceTracker",
    "MBS",
    "MBSEntry",
    "MBSFilter",
    "MechanismPipeline",
    "NRBQ",
    "NRBQEntry",
    "NeverHardFilter",
    "Operand",
    "OracleBiasFilter",
    "PolicySpec",
    "ReconvergenceTracker",
    "ReplicaManager",
    "ReplicaScheduler",
    "ReuseEvent",
    "ReuseRecord",
    "SRSMT",
    "SRSMTEntry",
    "SliceSelector",
    "SpecDataMemory",
    "SquashReuseBuffer",
    "SquashReuseUnit",
    "StrideEntry",
    "StridePredictor",
    "all_policies",
    "build_components",
    "compute_ipdoms",
    "estimate_reconvergent_point",
    "get_policy",
    "policy_names",
    "register_policy",
]
