"""Squash reuse ("ci-iw"): control independence limited to the window.

The paper's hypothetical comparison scheme (Figure 10): only control-
independent results that are already *inside the instruction window* when
the misprediction is detected can be reused.  We implement it as a reuse
buffer harvested during recovery: squashed wrong-path instructions past
the re-convergent point whose sources were untouched keep their results,
and the matching correct-path re-fetches skip execution after a value
check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..uarch.rob import DynInst
    from .pipeline import MechanismPipeline


@dataclass
class ReuseRecord:
    pc: int
    result: int
    event: object = None


class SquashReuseBuffer:
    """One-misprediction-scoped reuse records (pc → precomputed result)."""

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self.records: Dict[int, ReuseRecord] = {}

    def clear(self) -> None:
        self.records.clear()

    def harvest(self, reconv_pc: int, initial_mask: int, squashed,
                event=None) -> int:
        """Collect reusable results from the squashed wrong path.

        ``squashed`` is the squashed instructions oldest → youngest.
        Returns the number of records harvested.
        """
        self.clear()
        mask = initial_mask
        reached = False
        harvested = 0
        for inst in squashed:
            instr = inst.instr
            if not reached:
                if inst.pc == reconv_pc:
                    reached = True
                else:
                    if instr.rd is not None:
                        mask |= 1 << instr.rd
                    continue
            if reached:
                # "Entered the instruction window" suffices (Figure 10's
                # ci-iw): in-flight wrong-path work past the re-convergent
                # point finishes executing while the front end refills.
                if (instr.rd is not None and not instr.is_store
                        and inst.result is not None
                        and all(not (mask >> r) & 1 for r in instr.srcs)):
                    if len(self.records) < self.capacity and inst.pc not in self.records:
                        self.records[inst.pc] = ReuseRecord(inst.pc, inst.result,
                                                            event)
                        harvested += 1
                elif instr.rd is not None:
                    # Result will differ on the correct path: poison it so
                    # dependents downstream are not harvested either.
                    mask |= 1 << instr.rd
        return harvested

    def match(self, pc: int, result: int) -> Optional[ReuseRecord]:
        """Consume the record for ``pc`` if the precomputed result is
        identical to the correct-path value (the reuse test)."""
        rec = self.records.pop(pc, None)
        if rec is None:
            return None
        if rec.result != result:
            return None
        return rec


class SquashReuseUnit:
    """Pipeline component wrapping the reuse buffer (the ``ci-iw`` policy).

    Replaces the selector + replica manager: on a hard misprediction the
    tracker hands it the squashed wrong path to harvest, and at dispatch
    matching correct-path re-fetches are validated against the harvested
    results instead of executing.
    """

    kind = "squash-reuse"

    def attach(self, pipeline: "MechanismPipeline") -> None:
        self.pipeline = pipeline
        self.obs = pipeline.obs
        self.stats = pipeline.stats
        self.buffer = SquashReuseBuffer(capacity=pipeline.cfg.window_size)

    def harvest(self, reconv_pc: int, mask0: int,
                squashed: List["DynInst"], event,
                pivot: "DynInst") -> None:
        """Harvest reusable results past the re-convergent point."""
        n = self.buffer.harvest(reconv_pc, mask0, squashed, event)
        if n and not event.counted_selected:
            event.selected = True
            event.counted_selected = True
            self.stats.ci_selected += 1
            if self.obs is not None:
                self.obs.on_ci_selected(event, pivot.pc,
                                        self.pipeline.core.cycle)

    def on_dispatch(self, inst: "DynInst") -> None:
        """Validate a correct-path re-fetch against a harvested result."""
        instr = inst.instr
        if instr.rd is None or instr.is_store:
            return
        rec = self.buffer.match(inst.pc, inst.result)
        if rec is None:
            return
        inst.validated = True
        self.stats.replica_validations += 1
        self.pipeline.credit_reuse(rec.event)
        if self.obs is not None:
            self.obs.on_validation(inst.pc, rec.event, True, "squash-reuse",
                                   self.pipeline.core.cycle)
