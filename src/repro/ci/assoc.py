"""Generic set-associative LRU table (MBS / stride predictor / SRSMT)."""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

V = TypeVar("V")


class SetAssocTable(Generic[V]):
    """PC-indexed, N-way set-associative table with true LRU replacement.

    Each set is a dict ordered oldest → youngest (Python dicts preserve
    insertion order; re-inserting refreshes recency).
    """

    def __init__(self, sets: int, ways: int):
        if sets < 1 or ways < 1:
            raise ValueError("sets and ways must be positive")
        self.num_sets = sets
        self.ways = ways
        self._sets: List[Dict[int, V]] = [dict() for _ in range(sets)]

    def _set_of(self, key: int) -> Dict[int, V]:
        return self._sets[key % self.num_sets]

    def lookup(self, key: int, refresh: bool = True) -> Optional[V]:
        s = self._set_of(key)
        v = s.get(key)
        if v is not None and refresh:
            del s[key]
            s[key] = v
        return v

    def insert(self, key: int, value: V) -> Optional[Tuple[int, V]]:
        """Insert/replace; returns the evicted (key, value) if any."""
        s = self._set_of(key)
        if key in s:
            del s[key]
            s[key] = value
            return None
        evicted = None
        if len(s) >= self.ways:
            old_key = next(iter(s))
            evicted = (old_key, s.pop(old_key))
        s[key] = value
        return evicted

    def remove(self, key: int) -> Optional[V]:
        return self._set_of(key).pop(key, None)

    def items(self) -> Iterator[Tuple[int, V]]:
        for s in self._sets:
            yield from s.items()

    def values(self) -> Iterator[V]:
        for s in self._sets:
            yield from s.values()

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)
