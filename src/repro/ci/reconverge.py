"""Re-convergent point estimation: NRBQ, CRP, and the paper's heuristics.

Step 1 of the mechanism (Section 2.3.1) plus the mask machinery of step 2
(Section 2.3.2).

Heuristics (identification need not be correct — wrong estimates only cost
performance, never correctness):

* **Backward branch** (loop-closing): the re-convergent point is the next
  sequential instruction after the branch.
* **Forward branch**: inspect the instruction one location *above* the
  branch target.  If it is an unconditional forward branch (the common
  if-then-else shape), the re-convergent point is that branch's target;
  otherwise (if-then shape) it is the conditional branch's own target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..isa import Instruction, Program


def estimate_reconvergent_point(program: Program, branch: Instruction) -> int:
    """Apply the paper's static heuristic to a conditional branch.

    Returns the estimated re-convergent PC.  The estimate may be wrong for
    irregular control flow; callers treat it as a hint.
    """
    if not branch.is_cond_branch:
        raise ValueError(f"not a conditional branch: {branch}")
    if branch.is_backward_branch:
        return branch.pc + 1
    above = program.instruction_above(branch.target)
    if above is not None and above.is_jump and above.target is not None \
            and above.target > above.pc:
        # if-then-else: `j join` sits right above the else-part entry.
        return above.target
    # if-then: both paths re-join at the branch target.
    return branch.target


@dataclass
class NRBQEntry:
    """One in-flight conditional branch tracked by the NRBQ.

    ``mask`` has bit *r* set iff logical register *r* has been written by an
    instruction after this branch and before the next branch in the queue.
    """

    branch_pc: int
    reconv_pc: int
    seq: int          # dynamic sequence number of the branch
    mask: int = 0


class NRBQ:
    """Not Retired Branch Queue (16 entries in the paper's configuration).

    The queue is ordered oldest → youngest.  Each fetched instruction sets
    its destination-register bit in the *youngest* entry's mask; a newly
    fetched branch appends a fresh entry with a cleared mask.
    """

    def __init__(self, capacity: int = 16):
        self.capacity = capacity
        self.entries: List[NRBQEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    def on_branch_fetch(self, branch_pc: int, reconv_pc: int, seq: int) -> Optional[NRBQEntry]:
        """Append an entry for a newly fetched conditional branch.

        Returns the new entry, or ``None`` if the queue is full (the branch
        is then simply not tracked — a performance-only loss).
        """
        if len(self.entries) >= self.capacity:
            return None
        entry = NRBQEntry(branch_pc=branch_pc, reconv_pc=reconv_pc, seq=seq)
        self.entries.append(entry)
        return entry

    def on_instruction_fetch(self, dest_reg: Optional[int]) -> None:
        """Record a register write in the youngest entry's mask."""
        if dest_reg is not None and self.entries:
            self.entries[-1].mask |= 1 << dest_reg

    def on_branch_retire(self, seq: int) -> None:
        """Drop entries for branches at least as old as ``seq``."""
        while self.entries and self.entries[0].seq <= seq:
            self.entries.pop(0)

    def squash_younger(self, seq: int) -> None:
        """Remove entries for squashed (younger-than-``seq``) branches."""
        while self.entries and self.entries[-1].seq > seq:
            self.entries.pop()

    def or_masks_from(self, seq: int) -> int:
        """OR of the masks from the entry with sequence ``seq`` to the tail.

        This initialises the CRP mask on a misprediction: every register
        written after the mispredicted branch (down the wrong path) is
        marked dirty.
        """
        acc = 0
        for e in self.entries:
            if e.seq >= seq:
                acc |= e.mask
        return acc

    def find(self, seq: int) -> Optional[NRBQEntry]:
        for e in self.entries:
            if e.seq == seq:
                return e
        return None


@dataclass
class CRP:
    """Current Re-convergent Point register.

    Holds the estimated re-convergent PC of the most recent qualifying
    misprediction, the R (reached) flag, and the dirty-register mask
    accumulated since the branch was fetched (wrong path via the NRBQ OR,
    correct path via :meth:`on_decode`).
    """

    pc: int = -1
    reached: bool = False
    mask: int = 0
    active: bool = False
    branch_pc: int = -1
    branch_seq: int = -1

    def arm(self, branch_pc: int, branch_seq: int, reconv_pc: int, initial_mask: int) -> None:
        self.pc = reconv_pc
        self.reached = False
        self.mask = initial_mask
        self.active = True
        self.branch_pc = branch_pc
        self.branch_seq = branch_seq

    def disarm(self) -> None:
        self.active = False
        self.reached = False
        self.pc = -1
        self.mask = 0

    def on_decode(self, pc: int, dest_reg: Optional[int]) -> bool:
        """Process one decoded correct-path instruction.

        Returns ``True`` if this instruction is at or past the re-convergent
        point (i.e. a candidate control-independent instruction).
        """
        if not self.active:
            return False
        if not self.reached:
            if pc == self.pc:
                self.reached = True
                return True
            if dest_reg is not None:
                self.mask |= 1 << dest_reg
            return False
        return True

    def sources_clean(self, srcs) -> bool:
        """True iff none of ``srcs`` was written between branch and CRP."""
        for r in srcs:
            if self.mask & (1 << r):
                return False
        return True
