"""CIEngine — the paper's mechanism, attached to the core's hook points.

Policies:

* ``"ci"``    — the proposed scheme: MBS-filtered hard branches arm the
  CRP on misprediction; control-independent instructions past the
  re-convergent point select their backward-slice strided loads for
  speculative vectorization; replicas execute ahead with leftover
  resources, survive branch recoveries, and validated re-fetches skip
  execution (steps 1–4 of Section 2.3).
* ``"ci-iw"`` — squash reuse: control independence only for results
  already inside the window at recovery (Figure 10's ci-iw).
* ``"vect"``  — the full dynamic-vectorization comparator of [12]: every
  confident strided load (and its dependence-graph successors) is
  vectorized, with no control-independence filtering (Figure 14).

Validation is value-checked on top of the paper's producer-seq and stride
checks (DESIGN.md §5): a replica is reused only if its precomputed value
matches the oracle result, so the simplified model never commits wrong
values — mismatches count as validation failures.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..isa import ALU_EVAL, Instruction, Op
from ..uarch.core import Core, Hooks, PortState
from ..uarch.rob import DynInst
from .events import CIEvent
from .mbs import MBS
from .reconverge import CRP, NRBQ, estimate_reconvergent_point
from .specmem import SpecDataMemory
from .squash_reuse import SquashReuseBuffer
from .srsmt import SCALAR, SELF, VEC, Operand, ReplicaScheduler, SRSMT, SRSMTEntry
from .stride import StridePredictor


class CIEngine(Hooks):
    """Control-flow independence via dynamic vectorization."""

    def __init__(self) -> None:
        self.core: Optional[Core] = None
        self.obs = None

    # ------------------------------------------------------------------
    def attach(self, core: Core) -> None:
        self.core = core
        self.obs = getattr(core, "_obs", None)
        cfg = core.cfg
        self.cfg = cfg
        self.policy = cfg.ci_policy
        self.stats = core.stats
        self.mbs = MBS(cfg.mbs_sets, cfg.mbs_ways)
        self.stride = StridePredictor(cfg.stride_sets, cfg.stride_ways)
        self.nrbq = NRBQ(cfg.nrbq_size)
        self.crp = CRP()
        self.srsmt = SRSMT(cfg.srsmt_sets, cfg.srsmt_ways,
                           release=self._release_entry_regs)
        self.scheduler = ReplicaScheduler(
            load_latency=core.hierarchy.load_latency,
            mem_read=lambda addr: core.mem.get(addr, 0))
        self.spec_mem: Optional[SpecDataMemory] = None
        if cfg.spec_mem_size is not None:
            self.spec_mem = SpecDataMemory(
                cfg.spec_mem_size, cfg.spec_mem_latency,
                cfg.spec_mem_read_ports, cfg.spec_mem_write_ports)
        self.reuse_buffer = SquashReuseBuffer(capacity=cfg.window_size)
        self._reconv_cache: Dict[int, int] = {}
        self._event: Optional[CIEvent] = None
        self._crp_decodes_since_reached = 0
        self._crp_decodes_since_armed = 0
        self._vect_wait = False
        #: scalar registers charged per replica (2 for the vect comparator)
        self._vect_factor = 2 if self.policy == "vect" else 1
        #: consecutive validation failures per PC; instructions that can
        #: never validate (loop-variant scalar operands) stop re-vectorizing
        self._fail_streak: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Resource accounting for replica destinations.
    # ------------------------------------------------------------------
    def _alloc_replicas(self, want: int) -> int:
        if self.spec_mem is not None:
            got = self.spec_mem.alloc_up_to(want)
            if got < want:
                self.stats.spec_mem_alloc_failures += 1
            return got
        assert self.core is not None
        fl = self.core.freelist
        if self.policy == "vect":
            # The full dynamic-vectorization comparator [12] is greedy: its
            # vector instructions live in the pipeline, carry full vector
            # state (we charge two scalar registers per replica), and
            # *block dispatch* until the whole set can be allocated — which
            # is exactly why the scheme collapses at small register files
            # (Figure 14).
            if not fl.alloc(want * self._vect_factor):
                self._vect_wait = True
                return 0
            return want
        # Replicas have the lowest priority (Section 2.4.1): leave headroom
        # in the free list so the conventional rename path keeps flowing.
        budget = fl.free - self.cfg.ci_alloc_headroom
        if budget <= 0:
            return 0
        return fl.alloc_up_to(min(want, budget))

    def _conflict_blacklist(self) -> int:
        """Store-conflict tolerance before a load stops re-vectorizing.

        The greedy comparator [12] keeps re-vectorizing conflicting loads
        far longer (4x), one source of its extra useless speculation."""
        base = self.cfg.ci_conflict_blacklist
        return base * 4 if self.policy == "vect" else base

    def _release_regs(self, n: int) -> None:
        if n <= 0:
            return
        if self.spec_mem is not None:
            self.spec_mem.release(n)
        else:
            assert self.core is not None
            self.core.freelist.release(n)

    def _release_entry_regs(self, entry: SRSMTEntry) -> None:
        self._release_regs(entry.regs_held)

    # ------------------------------------------------------------------
    # Static re-convergence estimates (cached per branch PC).
    # ------------------------------------------------------------------
    def _reconv(self, instr: Instruction) -> int:
        pc = instr.pc
        est = self._reconv_cache.get(pc)
        if est is None:
            est = estimate_reconvergent_point(self.core.program, instr)
            self._reconv_cache[pc] = est
        return est

    # ------------------------------------------------------------------
    # Dispatch hook: masks, selection, validation, vectorization.
    # ------------------------------------------------------------------
    def on_dispatch(self, inst: DynInst) -> None:
        instr = inst.instr
        if self.policy in ("ci", "ci-iw"):
            self._track_masks(inst)
        if self.policy == "ci-iw":
            if instr.rd is not None and not instr.is_store:
                rec = self.reuse_buffer.match(inst.pc, inst.result)
                if rec is not None:
                    inst.validated = True
                    self.stats.replica_validations += 1
                    self._credit_reuse(rec.event)
                    if self.obs is not None:
                        self.obs.on_validation(inst.pc, rec.event, True,
                                               "squash-reuse",
                                               self.core.cycle)
            return
        if self.policy in ("ci", "vect"):
            if instr.is_load and instr.rd is not None:
                self._dispatch_load(inst)
            elif instr.rd is not None and instr.op in ALU_EVAL:
                self._dispatch_alu(inst)

    # -- NRBQ / CRP mask machinery (step 2) ------------------------------
    def _track_masks(self, inst: DynInst) -> None:
        instr = inst.instr
        if instr.is_cond_branch:
            self.nrbq.on_branch_fetch(inst.pc, self._reconv(instr), inst.seq)
        else:
            self.nrbq.on_instruction_fetch(instr.rd)
        if not self.crp.active:
            return
        past_reconv = self.crp.on_decode(inst.pc, instr.rd)
        if not self.crp.active:
            return
        if past_reconv:
            self._crp_decodes_since_reached += 1
            if self.policy == "ci":
                self._select_ci_instruction(inst)
            if self._crp_decodes_since_reached > self.cfg.ci_select_window:
                self.crp.disarm()
                if self.obs is not None:
                    self.obs.on_crp_disarm("window-exhausted",
                                           self.core.cycle)
        else:
            self._crp_decodes_since_armed += 1
            if self._crp_decodes_since_armed > 4 * self.cfg.ci_select_window:
                self.crp.disarm()  # estimate was never reached: give up
                if self.obs is not None:
                    self.obs.on_crp_disarm("never-reached", self.core.cycle)

    def _select_ci_instruction(self, inst: DynInst) -> None:
        """Step 2: a post-re-convergence instruction with clean sources is
        control independent; select the strided loads it depends on."""
        instr = inst.instr
        if not instr.srcs and instr.rd is None:
            return
        if not self.crp.sources_clean(instr.srcs):
            return
        ev = self._event
        obs = self.obs
        if ev is not None and not ev.counted_selected:
            ev.selected = True
            ev.counted_selected = True
            self.stats.ci_selected += 1
            if obs is not None:
                obs.on_ci_selected(ev, inst.pc, self.core.cycle)
        # Select every strided load in the backward slice (rename table's
        # stridedPC extension) for vectorization next time it is fetched.
        rename = self.core.rename
        for r in instr.srcs:
            for lpc in rename.strided_pcs[r]:
                ok = self.stride.mark_selected(
                    lpc, ev, conflict_blacklist=self.cfg.ci_conflict_blacklist)
                if obs is not None:
                    obs.on_slice_marked(ev, lpc, ok, self.core.cycle)

    def _chronically_failing(self, pc: int) -> bool:
        """Gate for PCs whose validations (almost) never succeed.

        The streak decays while the gate holds, so a PC is retried after a
        cooling-off period instead of being disabled forever (a transient
        failure burst must not permanently lose a valid chain)."""
        streak = self._fail_streak.get(pc, 0)
        if streak >= 8:
            self._fail_streak[pc] = streak - 1
            return True
        return False

    def _vect_pc_of(self, inst: DynInst, r: int):
        """The V/S+Seq rename state of ``r`` as *this* instruction read it.

        The core renames the destination before the hook runs, so for a
        source that is also the destination (accumulators) the pre-rename
        state lives in the instruction's undo record."""
        if inst.instr.rd == r and inst.rename_undo is not None:
            return inst.rename_undo[2]
        return self.core.rename.vect_pc[r]

    # -- loads: stride propagation, validation, replication --------------
    def _dispatch_load(self, inst: DynInst) -> None:
        instr = inst.instr
        rename = self.core.rename
        se = self.stride.confident(inst.pc)
        if se is not None:
            rename.strided_pcs[instr.rd] = (inst.pc,)
            rename.assign_count += 1
            rename.assign_sum += 1
        entry = self.srsmt.lookup(inst.pc)
        if entry is not None:
            if self._validate(inst, entry):
                rename.vect_pc[instr.rd] = inst.pc
                return
            entry = None  # validation failed; entry was deallocated
        blacklist = self._conflict_blacklist()
        wants_vector = (
            se is not None
            and (self.policy == "vect" or se.selected)
            and not (blacklist and se.conflicts >= blacklist))
        if wants_vector:
            created = self._create_load_entry(inst, se.stride,
                                              se.event if se else None)
            if created:
                rename.vect_pc[instr.rd] = inst.pc
            return
        # Dependent ("gather") load: the address register is the outcome of
        # a vectorized instruction (step 3's dependence-propagation rule).
        vpc = self._vect_pc_of(inst, instr.rs1)
        if vpc is not None and vpc != inst.pc \
                and (self.policy == "vect"
                     or not self._chronically_failing(inst.pc)):
            # The conflict blacklist covers gather loads too: their stride
            # entry exists (every committed load trains the predictor) even
            # though its confidence never builds.
            se_any = self.stride.lookup(inst.pc)
            if (blacklist and se_any is not None
                    and se_any.conflicts >= blacklist):
                return
            prod = self.srsmt.lookup(vpc)
            if prod is not None and self._create_dep_load_entry(inst, prod):
                rename.vect_pc[instr.rd] = inst.pc

    def _create_dep_load_entry(self, inst: DynInst, prod) -> bool:
        nregs = self._alloc_replicas(self.cfg.replicas)
        if nregs == 0:
            if self.obs is not None:
                self.obs.on_srsmt_alloc_fail(inst.pc, prod.event, "no-regs",
                                             self.core.cycle)
            return False
        entry = SRSMTEntry(inst.pc, inst.instr, nregs,
                           storage="specmem" if self.spec_mem else "rf")
        entry.regs_held = nregs * self._vect_factor
        entry.addr_operand = Operand(VEC, producer=prod,
                                     producer_generation=prod.generation,
                                     base=prod.decode)
        entry.event = prod.event
        if not self.srsmt.try_insert(entry):
            self._release_regs(nregs * self._vect_factor)
            self.stats.srsmt_alloc_failures += 1
            if self.obs is not None:
                self.obs.on_srsmt_alloc_fail(inst.pc, prod.event,
                                             "no-srsmt-way", self.core.cycle)
            return False
        self.scheduler.enqueue_batch(entry)
        self.stats.replicas_created += nregs
        self.stats.replica_batches += 1
        if self.obs is not None:
            self.obs.on_replicas_created(inst.pc, nregs, prod.event,
                                         self.core.cycle)
        return True

    def _create_load_entry(self, inst: DynInst, stride: int, event) -> bool:
        nregs = self._alloc_replicas(self.cfg.replicas)
        if nregs == 0:
            if self.obs is not None:
                self.obs.on_srsmt_alloc_fail(inst.pc, event, "no-regs",
                                             self.core.cycle)
            return False
        entry = SRSMTEntry(inst.pc, inst.instr, nregs,
                           storage="specmem" if self.spec_mem else "rf")
        entry.regs_held = nregs * self._vect_factor
        entry.set_load_pattern(inst.eff_addr, stride)
        entry.event = event
        if not self.srsmt.try_insert(entry):
            self._release_regs(nregs * self._vect_factor)
            self.stats.srsmt_alloc_failures += 1
            if self.obs is not None:
                self.obs.on_srsmt_alloc_fail(inst.pc, event, "no-srsmt-way",
                                             self.core.cycle)
            return False
        self.scheduler.enqueue_batch(entry)
        self.stats.replicas_created += nregs
        self.stats.replica_batches += 1
        if self.obs is not None:
            self.obs.on_replicas_created(inst.pc, nregs, event,
                                         self.core.cycle)
        return True

    # -- ALU dependents: vectorize when a source is vectorized ------------
    def _dispatch_alu(self, inst: DynInst) -> None:
        instr = inst.instr
        rename = self.core.rename
        entry = self.srsmt.lookup(inst.pc)
        if entry is not None:
            if self._validate(inst, entry):
                rename.vect_pc[instr.rd] = inst.pc
                return
            entry = None
        if not any(self._vect_pc_of(inst, r) is not None for r in instr.srcs):
            return
        if self._chronically_failing(inst.pc):
            return  # this PC (almost) never validates: stop churning
        operands: List[Operand] = []
        sregs = self.core.sregs
        for r in instr.srcs:
            vpc = self._vect_pc_of(inst, r)
            if vpc == inst.pc:
                # Self-recurrence: replica 0 seeds from this instance's
                # own output.
                operands.append(Operand(SELF, value=inst.result))
            elif vpc is not None:
                prod = self.srsmt.lookup(vpc)
                if prod is None:
                    operands.append(Operand(
                        SCALAR,
                        value=inst.sreg_old if r == instr.rd else sregs[r]))
                else:
                    operands.append(Operand(VEC, producer=prod,
                                            producer_generation=prod.generation,
                                            base=prod.decode))
            else:
                operands.append(Operand(
                    SCALAR,
                    value=inst.sreg_old if r == instr.rd else sregs[r]))
        # Attribute to the first producer's event (reuse chains propagate
        # their originating misprediction for Figure 5).
        event = next((o.producer.event for o in operands
                      if o.kind == VEC and o.producer is not None
                      and o.producer.event), None)
        nregs = self._alloc_replicas(self.cfg.replicas)
        if nregs == 0:
            if self.obs is not None:
                self.obs.on_srsmt_alloc_fail(inst.pc, event, "no-regs",
                                             self.core.cycle)
            return
        entry = SRSMTEntry(inst.pc, instr, nregs,
                           storage="specmem" if self.spec_mem else "rf")
        entry.regs_held = nregs * self._vect_factor
        entry.operands = operands
        entry.event = event
        if not self.srsmt.try_insert(entry):
            self._release_regs(nregs * self._vect_factor)
            self.stats.srsmt_alloc_failures += 1
            if self.obs is not None:
                self.obs.on_srsmt_alloc_fail(inst.pc, event, "no-srsmt-way",
                                             self.core.cycle)
            return
        self.scheduler.enqueue_batch(entry)
        self.stats.replicas_created += nregs
        self.stats.replica_batches += 1
        if self.obs is not None:
            self.obs.on_replicas_created(inst.pc, nregs, event,
                                         self.core.cycle)
        rename.vect_pc[instr.rd] = inst.pc

    # -- validation (step 4) ----------------------------------------------
    def _validate(self, inst: DynInst, entry: SRSMTEntry) -> bool:
        """Try to reuse replica ``entry.decode`` for this dynamic instance.

        On success the instruction skips execution.  On failure the entry
        is deallocated (the paper recreates replicas with new operands; the
        re-creation happens naturally on a later fetch)."""
        instr = inst.instr
        idx = entry.decode
        obs = self.obs
        if idx >= entry.nregs:
            # Batch exhausted: re-batch immediately from this instance (it
            # executes normally and seeds the next replica set).  Waiting
            # for full commit would desynchronise chained entries.
            event = entry.event
            self.srsmt.deallocate(entry)
            if obs is not None:
                obs.on_validation(inst.pc, event, False, "batch-exhausted",
                                  self.core.cycle)
            if instr.is_load:
                se = self.stride.confident(inst.pc)
                blacklist = self.cfg.ci_conflict_blacklist
                if se is not None \
                        and (self.policy == "vect" or se.selected) \
                        and not (blacklist and se.conflicts >= blacklist):
                    self._create_load_entry(inst, se.stride, event)
            # ALU entries are recreated by the dependent-vectorization
            # path on this same dispatch (caller re-checks sources).
            return False
        # The paper's check compares the producer identifiers (PCs)
        # currently in the rename table against seq1/seq2 — a producer that
        # merely started a new replica batch still matches; the value check
        # below arbitrates actual staleness.
        ok = entry.done[idx]
        reason = "ok" if ok else "replica-not-ready"
        if ok and instr.is_load:
            if entry.addr_operand is not None:
                opnd = entry.addr_operand
                if not (entry.addrs[idx] == inst.eff_addr
                        and self._vect_pc_of(inst, instr.rs1)
                        == opnd.seq_id()):
                    ok, reason = False, "producer-mismatch"
            elif inst.eff_addr != entry.replica_addr(idx):
                ok, reason = False, "stride-break"
        elif ok:
            for r, opnd in zip(instr.srcs, entry.operands):
                if opnd.kind == SELF:
                    continue
                if opnd.kind == VEC:
                    if self._vect_pc_of(inst, r) != opnd.seq_id():
                        ok, reason = False, "producer-mismatch"
                        break
                elif self._vect_pc_of(inst, r) is not None:
                    # A previously scalar operand became vectorized: the
                    # stored scalar value is stale by construction.
                    ok, reason = False, "stale-scalar"
                    break
        if ok and entry.values[idx] != inst.result:
            ok, reason = False, "value-mismatch"  # model-level safety net
        if obs is not None:
            obs.on_validation(inst.pc, entry.event, ok, reason,
                              self.core.cycle)
        if not ok:
            self.stats.replica_validation_failures += 1
            self._fail_streak[inst.pc] = min(
                32, self._fail_streak.get(inst.pc, 0) + 1)
            self.srsmt.deallocate(entry)
            return False
        self._fail_streak[inst.pc] = 0
        entry.decode += 1
        inst.validated = True
        inst.validated_entry = (entry, entry.generation)
        self.stats.replica_validations += 1
        self._credit_reuse(entry.event)
        return True

    def _credit_reuse(self, event) -> None:
        if isinstance(event, CIEvent) and not event.counted_reused:
            event.reused = True
            event.counted_reused = True
            self.stats.ci_reused += 1

    def validated_extra_latency(self, inst: DynInst) -> int:
        if self.spec_mem is None:
            return 0
        self.stats.copy_uops += 1
        # Dependents read the copy through the bypass network as it drains
        # from the speculative memory; with the nominal 2-cycle memory the
        # visible cost is read-port queueing only (the paper reports the
        # copy path as non-critical: a 5-cycle memory costs just ~3%).
        return max(0, self.spec_mem.copy_latency(self.core.cycle) - 2)

    # ------------------------------------------------------------------
    # Branch resolution / recovery.
    # ------------------------------------------------------------------
    def on_branch_resolved(self, inst: DynInst) -> None:
        inst.hard_branch = (self.mbs.is_hard(inst.pc)
                            if self.cfg.ci_mbs_filter else True)
        if self.obs is not None:
            self.obs.on_mbs_verdict(inst.pc, inst.hard_branch,
                                    inst.mispredicted, self.core.cycle)

    def on_recovery(self, pivot: DynInst, squashed: List[DynInst],
                    is_branch: bool) -> None:
        if is_branch and self.policy in ("ci", "ci-iw") \
                and pivot.hard_branch:
            self._arm_crp(pivot, squashed)
        if self.policy in ("ci", "ci-iw"):
            self.nrbq.squash_younger(pivot.seq)
        if self.policy in ("ci", "vect") and is_branch:
            dead = self.srsmt.on_recovery()
            if self.cfg.ci_daec:
                for entry in dead:
                    self.srsmt.deallocate(entry)
            if self.cfg.ci_recovery_repair:
                self._repair_decode_cursors()

    def _repair_decode_cursors(self) -> None:
        """Advance decode past validations that survived the squash.

        The paper's plain decode<-commit rollback forgets in-flight
        validated instances that are older than the mispredicted branch;
        their replicas would be re-validated (and value-fail) on the next
        fetch, deallocating the whole batch.  A recovery-time repair scan
        of the window fixes the cursors (DESIGN.md §5)."""
        survivors: Dict[int, int] = {}
        for inst in self.core.window:
            if inst.validated and inst.validated_entry is not None \
                    and not inst.committed:
                entry, generation = inst.validated_entry
                if entry.generation == generation:
                    survivors[id(entry)] = survivors.get(id(entry), 0) + 1
        if not survivors:
            return
        for entry in self.srsmt.all_entries():
            n = survivors.get(id(entry))
            if n:
                entry.decode = min(entry.nregs, entry.commit + n)

    def _arm_crp(self, pivot: DynInst, squashed: List[DynInst]) -> None:
        nrbq_entry = self.nrbq.find(pivot.seq)
        if nrbq_entry is None:
            if self.obs is not None:
                self.obs.on_ci_untracked(pivot.pc, pivot.seq,
                                         self.core.cycle)
            return  # branch was not tracked (NRBQ full)
        self.stats.ci_events += 1
        event = CIEvent(branch_pc=pivot.pc, seq=pivot.seq)
        self._event = event
        if self.obs is not None:
            self.obs.on_ci_event(event, pivot.pc, pivot.seq, self.core.cycle)
        mask0 = self._wrong_path_mask(nrbq_entry.reconv_pc, squashed)
        if self.policy == "ci-iw":
            n = self.reuse_buffer.harvest(nrbq_entry.reconv_pc, mask0,
                                          squashed, event)
            if n and not event.counted_selected:
                event.selected = True
                event.counted_selected = True
                self.stats.ci_selected += 1
                if self.obs is not None:
                    self.obs.on_ci_selected(event, pivot.pc, self.core.cycle)
        else:
            self.crp.arm(pivot.pc, pivot.seq, nrbq_entry.reconv_pc, mask0)
            self._crp_decodes_since_reached = 0
            self._crp_decodes_since_armed = 0

    @staticmethod
    def _wrong_path_mask(reconv_pc: int, squashed: List[DynInst]) -> int:
        """Registers written on the wrong path *before* the re-convergent
        point was reached (Section 2.3.2's CRP mask semantics: "written
        since the branch was fetched and before the re-convergent point is
        reached, in either the wrong or the correct path").  Wrong-path
        writes past re-convergence do not dirty the mask — those are the
        very instructions whose results control independence preserves."""
        mask = 0
        for inst in squashed:
            if inst.pc == reconv_pc:
                break
            rd = inst.instr.rd
            if rd is not None:
                mask |= 1 << rd
        return mask

    # ------------------------------------------------------------------
    # Commit hooks.
    # ------------------------------------------------------------------
    def on_commit(self, inst: DynInst) -> None:
        instr = inst.instr
        if instr.is_cond_branch:
            self.mbs.update(inst.pc, inst.actual_taken)
            if self.policy in ("ci", "ci-iw"):
                self.nrbq.on_branch_retire(inst.seq)
            return
        if instr.is_load and self.policy in ("ci", "vect"):
            self.stride.update(inst.pc, inst.eff_addr)
        if inst.validated and inst.validated_entry is not None:
            entry, generation = inst.validated_entry
            if entry.generation == generation and entry.commit < entry.nregs:
                # The replica's register keeps holding the value until the
                # whole batch retires (stretched lifetimes, Section 2.4.2);
                # deallocation/re-batch releases the set.
                entry.commit += 1

    def on_store_commit(self, inst: DynInst) -> bool:
        if self.policy not in ("ci", "vect"):
            return False
        conflict = False
        addr = inst.eff_addr
        exact = self.cfg.ci_exact_range_check
        for entry in self.srsmt.all_entries():
            if not entry.contains_addr(addr):
                continue
            if exact and entry.stride and (addr - entry.range_lo) % abs(entry.stride):
                continue  # store falls between the replicas' addresses
            # De-select the load so it does not immediately re-vectorize
            # into the same store stream (it must be re-selected by a
            # future misprediction event first).
            se = self.stride.lookup(entry.pc)
            if se is not None:
                se.selected = False
                se.conflicts += 1
            if self.obs is not None:
                self.obs.on_coherence_conflict(entry.pc, addr,
                                               self.core.cycle)
            self.srsmt.deallocate(entry)
            conflict = True
        return conflict

    # ------------------------------------------------------------------
    # Per-cycle replica execution.
    # ------------------------------------------------------------------
    def dispatch_gate(self) -> bool:
        if not self._vect_wait:
            return True
        # The stalled in-pipeline vector instruction blocks dispatch until
        # enough registers free up; under real shortage that means waiting
        # for the machine to drain — the thrashing behaviour that makes the
        # full vectorization scheme collapse on small register files.
        fl = self.core.freelist
        threshold = min(fl.capacity - 4,
                        self.cfg.replicas * self._vect_factor + 16)
        if fl.free >= threshold:
            self._vect_wait = False
            return True
        if not self.core.window:
            # Fully drained: reclaim dead vector register sets and resume.
            for e in self.srsmt.all_entries():
                if e.decode == e.commit and e.issue == 0:
                    self.srsmt.deallocate(e)
            self._vect_wait = False
            return True
        return False

    def on_cycle(self, leftover_issue_slots: int, ports: PortState) -> None:
        if self.policy not in ("ci", "vect"):
            return
        now = self.core.cycle
        self.scheduler.drain_completions(now)
        max_writes = (self.spec_mem.write_ports if self.spec_mem else None)
        self.scheduler.issue(now, leftover_issue_slots, ports, self.stats,
                             max_mem_writes=max_writes)
