"""Hard-branch filters — who is allowed to arm a reuse event.

The first component of the mechanism pipeline (step 1 of Section 2.3):
classify each conditional branch as *hard* (low-bias, worth tracking for
control-independence reuse) or *easy*.  The paper's hardware filter is
the MBS, a set-associative table of 4-bit bias counters; the ablation
variants bound its contribution:

* :class:`MBSFilter`       — the paper's MBS (default);
* :class:`OracleBiasFilter`— offline-profiled branch bias, i.e. a
  perfect MBS with unbounded capacity and no warm-up (``ci-oracle-mbs``);
* :class:`AlwaysHardFilter`— no filtering: every branch may arm (this is
  what ``ci_mbs_filter=False`` configures);
* :class:`NeverHardFilter` — filter everything: an upper bound on how
  much of the policy's cost is filter-independent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from .mbs import MBS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .pipeline import MechanismPipeline


class HardBranchFilter:
    """Base filter: classifies branches; trains on every retired branch."""

    #: registry key (informational; shown by ``repro policies --verbose``)
    kind = "base"

    def attach(self, pipeline: "MechanismPipeline") -> None:
        self.pipeline = pipeline

    def train(self, pc: int, taken: bool) -> None:
        """One retired conditional branch (``pc`` went ``taken``)."""

    def is_hard(self, pc: int) -> bool:
        """Is the branch at ``pc`` currently classified hard-to-predict?"""
        raise NotImplementedError


class MBSFilter(HardBranchFilter):
    """The paper's Mispredicted Branch Selector (4-bit bias counters)."""

    kind = "mbs"

    def attach(self, pipeline: "MechanismPipeline") -> None:
        super().attach(pipeline)
        cfg = pipeline.cfg
        self.mbs = MBS(cfg.mbs_sets, cfg.mbs_ways)

    def train(self, pc: int, taken: bool) -> None:
        self.mbs.update(pc, taken)

    def is_hard(self, pc: int) -> bool:
        return self.mbs.is_hard(pc)


class AlwaysHardFilter(HardBranchFilter):
    """No filtering: every mispredicted branch may arm a reuse event."""

    kind = "always"

    def is_hard(self, pc: int) -> bool:
        return True


class NeverHardFilter(HardBranchFilter):
    """Filter everything: the mechanism never arms (cost floor)."""

    kind = "never"

    def is_hard(self, pc: int) -> bool:
        return False


class OracleBiasFilter(HardBranchFilter):
    """Perfect bias knowledge from an offline functional trace.

    At attach time the program runs once through the functional
    interpreter; each static branch's dynamic bias decides hardness with
    the same thresholds :class:`repro.trace.analysis.BranchStats` uses
    (``execs >= 8 and bias < 0.95``).  Branches the profile never saw
    (wrong-path-only PCs) default to hard, matching a cold MBS.  This is
    the ``ci-oracle-mbs`` ablation: it bounds how much of the mechanism's
    headroom the finite, late-training MBS leaves on the table.
    """

    kind = "oracle"

    def attach(self, pipeline: "MechanismPipeline") -> None:
        super().attach(pipeline)
        # Imported lazily: repro.trace imports repro.ci.reconverge, so a
        # module-level import here would tangle package initialisation.
        from ..trace import collect_trace, profile_trace
        profile = profile_trace(collect_trace(pipeline.core.program))
        self._hard: Dict[int, bool] = {
            pc: b.is_hard for pc, b in profile.branches.items()}

    def is_hard(self, pc: int) -> bool:
        return self._hard.get(pc, True)
