"""Slice selection — which strided loads get vectorized (steps 2–3).

The third component of the mechanism pipeline.  It owns the stride
predictor and decides *which* confident strided loads are worth
replicating:

* :class:`SliceSelector`       — the paper's CI masking: only loads in
  the backward slice of a control-independent instruction (clean sources
  past the re-convergent point of an armed reuse event) are selected,
  via the rename table's stridedPC extension and the S flag;
* :class:`GreedySliceSelector` — the full dynamic-vectorization
  comparator [12]: *every* confident strided load is vectorized, no
  control-independence filtering at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .stride import StridePredictor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..uarch.rob import DynInst
    from .pipeline import MechanismPipeline


class SliceSelector:
    """CI masking: select strided loads in control-independent slices."""

    kind = "ci"

    #: greedy selectors vectorize unselected confident loads too
    greedy = False

    def attach(self, pipeline: "MechanismPipeline") -> None:
        self.pipeline = pipeline
        cfg = pipeline.cfg
        self.cfg = cfg
        self.obs = pipeline.obs
        self.stats = pipeline.stats
        self.stride = StridePredictor(cfg.stride_sets, cfg.stride_ways)

    def on_ci_candidate(self, inst: "DynInst") -> None:
        """Step 2: a post-re-convergence instruction with clean sources is
        control independent; select the strided loads it depends on.

        Called by the tracker for every decode past an armed CRP's
        re-convergent point."""
        instr = inst.instr
        if not instr.srcs and instr.rd is None:
            return
        tracker = self.pipeline.tracker
        assert tracker is not None  # candidates only come from a tracker
        if not tracker.crp.sources_clean(instr.srcs):
            return
        ev = tracker.event
        obs = self.obs
        if ev is not None and not ev.counted_selected:
            ev.selected = True
            ev.counted_selected = True
            self.stats.ci_selected += 1
            if obs is not None:
                obs.on_ci_selected(ev, inst.pc, self.pipeline.core.cycle)
        # Select every strided load in the backward slice (rename table's
        # stridedPC extension) for vectorization next time it is fetched.
        rename = self.pipeline.core.rename
        for r in instr.srcs:
            for lpc in rename.strided_pcs[r]:
                ok = self.stride.mark_selected(
                    lpc, ev, conflict_blacklist=self.cfg.ci_conflict_blacklist)
                if obs is not None:
                    obs.on_slice_marked(ev, lpc, ok,
                                        self.pipeline.core.cycle)

    def on_load_retire(self, pc: int, eff_addr: int) -> None:
        """Train the stride predictor on a committed load."""
        self.stride.update(pc, eff_addr)


class GreedySliceSelector(SliceSelector):
    """No CI masking: every confident strided load is a candidate [12]."""

    kind = "greedy"
    greedy = True

    def on_ci_candidate(self, inst: "DynInst") -> None:
        """Greedy selection has no notion of CI candidates (and no
        tracker to produce them); selection happens implicitly in the
        replica manager's confidence check."""
