"""The policy registry — mechanism policies as data.

A policy is a :class:`PolicySpec`: a named assembly of the pipeline's
components (filter, tracker, selector, replica manager, squash-reuse).
The built-in entries reproduce the paper's three schemes and add the
ablations that fall out of the component split for free:

========================  =================================================
policy                    assembly
========================  =================================================
``ci``                    MBS + static re-convergence + CI-masked
                          selection + low-priority replicas (the paper)
``ci-iw``                 MBS + static re-convergence + squash reuse
                          (window-limited control independence, Figure 10)
``vect``                  greedy selection + in-pipeline vector replicas,
                          no CI filtering (the full-vectorization
                          comparator [12], Figure 14)
``ci-oracle-mbs``         ``ci`` with an offline-profiled oracle bias
                          filter instead of the finite MBS
``ci-ideal-reconv``       ``ci`` with exact post-dominator re-convergence
                          instead of the static heuristic
========================  =================================================

New policies register with :func:`register_policy`; the CLI resolves
``--policy`` names here (``repro policies`` lists the table), and the
process-pool runtime ships the policy *name* across workers — specs are
resolved locally on each side, so custom components stay picklable-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..suggest import unknown_name_message

from .filters import (
    AlwaysHardFilter,
    HardBranchFilter,
    MBSFilter,
    NeverHardFilter,
    OracleBiasFilter,
)
from .replicas import ReplicaManager
from .selection import GreedySliceSelector, SliceSelector
from .squash_reuse import SquashReuseUnit
from .tracking import IdealReconvergenceTracker, ReconvergenceTracker


@dataclass(frozen=True)
class PolicySpec:
    """One named assembly of mechanism components.

    Component fields name factories in the tables below; ``None`` means
    the policy does not install that component (and the pipeline's
    corresponding hooks become no-ops).
    """

    name: str
    description: str
    filter: str = "mbs"
    tracker: Optional[str] = "static"
    selector: Optional[str] = "ci"
    replicas: Optional[str] = "ci"
    squash_reuse: bool = False


FILTERS: Dict[str, Callable[[], HardBranchFilter]] = {
    "mbs": MBSFilter,
    "oracle": OracleBiasFilter,
    "always": AlwaysHardFilter,
    "never": NeverHardFilter,
}

TRACKERS: Dict[str, Callable[[], ReconvergenceTracker]] = {
    "static": ReconvergenceTracker,
    "ideal": IdealReconvergenceTracker,
}

SELECTORS: Dict[str, Callable[[], SliceSelector]] = {
    "ci": SliceSelector,
    "greedy": GreedySliceSelector,
}

MANAGERS: Dict[str, Callable[[], ReplicaManager]] = {
    "ci": lambda: ReplicaManager(greedy=False),
    "vect": lambda: ReplicaManager(greedy=True),
}

_REGISTRY: Dict[str, PolicySpec] = {}


def register_policy(spec: PolicySpec) -> PolicySpec:
    """Register ``spec`` (validating its component names); returns it."""
    if spec.filter not in FILTERS:
        raise ValueError(f"policy {spec.name!r}: unknown filter "
                         f"{spec.filter!r}; known: {sorted(FILTERS)}")
    if spec.tracker is not None and spec.tracker not in TRACKERS:
        raise ValueError(f"policy {spec.name!r}: unknown tracker "
                         f"{spec.tracker!r}; known: {sorted(TRACKERS)}")
    if spec.selector is not None and spec.selector not in SELECTORS:
        raise ValueError(f"policy {spec.name!r}: unknown selector "
                         f"{spec.selector!r}; known: {sorted(SELECTORS)}")
    if spec.replicas is not None and spec.replicas not in MANAGERS:
        raise ValueError(f"policy {spec.name!r}: unknown replica manager "
                         f"{spec.replicas!r}; known: {sorted(MANAGERS)}")
    if spec.replicas is not None and spec.selector is None:
        raise ValueError(f"policy {spec.name!r}: a replica manager needs "
                         "a selector (it owns the stride predictor)")
    _REGISTRY[spec.name] = spec
    return spec


def get_policy(name: str) -> PolicySpec:
    """Resolve a policy name, with close-match suggestions on failure."""
    spec = _REGISTRY.get(name)
    if spec is not None:
        return spec
    raise ValueError(unknown_name_message("policy", name, policy_names()))


def policy_names() -> List[str]:
    return sorted(_REGISTRY)


def all_policies() -> List[PolicySpec]:
    return [_REGISTRY[n] for n in policy_names()]


def build_components(spec: PolicySpec, cfg) -> dict:
    """Instantiate (but do not attach) one pipeline's components.

    ``cfg.ci_mbs_filter=False`` substitutes the no-filtering variant for
    the MBS, preserving the pre-registry meaning of that ablation flag
    ("treat every branch as hard").
    """
    filter_key = spec.filter
    if filter_key == "mbs" and not cfg.ci_mbs_filter:
        filter_key = "always"
    return {
        "filter": FILTERS[filter_key](),
        "tracker": TRACKERS[spec.tracker]() if spec.tracker else None,
        "selector": SELECTORS[spec.selector]() if spec.selector else None,
        "replicas": MANAGERS[spec.replicas]() if spec.replicas else None,
        "squash_reuse": SquashReuseUnit() if spec.squash_reuse else None,
    }


# ---------------------------------------------------------------------------
# Built-in policies.
# ---------------------------------------------------------------------------

register_policy(PolicySpec(
    name="ci",
    description="the paper's scheme: MBS-filtered CI reuse via dynamic "
                "vectorization (steps 1-4 of Section 2.3)"))

register_policy(PolicySpec(
    name="ci-iw",
    description="squash reuse: control independence only for results "
                "already in the window at recovery (Figure 10)",
    selector=None, replicas=None, squash_reuse=True))

register_policy(PolicySpec(
    name="vect",
    description="full dynamic vectorization [12]: every confident strided "
                "load vectorizes, no CI filtering (Figure 14)",
    tracker=None, selector="greedy", replicas="vect"))

register_policy(PolicySpec(
    name="ci-oracle-mbs",
    description="ablation: ci with an offline-profiled oracle bias filter "
                "instead of the finite, late-training MBS",
    filter="oracle"))

register_policy(PolicySpec(
    name="ci-ideal-reconv",
    description="ablation: ci with exact immediate-post-dominator "
                "re-convergence instead of the static heuristic",
    tracker="ideal"))
