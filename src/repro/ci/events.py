"""Per-misprediction accounting objects behind Figure 5."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CIEvent:
    """One hard-branch misprediction examined by the mechanism.

    Figure 5 classifies each such event as: no control-independent
    instruction found (``selected`` stays False), at least one selected but
    never reused, or at least one precomputed instance successfully reused.
    """

    branch_pc: int
    seq: int
    selected: bool = False
    reused: bool = False
    #: credited to the stats exactly once each
    counted_selected: bool = False
    counted_reused: bool = False
