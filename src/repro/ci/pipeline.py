"""MechanismPipeline — policy-assembled components on the typed hooks.

The mechanism layer is four separable hardware concerns (Section 2.3):

1. hard-branch filtering      — :mod:`repro.ci.filters`
2. re-convergence tracking    — :mod:`repro.ci.tracking`
3. strided-slice selection    — :mod:`repro.ci.selection`
4. replica management         — :mod:`repro.ci.replicas`

(plus the ``ci-iw`` squash-reuse unit, :mod:`repro.ci.squash_reuse`).

A :class:`MechanismPipeline` is one assembly of those components, chosen
by a :class:`~repro.ci.registry.PolicySpec` from the policy registry; it
implements the core's typed hook surface
(:class:`~repro.uarch.hooks.MechanismHooks`) by delegating each hook to
whichever components the policy installed.  Policies are therefore data:
``repro policies`` lists them, and a new ablation is a new registry
entry, not new engine code.

``CIEngine`` remains as a compatibility alias: constructing it with no
spec resolves the policy from ``cfg.ci_policy`` at attach time, exactly
like the pre-refactor monolith.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..observe.events import ReuseEvent
from ..uarch.hooks import MechanismHooks
from .specmem import SpecDataMemory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..uarch.core import Core, PortState
    from ..uarch.rob import DynInst
    from .filters import HardBranchFilter
    from .registry import PolicySpec
    from .replicas import ReplicaManager
    from .selection import SliceSelector
    from .squash_reuse import SquashReuseUnit
    from .tracking import ReconvergenceTracker


class MechanismPipeline(MechanismHooks):
    """Control-flow independence reuse as a pipeline of typed components."""

    #: fault-injection port (see ``repro.faults.FaultInjector``): when a
    #: wrapping injector attaches it sets this to itself, and components
    #: pull planned denials/failures at their decision sites — injected
    #: faults ride the real failure paths instead of bypassing them
    faults: Optional[Any] = None

    def __init__(self, spec: Optional["PolicySpec"] = None):
        self.spec = spec
        self.core: Optional["Core"] = None
        self.obs = None

    # ------------------------------------------------------------------
    def attach(self, core: "Core") -> None:
        from .registry import build_components, get_policy
        self.core = core
        self.obs = core.active_observer
        cfg = core.cfg
        self.cfg = cfg
        self.stats = core.stats
        spec = self.spec
        if spec is None:
            if cfg.ci_policy is None:
                raise ValueError(
                    "MechanismPipeline needs a PolicySpec or a config "
                    "with ci_policy set")
            spec = self.spec = get_policy(cfg.ci_policy)
        self.policy = spec.name
        self.spec_mem: Optional[SpecDataMemory] = None
        if cfg.spec_mem_size is not None:
            self.spec_mem = SpecDataMemory(
                cfg.spec_mem_size, cfg.spec_mem_latency,
                cfg.spec_mem_read_ports, cfg.spec_mem_write_ports)
        # Build + attach components in dependency order: the selector
        # reads the tracker, the replica manager reads the selector.
        components = build_components(spec, cfg)
        self.filter: "HardBranchFilter" = components["filter"]
        self.tracker: Optional["ReconvergenceTracker"] = components["tracker"]
        self.selector: Optional["SliceSelector"] = components["selector"]
        self.replicas: Optional["ReplicaManager"] = components["replicas"]
        self.squash_reuse: Optional["SquashReuseUnit"] = \
            components["squash_reuse"]
        self.filter.attach(self)
        if self.tracker is not None:
            self.tracker.attach(self)
        if self.selector is not None:
            self.selector.attach(self)
        if self.replicas is not None:
            self.replicas.attach(self)
        if self.squash_reuse is not None:
            self.squash_reuse.attach(self)
        # The core taxes store commit with the coherence check only when
        # replicated state exists to check against (Section 2.4.3).
        self.has_replicas = self.replicas is not None
        # Flatten the dispatch delegation: it runs for every dynamic
        # instruction (wrong paths included), so bind the installed
        # components' handlers once instead of None-testing per call.
        # The instance attribute shadows the class method below.
        handlers = [c.on_dispatch for c in
                    (self.tracker,
                     self.squash_reuse if self.squash_reuse is not None
                     else self.replicas)
                    if c is not None]
        if len(handlers) == 2:
            h0, h1 = handlers

            def _on_dispatch(inst, _h0=h0, _h1=h1):
                _h0(inst)
                _h1(inst)

            self.on_dispatch = _on_dispatch
        elif len(handlers) == 1:
            self.on_dispatch = handlers[0]

    # ------------------------------------------------------------------
    # Shared event accounting (Figure 5 attribution).
    # ------------------------------------------------------------------
    def credit_reuse(self, event) -> None:
        """Credit one successful reuse to its originating misprediction."""
        if isinstance(event, ReuseEvent) and not event.counted_reused:
            event.reused = True
            event.counted_reused = True
            self.stats.ci_reused += 1

    # ------------------------------------------------------------------
    # Hook surface: delegate to the installed components.
    # ------------------------------------------------------------------
    def on_dispatch(self, inst: "DynInst") -> None:
        if self.tracker is not None:
            self.tracker.on_dispatch(inst)
        if self.squash_reuse is not None:
            self.squash_reuse.on_dispatch(inst)
            return
        if self.replicas is not None:
            self.replicas.on_dispatch(inst)

    def on_branch_resolved(self, inst: "DynInst") -> None:
        inst.hard_branch = self.filter.is_hard(inst.pc)
        if self.obs is not None:
            self.obs.on_mbs_verdict(inst.pc, inst.hard_branch,
                                    inst.mispredicted, self.core.cycle)

    def on_recovery(self, pivot: "DynInst", squashed, is_branch: bool) -> None:
        if self.tracker is not None:
            if is_branch and pivot.hard_branch:
                self.tracker.on_misprediction(pivot, squashed)
            self.tracker.squash_younger(pivot.seq)
        if self.replicas is not None and is_branch:
            self.replicas.on_recovery()

    def on_commit(self, inst: "DynInst") -> None:
        instr = inst.instr
        if instr.is_cond_branch:
            self.filter.train(inst.pc, inst.actual_taken)
            if self.tracker is not None:
                self.tracker.on_branch_retire(inst.seq)
            return
        if self.replicas is not None:
            self.replicas.on_commit(inst)

    def on_store_commit(self, inst: "DynInst") -> bool:
        if self.replicas is None:
            return False
        return self.replicas.on_store_commit(inst)

    def dispatch_gate(self) -> bool:
        if self.replicas is None:
            return True
        return self.replicas.dispatch_gate()

    def on_cycle(self, leftover_issue_slots: int, ports: "PortState") -> None:
        if self.replicas is not None:
            self.replicas.on_cycle(leftover_issue_slots, ports)

    def next_event_cycle(self):
        # Only the replica manager does per-cycle work (issue + drain);
        # the filter/tracker/selector/squash-reuse components act solely
        # at core events, which always veto the skip by definition.
        if self.replicas is None:
            return None
        return self.replicas.next_event_cycle()

    def validated_extra_latency(self, inst: "DynInst") -> int:
        if self.spec_mem is None:
            return 0
        self.stats.copy_uops += 1
        # Dependents read the copy through the bypass network as it drains
        # from the speculative memory; with the nominal 2-cycle memory the
        # visible cost is read-port queueing only (the paper reports the
        # copy path as non-critical: a 5-cycle memory costs just ~3%).
        return max(0, self.spec_mem.copy_latency(self.core.cycle) - 2)

    # ------------------------------------------------------------------
    # Component accessors kept for tests / tooling from the monolith era.
    # ------------------------------------------------------------------
    @property
    def mbs(self):
        return self.filter.mbs

    @property
    def stride(self):
        assert self.selector is not None
        return self.selector.stride

    @property
    def srsmt(self):
        assert self.replicas is not None
        return self.replicas.srsmt

    @property
    def scheduler(self):
        assert self.replicas is not None
        return self.replicas.scheduler

    @property
    def nrbq(self):
        assert self.tracker is not None
        return self.tracker.nrbq

    @property
    def crp(self):
        assert self.tracker is not None
        return self.tracker.crp

    @property
    def reuse_buffer(self):
        assert self.squash_reuse is not None
        return self.squash_reuse.buffer


#: compatibility alias for the pre-refactor monolith's name
CIEngine = MechanismPipeline
