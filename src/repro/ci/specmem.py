"""Speculative data memory (Section 2.4.6).

A small, cheap, *slow* memory — in the spirit of a hierarchical register
file — that holds replica results instead of the monolithic register file.
It has 2 write ports (from the functional units) and 2 read ports (to the
register file), and is twice as slow as the register file (2 cycles by
default).

Values move to the architectural register file through *copy* instructions
inserted when a validation instruction reaches decode; dependents of the
validated instruction become dependents of the copy.  The timing model
charges the copy path as extra latency on the validated instruction's
result availability and applies per-cycle read-port contention.
"""

from __future__ import annotations


class SpecDataMemory:
    """Capacity pool + port bookkeeping for the speculative data memory."""

    def __init__(self, positions: int, latency: int = 2,
                 read_ports: int = 2, write_ports: int = 2):
        self.capacity = positions
        self.free = positions
        self.latency = latency
        self.read_ports = read_ports
        self.write_ports = write_ports
        self._cycle = -1
        self._reads_this_cycle = 0
        self.alloc_failures = 0

    @property
    def in_use(self) -> int:
        return self.capacity - self.free

    def alloc_up_to(self, n: int) -> int:
        got = min(self.free, n)
        self.free -= got
        if got == 0 and n > 0:
            self.alloc_failures += 1
        return got

    def release(self, n: int) -> None:
        self.free += n
        assert self.free <= self.capacity, "spec-mem double release"

    def copy_latency(self, cycle: int) -> int:
        """Latency of one validation copy issued at ``cycle``.

        Reads beyond the per-cycle port budget queue behind earlier ones.
        """
        if cycle != self._cycle:
            self._cycle = cycle
            self._reads_this_cycle = 0
        queue_delay = self._reads_this_cycle // self.read_ports
        self._reads_this_cycle += 1
        return self.latency + queue_delay
