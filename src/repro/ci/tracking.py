"""Re-convergence tracking — NRBQ/CRP mask machinery (step 2).

The second component of the mechanism pipeline: follow every fetched
hard branch in the NRBQ with its estimated re-convergent point, and on a
hard misprediction arm the CRP with the wrong-path register mask so
post-re-convergence instructions with clean sources can be recognised as
control independent.

Two variants:

* :class:`ReconvergenceTracker`      — the paper's static single-pass
  heuristic (``estimate_reconvergent_point``), cached per branch PC;
* :class:`IdealReconvergenceTracker` — exact immediate post-dominators
  from the full CFG (the ``ci-ideal-reconv`` ablation): an upper bound
  on what a better re-convergence predictor — e.g. dynamic merge-point
  prediction — could recover over the heuristic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..isa import Instruction, Program
from ..isa.predecode import F_COND_BRANCH, F_WRITES_REG
from ..observe.events import ReuseEvent
from .reconverge import CRP, NRBQ, estimate_reconvergent_point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..uarch.rob import DynInst
    from .pipeline import MechanismPipeline


class ReconvergenceTracker:
    """NRBQ + CRP: track branches, arm on hard mispredictions."""

    kind = "static"

    def attach(self, pipeline: "MechanismPipeline") -> None:
        self.pipeline = pipeline
        cfg = pipeline.cfg
        self.cfg = cfg
        self.obs = pipeline.obs
        self.stats = pipeline.stats
        self.nrbq = NRBQ(cfg.nrbq_size)
        self.crp = CRP()
        self._reconv_cache: Dict[int, int] = {}
        #: the reuse event of the most recent armed misprediction
        self.event: Optional[ReuseEvent] = None
        self._decodes_since_reached = 0
        self._decodes_since_armed = 0
        # Decode-once image views for the per-dispatch hot path.  The
        # image's rd array is or-zero encoded, so precompute a per-PC
        # "destination or None" that the NRBQ/CRP masks can consume
        # directly (feeding the 0 placeholder would dirty register r0).
        image = pipeline.core.image
        self._flags = image.flags
        self._rd_or_none = tuple(
            rd if (f & F_WRITES_REG) else None
            for f, rd in zip(image.flags, image.rd))

    # -- re-convergence estimates (cached per branch PC) -----------------
    def _estimate(self, program: Program, instr: Instruction) -> int:
        return estimate_reconvergent_point(program, instr)

    def reconv(self, instr: Instruction) -> int:
        pc = instr.pc
        est = self._reconv_cache.get(pc)
        if est is None:
            est = self._estimate(self.pipeline.core.program, instr)
            self._reconv_cache[pc] = est
        return est

    # -- dispatch: NRBQ/CRP mask machinery -------------------------------
    def on_dispatch(self, inst: "DynInst") -> None:
        pc = inst.pc
        rd = self._rd_or_none[pc]
        if self._flags[pc] & F_COND_BRANCH:
            est = self._reconv_cache.get(pc)
            if est is None:
                est = self._estimate(self.pipeline.core.program, inst.instr)
                self._reconv_cache[pc] = est
            self.nrbq.on_branch_fetch(pc, est, inst.seq)
        elif rd is not None:
            # Inlined NRBQ.on_instruction_fetch: one mask update per
            # dispatched instruction.
            entries = self.nrbq.entries
            if entries:
                entries[-1].mask |= 1 << rd
        crp = self.crp
        if not crp.active:
            return
        past_reconv = crp.on_decode(pc, rd)
        if not crp.active:
            return
        if past_reconv:
            self._decodes_since_reached += 1
            selector = self.pipeline.selector
            if selector is not None:
                selector.on_ci_candidate(inst)
            if self._decodes_since_reached > self.cfg.ci_select_window:
                self.crp.disarm()
                if self.obs is not None:
                    self.obs.on_crp_disarm("window-exhausted",
                                           self.pipeline.core.cycle)
        else:
            self._decodes_since_armed += 1
            if self._decodes_since_armed > 4 * self.cfg.ci_select_window:
                self.crp.disarm()  # estimate was never reached: give up
                if self.obs is not None:
                    self.obs.on_crp_disarm("never-reached",
                                           self.pipeline.core.cycle)

    # -- recovery: arm on a hard misprediction ---------------------------
    def on_misprediction(self, pivot: "DynInst",
                         squashed: List["DynInst"]) -> None:
        """A hard conditional branch mispredicted; try to arm the CRP.

        When the policy carries a squash-reuse unit instead of a CRP
        (``ci-iw``), the harvested results *are* the reuse — the unit
        takes over from the mask construction."""
        obs = self.obs
        nrbq_entry = self.nrbq.find(pivot.seq)
        if nrbq_entry is None:
            if obs is not None:
                obs.on_ci_untracked(pivot.pc, pivot.seq,
                                    self.pipeline.core.cycle)
            return  # branch was not tracked (NRBQ full)
        self.stats.ci_events += 1
        event = ReuseEvent(branch_pc=pivot.pc, seq=pivot.seq)
        self.event = event
        if obs is not None:
            obs.on_ci_event(event, pivot.pc, pivot.seq,
                            self.pipeline.core.cycle)
        mask0 = self._wrong_path_mask(nrbq_entry.reconv_pc, squashed)
        squash_reuse = self.pipeline.squash_reuse
        if squash_reuse is not None:
            squash_reuse.harvest(nrbq_entry.reconv_pc, mask0, squashed,
                                 event, pivot)
        else:
            self.crp.arm(pivot.pc, pivot.seq, nrbq_entry.reconv_pc, mask0)
            self._decodes_since_reached = 0
            self._decodes_since_armed = 0

    def squash_younger(self, seq: int) -> None:
        self.nrbq.squash_younger(seq)

    def on_branch_retire(self, seq: int) -> None:
        self.nrbq.on_branch_retire(seq)

    @staticmethod
    def _wrong_path_mask(reconv_pc: int, squashed: List["DynInst"]) -> int:
        """Registers written on the wrong path *before* the re-convergent
        point was reached (Section 2.3.2's CRP mask semantics: "written
        since the branch was fetched and before the re-convergent point is
        reached, in either the wrong or the correct path").  Wrong-path
        writes past re-convergence do not dirty the mask — those are the
        very instructions whose results control independence preserves."""
        mask = 0
        for inst in squashed:
            if inst.pc == reconv_pc:
                break
            rd = inst.instr.rd
            if rd is not None:
                mask |= 1 << rd
        return mask


# ---------------------------------------------------------------------------
# Ideal (CFG post-dominator) variant.
# ---------------------------------------------------------------------------

def compute_ipdoms(program: Program) -> Dict[int, int]:
    """Immediate post-dominator of every PC, from the full static CFG.

    A virtual exit node post-dominates everything (HALT and running off
    the end of the code both lead to it); branches whose only
    post-dominator is the exit map to ``-1`` (no re-convergent point
    inside the program).  Bitset dataflow — programs are kernel-sized.
    """
    code = program.code
    n = len(code)
    exit_node = n  # virtual exit
    succs: List[List[int]] = []
    for pc in range(n):
        instr = code[pc]
        if instr.is_halt:
            succs.append([exit_node])
        elif instr.is_jump:
            t = instr.target
            succs.append([t if 0 <= t < n else exit_node])
        elif instr.is_cond_branch:
            out = []
            for t in (pc + 1, instr.target):
                out.append(t if 0 <= t < n else exit_node)
            succs.append(out)
        else:
            succs.append([pc + 1 if pc + 1 < n else exit_node])
    full = (1 << (n + 1)) - 1
    pdom = [full] * (n + 1)
    pdom[exit_node] = 1 << exit_node
    changed = True
    while changed:
        changed = False
        for v in range(n - 1, -1, -1):
            acc = full
            for s in succs[v]:
                acc &= pdom[s]
            new = acc | (1 << v)
            if new != pdom[v]:
                pdom[v] = new
                changed = True
    # idom identity: pdom(ipdom(v)) == pdom(v) without v itself.
    ipdom: Dict[int, int] = {}
    for v in range(n):
        strict = pdom[v] & ~(1 << v)
        found = -1
        cand = strict
        while cand:
            c = (cand & -cand).bit_length() - 1
            if pdom[c] == strict:
                found = c if c != exit_node else -1
                break
            cand &= cand - 1
        ipdom[v] = found
    return ipdom


class IdealReconvergenceTracker(ReconvergenceTracker):
    """Exact re-convergent points from immediate post-dominators.

    Replaces the static forward-scan heuristic with the true immediate
    post-dominator of each branch (computed once per program).  Branches
    that only re-converge at program exit fall back to the heuristic's
    estimate so the NRBQ always has *some* PC to watch — matching how
    the paper's hardware always tracks an estimate.
    """

    kind = "ideal"

    def attach(self, pipeline: "MechanismPipeline") -> None:
        super().attach(pipeline)
        self._ipdoms = compute_ipdoms(pipeline.core.program)

    def _estimate(self, program: Program, instr: Instruction) -> int:
        ipdom = self._ipdoms.get(instr.pc, -1)
        if ipdom < 0:
            return estimate_reconvergent_point(program, instr)
        return ipdom
