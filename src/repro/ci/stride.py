"""Stride predictor (Section 2.3.2, Figure 3).

PC-indexed 4-way × 256-set table: last address, last stride, a 2-bit
confidence counter (trusted when > 1), and the S flag that marks loads
selected for speculative vectorization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .assoc import SetAssocTable

CONF_MAX = 3
CONF_TRUST = 2


@dataclass
class StrideEntry:
    last_addr: int
    stride: int = 0
    confidence: int = 0
    selected: bool = False          # the S flag
    #: misprediction event that set S (Figure 5 attribution)
    event: Optional[object] = None
    #: store-coherence conflicts suffered by this load's replicas
    conflicts: int = 0


class StridePredictor:
    """Per-load-PC stride tracking."""

    def __init__(self, sets: int = 256, ways: int = 4):
        self.table: SetAssocTable[StrideEntry] = SetAssocTable(sets, ways)
        #: flat pc → entry mirror for the recency-neutral reads on the
        #: dispatch hot path; ``update`` keeps going through the table so
        #: LRU order (and therefore eviction behaviour) is unchanged.
        self._by_pc: dict = {}

    def update(self, pc: int, addr: int) -> StrideEntry:
        """Record one committed execution of the load at ``pc``."""
        e = self.table.lookup(pc)
        if e is None:
            e = StrideEntry(last_addr=addr)
            evicted = self.table.insert(pc, e)
            if evicted is not None:
                self._by_pc.pop(evicted[0], None)
            self._by_pc[pc] = e
            return e
        stride = addr - e.last_addr
        if stride == e.stride:
            e.confidence = min(CONF_MAX, e.confidence + 1)
        else:
            e.confidence = max(0, e.confidence - 1)
            if e.confidence == 0:
                e.stride = stride
        e.last_addr = addr
        return e

    def lookup(self, pc: int) -> Optional[StrideEntry]:
        return self._by_pc.get(pc)

    def confident(self, pc: int) -> Optional[StrideEntry]:
        """The entry if its stride prediction is currently trusted."""
        e = self._by_pc.get(pc)
        if e is not None and e.confidence >= CONF_TRUST and e.stride != 0:
            return e
        return None

    def mark_selected(self, pc: int, event: Optional[object] = None,
                      conflict_blacklist: int = 0) -> bool:
        """Set the S flag for the load at ``pc`` (CI selection, step 2).

        A load whose replicas conflicted with stores ``conflict_blacklist``
        or more times is refused (0 disables the blacklist)."""
        e = self._by_pc.get(pc)
        if e is None:
            return False
        if conflict_blacklist and e.conflicts >= conflict_blacklist:
            return False
        e.selected = True
        if event is not None:
            e.event = event
        return True
