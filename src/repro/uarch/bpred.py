"""Branch predictors: gshare (Table 1's default), bimodal, and static.

All share one interface — ``predict`` / ``checkpoint`` / ``speculate`` /
``train`` / ``recover`` — so the fetch unit and the recovery path are
predictor-agnostic.  The bimodal and static predictors exist for the
branch-predictor ablation (the mechanism's benefit depends on how many
mispredictions are left to exploit).
"""

from __future__ import annotations


class Gshare:
    """Global-history XOR-indexed pattern history table.

    History is updated *speculatively* at predict time; a misprediction
    recovery restores the history the branch saw and appends the actual
    outcome (the standard fix-up).  Counters train at branch resolution.
    """

    def __init__(self, bits: int = 16):
        self.bits = bits
        self.mask = (1 << bits) - 1
        self.table = bytearray([2] * (1 << bits))  # weakly taken
        self.history = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self.history) & self.mask

    def predict(self, pc: int, backward: bool = False) -> bool:
        return self.table[self._index(pc)] >= 2

    def checkpoint(self) -> int:
        """History value to save alongside an in-flight branch."""
        return self.history

    def speculate(self, taken: bool) -> None:
        """Push the predicted outcome into the speculative history."""
        self.history = ((self.history << 1) | (1 if taken else 0)) & self.mask

    def train(self, pc: int, history: int, taken: bool) -> None:
        """Update the counter the branch actually indexed with."""
        idx = (pc ^ history) & self.mask
        c = self.table[idx]
        if taken:
            if c < 3:
                self.table[idx] = c + 1
        elif c > 0:
            self.table[idx] = c - 1

    def recover(self, history: int, taken: bool) -> None:
        """Restore history after a misprediction of a branch that saw
        ``history`` and actually went ``taken``."""
        self.history = ((history << 1) | (1 if taken else 0)) & self.mask


class Bimodal:
    """PC-indexed 2-bit counters, no global history."""

    def __init__(self, bits: int = 12):
        self.bits = bits
        self.mask = (1 << bits) - 1
        self.table = bytearray([2] * (1 << bits))

    def predict(self, pc: int, backward: bool = False) -> bool:
        return self.table[pc & self.mask] >= 2

    def checkpoint(self) -> int:
        return 0

    def speculate(self, taken: bool) -> None:
        pass

    def train(self, pc: int, history: int, taken: bool) -> None:
        idx = pc & self.mask
        c = self.table[idx]
        if taken:
            if c < 3:
                self.table[idx] = c + 1
        elif c > 0:
            self.table[idx] = c - 1

    def recover(self, history: int, taken: bool) -> None:
        pass


class StaticBTFN:
    """Backward-taken / forward-not-taken, no state at all."""

    def predict(self, pc: int, backward: bool = False) -> bool:
        return backward

    def checkpoint(self) -> int:
        return 0

    def speculate(self, taken: bool) -> None:
        pass

    def train(self, pc: int, history: int, taken: bool) -> None:
        pass

    def recover(self, history: int, taken: bool) -> None:
        pass


def make_predictor(kind: str, bits: int):
    """Factory for the ``bpred_kind`` configuration knob."""
    if kind == "gshare":
        return Gshare(bits)
    if kind == "bimodal":
        return Bimodal(min(bits, 14))
    if kind == "static":
        return StaticBTFN()
    raise ValueError(f"unknown branch predictor kind {kind!r}")
