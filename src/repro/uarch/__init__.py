"""Out-of-order superscalar substrate (the paper's SimpleScalar stand-in)."""

from .bpred import Bimodal, Gshare, StaticBTFN, make_predictor
from .caches import CacheLevel, MemoryHierarchy
from .config import (
    INF_REGS,
    CacheConfig,
    ProcessorConfig,
    ci,
    scal,
    wb,
    with_spec_mem,
)
from .core import Core, PortState, SimulationError, simulate
from .frontend import FetchUnit
from .hooks import Hooks, MechanismHooks
from .funits import FUPool
from .rename import FreeList, RenameTable
from .rob import DynInst, MEM_ABSENT
from .stats import SimStats

__all__ = [
    "CacheConfig",
    "CacheLevel",
    "Core",
    "DynInst",
    "FetchUnit",
    "Bimodal",
    "FreeList",
    "FUPool",
    "Gshare",
    "StaticBTFN",
    "make_predictor",
    "Hooks",
    "INF_REGS",
    "MechanismHooks",
    "MEM_ABSENT",
    "MemoryHierarchy",
    "PortState",
    "ProcessorConfig",
    "RenameTable",
    "SimStats",
    "SimulationError",
    "ci",
    "scal",
    "simulate",
    "wb",
    "with_spec_mem",
]
