"""Simulation statistics — one counter per number the paper reports."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


class SampledFloat(float):
    """A float derived from a sampled *estimate*, not an exact run.

    Behaves exactly like ``float`` everywhere (arithmetic returns plain
    floats), but carries ``sampled_marker`` so table renderers can
    prefix the value with ``~`` without every call site learning about
    sampling.  JSON serialisation is unchanged (it is a float).
    """

    sampled_marker = True


@dataclass
class SimStats:
    """Counters gathered by one timing-simulation run."""

    # Progress.
    cycles: int = 0
    fetched: int = 0
    dispatched: int = 0
    committed: int = 0
    #: committed instructions whose execution was skipped thanks to a
    #: validated replica (the "Reuse" portion of Figure 12)
    committed_reused: int = 0
    #: dispatched instructions later squashed by branch mispredictions
    #: (the "specBP" portion of Figure 12)
    squashed: int = 0

    # Branches.
    cond_branches: int = 0                # committed conditional branches
    mispredicts: int = 0                  # committed-path mispredictions
    mispredicts_hard: int = 0             # ... of MBS-hard branches

    # Control-independence accounting (Figure 5).
    ci_events: int = 0                    # hard mispredictions examined
    ci_selected: int = 0                  # ... with >=1 CI instruction found
    ci_reused: int = 0                    # ... with >=1 successful reuse

    # Replicas (the "specCI" portion of Figure 12).
    replicas_created: int = 0
    replicas_executed: int = 0
    replica_validations: int = 0
    replica_validation_failures: int = 0
    replica_batches: int = 0
    srsmt_alloc_failures: int = 0
    copy_uops: int = 0

    # Memory system.
    l1d_accesses: int = 0                 # Figure 8
    l1d_load_accesses: int = 0
    l1d_store_accesses: int = 0
    l1d_replica_accesses: int = 0
    l1d_misses: int = 0
    store_forwards: int = 0
    coherence_squashes: int = 0           # Section 2.4.3 conflicts
    stores_committed: int = 0

    # Register file pressure (Section 2.4.2).
    regs_in_use_samples: int = 0
    regs_in_use_sum: int = 0
    regs_in_use_peak: int = 0
    rename_stall_cycles: int = 0

    # Strided-PC propagation (Figure 4 / in-text 1.7 average).
    stridedpc_assignments: int = 0
    stridedpc_sum: int = 0
    stridedpc_overflow: int = 0

    # Speculative data memory.
    spec_mem_alloc_failures: int = 0

    #: IPC timeline: committed-instruction count sampled every
    #: ``interval_cycles`` cycles (shows predictor/mechanism warm-up)
    interval_cycles: int = 256
    interval_committed: list = field(default_factory=list)

    #: cycles the core advanced without ticking because every stage was
    #: provably stalled (idle-cycle skip-ahead, DESIGN §9); purely a
    #: simulator-efficiency diagnostic — identical runs with skip-ahead
    #: disabled produce the same ``cycles`` with ``skipped_cycles == 0``
    skipped_cycles: int = 0

    #: provenance: True when these stats are a sampled *estimate*
    #: stitched from detailed intervals (repro.sampling.estimate), never
    #: for an exact run.  ``sample_intervals`` is the interval count and
    #: ``sample_rel_ci`` the 95% relative half-width of the CPI estimate
    #: derived from interval-to-interval variance.
    sampled: bool = False
    sample_intervals: int = 0
    sample_rel_ci: float = 0.0

    def record_interval(self) -> None:
        self.interval_committed.append(self.committed)

    @property
    def interval_ipc(self) -> list:
        """Per-interval IPC series derived from the committed samples."""
        out = []
        prev = 0
        for c in self.interval_committed:
            out.append((c - prev) / self.interval_cycles)
            prev = c
        return out

    @property
    def ipc(self) -> float:
        value = self.committed / self.cycles if self.cycles else 0.0
        return SampledFloat(value) if self.sampled else value

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.cond_branches if self.cond_branches else 0.0

    @property
    def avg_regs_in_use(self) -> float:
        if not self.regs_in_use_samples:
            return 0.0
        return self.regs_in_use_sum / self.regs_in_use_samples

    @property
    def avg_stridedpcs(self) -> float:
        if not self.stridedpc_assignments:
            return 0.0
        return self.stridedpc_sum / self.stridedpc_assignments

    @property
    def reuse_fraction(self) -> float:
        """Fraction of committed instructions that reused a replica."""
        return self.committed_reused / self.committed if self.committed else 0.0

    @property
    def wrong_spec_activity(self) -> float:
        """Wrongly speculated work / total executed (in-text comparison)."""
        wasted = self.squashed + (self.replicas_executed - self.replica_validations)
        total = self.committed + self.squashed + self.replicas_executed
        return wasted / total if total else 0.0

    def record_reg_usage(self, in_use: int) -> None:
        self.regs_in_use_samples += 1
        self.regs_in_use_sum += in_use
        if in_use > self.regs_in_use_peak:
            self.regs_in_use_peak = in_use

    def as_dict(self) -> Dict[str, float]:
        """Reporting view: scalar counters plus the derived rates.

        The raw ``interval_committed`` sample list and the
        ``interval_cycles`` knob stay out (``interval_ipc`` is the
        derived series); use ``to_dict`` for the lossless form.  The
        sampling provenance fields appear only on sampled estimates, so
        exact-run reporting payloads (and the goldens pinning them) are
        unchanged by the sampling subsystem's existence.
        """
        skip = {"interval_committed", "interval_cycles", "skipped_cycles"}
        if not self.sampled:
            skip |= {"sampled", "sample_intervals", "sample_rel_ci"}
        d = {k: v for k, v in self.__dict__.items() if k not in skip}
        d["ipc"] = self.ipc
        d["mispredict_rate"] = self.mispredict_rate
        d["avg_regs_in_use"] = self.avg_regs_in_use
        d["avg_stridedpcs"] = self.avg_stridedpcs
        d["reuse_fraction"] = self.reuse_fraction
        d["interval_ipc"] = self.interval_ipc
        d["wrong_spec_activity"] = self.wrong_spec_activity
        return d

    # ------------------------------------------------------------------
    # Lossless round-trip, used by the persistent result cache and for
    # shipping results back from simulation worker processes.  Unlike
    # ``as_dict`` (which mixes in derived rates for reporting), these
    # carry exactly the dataclass fields.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-data form holding every field (JSON-serialisable)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimStats":
        """Rebuild a ``SimStats`` from ``to_dict`` output.

        Unknown keys are ignored so caches written by a newer schema
        degrade gracefully; missing keys keep their defaults.
        """
        names = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in names}
        if "interval_committed" in kwargs:
            kwargs["interval_committed"] = list(kwargs["interval_committed"])
        return cls(**kwargs)
