"""Rename map table with the paper's extensions, plus the free list.

Each logical register maps to:

* ``owner`` — the youngest in-flight producer (``None`` once the value is
  architectural), used by the timing model for wakeup;
* ``vect_pc`` — the V/S bit + Seq field of Figure 7: the PC of the latest
  vectorized producer, or ``None``;
* ``strided_pcs`` — the stridedPC extension (Section 2.3.2): the PCs of
  the strided loads in the value's backward slice, capped at
  ``strided_pcs_per_entry`` (Figure 4's knob).
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class RenameTable:
    """64-entry rename map with checkpoint-free undo (per-instruction)."""

    def __init__(self, num_regs: int = 64, strided_pcs_per_entry: int = 2):
        self.num_regs = num_regs
        self.cap = strided_pcs_per_entry
        self.owner: List[Optional[object]] = [None] * num_regs
        self.vect_pc: List[Optional[int]] = [None] * num_regs
        self.strided_pcs: List[Tuple[int, ...]] = [()] * num_regs
        #: stats hooks (wired by the core)
        self.overflow_count = 0
        self.assign_count = 0
        self.assign_sum = 0

    def snapshot_reg(self, r: int) -> tuple:
        """Undo record for logical register ``r``."""
        return (r, self.owner[r], self.vect_pc[r], self.strided_pcs[r])

    def restore_reg(self, rec: tuple) -> None:
        r, owner, vect, spcs = rec
        self.owner[r] = owner
        self.vect_pc[r] = vect
        self.strided_pcs[r] = spcs

    def write(self, r: int, owner: object, vect_pc: Optional[int],
              strided_pcs: Tuple[int, ...]) -> None:
        self.owner[r] = owner
        self.vect_pc[r] = vect_pc
        if len(strided_pcs) > self.cap:
            self.overflow_count += 1
            strided_pcs = strided_pcs[: self.cap]
        if strided_pcs:
            self.assign_count += 1
            self.assign_sum += len(strided_pcs)
        self.strided_pcs[r] = strided_pcs

    def merge_strided(self, srcs) -> Tuple[int, ...]:
        """Union of the sources' stridedPC sets, preserving order."""
        out: List[int] = []
        for r in srcs:
            for pc in self.strided_pcs[r]:
                if pc not in out:
                    out.append(pc)
        return tuple(out)

    def clear_owner_if(self, r: int, inst: object) -> None:
        """Called at commit: the value becomes architectural."""
        if self.owner[r] is inst:
            self.owner[r] = None


class FreeList:
    """Counted physical-register free list (values live with instructions).

    ``capacity`` is the number of registers available for renaming beyond
    the 64 architectural ones.  The control-independence mechanism's
    replicas draw from the same pool in monolithic mode (Section 2.4.2).
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.free = capacity

    @property
    def in_use(self) -> int:
        return self.capacity - self.free

    def alloc(self, n: int = 1) -> bool:
        """Try to allocate ``n`` registers; all-or-nothing."""
        if self.free < n:
            return False
        self.free -= n
        return True

    def alloc_up_to(self, n: int) -> int:
        """Allocate as many as possible, up to ``n``; returns the count."""
        got = min(self.free, n)
        self.free -= got
        return got

    def release(self, n: int = 1) -> None:
        self.free += n
        assert self.free <= self.capacity, "free-list overflow (double release)"
