"""Processor configuration — Table 1 of the paper, plus mechanism knobs."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Optional

#: Sentinel for an effectively unbounded register file ("Inf" in Figure 9).
INF_REGS = 1_000_000


@dataclass(frozen=True)
class CacheConfig:
    """One cache level (sizes in bytes)."""

    size: int
    assoc: int
    line: int
    hit_latency: int


@dataclass(frozen=True)
class ProcessorConfig:
    """Full machine configuration.

    Defaults reproduce Table 1: an 8-way out-of-order superscalar with a
    256-entry instruction window and the three-level cache hierarchy.
    """

    # Front end.
    fetch_width: int = 8
    max_taken_per_fetch: int = 1          # "up to 1 taken branch"
    frontend_depth: int = 3               # fetch -> dispatch latency (cycles)
    fetch_queue_size: int = 32

    # Window / commit.
    window_size: int = 256
    lsq_size: int = 64
    issue_width: int = 8
    commit_width: int = 8

    # Functional units (counts; latencies live in isa.opcodes.FU_LATENCY).
    num_int_alu: int = 6
    num_int_muldiv: int = 3
    num_fp_add: int = 4
    num_fp_muldiv: int = 2
    num_mem_units: int = 8                # address-generation slots (ports gate
                                          # actual cache bandwidth)

    # Register file.
    phys_regs: int = 256                  # total physical registers
    # Branch predictor: gshare with 64K 2-bit counters (Table 1); the
    # ablation harness also supports "bimodal" and "static" (BTFN).
    gshare_bits: int = 16
    bpred_kind: str = "gshare"

    # L1 data cache ports and the wide-bus option (Section 2.4.5).
    l1d_ports: int = 1
    wide_bus: bool = False
    wide_loads_per_access: int = 4        # loads served by one wide access

    # Cache hierarchy (Table 1).
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(64 * 1024, 2, 32, 1))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(256 * 1024, 4, 32, 6))
    l3: CacheConfig = field(default_factory=lambda: CacheConfig(2 * 1024 * 1024, 4, 64, 18))
    memory_latency: int = 100
    mshrs: int = 16                       # outstanding L1 misses

    # ---- control-independence mechanism (None = plain superscalar) ------
    #: a policy name from the registry (``repro.ci.registry``): ``None``
    #: for a plain superscalar, or "ci", "ci-iw", "vect", an ablation
    #: like "ci-oracle-mbs", or any policy registered at runtime.
    ci_policy: Optional[str] = None
    replicas: int = 4                     # speculative instances per insn
    stride_sets: int = 256
    stride_ways: int = 4
    srsmt_sets: int = 64
    srsmt_ways: int = 4
    mbs_sets: int = 64
    mbs_ways: int = 4
    nrbq_size: int = 16
    strided_pcs_per_entry: int = 2        # Figure 4 knob
    #: CI selection window: instructions considered after the re-convergent
    #: point before the CRP disarms.
    ci_select_window: int = 48
    #: extra commit restrictions for the coherence check (Section 2.4.3)
    ci_store_commit_extra: int = 1
    ci_max_store_commits: int = 2
    # Implementation refinements beyond the paper's sketch (DESIGN.md §5):
    #: repair the decode cursor for validations that survived a recovery
    #: (the paper's plain decode<-commit forgets them and churns replicas)
    ci_recovery_repair: bool = True
    #: store-conflict check tests stride-aligned membership, not just the
    #: [lo, hi] bounds (the paper's conservative range check)
    ci_exact_range_check: bool = True
    #: stop re-selecting a load after this many store conflicts (0 = never)
    ci_conflict_blacklist: int = 2
    #: free registers kept out of the replicas' reach (Section 2.4.1's
    #: low-priority rule applied to register allocation)
    ci_alloc_headroom: int = 64
    #: Dead Association Elimination Counter (Section 2.4.2); disabling it
    #: reproduces the in-text register-usage comparison (812 vs 304)
    ci_daec: bool = True
    #: MBS hard-branch filter (Section 2.3.1); disabling it arms the CRP
    #: on *every* misprediction (ablation)
    ci_mbs_filter: bool = True

    # Speculative data memory (Section 2.4.6).  None => replicas allocate
    # from the monolithic register file.
    spec_mem_size: Optional[int] = None
    spec_mem_latency: int = 2
    spec_mem_read_ports: int = 2
    spec_mem_write_ports: int = 2

    # Simulation limits.
    max_cycles: int = 4_000_000

    def __post_init__(self) -> None:
        if self.ci_policy is not None:
            # Imported lazily: the registry lives above uarch in the
            # package graph (ci.* imports uarch.hooks).
            from ..ci.registry import get_policy
            get_policy(self.ci_policy)  # raises with suggestions if unknown
        if self.phys_regs < 64 + 8:
            raise ValueError("phys_regs must cover 64 architectural registers")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.bpred_kind not in ("gshare", "bimodal", "static"):
            raise ValueError(f"unknown bpred_kind {self.bpred_kind!r}")

    @property
    def rename_regs(self) -> int:
        """Registers available for renaming beyond the architectural state."""
        return self.phys_regs - 64


def config_to_dict(cfg: ProcessorConfig) -> dict:
    """JSON-safe dict form of a configuration (wire format, lossless)."""
    return asdict(cfg)


def config_from_dict(data: dict) -> ProcessorConfig:
    """Rebuild a :class:`ProcessorConfig` from :func:`config_to_dict`.

    Strict: an unknown field raises ``ValueError`` (a wire peer speaking
    a newer config schema must not be silently truncated into a config
    that simulates something else).
    """
    if not isinstance(data, dict):
        raise ValueError("config payload must be an object")
    known = {f.name for f in fields(ProcessorConfig)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"unknown config field(s): {', '.join(unknown)}")
    kwargs = dict(data)
    for name in ("l1d", "l2", "l3"):
        level = kwargs.get(name)
        if isinstance(level, dict):
            try:
                kwargs[name] = CacheConfig(**level)
            except TypeError as exc:
                raise ValueError(f"bad {name} cache config: {exc}") from None
    try:
        return ProcessorConfig(**kwargs)
    except TypeError as exc:
        raise ValueError(f"bad config payload: {exc}") from None


# ---------------------------------------------------------------------------
# Named configurations used throughout the evaluation section.
# ---------------------------------------------------------------------------

def scal(ports: int = 1, regs: int = 256) -> ProcessorConfig:
    """Baseline superscalar with scalar L1 ports ("scalxp")."""
    return ProcessorConfig(l1d_ports=ports, wide_bus=False, phys_regs=regs)


def wb(ports: int = 1, regs: int = 256) -> ProcessorConfig:
    """Superscalar with wide L1 buses ("wbxp")."""
    return ProcessorConfig(l1d_ports=ports, wide_bus=True, phys_regs=regs)


def ci(ports: int = 1, regs: int = 256, replicas: int = 4,
       policy: str = "ci", **overrides) -> ProcessorConfig:
    """Wide-bus superscalar plus the control-independence mechanism."""
    return ProcessorConfig(l1d_ports=ports, wide_bus=True, phys_regs=regs,
                           ci_policy=policy, replicas=replicas, **overrides)


def with_spec_mem(cfg: ProcessorConfig, positions: int,
                  latency: int = 2) -> ProcessorConfig:
    """Attach the small speculative data memory ("ci-h-<positions>")."""
    return replace(cfg, spec_mem_size=positions, spec_mem_latency=latency)
