"""Multi-level data-cache hierarchy with wide-bus support.

The hierarchy returns a *latency* per access and maintains LRU state; the
core's scheduler turns latencies into completion times.  Write-back,
write-allocate.  Outstanding L1 misses are capped by the MSHR count
(Table 1: up to 16), modelled as a sliding window of miss-completion
times.
"""

from __future__ import annotations

from typing import List, Tuple

from .config import CacheConfig, ProcessorConfig


class CacheLevel:
    """One set-associative LRU cache level (tag store only)."""

    def __init__(self, cfg: CacheConfig):
        self.cfg = cfg
        self.num_sets = max(1, cfg.size // (cfg.line * cfg.assoc))
        self.assoc = cfg.assoc
        self.line = cfg.line
        self.hit_latency = cfg.hit_latency
        # Per-set list of tags in MRU -> LRU order.
        self.sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, addr: int) -> Tuple[int, int]:
        line_addr = addr // self.line
        return line_addr % self.num_sets, line_addr // self.num_sets

    def access(self, addr: int) -> bool:
        """Touch ``addr``; returns True on hit.  Misses allocate the line."""
        idx, tag = self._locate(addr)
        ways = self.sets[idx]
        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
            self.hits += 1
            return True
        self.misses += 1
        ways.insert(0, tag)
        if len(ways) > self.assoc:
            ways.pop()
        return False

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU state."""
        idx, tag = self._locate(addr)
        return tag in self.sets[idx]


class MemoryHierarchy:
    """L1D + L2 + L3 + main memory, with MSHR-limited outstanding misses."""

    def __init__(self, cfg: ProcessorConfig):
        self.cfg = cfg
        self.l1 = CacheLevel(cfg.l1d)
        self.l2 = CacheLevel(cfg.l2)
        self.l3 = CacheLevel(cfg.l3)
        self.memory_latency = cfg.memory_latency
        self.mshrs = cfg.mshrs
        #: completion cycles of in-flight L1 misses (pruned lazily)
        self._outstanding: List[int] = []

    @property
    def line_size(self) -> int:
        return self.l1.line

    def line_of(self, addr: int) -> int:
        return addr // self.l1.line

    def mshr_available(self, now: int) -> bool:
        """Whether a new L1 miss could be tracked at cycle ``now``."""
        self._outstanding = [c for c in self._outstanding if c > now]
        return len(self._outstanding) < self.mshrs

    def load_latency(self, addr: int, now: int) -> int:
        """Latency of a load access started at ``now`` (L1 state updated).

        An L1 miss consumes an MSHR until the fill returns; if none is
        available the access is delayed until the oldest outstanding miss
        completes (returned as extra latency).
        """
        if self.l1.access(addr):
            return self.l1.hit_latency
        delay = 0
        self._outstanding = [c for c in self._outstanding if c > now]
        if len(self._outstanding) >= self.mshrs:
            delay = min(self._outstanding) - now
        if self.l2.access(addr):
            lat = delay + self.l2.hit_latency
        elif self.l3.access(addr):
            lat = delay + self.l3.hit_latency
        else:
            lat = delay + self.memory_latency
        self._outstanding.append(now + lat)
        return lat

    def store_access(self, addr: int) -> None:
        """A committing store touches the hierarchy (write-allocate)."""
        if not self.l1.access(addr):
            if not self.l2.access(addr):
                self.l3.access(addr)
