"""Dynamic instructions and the unified instruction window (RUU-style)."""

from __future__ import annotations

from typing import List, Optional

from ..isa import Instruction

#: sentinel distinguishing "no previous memory value" from value 0
MEM_ABSENT = object()


class DynInst:
    """One in-flight dynamic instruction: a cursor over the static image.

    Functional results are computed at dispatch (sim-outorder style); the
    timing fields decide when they become architecturally visible.

    All static per-instruction facts live in the shared
    :class:`~repro.isa.predecode.ProgramImage` (indexed by ``pc``); a
    ``DynInst`` carries only its dynamic state.  ``__slots__`` keeps
    attribute access on the fast path — the core reads these fields many
    times per dynamic instruction, wrong paths included.
    """

    __slots__ = (
        "seq", "instr", "pc",
        # functional
        "result", "eff_addr", "actual_taken", "actual_next_pc",
        # branch prediction
        "pred_taken", "pred_next_pc", "bp_history",
        # timing
        "num_pending", "consumers", "issued", "done", "done_cycle",
        "dispatch_cycle", "in_ready",
        # undo records
        "rename_undo", "mem_old", "reg_allocated", "sreg_old",
        # lifecycle
        "squashed", "committed",
        # memory dependence
        "forward_store",
        # control-independence mechanism
        "validated", "validated_entry", "srcs_vect", "hard_branch",
        "commit_ready_at",
    )

    def __init__(self, seq: int, instr: Instruction):
        self.seq = seq
        self.instr = instr
        self.pc = instr.pc
        self.result: Optional[int] = None
        self.eff_addr: Optional[int] = None
        self.actual_taken: Optional[bool] = None
        self.actual_next_pc: int = instr.pc + 1
        self.pred_taken: Optional[bool] = None
        self.pred_next_pc: int = instr.pc + 1
        self.bp_history: int = 0
        self.num_pending = 0
        self.consumers: List["DynInst"] = []
        self.issued = False
        self.done = False
        self.done_cycle = -1
        self.dispatch_cycle = -1
        self.in_ready = False
        self.rename_undo: Optional[tuple] = None
        self.mem_old = MEM_ABSENT
        self.reg_allocated = False
        self.sreg_old: Optional[int] = None
        self.squashed = False
        self.committed = False
        self.forward_store: Optional["DynInst"] = None
        self.validated = False
        self.validated_entry = None
        self.srcs_vect = None
        self.hard_branch = False
        #: validated instructions may commit before their copy µop finishes
        #: moving the value out of the speculative data memory
        self.commit_ready_at = -1

    @property
    def mispredicted(self) -> bool:
        return (self.instr.is_cond_branch
                and self.pred_taken is not None
                and self.pred_taken != self.actual_taken)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(c for c, f in (
            ("I", self.issued), ("D", self.done), ("C", self.committed),
            ("S", self.squashed), ("V", self.validated)) if f)
        return f"<#{self.seq} pc={self.pc} {self.instr.op.name} {flags}>"
