"""Functional-unit pools: per-cycle availability counters."""

from __future__ import annotations

from typing import Dict

from ..isa import FUClass, FU_LATENCY
from .config import ProcessorConfig


class FUPool:
    """Issue-slot bookkeeping for one cycle.

    Fully pipelined units: an instruction occupies its unit only in the
    issue cycle (as in SimpleScalar's default), so availability resets
    every cycle.  Divides share the multiplier units (Table 1).
    """

    def __init__(self, cfg: ProcessorConfig):
        self._capacity: Dict[FUClass, int] = {
            FUClass.INT_ALU: cfg.num_int_alu,
            FUClass.INT_MUL: cfg.num_int_muldiv,
            FUClass.INT_DIV: cfg.num_int_muldiv,
            FUClass.FP_ADD: cfg.num_fp_add,
            FUClass.FP_MUL: cfg.num_fp_muldiv,
            FUClass.FP_DIV: cfg.num_fp_muldiv,
            FUClass.MEM: cfg.num_mem_units,
            FUClass.BRANCH: cfg.num_int_alu,   # branches resolve on int ALUs
            FUClass.NONE: cfg.issue_width,
        }
        # INT_MUL/INT_DIV (and FP_MUL/FP_DIV) share physical units; model
        # with a shared remaining-count per cycle.
        self._shared = {
            FUClass.INT_DIV: FUClass.INT_MUL,
            FUClass.FP_DIV: FUClass.FP_MUL,
            FUClass.BRANCH: FUClass.INT_ALU,
        }
        self._avail: Dict[FUClass, int] = {}
        self.reset()

    def reset(self) -> None:
        self._avail = dict(self._capacity)

    def acquire(self, fu: FUClass) -> bool:
        """Take one unit of class ``fu`` this cycle, if available."""
        key = self._shared.get(fu, fu)
        if self._avail[key] <= 0:
            return False
        self._avail[key] -= 1
        return True

    def latency(self, fu: FUClass) -> int:
        return FU_LATENCY[fu]

    def available(self, fu: FUClass) -> int:
        return self._avail[self._shared.get(fu, fu)]
