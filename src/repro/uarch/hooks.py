"""The typed mechanism hook surface between the core and a mechanism.

:class:`MechanismHooks` is the explicit contract the timing core
programs against: every attachment point the core will ever call, with
its exact signature, in one place.  The base class is a no-op, so a bare
:class:`~repro.uarch.core.Core` is a plain superscalar; the CI
mechanism's :class:`~repro.ci.pipeline.MechanismPipeline` subclasses it
and delegates each hook to its policy-selected components.

``Hooks`` is kept as a compatibility alias for the pre-refactor name.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import Core, PortState
    from .rob import DynInst


class MechanismHooks:
    """Mechanism attachment points; the base class is a no-op superscalar.

    Call sites (all in ``uarch/core.py``, in pipeline-stage order):

    ========================  ================================================
    hook                      called from
    ========================  ================================================
    ``attach``                ``Core.__init__`` (after observer setup)
    ``dispatch_gate``         ``Core._dispatch`` (before any slot is used)
    ``on_dispatch``           ``Core._dispatch`` (after rename + execution)
    ``on_branch_resolved``    ``Core._writeback`` (before recovery)
    ``on_recovery``           ``Core._recover`` (after the window walk-back)
    ``on_commit``             ``Core._commit`` (as the instruction retires)
    ``on_store_commit``       ``Core._commit`` (committing store, pre-hazard)
    ``on_cycle``              ``Core.run`` (end of cycle, leftover slots)
    ``validated_extra_latency``  ``Core._dispatch`` (validated fast path)
    ========================  ================================================
    """

    #: Core reference, set by :meth:`attach`.
    core: "Core"

    #: Whether the mechanism holds replicated (pre-executed) state that
    #: committing stores must be checked against.  The core reads this to
    #: decide whether store commit pays the coherence-check tax
    #: (Section 2.4.3); mechanisms with a replica manager set it True.
    has_replicas: bool = False

    def attach(self, core: "Core") -> None:
        """Called once from ``Core.__init__``; keep the core reference."""
        self.core = core

    def on_dispatch(self, inst: "DynInst") -> None:
        """Called after functional execution + renaming of ``inst``.

        May set ``inst.validated`` (and ``inst.done_cycle``) to make the
        core skip execution entirely (replica reuse)."""

    def on_branch_resolved(self, inst: "DynInst") -> None:
        """Called when a conditional branch executes (before recovery)."""

    def on_recovery(self, pivot: "DynInst", squashed: List["DynInst"],
                    is_branch: bool) -> None:
        """Called after the window was walked back to ``pivot``."""

    def on_commit(self, inst: "DynInst") -> None:
        """Called as ``inst`` retires."""

    def on_store_commit(self, inst: "DynInst") -> bool:
        """Return True if the store conflicts with speculative data
        (Section 2.4.3) and younger instructions must be squashed."""
        return False

    def on_cycle(self, leftover_issue_slots: int, ports: "PortState") -> None:
        """End-of-cycle hook: replica issue uses leftover resources."""

    def dispatch_gate(self) -> bool:
        """Return False to block dispatch this cycle (e.g. an in-pipeline
        vector instruction waiting for registers, as in [12])."""
        return True

    def next_event_cycle(self) -> "int | None":
        """Skip-ahead contract (``Core.run`` idle-cycle skip, DESIGN §9).

        Called when every core stage is provably stalled.  Return:

        * ``None`` — the mechanism is quiescent: it is guaranteed to do
          no observable per-cycle work until some core event (dispatch,
          writeback, recovery) re-activates it;
        * a future cycle number — the mechanism's next scheduled event
          (e.g. an in-flight replica completion); the core will not skip
          past it;
        * any value ``<=`` the current cycle — veto: the mechanism has
          (or may have) per-cycle work pending, tick normally.

        The no-op base mechanism never has per-cycle work.
        """
        return None

    def validated_extra_latency(self, inst: "DynInst") -> int:
        """Extra cycles before a validated instruction's value is usable
        (the speculative-data-memory copy path)."""
        return 0


#: compatibility alias for the pre-refactor name
Hooks = MechanismHooks
