"""Fetch unit: 8-wide, at most one predicted-taken branch per cycle."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..isa import Program
from ..isa.predecode import (
    CTRL_COND_BWD,
    CTRL_HALT,
    CTRL_JUMP,
    CTRL_SEQ,
    predecode,
)
from .bpred import Gshare
from .config import ProcessorConfig
from .rob import DynInst


class FetchUnit:
    """Fetches down the *predicted* path into a fetch queue.

    Entries carry a ``ready_at`` cycle modelling the decode/rename depth;
    dispatch consumes them once ready.  A misprediction recovery flushes
    the queue and redirects the PC (effective the following cycle).
    """

    def __init__(self, cfg: ProcessorConfig, program: Program, bpred: Gshare):
        self.cfg = cfg
        self.program = program
        #: shared decode-once image (fetch reads control class + target)
        self.image = predecode(program)
        self.bpred = bpred
        # Hoisted config scalars (read every fetch cycle).
        self._fetch_width = cfg.fetch_width
        self._queue_size = cfg.fetch_queue_size
        self._depth = cfg.frontend_depth
        self._max_taken = cfg.max_taken_per_fetch
        self.pc = 0
        self.queue: Deque[Tuple[int, DynInst]] = deque()  # (ready_at, inst)
        self.stalled = False      # ran past code / fetched HALT
        self._redirect_at: Optional[int] = None
        self._redirect_pc: int = 0
        self.next_seq = 0
        #: pipeline observer (set via :meth:`set_observer`; ``None`` when
        #: not observing)
        self.observer: Optional[object] = None

    def set_observer(self, observer) -> None:
        """Install the (already normalised) pipeline observer.

        The core calls this once during construction with its
        ``active_observer`` — ``None`` means "not observing" and keeps
        the fetch loop on the no-event fast path.
        """
        self.observer = observer

    def redirect(self, pc: int, cycle: int) -> None:
        """Squash the queue and restart fetching at ``pc`` next cycle."""
        obs = self.observer
        if obs is not None:
            # Wrong-path instructions still in the fetch queue vanish
            # here without touching core stats; the trace records them
            # as squashed at the redirect cycle.
            for _, di in self.queue:
                obs.on_squash(di, cycle)
        self.queue.clear()
        self._redirect_at = cycle + 1
        self._redirect_pc = pc
        self.stalled = True

    def fetch_cycle(self, cycle: int) -> int:
        """Fetch up to ``fetch_width`` instructions; returns the count."""
        if self._redirect_at is not None:
            if cycle < self._redirect_at:
                return 0
            self.pc = self._redirect_pc
            self._redirect_at = None
            self.stalled = False
        if self.stalled:
            return 0
        image = self.image
        code = self.program.code
        ctrl_a = image.ctrl
        target_a = image.target
        ncode = image.n
        queue = self.queue
        queue_append = queue.append
        bpred = self.bpred
        obs = self.observer
        pc = self.pc
        seq = self.next_seq
        fetched = 0
        taken_seen = 0
        limit = min(self._fetch_width, self._queue_size - len(queue))
        ready_at = cycle + self._depth
        while fetched < limit:
            if not 0 <= pc < ncode:
                self.stalled = True
                break
            di = DynInst(seq, code[pc])
            seq += 1
            next_pc = pc + 1
            ctrl = ctrl_a[pc]
            if ctrl != CTRL_SEQ:
                if ctrl <= CTRL_COND_BWD:     # conditional branch
                    di.bp_history = bpred.checkpoint()
                    di.pred_taken = bpred.predict(
                        pc, backward=ctrl == CTRL_COND_BWD)
                    bpred.speculate(di.pred_taken)
                    if di.pred_taken:
                        next_pc = target_a[pc]
                        taken_seen += 1
                    di.pred_next_pc = next_pc
                elif ctrl == CTRL_JUMP:
                    next_pc = target_a[pc]
                    di.pred_next_pc = next_pc
                    taken_seen += 1
            queue_append((ready_at, di))
            if obs is not None:
                obs.on_fetch(di, cycle)
            fetched += 1
            pc = next_pc
            if ctrl == CTRL_HALT:
                self.stalled = True
                break
            if taken_seen >= self._max_taken:
                break
        self.pc = pc
        self.next_seq = seq
        return fetched

    def pop_ready(self, cycle: int) -> Optional[DynInst]:
        """Take the oldest fetched instruction that has finished decode."""
        if self.queue and self.queue[0][0] <= cycle:
            return self.queue.popleft()[1]
        return None

    @property
    def empty(self) -> bool:
        return not self.queue and self.stalled and self._redirect_at is None
