"""Fetch unit: 8-wide, at most one predicted-taken branch per cycle."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..isa import Program
from .bpred import Gshare
from .config import ProcessorConfig
from .rob import DynInst


class FetchUnit:
    """Fetches down the *predicted* path into a fetch queue.

    Entries carry a ``ready_at`` cycle modelling the decode/rename depth;
    dispatch consumes them once ready.  A misprediction recovery flushes
    the queue and redirects the PC (effective the following cycle).
    """

    def __init__(self, cfg: ProcessorConfig, program: Program, bpred: Gshare):
        self.cfg = cfg
        self.program = program
        self.bpred = bpred
        self.pc = 0
        self.queue: Deque[Tuple[int, DynInst]] = deque()  # (ready_at, inst)
        self.stalled = False      # ran past code / fetched HALT
        self._redirect_at: Optional[int] = None
        self._redirect_pc: int = 0
        self.next_seq = 0

    def redirect(self, pc: int, cycle: int) -> None:
        """Squash the queue and restart fetching at ``pc`` next cycle."""
        self.queue.clear()
        self._redirect_at = cycle + 1
        self._redirect_pc = pc
        self.stalled = True

    def fetch_cycle(self, cycle: int) -> int:
        """Fetch up to ``fetch_width`` instructions; returns the count."""
        if self._redirect_at is not None:
            if cycle < self._redirect_at:
                return 0
            self.pc = self._redirect_pc
            self._redirect_at = None
            self.stalled = False
        if self.stalled:
            return 0
        code = self.program.code
        fetched = 0
        taken_seen = 0
        room = self.cfg.fetch_queue_size - len(self.queue)
        limit = min(self.cfg.fetch_width, room)
        ready_at = cycle + self.cfg.frontend_depth
        while fetched < limit:
            if not (0 <= self.pc < len(code)):
                self.stalled = True
                break
            instr = code[self.pc]
            di = DynInst(self.next_seq, instr)
            self.next_seq += 1
            next_pc = self.pc + 1
            if instr.is_cond_branch:
                di.bp_history = self.bpred.checkpoint()
                di.pred_taken = self.bpred.predict(
                    self.pc, backward=instr.is_backward_branch)
                self.bpred.speculate(di.pred_taken)
                if di.pred_taken:
                    next_pc = instr.target
                    taken_seen += 1
                di.pred_next_pc = next_pc
            elif instr.is_jump:
                next_pc = instr.target
                di.pred_next_pc = next_pc
                taken_seen += 1
            self.queue.append((ready_at, di))
            fetched += 1
            self.pc = next_pc
            if instr.is_halt:
                self.stalled = True
                break
            if taken_seen >= self.cfg.max_taken_per_fetch:
                break
        return fetched

    def pop_ready(self, cycle: int) -> Optional[DynInst]:
        """Take the oldest fetched instruction that has finished decode."""
        if self.queue and self.queue[0][0] <= cycle:
            return self.queue.popleft()[1]
        return None

    @property
    def empty(self) -> bool:
        return not self.queue and self.stalled and self._redirect_at is None
