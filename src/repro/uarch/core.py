"""The cycle-level out-of-order core.

Execution model (DESIGN.md §5): instructions execute *functionally* at
dispatch — including down mispredicted paths, against a speculative
register file and memory image with per-instruction undo records — while
the timing model decides when results become available.  This mirrors
SimpleScalar's sim-outorder structure and gives real wrong-path fetch,
which the control-independence mechanism's mask construction needs.

Stage order within a cycle (reverse pipeline order, standard):
commit → writeback → issue → dispatch → fetch → mechanism hooks.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Deque, Dict, List, Optional

from ..isa import (
    MASK64,
    FUClass,
    FU_LATENCY,
    NUM_LOGICAL_REGS,
    Program,
)
from ..isa.instructions import K_ALU, K_BRANCH, K_JUMP, K_LOAD, K_STORE
from ..isa.predecode import (
    F_COND_BRANCH,
    F_HALT,
    F_LOAD,
    F_MEM,
    F_STORE,
    F_WRITES_REG,
    predecode,
)
from ..observe.base import NullObserver, Observer
from .bpred import make_predictor
from .caches import MemoryHierarchy
from .config import ProcessorConfig
from .frontend import FetchUnit
from .funits import FUPool
from .hooks import Hooks, MechanismHooks
from .rename import FreeList, RenameTable
from .rob import DynInst, MEM_ABSENT
from .stats import SimStats


class SimulationError(RuntimeError):
    """Raised when the simulation cannot make progress."""


class PortState:
    """Per-cycle L1 data-cache port arbitration, including wide buses.

    One instance lives for the whole simulation and is ``reset()`` each
    cycle — allocating a fresh object (and its ``open_lines`` dict) per
    cycle showed up in profiles of long runs.
    """

    def __init__(self, cfg: ProcessorConfig, stats: SimStats,
                 hierarchy: MemoryHierarchy):
        self.cfg = cfg
        self.stats = stats
        self.hierarchy = hierarchy
        self.ports_left = cfg.l1d_ports
        self.open_lines: Dict[int, int] = {}

    def reset(self) -> None:
        """Start a new cycle: full port budget, no open wide-bus lines."""
        self.ports_left = self.cfg.l1d_ports
        if self.open_lines:
            self.open_lines.clear()

    def can_load(self, line: int) -> bool:
        if self.cfg.wide_bus and self.open_lines.get(line, 0) > 0:
            return True
        return self.ports_left > 0

    def do_load(self, line: int, replica: bool = False) -> None:
        """Consume port bandwidth for one load (``can_load`` must hold)."""
        if self.cfg.wide_bus:
            slots = self.open_lines.get(line, 0)
            if slots > 0:
                self.open_lines[line] = slots - 1
                return
            self.ports_left -= 1
            self.open_lines[line] = self.cfg.wide_loads_per_access - 1
        else:
            self.ports_left -= 1
        self.stats.l1d_accesses += 1
        if replica:
            self.stats.l1d_replica_accesses += 1
        else:
            self.stats.l1d_load_accesses += 1

    def try_store(self) -> bool:
        if self.ports_left <= 0:
            return False
        self.ports_left -= 1
        self.stats.l1d_accesses += 1
        self.stats.l1d_store_accesses += 1
        return True


def _skip_ahead_default() -> bool:
    """Idle-cycle skip-ahead is on unless ``REPRO_SKIP=0`` disables it."""
    return os.environ.get("REPRO_SKIP", "1").lower() not in ("0", "off", "no")


class Core:
    """One simulated processor running one program.

    ``skip_ahead`` controls idle-cycle skip-ahead (DESIGN.md §9): when no
    stage can provably make progress the clock advances straight to the
    next cycle at which any event is possible.  Skipping is exact — all
    per-cycle statistics bookkeeping is replayed over the span, and with
    an observer attached the span is force-ticked cycle by cycle so CPI
    stacks, pipeview traces and the invariant checker see every cycle.
    ``None`` (the default) resolves from the environment
    (``REPRO_SKIP=0`` disables); tests force it both ways to assert
    byte-identical results.
    """

    def __init__(self, cfg: ProcessorConfig, program: Program,
                 hooks: Optional[MechanismHooks] = None,
                 observer: Optional[Observer] = None,
                 skip_ahead: Optional[bool] = None,
                 boot: Optional[object] = None):
        self.cfg = cfg
        self.program = program
        #: shared decode-once image (see repro.isa.predecode)
        self.image = predecode(program)
        self.skip_ahead = (_skip_ahead_default() if skip_ahead is None
                           else skip_ahead)
        self.stats = SimStats()
        self.bpred = make_predictor(cfg.bpred_kind, cfg.gshare_bits)
        self.fetch = FetchUnit(cfg, program, self.bpred)
        self.hierarchy = MemoryHierarchy(cfg)
        self.fu = FUPool(cfg)
        self.rename = RenameTable(NUM_LOGICAL_REGS, cfg.strided_pcs_per_entry)
        self.freelist = FreeList(cfg.rename_regs)
        self.window: Deque[DynInst] = deque()
        self.lsq_count = 0
        #: in-flight stores per effective address (youngest last)
        self.store_map: Dict[int, List[DynInst]] = {}
        # Speculative architectural state (functional-at-dispatch).
        self.sregs: List[int] = [0] * NUM_LOGICAL_REGS
        self.mem: Dict[int, int] = program.initial_memory()
        # Scheduling structures.
        self.ready: List[tuple] = []        # (seq, inst)
        self.completion: List[tuple] = []   # (done_cycle, seq, inst)
        self.cycle = 0
        self.halted = False
        # Observation (read-only; see repro.observe).  ``None`` and
        # NullObserver normalise to "not observing" so the hot loop pays
        # one ``is not None`` test per event site and nothing else.
        self.observer = observer
        self._obs: Optional[Observer] = (
            None if observer is None or isinstance(observer, NullObserver)
            else observer)
        self.fetch.set_observer(self._obs)
        if self._obs is not None:
            self._obs.attach(self)
        self.hooks: MechanismHooks = hooks or MechanismHooks()
        self.hooks.attach(self)
        self._last_progress_cycle = 0
        self._ports = PortState(cfg, self.stats, self.hierarchy)
        if boot is not None:
            # Boot from a functional checkpoint (repro.sampling): seed
            # the architectural state — register file, memory image and
            # fetch cursor — from the checkpointed values.  Architectural
            # state depends only on the program, so one checkpoint boots
            # every config/policy point; the *microarchitectural* state
            # (branch predictor, caches, rename) deliberately starts
            # cold — the sampling plan's detailed-warmup window exists
            # to re-warm it before measurement begins.
            self.sregs[:] = boot.regs
            self.mem.update(boot.mem_delta)
            self.fetch.pc = boot.pc

    @property
    def active_observer(self) -> Optional[Observer]:
        """The observer receiving events, or ``None`` when not observing.

        This is the formal accessor for mechanism code: ``None`` and
        :class:`NullObserver` are already normalised away, so callers
        guard event emission with one ``is not None`` test.
        """
        return self._obs

    # ------------------------------------------------------------------
    # Public driver.
    # ------------------------------------------------------------------
    def run(self, max_instructions: Optional[int] = None) -> SimStats:
        """Simulate until the program halts (or limits trip)."""
        max_insn = max_instructions or (1 << 62)
        # Hoisted hot locals: each name below is read every cycle.
        stats = self.stats
        fetch = self.fetch
        hooks = self.hooks
        fu = self.fu
        ports = self._ports
        freelist = self.freelist
        obs = self._obs
        window = self.window
        completion = self.completion
        ready = self.ready
        cfg = self.cfg
        max_cycles = cfg.max_cycles
        window_size = cfg.window_size
        lsq_size = cfg.lsq_size
        fetch_queue_size = cfg.fetch_queue_size
        flags_a = self.image.flags
        interval = stats.interval_cycles
        skipping = self.skip_ahead
        while not self.halted:
            cycle = self.cycle = self.cycle + 1
            stats.cycles = cycle
            if cycle > max_cycles:
                raise SimulationError(
                    f"{self.program.name}: exceeded {max_cycles} cycles")
            if cycle - self._last_progress_cycle > 20_000:
                raise SimulationError(
                    f"{self.program.name}: no commit for 20k cycles at "
                    f"cycle {cycle} (head={self.window[0] if self.window else None})")
            fu.reset()
            ports.reset()
            self._commit(ports)
            if self.halted or stats.committed >= max_insn:
                break
            self._writeback()
            leftover = self._issue(ports)
            self._dispatch()
            stats.fetched += fetch.fetch_cycle(cycle)
            hooks.on_cycle(leftover, ports)
            in_use = freelist.in_use
            stats.record_reg_usage(in_use)
            if cycle % interval == 0:
                stats.record_interval()
            if obs is not None:
                obs.on_cycle_end(self)
            if (not window and fetch.empty and not completion):
                break  # fell off the end of the program
            # ----------------------------------------------------------
            # Idle-cycle skip-ahead (DESIGN.md §9): when every stage is
            # provably stalled until a known future cycle, advance the
            # clock to just before that cycle instead of ticking through
            # the span.  Every guard below is conservative — any state
            # that *could* act next cycle vetoes the skip.
            # ----------------------------------------------------------
            if not skipping or ready:
                continue  # an issuable instruction: next cycle acts
            # Next-event candidates; the watchdog horizon bounds the skip
            # so a genuine deadlock still trips at the same cycle.
            nxt = self._last_progress_cycle + 20_001
            if cycle + 1 >= nxt:
                continue
            if window:
                head = window[0]
                if head.done:
                    continue  # commits next cycle
                if head.validated:
                    cra = head.commit_ready_at
                    if cra <= cycle:
                        continue  # commit-ready (or unknown): no skip
                    if cra < nxt:
                        nxt = cra
            if completion and completion[0][0] < nxt:
                nxt = completion[0][0]
            queue = fetch.queue
            if queue:
                head_ready = queue[0][0]
                if head_ready > cycle:
                    if head_ready < nxt:
                        nxt = head_ready  # decode depth: ready later
                elif not (len(window) >= window_size
                          or (flags_a[queue[0][1].pc] & F_MEM
                              and self.lsq_count >= lsq_size)):
                    # Dispatch could act (or charge a rename stall) next
                    # cycle; only window-full / LSQ-full blockage — which
                    # drains via commit, covered by the candidates above —
                    # is safely skippable.
                    continue
            redirect_at = fetch._redirect_at
            if redirect_at is not None:
                if redirect_at < nxt:
                    nxt = redirect_at
            elif not fetch.stalled and len(queue) < fetch_queue_size:
                continue  # the front end fetches next cycle
            mech = hooks.next_event_cycle()
            if mech is not None:
                if mech <= cycle:
                    continue  # mechanism vetoes (per-cycle work pending)
                if mech < nxt:
                    nxt = mech
            if max_cycles < nxt:
                nxt = max_cycles + 1
            span_end = nxt - 1
            if span_end <= cycle:
                continue
            span = span_end - cycle
            stats.skipped_cycles += span
            if obs is None:
                # Batch the per-cycle bookkeeping over the whole span:
                # register-pressure samples and interval marks see state
                # frozen exactly as every skipped cycle would have.
                stats.regs_in_use_samples += span
                stats.regs_in_use_sum += span * in_use
                marks = span_end // interval - cycle // interval
                if marks:
                    stats.interval_committed.extend(
                        [stats.committed] * marks)
                self.cycle = span_end
                stats.cycles = span_end
            else:
                # Observed run: force-tick the span so per-cycle
                # observers (CPI stack, pipeview, invariant checker) see
                # every cycle with exact state.  No stage can act, so
                # only the clock and the bookkeeping advance.
                c = cycle
                while c < span_end:
                    c += 1
                    self.cycle = c
                    stats.cycles = c
                    stats.record_reg_usage(in_use)
                    if c % interval == 0:
                        stats.record_interval()
                    obs.on_cycle_end(self)
        self.stats.stridedpc_assignments = self.rename.assign_count
        self.stats.stridedpc_sum = self.rename.assign_sum
        self.stats.stridedpc_overflow = self.rename.overflow_count
        if obs is not None:
            obs.finalize(self.stats)
        return self.stats

    # ------------------------------------------------------------------
    # Commit.
    # ------------------------------------------------------------------
    def _commit(self, ports: PortState) -> None:
        cfg = self.cfg
        obs = self._obs
        flags_a = self.image.flags
        slots = cfg.commit_width
        stores_this_cycle = 0
        while slots > 0 and self.window:
            inst = self.window[0]
            if not inst.done and not (
                    inst.validated and 0 <= inst.commit_ready_at <= self.cycle):
                break
            flags = flags_a[inst.pc]
            if flags & F_STORE:
                # The coherence check (Section 2.4.3) taxes store commit
                # only when replicas exist to check against.
                has_replicas = self.hooks.has_replicas
                max_stores = (cfg.ci_max_store_commits if has_replicas
                              else cfg.l1d_ports + 1)
                if stores_this_cycle >= max_stores:
                    break
                if not ports.try_store():
                    break
                cost = 1 + (cfg.ci_store_commit_extra if has_replicas else 0)
                if slots < cost:
                    break
                slots -= cost
                stores_this_cycle += 1
            else:
                slots -= 1
            self.window.popleft()
            inst.committed = True
            self.stats.committed += 1
            if obs is not None:
                obs.on_commit(inst, self.cycle)
            self._last_progress_cycle = self.cycle
            if inst.validated:
                self.stats.committed_reused += 1
            if flags & F_WRITES_REG:
                self.freelist.release(1)
                self.rename.clear_owner_if(self.image.rd[inst.pc], inst)
            if flags & F_MEM:
                self.lsq_count -= 1
            if flags & F_STORE:
                self.stats.stores_committed += 1
                self.hierarchy.store_access(inst.eff_addr)
                self._store_map_remove(inst)
                conflict = self.hooks.on_store_commit(inst)
                if conflict:
                    self.stats.coherence_squashes += 1
                    self._recover(inst, inst.pc + 1, is_branch=False)
                    self.hooks.on_commit(inst)
                    return
            if flags & F_COND_BRANCH:
                self.stats.cond_branches += 1
                if inst.mispredicted:
                    self.stats.mispredicts += 1
                    if inst.hard_branch:
                        self.stats.mispredicts_hard += 1
            self.hooks.on_commit(inst)
            if flags & F_HALT:
                self.halted = True
                return

    # ------------------------------------------------------------------
    # Writeback / branch resolution.
    # ------------------------------------------------------------------
    def _writeback(self) -> None:
        comp = self.completion
        obs = self._obs
        flags_a = self.image.flags
        while comp and comp[0][0] <= self.cycle:
            _, _, inst = heapq.heappop(comp)
            if inst.squashed or inst.done:
                continue
            inst.done = True
            if obs is not None:
                obs.on_writeback(inst, self.cycle)
            for c in inst.consumers:
                c.num_pending -= 1
                if (c.num_pending == 0 and not c.issued and not c.squashed
                        and not c.in_ready):
                    c.in_ready = True
                    heapq.heappush(self.ready, (c.seq, c))
            if flags_a[inst.pc] & F_COND_BRANCH:
                self.bpred.train(inst.pc, inst.bp_history, inst.actual_taken)
                self.hooks.on_branch_resolved(inst)
                if inst.mispredicted and not inst.squashed:
                    self.bpred.recover(inst.bp_history, inst.actual_taken)
                    self._recover(inst, inst.actual_next_pc, is_branch=True)

    # ------------------------------------------------------------------
    # Recovery: squash everything younger than ``pivot``.
    # ------------------------------------------------------------------
    def _recover(self, pivot: DynInst, redirect_pc: int, is_branch: bool) -> None:
        squashed: List[DynInst] = []
        while self.window and self.window[-1].seq > pivot.seq:
            inst = self.window.pop()
            self._undo(inst)
            squashed.append(inst)
        squashed.reverse()
        self.hooks.on_recovery(pivot, squashed, is_branch)
        if self._obs is not None:
            self._obs.on_recovery(pivot, len(squashed), is_branch, self.cycle)
        self.fetch.redirect(redirect_pc, self.cycle)

    def _undo(self, inst: DynInst) -> None:
        """Roll back one instruction's functional and rename effects."""
        inst.squashed = True
        self.stats.squashed += 1
        if self._obs is not None:
            self._obs.on_squash(inst, self.cycle)
        flags = self.image.flags[inst.pc]
        if flags & F_STORE:
            if inst.mem_old is MEM_ABSENT:
                self.mem.pop(inst.eff_addr, None)
            else:
                self.mem[inst.eff_addr] = inst.mem_old
            self._store_map_remove(inst)
        if flags & F_MEM:
            self.lsq_count -= 1
        if flags & F_WRITES_REG:
            self.sregs[self.image.rd[inst.pc]] = inst.sreg_old
            self.rename.restore_reg(inst.rename_undo)
            if inst.reg_allocated:
                self.freelist.release(1)

    def _store_map_remove(self, inst: DynInst) -> None:
        lst = self.store_map.get(inst.eff_addr)
        if lst is not None:
            try:
                lst.remove(inst)
            except ValueError:
                pass
            if not lst:
                del self.store_map[inst.eff_addr]

    # ------------------------------------------------------------------
    # Issue.
    # ------------------------------------------------------------------
    def _issue(self, ports: PortState) -> int:
        issued = 0
        deferred: List[tuple] = []
        cfg = self.cfg
        obs = self._obs
        flags_a = self.image.flags
        fu_a = self.image.fu_class
        while issued < cfg.issue_width and self.ready:
            seq, inst = heapq.heappop(self.ready)
            inst.in_ready = False
            if inst.squashed or inst.issued:
                continue
            is_load = flags_a[inst.pc] & F_LOAD
            fu = fu_a[inst.pc]
            if is_load and inst.forward_store is None:
                line = self.hierarchy.line_of(inst.eff_addr)
                if not ports.can_load(line) or self.fu.available(FUClass.MEM) <= 0:
                    deferred.append((seq, inst))
                    continue
                self.fu.acquire(FUClass.MEM)
                ports.do_load(line)
                lat = self.hierarchy.load_latency(inst.eff_addr, self.cycle)
                if lat > self.hierarchy.l1.hit_latency:
                    self.stats.l1d_misses += 1
            else:
                if not self.fu.acquire(fu):
                    deferred.append((seq, inst))
                    continue
                if is_load:  # forwarded from an in-flight store
                    self.stats.store_forwards += 1
                    lat = 1
                else:
                    lat = FU_LATENCY[fu]
            inst.issued = True
            issued += 1
            inst.done_cycle = self.cycle + lat
            heapq.heappush(self.completion, (inst.done_cycle, inst.seq, inst))
            if obs is not None:
                obs.on_issue(inst, self.cycle, lat)
        for item in deferred:
            item[1].in_ready = True
            heapq.heappush(self.ready, item)
        return cfg.issue_width - issued

    # ------------------------------------------------------------------
    # Dispatch: rename + functional execution, fused over the predecoded
    # image.  One pass per instruction reads the flat arrays instead of
    # chasing ``Instruction`` attributes (the pre-fusion split into
    # ``_execute_functional`` / ``_rename_and_schedule`` cost two extra
    # calls and repeated attribute loads per dynamic instruction on the
    # hottest path in the simulator).
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        if not self.hooks.dispatch_gate():
            return
        queue = self.fetch.queue
        cycle = self.cycle
        if not queue or queue[0][0] > cycle:
            return
        cfg = self.cfg
        window = self.window
        obs = self._obs
        hooks = self.hooks
        stats = self.stats
        freelist = self.freelist
        rename = self.rename
        owner_a = rename.owner
        sregs = self.sregs
        mem = self.mem
        store_map = self.store_map
        completion = self.completion
        ready = self.ready
        heappush = heapq.heappush
        image = self.image
        kind_a = image.kind
        flags_a = image.flags
        rd_a = image.rd
        rs1_a = image.rs1
        rs2_a = image.rs2
        imm_a = image.imm
        target_a = image.target
        srcs_a = image.srcs
        alu_a = image.alu_fn
        branch_a = image.branch_fn
        window_size = cfg.window_size
        lsq_size = cfg.lsq_size
        for _ in range(cfg.issue_width):
            if len(window) >= window_size:
                break
            if not queue or queue[0][0] > cycle:
                break
            inst = queue[0][1]
            pc = inst.pc
            flags = flags_a[pc]
            if flags & F_MEM and self.lsq_count >= lsq_size:
                break
            writes = flags & F_WRITES_REG
            if writes and not freelist.alloc(1):
                stats.rename_stall_cycles += 1
                break
            queue.popleft()
            if writes:
                inst.reg_allocated = True
            # -- functional execution (sim-outorder style).  The or-zero
            # register encoding is safe: evaluation callables ignore
            # their unused operands (see repro.isa.predecode).
            kind = kind_a[pc]
            if kind == K_ALU:
                rd = rd_a[pc]
                inst.sreg_old = sregs[rd]
                inst.result = result = alu_a[pc](
                    sregs[rs1_a[pc]], sregs[rs2_a[pc]], imm_a[pc])
                sregs[rd] = result
            elif kind == K_LOAD:
                addr = (sregs[rs1_a[pc]] + imm_a[pc]) & MASK64
                inst.eff_addr = addr
                rd = rd_a[pc]
                inst.sreg_old = sregs[rd]
                inst.result = result = mem.get(addr, 0)
                sregs[rd] = result
            elif kind == K_STORE:
                addr = (sregs[rs1_a[pc]] + imm_a[pc]) & MASK64
                inst.eff_addr = addr
                inst.mem_old = mem.get(addr, MEM_ABSENT)
                inst.result = result = sregs[rs2_a[pc]]
                mem[addr] = result
            elif kind == K_BRANCH:
                taken = branch_a[pc](sregs[rs1_a[pc]], sregs[rs2_a[pc]])
                inst.actual_taken = taken
                inst.actual_next_pc = target_a[pc] if taken else pc + 1
            elif kind == K_JUMP:
                inst.actual_next_pc = target_a[pc]
            # -- rename: source dependencies through the rename table.
            num_pending = 0
            for r in srcs_a[pc]:
                owner = owner_a[r]
                if owner is not None and not owner.done \
                        and not owner.squashed:
                    num_pending += 1
                    owner.consumers.append(inst)
            if flags & F_MEM:
                # Memory dependence: forward from the youngest older
                # in-flight store to the same address (perfect
                # disambiguation, DESIGN.md §5).
                if flags & F_LOAD:
                    stores = store_map.get(inst.eff_addr)
                    if stores:
                        s = stores[-1]
                        inst.forward_store = s
                        if not s.done:
                            num_pending += 1
                            s.consumers.append(inst)
                else:
                    store_map.setdefault(inst.eff_addr, []).append(inst)
                self.lsq_count += 1
            if num_pending:
                inst.num_pending = num_pending
            # Destination rename, with default stridedPC propagation
            # (ALU ops merge their sources'; the mechanism hook refines
            # loads).
            if writes:
                rd = rd_a[pc]
                srcs = srcs_a[pc]
                spcs = rename.merge_strided(srcs) \
                    if kind != K_LOAD and srcs else ()
                inst.rename_undo = rename.snapshot_reg(rd)
                rename.write(rd, inst, None, spcs)
            inst.dispatch_cycle = cycle
            # -- schedule (K_JUMP/K_NOP/K_HALT complete unconditionally).
            if kind >= K_JUMP:
                inst.issued = True
                inst.done_cycle = cycle + 1
                heappush(completion, (cycle + 1, inst.seq, inst))
            elif num_pending == 0:
                inst.in_ready = True
                heappush(ready, (inst.seq, inst))
            stats.dispatched += 1
            window.append(inst)
            hooks.on_dispatch(inst)
            if obs is not None:
                obs.on_dispatch(inst, cycle)
            if inst.validated and not inst.issued:
                # Replica reuse: skip execution.  The instruction may reach
                # commit immediately (validation goes straight there,
                # Section 2.4.6); consumers wait for the copy out of the
                # speculative data memory, charged as extra latency.
                lat = 1 + hooks.validated_extra_latency(inst)
                inst.issued = True
                inst.commit_ready_at = cycle + 1
                inst.done_cycle = cycle + lat
                heappush(completion, (inst.done_cycle, inst.seq, inst))
                if obs is not None:
                    obs.on_issue(inst, cycle, lat)


def simulate(program: Program, cfg: Optional[ProcessorConfig] = None,
             hooks: Optional[MechanismHooks] = None,
             max_instructions: Optional[int] = None,
             observer: Optional[Observer] = None,
             skip_ahead: Optional[bool] = None) -> SimStats:
    """Convenience wrapper: build a core, run it, return the statistics."""
    core = Core(cfg or ProcessorConfig(), program, hooks, observer=observer,
                skip_ahead=skip_ahead)
    return core.run(max_instructions=max_instructions)
