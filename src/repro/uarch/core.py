"""The cycle-level out-of-order core.

Execution model (DESIGN.md §5): instructions execute *functionally* at
dispatch — including down mispredicted paths, against a speculative
register file and memory image with per-instruction undo records — while
the timing model decides when results become available.  This mirrors
SimpleScalar's sim-outorder structure and gives real wrong-path fetch,
which the control-independence mechanism's mask construction needs.

Stage order within a cycle (reverse pipeline order, standard):
commit → writeback → issue → dispatch → fetch → mechanism hooks.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional

from ..isa import (
    MASK64,
    FUClass,
    FU_LATENCY,
    Instruction,
    NUM_LOGICAL_REGS,
    Op,
    Program,
)
from ..isa.instructions import K_ALU, K_BRANCH, K_JUMP, K_LOAD, K_STORE
from ..observe.base import NullObserver, Observer
from .bpred import make_predictor
from .caches import MemoryHierarchy
from .config import ProcessorConfig
from .frontend import FetchUnit
from .funits import FUPool
from .hooks import Hooks, MechanismHooks
from .rename import FreeList, RenameTable
from .rob import DynInst, MEM_ABSENT
from .stats import SimStats


class SimulationError(RuntimeError):
    """Raised when the simulation cannot make progress."""


class PortState:
    """Per-cycle L1 data-cache port arbitration, including wide buses.

    One instance lives for the whole simulation and is ``reset()`` each
    cycle — allocating a fresh object (and its ``open_lines`` dict) per
    cycle showed up in profiles of long runs.
    """

    def __init__(self, cfg: ProcessorConfig, stats: SimStats,
                 hierarchy: MemoryHierarchy):
        self.cfg = cfg
        self.stats = stats
        self.hierarchy = hierarchy
        self.ports_left = cfg.l1d_ports
        self.open_lines: Dict[int, int] = {}

    def reset(self) -> None:
        """Start a new cycle: full port budget, no open wide-bus lines."""
        self.ports_left = self.cfg.l1d_ports
        if self.open_lines:
            self.open_lines.clear()

    def can_load(self, line: int) -> bool:
        if self.cfg.wide_bus and self.open_lines.get(line, 0) > 0:
            return True
        return self.ports_left > 0

    def do_load(self, line: int, replica: bool = False) -> None:
        """Consume port bandwidth for one load (``can_load`` must hold)."""
        if self.cfg.wide_bus:
            slots = self.open_lines.get(line, 0)
            if slots > 0:
                self.open_lines[line] = slots - 1
                return
            self.ports_left -= 1
            self.open_lines[line] = self.cfg.wide_loads_per_access - 1
        else:
            self.ports_left -= 1
        self.stats.l1d_accesses += 1
        if replica:
            self.stats.l1d_replica_accesses += 1
        else:
            self.stats.l1d_load_accesses += 1

    def try_store(self) -> bool:
        if self.ports_left <= 0:
            return False
        self.ports_left -= 1
        self.stats.l1d_accesses += 1
        self.stats.l1d_store_accesses += 1
        return True


class Core:
    """One simulated processor running one program."""

    def __init__(self, cfg: ProcessorConfig, program: Program,
                 hooks: Optional[MechanismHooks] = None,
                 observer: Optional[Observer] = None):
        self.cfg = cfg
        self.program = program
        self.stats = SimStats()
        self.bpred = make_predictor(cfg.bpred_kind, cfg.gshare_bits)
        self.fetch = FetchUnit(cfg, program, self.bpred)
        self.hierarchy = MemoryHierarchy(cfg)
        self.fu = FUPool(cfg)
        self.rename = RenameTable(NUM_LOGICAL_REGS, cfg.strided_pcs_per_entry)
        self.freelist = FreeList(cfg.rename_regs)
        self.window: Deque[DynInst] = deque()
        self.lsq_count = 0
        #: in-flight stores per effective address (youngest last)
        self.store_map: Dict[int, List[DynInst]] = {}
        # Speculative architectural state (functional-at-dispatch).
        self.sregs: List[int] = [0] * NUM_LOGICAL_REGS
        self.mem: Dict[int, int] = program.initial_memory()
        # Scheduling structures.
        self.ready: List[tuple] = []        # (seq, inst)
        self.completion: List[tuple] = []   # (done_cycle, seq, inst)
        self.cycle = 0
        self.halted = False
        # Observation (read-only; see repro.observe).  ``None`` and
        # NullObserver normalise to "not observing" so the hot loop pays
        # one ``is not None`` test per event site and nothing else.
        self.observer = observer
        self._obs: Optional[Observer] = (
            None if observer is None or isinstance(observer, NullObserver)
            else observer)
        self.fetch.set_observer(self._obs)
        if self._obs is not None:
            self._obs.attach(self)
        self.hooks: MechanismHooks = hooks or MechanismHooks()
        self.hooks.attach(self)
        self._last_progress_cycle = 0
        self._ports = PortState(cfg, self.stats, self.hierarchy)

    @property
    def active_observer(self) -> Optional[Observer]:
        """The observer receiving events, or ``None`` when not observing.

        This is the formal accessor for mechanism code: ``None`` and
        :class:`NullObserver` are already normalised away, so callers
        guard event emission with one ``is not None`` test.
        """
        return self._obs

    # ------------------------------------------------------------------
    # Public driver.
    # ------------------------------------------------------------------
    def run(self, max_instructions: Optional[int] = None) -> SimStats:
        """Simulate until the program halts (or limits trip)."""
        max_insn = max_instructions or (1 << 62)
        # Hoisted hot locals: each name below is read every cycle.
        stats = self.stats
        fetch = self.fetch
        hooks = self.hooks
        fu = self.fu
        ports = self._ports
        freelist = self.freelist
        obs = self._obs
        max_cycles = self.cfg.max_cycles
        interval = stats.interval_cycles
        while not self.halted:
            cycle = self.cycle = self.cycle + 1
            stats.cycles = cycle
            if cycle > max_cycles:
                raise SimulationError(
                    f"{self.program.name}: exceeded {max_cycles} cycles")
            if cycle - self._last_progress_cycle > 20_000:
                raise SimulationError(
                    f"{self.program.name}: no commit for 20k cycles at "
                    f"cycle {cycle} (head={self.window[0] if self.window else None})")
            fu.reset()
            ports.reset()
            self._commit(ports)
            if self.halted or stats.committed >= max_insn:
                break
            self._writeback()
            leftover = self._issue(ports)
            self._dispatch()
            stats.fetched += fetch.fetch_cycle(cycle)
            hooks.on_cycle(leftover, ports)
            stats.record_reg_usage(freelist.in_use)
            if cycle % interval == 0:
                stats.record_interval()
            if obs is not None:
                obs.on_cycle_end(self)
            if (not self.window and fetch.empty and not self.completion):
                break  # fell off the end of the program
        self.stats.stridedpc_assignments = self.rename.assign_count
        self.stats.stridedpc_sum = self.rename.assign_sum
        self.stats.stridedpc_overflow = self.rename.overflow_count
        if obs is not None:
            obs.finalize(self.stats)
        return self.stats

    # ------------------------------------------------------------------
    # Commit.
    # ------------------------------------------------------------------
    def _commit(self, ports: PortState) -> None:
        cfg = self.cfg
        obs = self._obs
        slots = cfg.commit_width
        stores_this_cycle = 0
        while slots > 0 and self.window:
            inst = self.window[0]
            if not inst.done and not (
                    inst.validated and 0 <= inst.commit_ready_at <= self.cycle):
                break
            instr = inst.instr
            if instr.is_store:
                # The coherence check (Section 2.4.3) taxes store commit
                # only when replicas exist to check against.
                has_replicas = self.hooks.has_replicas
                max_stores = (cfg.ci_max_store_commits if has_replicas
                              else cfg.l1d_ports + 1)
                if stores_this_cycle >= max_stores:
                    break
                if not ports.try_store():
                    break
                cost = 1 + (cfg.ci_store_commit_extra if has_replicas else 0)
                if slots < cost:
                    break
                slots -= cost
                stores_this_cycle += 1
            else:
                slots -= 1
            self.window.popleft()
            inst.committed = True
            self.stats.committed += 1
            if obs is not None:
                obs.on_commit(inst, self.cycle)
            self._last_progress_cycle = self.cycle
            if inst.validated:
                self.stats.committed_reused += 1
            if instr.writes_reg:
                self.freelist.release(1)
                self.rename.clear_owner_if(instr.rd, inst)
            if instr.is_mem:
                self.lsq_count -= 1
            if instr.is_store:
                self.stats.stores_committed += 1
                self.hierarchy.store_access(inst.eff_addr)
                self._store_map_remove(inst)
                conflict = self.hooks.on_store_commit(inst)
                if conflict:
                    self.stats.coherence_squashes += 1
                    self._recover(inst, inst.pc + 1, is_branch=False)
                    self.hooks.on_commit(inst)
                    return
            if instr.is_cond_branch:
                self.stats.cond_branches += 1
                if inst.mispredicted:
                    self.stats.mispredicts += 1
                    if inst.hard_branch:
                        self.stats.mispredicts_hard += 1
            self.hooks.on_commit(inst)
            if instr.is_halt:
                self.halted = True
                return

    # ------------------------------------------------------------------
    # Writeback / branch resolution.
    # ------------------------------------------------------------------
    def _writeback(self) -> None:
        comp = self.completion
        obs = self._obs
        while comp and comp[0][0] <= self.cycle:
            _, _, inst = heapq.heappop(comp)
            if inst.squashed or inst.done:
                continue
            inst.done = True
            if obs is not None:
                obs.on_writeback(inst, self.cycle)
            for c in inst.consumers:
                c.num_pending -= 1
                if (c.num_pending == 0 and not c.issued and not c.squashed
                        and not c.in_ready):
                    c.in_ready = True
                    heapq.heappush(self.ready, (c.seq, c))
            if inst.instr.is_cond_branch:
                self.bpred.train(inst.pc, inst.bp_history, inst.actual_taken)
                self.hooks.on_branch_resolved(inst)
                if inst.mispredicted and not inst.squashed:
                    self.bpred.recover(inst.bp_history, inst.actual_taken)
                    self._recover(inst, inst.actual_next_pc, is_branch=True)

    # ------------------------------------------------------------------
    # Recovery: squash everything younger than ``pivot``.
    # ------------------------------------------------------------------
    def _recover(self, pivot: DynInst, redirect_pc: int, is_branch: bool) -> None:
        squashed: List[DynInst] = []
        while self.window and self.window[-1].seq > pivot.seq:
            inst = self.window.pop()
            self._undo(inst)
            squashed.append(inst)
        squashed.reverse()
        self.hooks.on_recovery(pivot, squashed, is_branch)
        if self._obs is not None:
            self._obs.on_recovery(pivot, len(squashed), is_branch, self.cycle)
        self.fetch.redirect(redirect_pc, self.cycle)

    def _undo(self, inst: DynInst) -> None:
        """Roll back one instruction's functional and rename effects."""
        inst.squashed = True
        self.stats.squashed += 1
        if self._obs is not None:
            self._obs.on_squash(inst, self.cycle)
        instr = inst.instr
        if instr.is_store:
            if inst.mem_old is MEM_ABSENT:
                self.mem.pop(inst.eff_addr, None)
            else:
                self.mem[inst.eff_addr] = inst.mem_old
            self._store_map_remove(inst)
        if instr.is_mem:
            self.lsq_count -= 1
        if instr.writes_reg:
            self.sregs[instr.rd] = inst.sreg_old
            self.rename.restore_reg(inst.rename_undo)
            if inst.reg_allocated:
                self.freelist.release(1)

    def _store_map_remove(self, inst: DynInst) -> None:
        lst = self.store_map.get(inst.eff_addr)
        if lst is not None:
            try:
                lst.remove(inst)
            except ValueError:
                pass
            if not lst:
                del self.store_map[inst.eff_addr]

    # ------------------------------------------------------------------
    # Issue.
    # ------------------------------------------------------------------
    def _issue(self, ports: PortState) -> int:
        issued = 0
        deferred: List[tuple] = []
        cfg = self.cfg
        obs = self._obs
        while issued < cfg.issue_width and self.ready:
            seq, inst = heapq.heappop(self.ready)
            inst.in_ready = False
            if inst.squashed or inst.issued:
                continue
            instr = inst.instr
            fu = instr.fu_class
            if instr.is_load and inst.forward_store is None:
                line = self.hierarchy.line_of(inst.eff_addr)
                if not ports.can_load(line) or self.fu.available(FUClass.MEM) <= 0:
                    deferred.append((seq, inst))
                    continue
                self.fu.acquire(FUClass.MEM)
                ports.do_load(line)
                lat = self.hierarchy.load_latency(inst.eff_addr, self.cycle)
                if lat > self.hierarchy.l1.hit_latency:
                    self.stats.l1d_misses += 1
            else:
                if not self.fu.acquire(fu):
                    deferred.append((seq, inst))
                    continue
                if instr.is_load:  # forwarded from an in-flight store
                    self.stats.store_forwards += 1
                    lat = 1
                else:
                    lat = FU_LATENCY[fu]
            inst.issued = True
            issued += 1
            inst.done_cycle = self.cycle + lat
            heapq.heappush(self.completion, (inst.done_cycle, inst.seq, inst))
            if obs is not None:
                obs.on_issue(inst, self.cycle, lat)
        for item in deferred:
            item[1].in_ready = True
            heapq.heappush(self.ready, item)
        return cfg.issue_width - issued

    # ------------------------------------------------------------------
    # Dispatch: rename + functional execution.
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        cfg = self.cfg
        if not self.hooks.dispatch_gate():
            return
        window = self.window
        queue = self.fetch.queue
        cycle = self.cycle
        obs = self._obs
        window_size = cfg.window_size
        lsq_size = cfg.lsq_size
        for _ in range(cfg.issue_width):
            if len(window) >= window_size:
                break
            if not queue or queue[0][0] > cycle:
                break
            instr = queue[0][1].instr
            if instr.is_mem and self.lsq_count >= lsq_size:
                break
            if instr.writes_reg and not self.freelist.alloc(1):
                self.stats.rename_stall_cycles += 1
                break
            inst = queue.popleft()[1]
            if instr.writes_reg:
                inst.reg_allocated = True
            self._execute_functional(inst)
            self._rename_and_schedule(inst)
            self.stats.dispatched += 1
            window.append(inst)
            self.hooks.on_dispatch(inst)
            if obs is not None:
                obs.on_dispatch(inst, cycle)
            if inst.validated and not inst.issued:
                # Replica reuse: skip execution.  The instruction may reach
                # commit immediately (validation goes straight there,
                # Section 2.4.6); consumers wait for the copy out of the
                # speculative data memory, charged as extra latency.
                lat = 1 + self.hooks.validated_extra_latency(inst)
                inst.issued = True
                inst.commit_ready_at = self.cycle + 1
                inst.done_cycle = self.cycle + lat
                heapq.heappush(self.completion,
                               (inst.done_cycle, inst.seq, inst))
                if obs is not None:
                    obs.on_issue(inst, cycle, lat)

    def _execute_functional(self, inst: DynInst) -> None:
        instr = inst.instr
        kind = instr.kind
        sregs = self.sregs
        if kind == K_ALU:
            a = sregs[instr.rs1] if instr.rs1 is not None else 0
            b = sregs[instr.rs2] if instr.rs2 is not None else 0
            inst.sreg_old = sregs[instr.rd]
            inst.result = instr.alu_fn(a, b, instr.imm)
            sregs[instr.rd] = inst.result
        elif kind == K_LOAD:
            addr = (sregs[instr.rs1] + instr.imm) & MASK64
            inst.eff_addr = addr
            inst.sreg_old = sregs[instr.rd]
            inst.result = self.mem.get(addr, 0)
            sregs[instr.rd] = inst.result
        elif kind == K_STORE:
            addr = (sregs[instr.rs1] + instr.imm) & MASK64
            inst.eff_addr = addr
            inst.mem_old = self.mem.get(addr, MEM_ABSENT)
            inst.result = sregs[instr.rs2]
            self.mem[addr] = inst.result
        elif kind == K_BRANCH:
            a = sregs[instr.rs1]
            b = sregs[instr.rs2] if instr.rs2 is not None else 0
            inst.actual_taken = instr.branch_fn(a, b)
            inst.actual_next_pc = instr.target if inst.actual_taken else instr.pc + 1
        elif kind == K_JUMP:
            inst.actual_next_pc = instr.target

    def _rename_and_schedule(self, inst: DynInst) -> None:
        instr = inst.instr
        # Source dependencies through the rename table.
        for r in instr.srcs:
            owner = self.rename.owner[r]
            if owner is not None and not owner.done and not owner.squashed:
                inst.num_pending += 1
                owner.consumers.append(inst)
        # Memory dependence: forward from the youngest older in-flight
        # store to the same address (perfect disambiguation, DESIGN.md §5).
        if instr.is_load:
            stores = self.store_map.get(inst.eff_addr)
            if stores:
                s = stores[-1]
                inst.forward_store = s
                if not s.done:
                    inst.num_pending += 1
                    s.consumers.append(inst)
        elif instr.is_store:
            self.store_map.setdefault(inst.eff_addr, []).append(inst)
        if instr.is_mem:
            self.lsq_count += 1
        # Destination rename, with default stridedPC propagation (ALU ops
        # merge their sources'; the mechanism hook refines loads).
        if instr.writes_reg:
            spcs = ()
            if not instr.is_load and instr.srcs:
                spcs = self.rename.merge_strided(instr.srcs)
            inst.rename_undo = self.rename.snapshot_reg(instr.rd)
            self.rename.write(instr.rd, inst, None, spcs)
        inst.dispatch_cycle = self.cycle
        # Schedule.
        op = instr.op
        if op is Op.NOP or op is Op.HALT or instr.kind == K_JUMP:
            inst.issued = True
            inst.done_cycle = self.cycle + 1
            heapq.heappush(self.completion, (inst.done_cycle, inst.seq, inst))
        elif inst.num_pending == 0:
            inst.in_ready = True
            heapq.heappush(self.ready, (inst.seq, inst))


def simulate(program: Program, cfg: Optional[ProcessorConfig] = None,
             hooks: Optional[MechanismHooks] = None,
             max_instructions: Optional[int] = None,
             observer: Optional[Observer] = None) -> SimStats:
    """Convenience wrapper: build a core, run it, return the statistics."""
    core = Core(cfg or ProcessorConfig(), program, hooks, observer=observer)
    return core.run(max_instructions=max_instructions)
