"""Observer protocol: delivery surface for the canonical event taxonomy.

An :class:`Observer` receives the two callback families of
:mod:`repro.observe.events` — one hook method per :class:`EventKind`
(:data:`~repro.observe.events.OBSERVER_HOOKS`):

* **pipeline events** from the timing core — one call per dynamic
  instruction per stage (fetch / dispatch / issue / writeback / commit /
  squash) plus one ``on_cycle_end`` per simulated cycle;
* **mechanism events** from the CI pipeline — MBS verdicts, CRP arm /
  reach / disarm, CI selection, SRSMT allocation, replica validation
  and store-coherence conflicts.

Observation is strictly read-only: an attached observer must never
perturb simulation state, so ``SimStats`` stay byte-identical with an
observer attached or detached (asserted in ``tests/test_runtime.py``).

Zero overhead when off: the core normalises ``None`` *and*
:class:`NullObserver` to "not observing" and the hot loops guard every
call with a single ``is not None`` test on a hoisted local, so the
disabled path costs one predictable branch per event site
(``benchmarks/bench_observe.py`` gates the regression).

Worker transport: observers cannot cross a process boundary alive, so
each one serialises to a plain-data payload (:meth:`Observer.export`)
that ships back from pool workers and merges deterministically in job
order (:func:`merge_payloads`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .events import OBSERVER_HOOKS


class Observer:
    """Base observer: every hook is a no-op; subclasses override a few.

    The base class doubles as the protocol definition — the core and the
    mechanism pipeline only ever call methods named in
    :data:`~repro.observe.events.OBSERVER_HOOKS` (one per event kind),
    which is asserted at import time below.
    """

    #: registry/payload key; subclasses override
    name = "observer"

    # -- lifecycle -------------------------------------------------------
    def attach(self, core) -> None:
        """Called once before simulation starts; keep a core reference."""
        self.core = core

    def finalize(self, stats) -> None:
        """Called once when the simulation ends (closes open accounting)."""

    # -- pipeline channel (uarch/core.py + uarch/frontend.py) ------------
    def on_fetch(self, inst, cycle: int) -> None:
        """``inst`` entered the fetch queue at ``cycle``."""

    def on_dispatch(self, inst, cycle: int) -> None:
        """``inst`` was renamed + functionally executed into the window."""

    def on_issue(self, inst, cycle: int, latency: int) -> None:
        """``inst`` was issued (``latency`` cycles to completion).

        Validated (replica-reuse) instructions issue through the commit
        fast path with the copy latency; check ``inst.validated``."""

    def on_writeback(self, inst, cycle: int) -> None:
        """``inst`` completed and woke its consumers."""

    def on_commit(self, inst, cycle: int) -> None:
        """``inst`` retired."""

    def on_squash(self, inst, cycle: int) -> None:
        """``inst`` was squashed by a recovery."""

    def on_recovery(self, pivot, n_squashed: int, is_branch: bool,
                    cycle: int) -> None:
        """The window was walked back to ``pivot`` at ``cycle``."""

    def on_cycle_end(self, core) -> None:
        """End of one simulated cycle (after all stages + hooks)."""

    # -- mechanism channel (ci/pipeline.py + components) -----------------
    def on_mbs_verdict(self, pc: int, hard: bool, mispredicted: bool,
                       cycle: int) -> None:
        """A conditional branch resolved; MBS classified it hard/easy."""

    def on_ci_event(self, event, pc: int, seq: int, cycle: int) -> None:
        """A hard mispredicted branch was examined (one ReuseEvent)."""

    def on_ci_untracked(self, pc: int, seq: int, cycle: int) -> None:
        """A hard misprediction could not be examined (NRBQ full)."""

    def on_crp_disarm(self, reason: str, cycle: int) -> None:
        """The CRP disarmed (``window-exhausted`` or ``never-reached``)."""

    def on_ci_selected(self, event, pc: int, cycle: int) -> None:
        """First control-independent instruction selected for ``event``."""

    def on_slice_marked(self, event, load_pc: int, ok: bool,
                        cycle: int) -> None:
        """A strided load in a CI backward slice was marked (S flag)."""

    def on_replicas_created(self, pc: int, nregs: int, event,
                            cycle: int) -> None:
        """An SRSMT entry with ``nregs`` replicas was allocated."""

    def on_srsmt_alloc_fail(self, pc: int, event, reason: str,
                            cycle: int) -> None:
        """Vectorization failed (``no-regs`` or ``no-srsmt-way``)."""

    def on_validation(self, pc: int, event, ok: bool, reason: str,
                      cycle: int) -> None:
        """A replica validation succeeded (``ok``) or failed (why)."""

    def on_coherence_conflict(self, pc: int, addr: int, cycle: int) -> None:
        """A committing store hit a replica range; the entry died."""

    def on_fault_injected(self, kind: str, detail: str, cycle: int) -> None:
        """A fault-injection harness perturbed the run (``repro.faults``)."""

    # -- worker transport ------------------------------------------------
    def export_data(self) -> dict:
        """Plain-data (JSON-able) form of everything observed."""
        return {}

    @classmethod
    def merge_data(cls, datas: Sequence[dict]) -> dict:
        """Deterministically merge ``export_data`` payloads (job order)."""
        return datas[0] if datas else {}

    def export(self) -> Dict[str, dict]:
        """Payload keyed by observer name (shippable across processes)."""
        return {self.name: self.export_data()}

    def render(self) -> str:
        """Human-readable report (used by ``repro run --observe``)."""
        return ""


class NullObserver(Observer):
    """Explicit no-op observer.

    The core recognises it and strips observation from the hot loop
    entirely, so attaching one costs the same as attaching nothing —
    the guarantee ``benchmarks/bench_observe.py`` pins down.
    """

    name = "null"


class MultiObserver(Observer):
    """Fan one event stream out to several observers."""

    name = "multi"

    def __init__(self, children: Sequence[Observer]):
        self.children = [c for c in children
                         if not isinstance(c, NullObserver)]

    def export(self) -> Dict[str, dict]:
        out: Dict[str, dict] = {}
        for c in self.children:
            out.update(c.export())
        return out

    def render(self) -> str:
        return "\n\n".join(r for r in (c.render() for c in self.children)
                           if r)


def _fan_out(method_name: str):
    def fan(self, *args, **kwargs):
        for c in self.children:
            getattr(c, method_name)(*args, **kwargs)
    fan.__name__ = method_name
    return fan


#: the delivery surface, derived from the canonical taxonomy so the hook
#: protocol and the event vocabulary cannot drift apart
HOOK_NAMES: tuple = tuple(OBSERVER_HOOKS.values()) + ("attach", "finalize")

for _m in HOOK_NAMES:
    assert callable(getattr(Observer, _m)), \
        f"taxonomy hook {_m!r} missing from Observer"
    setattr(MultiObserver, _m, _fan_out(_m))


# ---------------------------------------------------------------------------
# Registry + factory (used by --observe / REPRO_OBSERVE and pool workers).
# ---------------------------------------------------------------------------

def _registry() -> dict:
    from .audit import AuditTrail
    from .cpistack import CPIStack
    from .pipetrace import PipeTracer
    return {
        "cpi": CPIStack,
        "audit": AuditTrail,
        "trace": PipeTracer,
        "null": NullObserver,
    }


def observer_names() -> List[str]:
    return sorted(_registry())


def make_observer(spec: Optional[str]) -> Optional[Observer]:
    """Build an observer from a spec like ``"cpi"`` or ``"cpi,audit"``.

    ``None`` / ``""`` / ``"0"`` / ``"off"`` mean "no observation" and
    return ``None`` so callers can pass the spec straight through from
    ``REPRO_OBSERVE``.
    """
    if not spec or spec.strip().lower() in ("0", "off", "none"):
        return None
    registry = _registry()
    children: List[Observer] = []
    for part in spec.split(","):
        key = part.strip().lower()
        if not key:
            continue
        try:
            children.append(registry[key]())
        except KeyError:
            raise ValueError(
                f"unknown observer {key!r}; known: {observer_names()}"
            ) from None
    if not children:
        return None
    if len(children) == 1:
        return children[0]
    return MultiObserver(children)


def merge_payloads(payloads: Sequence[Dict[str, dict]]) -> Dict[str, dict]:
    """Merge per-worker ``Observer.export`` payloads, deterministically.

    Payloads are merged in the order given (the runner submits jobs in a
    fixed order and collects results positionally, so the merged result
    is independent of worker scheduling).
    """
    registry = _registry()
    by_name: Dict[str, List[dict]] = {}
    for payload in payloads:
        for name, data in payload.items():
            by_name.setdefault(name, []).append(data)
    return {name: registry[name].merge_data(datas) if name in registry
            else (datas[0] if datas else {})
            for name, datas in by_name.items()}
