"""Top-down CPI-stack cycle accounting.

Every simulated cycle is attributed to exactly one component, so the
stack sums *exactly* to ``stats.cycles`` (the invariant the tests pin
down for every kernel × policy):

* ``base``              — cycles that committed at least one instruction,
  plus the residual of cycles the classifier saw no stall source for
  (the run loop can break out of a cycle early at halt);
* ``fetch_refill``      — commit idle with an *empty* window and no
  branch recovery in flight: cold start or fetch-queue starvation;
* ``branch_resolution`` — commit blocked behind an unresolved
  conditional branch at the window head, or idle while the front end
  refills after a branch-misprediction squash (the classic
  misprediction penalty — the cycles CI reuse attacks);
* ``rename_stall``      — commit idle while dispatch sat on an empty
  free list (register pressure, Section 2.4.2);
* ``mem_miss``          — commit blocked behind a load that missed in
  the L1 (L2/L3/memory latency);
* ``replica_overhead``  — commit blocked behind a *validated*
  instruction waiting for its replica value to drain (the speculative
  data-memory copy path);
* ``other_stall``       — commit blocked for any other reason (FU
  latency, dependence chains, commit bandwidth).

Classification is head-of-window ("top-down"): on a cycle with no
commit, the oldest instruction is the commit blocker and names the
component.  The accountant only reads core state, never mutates it.
"""

from __future__ import annotations

from typing import Dict, Sequence

from .base import Observer

#: attribution order of the rendered stack
COMPONENTS = ("base", "fetch_refill", "branch_resolution", "rename_stall",
              "mem_miss", "replica_overhead", "other_stall")

#: stall components (everything but the residual ``base``)
STALL_COMPONENTS = COMPONENTS[1:]


class CPIStack(Observer):
    """Per-cycle top-down cycle accounting (one counter per component)."""

    name = "cpi"

    def __init__(self) -> None:
        self.fetch_refill = 0
        self.branch_resolution = 0
        self.rename_stall = 0
        self.mem_miss = 0
        self.replica_overhead = 0
        self.other_stall = 0
        self.base = 0            # residual; filled in by finalize()
        self.cycles = 0
        self._last_commit_cycle = -1
        #: pivot seq of an unabsorbed branch recovery (-1 = none); the
        #: refill ends when a younger (post-redirect) instruction commits
        self._refill_pivot = -1
        self._seen_rename_stalls = 0
        #: seq -> True for in-flight loads that missed in the L1
        self._missed: Dict[int, bool] = {}
        self._l1_hit_latency = 1

    # -- pipeline events -------------------------------------------------
    def attach(self, core) -> None:
        super().attach(core)
        self._l1_hit_latency = core.hierarchy.l1.hit_latency

    def on_issue(self, inst, cycle: int, latency: int) -> None:
        if inst.instr.is_load and latency > self._l1_hit_latency \
                and not inst.validated:
            self._missed[inst.seq] = True

    def on_writeback(self, inst, cycle: int) -> None:
        self._missed.pop(inst.seq, None)

    def on_squash(self, inst, cycle: int) -> None:
        self._missed.pop(inst.seq, None)

    def on_commit(self, inst, cycle: int) -> None:
        self._last_commit_cycle = cycle
        if self._refill_pivot >= 0 and inst.seq > self._refill_pivot:
            self._refill_pivot = -1

    def on_recovery(self, pivot, n_squashed: int, is_branch: bool,
                    cycle: int) -> None:
        if is_branch:
            self._refill_pivot = pivot.seq

    def on_cycle_end(self, core) -> None:
        cycle = core.cycle
        if self._last_commit_cycle != cycle:
            window = core.window
            if not window:
                # Empty window right after a branch squash is the
                # misprediction penalty, not a fetch problem.
                if self._refill_pivot >= 0:
                    self.branch_resolution += 1
                else:
                    self.fetch_refill += 1
            else:
                head = window[0]
                if head.validated and not head.done:
                    self.replica_overhead += 1
                elif head.instr.is_cond_branch and not head.done:
                    self.branch_resolution += 1
                elif not head.done and self._missed.get(head.seq):
                    self.mem_miss += 1
                elif core.stats.rename_stall_cycles > self._seen_rename_stalls:
                    self.rename_stall += 1
                else:
                    self.other_stall += 1
        self._seen_rename_stalls = core.stats.rename_stall_cycles

    def finalize(self, stats) -> None:
        """Close the books: ``base`` is the exact residual."""
        self.cycles = stats.cycles
        self.base = stats.cycles - sum(
            getattr(self, c) for c in STALL_COMPONENTS)

    # -- reporting -------------------------------------------------------
    def as_dict(self) -> Dict[str, int]:
        return {c: getattr(self, c) for c in COMPONENTS}

    @property
    def total(self) -> int:
        return sum(self.as_dict().values())

    def render(self) -> str:
        from ..analysis import format_bar, format_table
        cycles = max(1, self.cycles)
        rows = [[c, getattr(self, c), f"{getattr(self, c) / cycles:6.1%}",
                 format_bar(getattr(self, c) / cycles, width=24)]
                for c in COMPONENTS]
        rows.append(["total", self.total, f"{self.total / cycles:6.1%}", ""])
        return format_table(
            f"CPI stack ({self.cycles} cycles)",
            ["component", "cycles", "share", ""], rows)

    # -- worker transport ------------------------------------------------
    def export_data(self) -> dict:
        return {"components": self.as_dict(), "cycles": self.cycles}

    @classmethod
    def merge_data(cls, datas: Sequence[dict]) -> dict:
        components = {c: 0 for c in COMPONENTS}
        cycles = 0
        for d in datas:
            for c, v in d.get("components", {}).items():
                components[c] = components.get(c, 0) + v
            cycles += d.get("cycles", 0)
        return {"components": components, "cycles": cycles}
