"""Per-instruction pipeline tracing and export (JSONL / Konata / text).

``PipeTracer`` records one :class:`InstRecord` per dynamic instruction
with the cycle each stage happened: fetch (entered the fetch queue),
dispatch (renamed into the window), issue, writeback (completion) and
commit — or the squash cycle for wrong-path work.

Exports:

* ``to_jsonl``  — one JSON object per record (grep/pandas friendly);
* ``to_konata`` — the Kanata/Onikiri pipeline-viewer log format, also
  understood by gem5's Konata viewer; ``parse_konata`` reads it back
  (round-trip tested);
* ``render_text`` — an ASCII pipeline diagram for terminals
  (``repro pipeview``).

Stage lanes in the Konata log: ``F`` fetch queue, ``D`` window wait,
``X`` execute, ``W`` completion-to-retire; retire records use type 0
(commit) or 1 (squash flush).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, TextIO

from .base import Observer

#: Konata stage lanes in pipeline order with the record field that
#: starts each one.
_STAGES = (("F", "fetch"), ("D", "dispatch"), ("X", "issue"),
           ("W", "writeback"))


class InstRecord:
    """Stage timestamps of one dynamic instruction (-1 = never reached)."""

    __slots__ = ("seq", "pc", "text", "fetch", "dispatch", "issue",
                 "writeback", "commit", "squash", "validated", "latency")

    def __init__(self, seq: int, pc: int, text: str, fetch: int):
        self.seq = seq
        self.pc = pc
        self.text = text
        self.fetch = fetch
        self.dispatch = -1
        self.issue = -1
        self.writeback = -1
        self.commit = -1
        self.squash = -1
        self.validated = False
        self.latency = 0

    def as_dict(self) -> dict:
        return {s: getattr(self, s) for s in self.__slots__}

    @classmethod
    def from_dict(cls, d: dict) -> "InstRecord":
        rec = cls(d["seq"], d["pc"], d["text"], d["fetch"])
        for s in ("dispatch", "issue", "writeback", "commit", "squash",
                  "validated", "latency"):
            setattr(rec, s, d[s])
        return rec

    @property
    def last_cycle(self) -> int:
        return max(self.fetch, self.dispatch, self.issue, self.writeback,
                   self.commit, self.squash)


class PipeTracer(Observer):
    """Records per-instruction stage timestamps as the core runs.

    ``limit`` caps how many dynamic instructions are recorded (the
    default traces everything; long runs produce long traces).
    """

    name = "trace"

    def __init__(self, limit: Optional[int] = None):
        self.limit = limit
        self.records: List[InstRecord] = []
        self._by_seq: Dict[int, InstRecord] = {}

    # -- pipeline events -------------------------------------------------
    def on_fetch(self, inst, cycle: int) -> None:
        if self.limit is not None and len(self.records) >= self.limit:
            return
        rec = InstRecord(inst.seq, inst.pc, inst.instr.text, cycle)
        self.records.append(rec)
        self._by_seq[inst.seq] = rec

    def _rec(self, inst) -> Optional[InstRecord]:
        return self._by_seq.get(inst.seq)

    def on_dispatch(self, inst, cycle: int) -> None:
        rec = self._rec(inst)
        if rec is not None:
            rec.dispatch = cycle

    def on_issue(self, inst, cycle: int, latency: int) -> None:
        rec = self._rec(inst)
        if rec is not None:
            rec.issue = cycle
            rec.latency = latency
            rec.validated = inst.validated

    def on_writeback(self, inst, cycle: int) -> None:
        rec = self._rec(inst)
        if rec is not None:
            rec.writeback = cycle

    def on_commit(self, inst, cycle: int) -> None:
        rec = self._rec(inst)
        if rec is not None:
            rec.commit = cycle
            rec.validated = inst.validated

    def on_squash(self, inst, cycle: int) -> None:
        rec = self._rec(inst)
        if rec is not None:
            rec.squash = cycle

    # -- views -----------------------------------------------------------
    @property
    def committed(self) -> List[InstRecord]:
        return [r for r in self.records if r.commit >= 0]

    def to_jsonl(self, fh: TextIO) -> int:
        """One JSON object per record; returns the record count."""
        for rec in self.records:
            fh.write(json.dumps(rec.as_dict(), sort_keys=True))
            fh.write("\n")
        return len(self.records)

    # -- Konata / O3 pipeview export -------------------------------------
    def to_konata(self, fh: TextIO) -> int:
        """Write the trace as a Kanata 0004 log; returns the record count.

        Loadable in the Konata pipeline viewer; stage lanes are
        ``F``/``D``/``X``/``W`` and squashes appear as flush retires.
        """
        events: List[tuple] = []  # (cycle, seq, order, line)
        for rec in self.records:
            events.append((rec.fetch, rec.seq, 0,
                           f"I\t{rec.seq}\t{rec.seq}\t0"))
            label = f"{rec.pc}: {rec.text}" if rec.text else str(rec.pc)
            events.append((rec.fetch, rec.seq, 1,
                           f"L\t{rec.seq}\t0\t{label}"))
            events.append((rec.fetch, rec.seq, 2, f"S\t{rec.seq}\t0\tF"))
            prev = "F"
            for stage, field in _STAGES[1:]:
                at = getattr(rec, field)
                if at < 0:
                    break
                events.append((at, rec.seq, 2, f"E\t{rec.seq}\t0\t{prev}"))
                events.append((at, rec.seq, 3, f"S\t{rec.seq}\t0\t{stage}"))
                prev = stage
            if rec.commit >= 0:
                events.append((rec.commit, rec.seq, 4,
                               f"E\t{rec.seq}\t0\t{prev}"))
                events.append((rec.commit, rec.seq, 5,
                               f"R\t{rec.seq}\t{rec.seq}\t0"))
            elif rec.squash >= 0:
                events.append((rec.squash, rec.seq, 4,
                               f"E\t{rec.seq}\t0\t{prev}"))
                events.append((rec.squash, rec.seq, 5,
                               f"R\t{rec.seq}\t{rec.seq}\t1"))
        events.sort(key=lambda e: (e[0], e[1], e[2]))
        fh.write("Kanata\t0004\n")
        if not events:
            return 0
        now = events[0][0]
        fh.write(f"C=\t{now}\n")
        for cycle, _, _, line in events:
            if cycle != now:
                fh.write(f"C\t{cycle - now}\n")
                now = cycle
            fh.write(line + "\n")
        return len(self.records)

    # -- text "screenshot" -----------------------------------------------
    def render_text(self, limit: int = 32, width: int = 72) -> str:
        """ASCII pipeline diagram of the first ``limit`` instructions.

        Columns are cycles; ``F``/``D``/``X``/``W`` mark stage entry,
        ``-`` fills a stage's duration, ``C`` is commit and ``k`` a
        squash.  Long traces clip on the right (noted in the footer).
        """
        recs = self.records[:limit]
        if not recs:
            return "(empty pipeline trace)"
        c0 = min(r.fetch for r in recs)
        c1 = max(r.last_cycle for r in recs)
        span = c1 - c0 + 1
        clipped = span > width
        span = min(span, width)
        lines = [f"cycle {c0} .. {c0 + span - 1}  "
                 f"(F fetch, D dispatch, X issue, W writeback, C commit, "
                 f"k squash)"]
        for rec in recs:
            row = [" "] * span
            marks = [(rec.fetch, "F"), (rec.dispatch, "D"), (rec.issue, "X"),
                     (rec.writeback, "W"), (rec.commit, "C"),
                     (rec.squash, "k")]
            active = [c for c, _ in marks if c >= 0]
            lo, hi = min(active), max(active)
            for c in range(lo, hi + 1):
                if 0 <= c - c0 < span:
                    row[c - c0] = "-"
            for c, ch in marks:
                if c >= 0 and 0 <= c - c0 < span:
                    row[c - c0] = ch
            tag = "v" if rec.validated else " "
            text = rec.text[:24] if rec.text else ""
            lines.append(f"{rec.seq:6d} {rec.pc:5d} {text:24s}{tag}"
                         f"|{''.join(row)}|")
        if clipped:
            lines.append(f"... view clipped to {width} cycles "
                         f"(full span: {c1 - c0 + 1})")
        return "\n".join(lines)

    def render(self) -> str:
        return self.render_text()

    # -- worker transport ------------------------------------------------
    def export_data(self) -> dict:
        return {"records": [r.as_dict() for r in self.records]}

    @classmethod
    def merge_data(cls, datas: Sequence[dict]) -> dict:
        merged: List[dict] = []
        for d in datas:
            merged.extend(d.get("records", []))
        return {"records": merged}


def parse_konata(text: str) -> Dict[int, dict]:
    """Parse a Kanata log back into per-instruction stage timestamps.

    Returns ``{id: {"label": str, "stages": {name: start_cycle},
    "retired": cycle | None, "flushed": bool}}`` — the inverse of
    :meth:`PipeTracer.to_konata` (round-trip tested on a hammock).
    """
    lines = text.splitlines()
    if not lines or not lines[0].startswith("Kanata"):
        raise ValueError("not a Kanata log")
    now = 0
    out: Dict[int, dict] = {}
    for line in lines[1:]:
        if not line:
            continue
        parts = line.split("\t")
        kind = parts[0]
        if kind == "C=":
            now = int(parts[1])
        elif kind == "C":
            now += int(parts[1])
        elif kind == "I":
            out[int(parts[1])] = {"label": "", "stages": {},
                                  "retired": None, "flushed": False}
        elif kind == "L":
            out[int(parts[1])]["label"] = parts[3]
        elif kind == "S":
            out[int(parts[1])]["stages"][parts[3]] = now
        elif kind == "R":
            rec = out[int(parts[1])]
            rec["retired"] = now
            rec["flushed"] = parts[3] == "1"
    return out
