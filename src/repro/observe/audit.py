"""CI-mechanism audit trail: *why* was this branch (not) reused?

``AuditTrail`` subscribes to the mechanism channel and keeps, per hard
mispredicted branch examined by the engine, the full causal chain:
CRP armed → re-convergence reached → CI instruction selected → strided
slice marked → replicas allocated → validations.  Each examined event
then classifies into one reuse-blocking reason:

* ``reused``            — at least one precomputed instance validated;
* ``validation-fail``   — replicas existed but every validation failed
  (stale producers, stride break, value mismatch);
* ``SRSMT-alloc-fail``  — vectorization was attempted but registers or
  SRSMT ways ran out;
* ``not-refetched``     — replicas were created but the selected code
  was never fetched again while they lived;
* ``no-strided-slice``  — CI instructions were selected but their
  backward slices contain no (confident) strided load;
* ``no-CI-found``       — the CRP disarmed without selecting anything;
* ``nrbq-full``         — the branch was not tracked (NRBQ overflow).

A second, per-*instruction* table aggregates vectorization outcomes
(replica batches, validations, failures by cause, store conflicts) for
"why was this replica (not) reused".  ``repro why <kernel>`` renders
both.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .base import Observer

#: classification order = reporting priority
REASONS = ("reused", "validation-fail", "SRSMT-alloc-fail", "not-refetched",
           "no-strided-slice", "no-CI-found", "nrbq-full")


class EventAudit:
    """One examined hard-branch misprediction (mirrors a CIEvent)."""

    __slots__ = ("branch_pc", "seq", "cycle", "tracked", "selected",
                 "marks", "replica_batches", "alloc_fails", "validations",
                 "validation_fails", "reused")

    def __init__(self, branch_pc: int, seq: int, cycle: int,
                 tracked: bool = True):
        self.branch_pc = branch_pc
        self.seq = seq
        self.cycle = cycle
        self.tracked = tracked
        self.selected = False
        self.marks = 0               # strided loads marked (S flag set)
        self.replica_batches = 0
        self.alloc_fails = 0
        self.validations = 0
        self.validation_fails = 0
        self.reused = False

    @property
    def reason(self) -> str:
        if not self.tracked:
            return "nrbq-full"
        if self.reused:
            return "reused"
        if self.validation_fails:
            return "validation-fail"
        if self.alloc_fails:
            return "SRSMT-alloc-fail"
        if self.replica_batches:
            return "not-refetched"
        if self.selected:
            return "no-strided-slice"
        return "no-CI-found"

    def as_dict(self) -> dict:
        return {s: getattr(self, s) for s in self.__slots__}

    @classmethod
    def from_dict(cls, d: dict) -> "EventAudit":
        ev = cls(d["branch_pc"], d["seq"], d["cycle"], d["tracked"])
        for s in cls.__slots__[4:]:
            setattr(ev, s, d[s])
        return ev


class PCStats:
    """Vectorization outcomes of one static (load/ALU) instruction."""

    __slots__ = ("batches", "alloc_fails", "validations",
                 "validation_fails", "fail_reasons", "conflicts")

    def __init__(self):
        self.batches = 0
        self.alloc_fails = 0
        self.validations = 0
        self.validation_fails = 0
        self.fail_reasons: Dict[str, int] = {}
        self.conflicts = 0

    def as_dict(self) -> dict:
        return {s: getattr(self, s) for s in self.__slots__}

    def merge_from(self, d: dict) -> None:
        for s in ("batches", "alloc_fails", "validations",
                  "validation_fails", "conflicts"):
            setattr(self, s, getattr(self, s) + d[s])
        for r, n in d["fail_reasons"].items():
            self.fail_reasons[r] = self.fail_reasons.get(r, 0) + n


class AuditTrail(Observer):
    """Collects the mechanism channel into an explainable audit trail."""

    name = "audit"

    def __init__(self) -> None:
        self.events: List[EventAudit] = []
        self._live: Dict[int, EventAudit] = {}   # id(CIEvent) -> audit
        #: branch pc -> [resolved, hard_resolved, mispredicts, hard_mispr.]
        self.branches: Dict[int, List[int]] = {}
        self.pcs: Dict[int, PCStats] = {}
        self._texts: Dict[int, str] = {}
        #: injected-fault log (repro.faults): kind/detail/cycle dicts
        self.faults: List[dict] = []

    def attach(self, core) -> None:
        super().attach(core)
        for instr in core.program.code:
            self._texts[instr.pc] = instr.text

    # -- mechanism events ------------------------------------------------
    def on_mbs_verdict(self, pc: int, hard: bool, mispredicted: bool,
                       cycle: int) -> None:
        b = self.branches.get(pc)
        if b is None:
            b = self.branches[pc] = [0, 0, 0, 0]
        b[0] += 1
        if hard:
            b[1] += 1
        if mispredicted:
            b[2] += 1
            if hard:
                b[3] += 1

    def on_ci_event(self, event, pc: int, seq: int, cycle: int) -> None:
        audit = EventAudit(pc, seq, cycle)
        self.events.append(audit)
        self._live[id(event)] = audit

    def on_ci_untracked(self, pc: int, seq: int, cycle: int) -> None:
        self.events.append(EventAudit(pc, seq, cycle, tracked=False))

    def _event_audit(self, event) -> Optional[EventAudit]:
        return None if event is None else self._live.get(id(event))

    def on_ci_selected(self, event, pc: int, cycle: int) -> None:
        audit = self._event_audit(event)
        if audit is not None:
            audit.selected = True

    def on_slice_marked(self, event, load_pc: int, ok: bool,
                        cycle: int) -> None:
        audit = self._event_audit(event)
        if audit is not None and ok:
            audit.marks += 1

    def _pc(self, pc: int) -> PCStats:
        st = self.pcs.get(pc)
        if st is None:
            st = self.pcs[pc] = PCStats()
        return st

    def on_replicas_created(self, pc: int, nregs: int, event,
                            cycle: int) -> None:
        self._pc(pc).batches += 1
        audit = self._event_audit(event)
        if audit is not None:
            audit.replica_batches += 1

    def on_srsmt_alloc_fail(self, pc: int, event, reason: str,
                            cycle: int) -> None:
        self._pc(pc).alloc_fails += 1
        audit = self._event_audit(event)
        if audit is not None:
            audit.alloc_fails += 1

    def on_validation(self, pc: int, event, ok: bool, reason: str,
                      cycle: int) -> None:
        st = self._pc(pc)
        audit = self._event_audit(event)
        if ok:
            st.validations += 1
            if audit is not None:
                audit.validations += 1
                audit.reused = True
        else:
            st.fail_reasons[reason] = st.fail_reasons.get(reason, 0) + 1
            if reason == "batch-exhausted":
                # Normal re-batch, not a reuse failure: the instance
                # executes once to seed the next replica set.
                return
            st.validation_fails += 1
            if audit is not None:
                audit.validation_fails += 1

    def on_coherence_conflict(self, pc: int, addr: int, cycle: int) -> None:
        self._pc(pc).conflicts += 1

    def on_fault_injected(self, kind: str, detail: str, cycle: int) -> None:
        self.faults.append({"kind": kind, "detail": detail, "cycle": cycle})

    # -- queries ---------------------------------------------------------
    def hard_branch_reasons(self) -> Dict[int, str]:
        """Dominant reuse-blocking reason per examined branch PC.

        Covers every branch whose hard misprediction reached the
        mechanism (tracked or not); the dominant reason is the most
        frequent one, ties broken by :data:`REASONS` priority.
        """
        per_pc: Dict[int, Dict[str, int]] = {}
        for ev in self.events:
            hist = per_pc.setdefault(ev.branch_pc, {})
            hist[ev.reason] = hist.get(ev.reason, 0) + 1
        return {pc: max(hist, key=lambda r: (hist[r], -REASONS.index(r)))
                for pc, hist in per_pc.items()}

    def reason_histogram(self) -> Dict[str, int]:
        hist = {r: 0 for r in REASONS}
        for ev in self.events:
            hist[ev.reason] += 1
        return hist

    # -- reporting -------------------------------------------------------
    def render(self) -> str:
        from ..analysis import format_table
        reasons = self.hard_branch_reasons()
        rows = []
        for pc in sorted(reasons):
            b = self.branches.get(pc, [0, 0, 0, 0])
            per = {r: 0 for r in REASONS}
            for ev in self.events:
                if ev.branch_pc == pc:
                    per[ev.reason] += 1
            n_events = sum(per.values())
            hist = " ".join(f"{r}:{n}" for r, n in per.items() if n)
            rows.append([pc, self._texts.get(pc, "?"), b[0], b[3], n_events,
                         reasons[pc], hist])
        parts = [format_table(
            "why: hard mispredicted branches and their reuse outcome",
            ["pc", "branch", "execs", "hard-misp", "events",
             "dominant reason", "breakdown"], rows)]
        vrows = []
        for pc in sorted(self.pcs):
            st = self.pcs[pc]
            fails = " ".join(f"{r}:{n}"
                             for r, n in sorted(st.fail_reasons.items()))
            vrows.append([pc, self._texts.get(pc, "?"), st.batches,
                          st.alloc_fails, st.validations,
                          st.validation_fails, st.conflicts, fails])
        if vrows:
            parts.append("")
            parts.append(format_table(
                "why: per-instruction vectorization outcomes",
                ["pc", "instruction", "batches", "alloc-fail", "valid",
                 "fail", "conflicts", "fail causes"], vrows))
        if self.faults:
            parts.append("")
            parts.append(format_table(
                "why: injected faults and their outcomes",
                ["cycle", "kind", "detail"],
                [[f["cycle"], f["kind"], f["detail"]]
                 for f in self.faults]))
        return "\n".join(parts)

    # -- worker transport ------------------------------------------------
    def export_data(self) -> dict:
        return {
            "events": [ev.as_dict() for ev in self.events],
            "branches": {str(pc): list(v)
                         for pc, v in self.branches.items()},
            "pcs": {str(pc): st.as_dict() for pc, st in self.pcs.items()},
            "texts": {str(pc): t for pc, t in self._texts.items()},
            "faults": [dict(f) for f in self.faults],
        }

    @classmethod
    def merge_data(cls, datas: Sequence[dict]) -> dict:
        out = cls()
        for d in datas:
            out.events.extend(EventAudit.from_dict(e)
                              for e in d.get("events", ()))
            for pc, v in d.get("branches", {}).items():
                b = out.branches.setdefault(int(pc), [0, 0, 0, 0])
                for i, n in enumerate(v):
                    b[i] += n
            for pc, stats in d.get("pcs", {}).items():
                out._pc(int(pc)).merge_from(stats)
            for pc, t in d.get("texts", {}).items():
                out._texts.setdefault(int(pc), t)
            out.faults.extend(dict(f) for f in d.get("faults", ()))
        return out.export_data()

    @classmethod
    def from_payload(cls, data: dict) -> "AuditTrail":
        """Rebuild a (render-capable) trail from merged payload data."""
        out = cls()
        merged = cls.merge_data([data])
        out.events = [EventAudit.from_dict(e) for e in merged["events"]]
        out.branches = {int(pc): list(v)
                        for pc, v in merged["branches"].items()}
        for pc, stats in merged["pcs"].items():
            out._pc(int(pc)).merge_from(stats)
        out._texts = {int(pc): t for pc, t in merged["texts"].items()}
        out.faults = [dict(f) for f in merged.get("faults", ())]
        return out
