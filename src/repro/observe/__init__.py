"""Pipeline observability: event tracing, CPI stacks, mechanism audits.

The subsystem has one producer side — hook points in the timing core
(``uarch/core.py`` / ``uarch/frontend.py``) and the CI engine
(``ci/engine.py``) that emit structured events — and three consumers:

* :class:`PipeTracer`  — per-instruction stage timestamps; exports
  JSONL, the Konata/O3-pipeview log format, and an ASCII diagram
  (``repro pipeview``);
* :class:`CPIStack`    — top-down cycle accounting whose components sum
  exactly to ``stats.cycles``;
* :class:`AuditTrail`  — per-branch "why was this (not) reused" causal
  chains (``repro why``).

Observation is opt-in (``--observe`` / ``REPRO_OBSERVE``); the default
:class:`NullObserver`/``None`` path adds no work to the core loop.
Observers compose with the process-pool runtime: workers ship
``Observer.export()`` payloads back with their stats and
:func:`merge_payloads` merges them deterministically in job order.
"""

from .audit import REASONS, AuditTrail, EventAudit
from .base import (
    MultiObserver,
    NullObserver,
    Observer,
    make_observer,
    merge_payloads,
    observer_names,
)
from .cpistack import COMPONENTS, CPIStack
from .pipetrace import InstRecord, PipeTracer, parse_konata

__all__ = [
    "AuditTrail",
    "COMPONENTS",
    "CPIStack",
    "EventAudit",
    "InstRecord",
    "MultiObserver",
    "NullObserver",
    "Observer",
    "PipeTracer",
    "REASONS",
    "make_observer",
    "merge_payloads",
    "observer_names",
    "parse_konata",
]
