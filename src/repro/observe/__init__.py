"""Pipeline observability: event tracing, CPI stacks, mechanism audits.

The subsystem has one producer side — hook points in the timing core
(``uarch/core.py`` / ``uarch/frontend.py``) and the mechanism pipeline
(``ci/pipeline.py`` and its components) that emit structured events —
and three consumers.  The event vocabulary itself is canonical here:
:mod:`repro.observe.events` defines :class:`EventKind`, the
kind→observer-hook table, and the shared record types
(:class:`RetireEvent` for functional traces, :class:`ReuseEvent` for
the mechanism's per-misprediction accounting).  The consumers:

* :class:`PipeTracer`  — per-instruction stage timestamps; exports
  JSONL, the Konata/O3-pipeview log format, and an ASCII diagram
  (``repro pipeview``);
* :class:`CPIStack`    — top-down cycle accounting whose components sum
  exactly to ``stats.cycles``;
* :class:`AuditTrail`  — per-branch "why was this (not) reused" causal
  chains (``repro why``).

Observation is opt-in (``--observe`` / ``REPRO_OBSERVE``); the default
:class:`NullObserver`/``None`` path adds no work to the core loop.
Observers compose with the process-pool runtime: workers ship
``Observer.export()`` payloads back with their stats and
:func:`merge_payloads` merges them deterministically in job order.
"""

from .audit import REASONS, AuditTrail, EventAudit
from .base import (
    MultiObserver,
    NullObserver,
    Observer,
    make_observer,
    merge_payloads,
    observer_names,
)
from .cpistack import COMPONENTS, CPIStack
from .events import (
    MECHANISM_KINDS,
    OBSERVER_HOOKS,
    PIPELINE_KINDS,
    EventKind,
    RetireEvent,
    ReuseEvent,
)
from .pipetrace import InstRecord, PipeTracer, parse_konata

__all__ = [
    "AuditTrail",
    "COMPONENTS",
    "CPIStack",
    "EventAudit",
    "EventKind",
    "InstRecord",
    "MECHANISM_KINDS",
    "MultiObserver",
    "NullObserver",
    "OBSERVER_HOOKS",
    "Observer",
    "PIPELINE_KINDS",
    "PipeTracer",
    "REASONS",
    "RetireEvent",
    "ReuseEvent",
    "make_observer",
    "merge_payloads",
    "observer_names",
    "parse_konata",
]
