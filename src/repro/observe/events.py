"""The canonical event taxonomy — one vocabulary for every consumer.

Historically the repo grew three parallel event vocabularies: dynamic
trace records in ``trace/events.py``, per-misprediction accounting in
``ci/events.py``, and the observer hook names in ``observe/base.py``.
They are collapsed here into one taxonomy; the timing core, the
mechanism pipeline and the offline tracer all emit through it, and every
consumer (PipeTracer, CPIStack, AuditTrail, ``trace.analysis``) reads
one stream.

The taxonomy has three families:

* **pipeline events** — per-instruction stage transitions plus the
  per-cycle tick, emitted by ``uarch/core.py`` / ``uarch/frontend.py``;
* **mechanism events** — the CI pipeline's decisions (MBS verdicts, CRP
  arm/disarm, selection, allocation, validation, coherence), emitted by
  ``ci/pipeline.py`` and its components;
* **retire records** — :class:`RetireEvent`, the architectural trace of
  one retired dynamic instruction, produced offline by
  ``trace.collect_trace`` (and derivable online from ``COMMIT``).

Each :class:`EventKind` maps to exactly one :class:`Observer` hook
method (:data:`OBSERVER_HOOKS`); ``observe.base`` derives its fan-out
surface from this table, so the taxonomy and the hook protocol cannot
drift apart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..isa import Instruction


class EventKind(enum.Enum):
    """Every event the simulation can emit, in one namespace."""

    # -- pipeline family (timing core) -----------------------------------
    FETCH = "fetch"
    DISPATCH = "dispatch"
    ISSUE = "issue"
    WRITEBACK = "writeback"
    COMMIT = "commit"
    SQUASH = "squash"
    RECOVERY = "recovery"
    CYCLE_END = "cycle-end"

    # -- mechanism family (CI pipeline) ----------------------------------
    MBS_VERDICT = "mbs-verdict"
    CI_EVENT = "ci-event"
    CI_UNTRACKED = "ci-untracked"
    CRP_DISARM = "crp-disarm"
    CI_SELECTED = "ci-selected"
    SLICE_MARKED = "slice-marked"
    REPLICAS_CREATED = "replicas-created"
    SRSMT_ALLOC_FAIL = "srsmt-alloc-fail"
    VALIDATION = "validation"
    COHERENCE_CONFLICT = "coherence-conflict"
    #: a fault-injection harness perturbed the run (repro.faults)
    FAULT_INJECTED = "fault-injected"

    # -- retire family (architectural trace) -----------------------------
    RETIRE = "retire"


#: EventKind → the Observer hook method that delivers it.  ``RETIRE`` has
#: no hook: retire records are a data stream (lists of RetireEvent), not
#: a callback.  ``observe.base`` builds MultiObserver's fan-out from the
#: values of this table.
OBSERVER_HOOKS: Dict[EventKind, str] = {
    EventKind.FETCH: "on_fetch",
    EventKind.DISPATCH: "on_dispatch",
    EventKind.ISSUE: "on_issue",
    EventKind.WRITEBACK: "on_writeback",
    EventKind.COMMIT: "on_commit",
    EventKind.SQUASH: "on_squash",
    EventKind.RECOVERY: "on_recovery",
    EventKind.CYCLE_END: "on_cycle_end",
    EventKind.MBS_VERDICT: "on_mbs_verdict",
    EventKind.CI_EVENT: "on_ci_event",
    EventKind.CI_UNTRACKED: "on_ci_untracked",
    EventKind.CRP_DISARM: "on_crp_disarm",
    EventKind.CI_SELECTED: "on_ci_selected",
    EventKind.SLICE_MARKED: "on_slice_marked",
    EventKind.REPLICAS_CREATED: "on_replicas_created",
    EventKind.SRSMT_ALLOC_FAIL: "on_srsmt_alloc_fail",
    EventKind.VALIDATION: "on_validation",
    EventKind.COHERENCE_CONFLICT: "on_coherence_conflict",
    EventKind.FAULT_INJECTED: "on_fault_injected",
}

PIPELINE_KINDS: Tuple[EventKind, ...] = (
    EventKind.FETCH, EventKind.DISPATCH, EventKind.ISSUE,
    EventKind.WRITEBACK, EventKind.COMMIT, EventKind.SQUASH,
    EventKind.RECOVERY, EventKind.CYCLE_END,
)

MECHANISM_KINDS: Tuple[EventKind, ...] = (
    EventKind.MBS_VERDICT, EventKind.CI_EVENT, EventKind.CI_UNTRACKED,
    EventKind.CRP_DISARM, EventKind.CI_SELECTED, EventKind.SLICE_MARKED,
    EventKind.REPLICAS_CREATED, EventKind.SRSMT_ALLOC_FAIL,
    EventKind.VALIDATION, EventKind.COHERENCE_CONFLICT,
    EventKind.FAULT_INJECTED,
)


@dataclass(frozen=True)
class RetireEvent:
    """One retired dynamic instruction (the architectural trace record).

    Produced offline by ``trace.collect_trace`` from the functional
    interpreter; the same record is derivable online from the timing
    core's ``COMMIT`` events.  Feeds the offline analyses (branch bias,
    stride detection, re-convergence validation) and the oracle policy
    components.
    """

    seq: int                  # dynamic sequence number (0-based)
    pc: int                   # static PC (instruction index)
    instr: Instruction        # static instruction
    result: Optional[int]     # destination value (None if no destination)
    eff_addr: Optional[int]   # effective address for loads/stores
    next_pc: int              # PC of the following dynamic instruction
    #: For conditional branches: whether the branch was taken.
    taken: Optional[bool] = None

    kind = EventKind.RETIRE

    @property
    def is_load(self) -> bool:
        return self.instr.is_load

    @property
    def is_store(self) -> bool:
        return self.instr.is_store

    @property
    def is_cond_branch(self) -> bool:
        return self.instr.is_cond_branch


@dataclass
class ReuseEvent:
    """One hard-branch misprediction examined by the mechanism.

    The payload of :data:`EventKind.CI_EVENT`, threaded through the
    selection/validation events it causes (Figure 5 attribution):
    each examined event classifies as no control-independent instruction
    found (``selected`` stays False), at least one selected but never
    reused, or at least one precomputed instance successfully reused.
    """

    branch_pc: int
    seq: int
    selected: bool = False
    reused: bool = False
    #: credited to the stats exactly once each
    counted_selected: bool = False
    counted_reused: bool = False

    kind = EventKind.CI_EVENT
