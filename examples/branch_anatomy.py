#!/usr/bin/env python3
"""Anatomy of a kernel: why the mechanism helps where it does.

Two passes over each kernel:

1. **Static / trace-driven** (no timing): which branches are hard to
   predict, which loads are strided, and whether the static
   re-convergence estimates are reached at run time.
2. **Observed timing simulation**: the real per-branch audit trail from
   the observability subsystem — for every hard mispredicted branch the
   mechanism examined, the dominant reuse-blocking reason
   (reused / validation-fail / SRSMT-alloc-fail / no-strided-slice /
   no-CI-found / ...), plus the CPI stack showing where the cycles went.

Run:  python examples/branch_anatomy.py [--scale S] [kernel ...]
"""

import argparse

from repro import run_program
from repro.ci import estimate_reconvergent_point
from repro.observe import AuditTrail, CPIStack, MultiObserver
from repro.trace import check_reconvergence, collect_trace, profile_trace
from repro.uarch import ci
from repro.workloads import build_program, kernel_names


def analyse(name: str, scale: float = 0.5) -> None:
    prog = build_program(name, scale)
    events = collect_trace(prog)
    prof = profile_trace(events)
    checks = check_reconvergence(prog, events)

    print(f"\n=== {name}: {len(events)} dynamic instructions ===")
    print(f"{'branch':>7s} {'kind':>9s} {'execs':>6s} {'taken%':>7s} "
          f"{'bias':>6s} {'hard':>5s} {'reconv@':>8s} {'reached%':>9s}")
    for pc in sorted(prof.branches):
        b = prof.branches[pc]
        instr = prog.code[pc]
        kind = "backward" if instr.is_backward_branch else "forward"
        est = estimate_reconvergent_point(prog, instr)
        chk = checks.get(pc)
        reached = f"{chk.hit_rate:9.1%}" if chk else "      n/a"
        print(f"{pc:7d} {kind:>9s} {b.execs:6d} {b.taken_rate:7.1%} "
              f"{b.bias:6.2f} {'yes' if b.is_hard else 'no':>5s} "
              f"{est:8d} {reached}")

    print(f"\n{'load':>7s} {'execs':>6s} {'stride':>7s} {'strided%':>9s}")
    for pc in sorted(prof.loads):
        l = prof.loads[pc]
        stride = l.dominant_stride if l.dominant_stride is not None else "-"
        print(f"{pc:7d} {l.execs:6d} {stride!s:>7s} {l.stride_rate:9.1%}")

    hard = prof.hard_branch_fraction
    strided = len(prof.strided_loads)
    print(f"\nsummary: {hard:.0%} of dynamic branches are hard; "
          f"{strided}/{len(prof.loads)} static loads are strided")
    if hard > 0.15 and strided:
        print("  -> prime territory for control-independence reuse")
    elif not strided:
        print("  -> CI instructions exist but lack strided backward "
              "slices (mcf-like): little reuse expected")
    else:
        print("  -> branches are predictable (eon-like): the MBS filters "
              "them out and the mechanism stays quiet")

    # Second pass: what actually happened in the timing simulation.
    observer = MultiObserver([CPIStack(), AuditTrail()])
    stats = run_program(prog, ci(1, 512), observer=observer)
    audit = observer.children[1]
    print(f"\nobserved under ci(1 port, 512 regs): "
          f"IPC {stats.ipc:.3f}, reuse {stats.reuse_fraction:.1%}, "
          f"{stats.ci_events} CI events")
    reasons = audit.hard_branch_reasons()
    if reasons:
        for pc, reason in sorted(reasons.items()):
            print(f"  branch {pc:3d} ({prog.code[pc].text:>20s}): {reason}")
    else:
        print("  no hard mispredicted branches reached the mechanism")
    print()
    print(observer.render())


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("kernels", nargs="*", default=["bzip2", "mcf", "eon"])
    ap.add_argument("--scale", type=float, default=0.5)
    args = ap.parse_args()
    for name in args.kernels:
        if name not in kernel_names():
            raise SystemExit(f"unknown kernel {name!r}; "
                             f"choose from {kernel_names()}")
        analyse(name, scale=args.scale)


if __name__ == "__main__":
    main()
