#!/usr/bin/env python3
"""Trace-driven anatomy of a kernel: why the mechanism helps where it does.

Uses the trace front end (no timing simulation) to show, per kernel:

* which static branches are hard to predict (what the MBS filters for),
* which loads are strided (what the stride predictor finds),
* whether the static re-convergence heuristic's estimates are actually
  reached at run time.

Run:  python examples/branch_anatomy.py [kernel ...]
"""

import sys

from repro.ci import estimate_reconvergent_point
from repro.trace import check_reconvergence, collect_trace, profile_trace
from repro.workloads import build_program, kernel_names


def analyse(name: str, scale: float = 0.5) -> None:
    prog = build_program(name, scale)
    events = collect_trace(prog)
    prof = profile_trace(events)
    checks = check_reconvergence(prog, events)

    print(f"\n=== {name}: {len(events)} dynamic instructions ===")
    print(f"{'branch':>7s} {'kind':>9s} {'execs':>6s} {'taken%':>7s} "
          f"{'bias':>6s} {'hard':>5s} {'reconv@':>8s} {'reached%':>9s}")
    for pc in sorted(prof.branches):
        b = prof.branches[pc]
        instr = prog.code[pc]
        kind = "backward" if instr.is_backward_branch else "forward"
        est = estimate_reconvergent_point(prog, instr)
        chk = checks.get(pc)
        reached = f"{chk.hit_rate:9.1%}" if chk else "      n/a"
        print(f"{pc:7d} {kind:>9s} {b.execs:6d} {b.taken_rate:7.1%} "
              f"{b.bias:6.2f} {'yes' if b.is_hard else 'no':>5s} "
              f"{est:8d} {reached}")

    print(f"\n{'load':>7s} {'execs':>6s} {'stride':>7s} {'strided%':>9s}")
    for pc in sorted(prof.loads):
        l = prof.loads[pc]
        stride = l.dominant_stride if l.dominant_stride is not None else "-"
        print(f"{pc:7d} {l.execs:6d} {stride!s:>7s} {l.stride_rate:9.1%}")

    hard = prof.hard_branch_fraction
    strided = len(prof.strided_loads)
    print(f"\nsummary: {hard:.0%} of dynamic branches are hard; "
          f"{strided}/{len(prof.loads)} static loads are strided")
    if hard > 0.15 and strided:
        print("  -> prime territory for control-independence reuse")
    elif not strided:
        print("  -> CI instructions exist but lack strided backward "
              "slices (mcf-like): little reuse expected")
    else:
        print("  -> branches are predictable (eon-like): the MBS filters "
              "them out and the mechanism stays quiet")


def main() -> None:
    names = sys.argv[1:] or ["bzip2", "mcf", "eon"]
    for name in names:
        if name not in kernel_names():
            raise SystemExit(f"unknown kernel {name!r}; "
                             f"choose from {kernel_names()}")
        analyse(name)


if __name__ == "__main__":
    main()
