#!/usr/bin/env python3
"""Register pressure and the speculative data memory (Section 2.4.6).

Sweeps the physical register file and shows three machines on one kernel:

* the wide-bus baseline,
* the mechanism with a monolithic register file (replicas and the
  conventional path compete for the same registers), and
* the mechanism with the small, slow speculative data memory holding the
  replica values instead.

The story of the paper's Figure 13: the hierarchical organisation makes
the mechanism's gains nearly independent of the architectural register
count.

Run:  python examples/register_pressure.py [kernel]
"""

import sys

from repro import run_program
from repro.uarch import ci, wb, with_spec_mem
from repro.uarch.config import INF_REGS
from repro.workloads import build_program, kernel_names

REGS = (128, 192, 256, 384, 512, 768, INF_REGS)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "twolf"
    if name not in kernel_names():
        raise SystemExit(f"unknown kernel {name!r}")
    prog = build_program(name, 0.5)

    print(f"kernel: {name}")
    print(f"{'regs':>6s} {'wb':>7s} {'ci(mono)':>9s} {'ci-h-768':>9s} "
          f"{'mono regs-in-use':>17s} {'rename stalls':>14s}")
    for regs in REGS:
        base = run_program(prog, wb(1, regs))
        mono = run_program(prog, ci(1, regs))
        hier = run_program(prog, with_spec_mem(ci(1, regs), 768))
        label = "inf" if regs >= INF_REGS else str(regs)
        print(f"{label:>6s} {base.ipc:7.3f} {mono.ipc:9.3f} {hier.ipc:9.3f} "
              f"{mono.avg_regs_in_use:8.0f}/{regs - 64:<8d} "
              f"{mono.rename_stall_cycles:14d}")

    print("\nreading the table:")
    print(" * with few registers the monolithic machine throttles its own")
    print("   replicas (low-priority allocation) and falls back to the")
    print("   baseline, while the hierarchical one keeps its full gains;")
    print(" * from ~512 registers on, the two organisations converge.")


if __name__ == "__main__":
    main()
