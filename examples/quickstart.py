#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 hammock, with and without the mechanism.

The kernel counts how many elements of a vector are below a drifting
threshold and accumulates their sum.  The hammock branch is data-dependent
and essentially unpredictable, but the accumulation after the re-convergent
point is control independent and hangs off a strided load — exactly the
pattern the mechanism turns into speculative replicas.

Run:  python examples/quickstart.py
"""

import random

from repro import assemble, run_program
from repro.uarch import ci, scal, wb


def figure1_program(n: int = 600, seed: int = 42):
    """The paper's Figure 1 loop, with data that defeats the predictor."""
    rng = random.Random(seed)
    data = " ".join(str(rng.randint(0, 255)) for _ in range(n))
    return assemble(f"""
    .dataw a {data}
        la   r8, a          ; base of the vector
        li   r31, {n}       ; element count
        li   r29, 128       ; drifting threshold (keeps the branch hard)
        li   r1, 0          ; i
        li   r2, 0          ; count of elements below the threshold
        li   r3, 0          ; count of elements at/above it
        li   r4, 0          ; running sum (control independent!)
        mov  r20, r8
    loop:
        ld   r0, 0(r20)     ; strided load  (the paper's I5)
        blt  r0, r29, below ; hard-to-predict hammock (I7)
        addi r3, r3, 1      ; then-path
        j    ip
    below:
        addi r2, r2, 1      ; else-path
    ip: add  r4, r4, r0     ; re-convergent point (I11): vectorizable
        addi r20, r20, 8
        addi r29, r29, 37
        andi r29, r29, 255
        addi r1, r1, 1
        blt  r1, r31, loop
        halt
    """, name="figure1")


def main() -> None:
    prog = figure1_program()
    configs = [
        ("scalar ports      (scal)", scal(ports=1, regs=512)),
        ("wide bus          (wb)  ", wb(ports=1, regs=512)),
        ("control independ. (ci)  ", ci(ports=1, regs=512)),
    ]
    print(f"{'configuration':28s} {'IPC':>6s} {'cycles':>7s} "
          f"{'mispred':>8s} {'reused':>7s}")
    base_ipc = None
    for label, cfg in configs:
        st = run_program(prog, cfg)
        if base_ipc is None:
            base_ipc = st.ipc
        gain = f"({st.ipc / base_ipc - 1:+.1%})"
        print(f"{label:28s} {st.ipc:6.3f} {st.cycles:7d} "
              f"{st.mispredict_rate:8.1%} {st.committed_reused:7d} {gain}")
    print()
    st = run_program(prog, ci(1, 512))
    print(f"hard mispredictions examined : {st.ci_events}")
    print(f" ... with CI instr. selected : {st.ci_selected}")
    print(f" ... with successful reuse   : {st.ci_reused}")
    print(f"replicas created / validated : "
          f"{st.replicas_created} / {st.replica_validations}")


if __name__ == "__main__":
    main()
