#!/usr/bin/env python3
"""Run the whole SpecInt2000-like suite under every scheme.

Produces the repo's equivalent of the paper's headline comparison: IPC per
kernel for the scalar-port baseline, the wide-bus baseline, squash reuse
(ci-iw), the proposed mechanism (ci), and the full dynamic-vectorization
comparator (vect) — plus harmonic means and reuse statistics.

Run:  python examples/suite_overview.py [scale]
"""

import sys

from repro import run_kernel
from repro.analysis import format_table, harmonic_mean
from repro.uarch import ci, scal, wb
from repro.workloads import kernel_names

SCHEMES = [
    ("scal", lambda: scal(1, 512)),
    ("wb", lambda: wb(1, 512)),
    ("ci-iw", lambda: ci(1, 512, policy="ci-iw")),
    ("ci", lambda: ci(1, 512)),
    ("vect", lambda: ci(1, 512, policy="vect")),
]


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    results = {}
    for label, make in SCHEMES:
        cfg = make()
        results[label] = {n: run_kernel(n, cfg, scale=scale)
                          for n in kernel_names()}

    rows = []
    for name in kernel_names():
        ci_st = results["ci"][name]
        rows.append([name]
                    + [results[label][name].ipc for label, _ in SCHEMES]
                    + [f"{ci_st.reuse_fraction:.1%}",
                       f"{ci_st.mispredict_rate:.1%}"])
    means = [harmonic_mean(results[label][n].ipc for n in kernel_names())
             for label, _ in SCHEMES]
    rows.append(["INT(hmean)"] + means + ["", ""])

    print(format_table(
        f"Suite overview (scale={scale}, 512 regs, 1 wide L1 port)",
        ["kernel"] + [label for label, _ in SCHEMES] + ["ci reuse", "mispred"],
        rows))

    base, mech = means[1], means[3]
    print(f"\nci over wb: {mech / base - 1:+.1%}   "
          f"(paper reports +17.8% on SpecInt2000)")


if __name__ == "__main__":
    main()
