#!/usr/bin/env python3
"""Bring your own kernel: write assembly, watch the mechanism work on it.

Walks through the public API end to end:

1. assemble a custom program (a histogram with an unpredictable hammock),
2. sanity-check it against a pure-Python model via the functional
   interpreter,
3. simulate it on the baseline and mechanism machines,
4. interpret the mechanism counters.

Run:  python examples/custom_kernel.py
"""

import random

from repro import assemble, run_program
from repro.isa import run as run_functional
from repro.uarch import ci, wb

N = 512
SEED = 2026


def build():
    rng = random.Random(SEED)
    values = [rng.randint(0, 1023) for _ in range(N)]
    data = " ".join(map(str, values))
    prog = assemble(f"""
    .dataw samples {data}
    .data  hist 8
        la   r8, samples
        la   r9, hist
        li   r31, {N}
        li   r1, 0
        li   r4, 0              ; total (control independent)
        li   r5, 0              ; outliers
        mov  r20, r8
    loop:
        ld   r0, 0(r20)         ; strided sample load
        slti r22, r0, 896
        bnez r22, common        ; ~12.5% outliers: moderately biased
        addi r5, r5, 1          ; outlier path
        j    tally
    common:
        srli r23, r0, 7         ; bucket = sample / 128
        slli r23, r23, 3
        add  r24, r9, r23
        ld   r25, 0(r24)        ; histogram bucket (read-modify-write)
        addi r25, r25, 1
        st   r25, 0(r24)
    tally:
        add  r4, r4, r0         ; re-convergent accumulation
        addi r20, r20, 8
        addi r1, r1, 1
        blt  r1, r31, loop
        halt
    """, name="histogram")
    return prog, values


def main() -> None:
    prog, values = build()

    # 1. Functional check against the Python model.
    res = run_functional(prog)
    expected_total = sum(values)
    expected_outliers = sum(1 for v in values if v >= 896)
    assert res.reg(4) == expected_total, "total mismatch"
    assert res.reg(5) == expected_outliers, "outlier count mismatch"
    print(f"functional check OK: total={res.reg(4)} "
          f"outliers={res.reg(5)} ({res.steps} instructions)")

    # 2. Timing comparison.
    base = run_program(prog, wb(1, 512))
    mech = run_program(prog, ci(1, 512))
    print(f"\nwide-bus baseline : IPC {base.ipc:.3f} "
          f"({base.cycles} cycles, {base.mispredicts} mispredicts)")
    print(f"with the mechanism: IPC {mech.ipc:.3f} "
          f"({mech.cycles} cycles)  -> {mech.ipc / base.ipc - 1:+.1%}")

    # 3. What the mechanism did.
    print(f"\nhard mispredictions examined : {mech.ci_events}")
    print(f"CI instructions selected for : {mech.ci_selected} of them")
    print(f"replica batches / created    : {mech.replica_batches} / "
          f"{mech.replicas_created}")
    print(f"validated (execution skipped): {mech.replica_validations}")
    print(f"committed instructions reused: {mech.committed_reused} "
          f"({mech.reuse_fraction:.1%})")
    print(f"store/replica conflicts      : {mech.coherence_squashes}")
    print("\nthe histogram's bucket loads are *not* reusable (their")
    print("addresses are data-dependent and the buckets are stored to),")
    print("but the total accumulation after the re-convergent point is —")
    print("which is exactly what the counters above show.")


if __name__ == "__main__":
    main()
