#!/usr/bin/env python3
"""Fault injection walkthrough: perturb the mechanism, prove it recovers.

The control-independence mechanism is defined by its failure paths —
a replica validation that fails, an SRSMT allocation that is denied, a
squash that rips through precomputed work.  This example injects all of
them deliberately (plus a poisoned stride predictor and corrupted
replica values), then holds the run to the correctness contract:

* the per-cycle invariant checker finds no broken bookkeeping, and
* the final architectural state (registers + memory) matches the
  functional interpreter exactly.

It finishes by replaying the run with the audit trail attached, so you
can see each injected fault land in the mechanism's own event stream.

Run:  python examples/fault_injection.py
"""

from repro import build_program, run_program
from repro.faults import FaultPlan, plan_for_run, run_checked
from repro.observe import AuditTrail
from repro.uarch import ci

SCALE = 0.1
SEED = 1


def main() -> int:
    cfg = ci(ports=1, regs=512, policy="vect")
    prog = build_program("bzip2", SCALE, SEED)

    # -- 1. a hand-written plan: the --faults / REPRO_FAULTS grammar ----
    plan = FaultPlan.parse("squash@400,valfail@500,alloc-deny@600,seed=3")
    print(f"hand-written plan : {plan.to_spec()}")

    # -- 2. a generated plan sized to the kernel's actual run length ----
    auto = plan_for_run(prog, cfg, count=8, seed=11)
    print(f"generated plan    : {auto.describe()}")
    print()

    # -- 3. run under injection with every check armed ------------------
    report = run_checked(prog, cfg, plan=auto)
    print(report.summary())
    for fault in report.injected:
        print(f"  cycle {fault['cycle']:>5}  {fault['kind']:<15} "
              f"{fault['detail']}")
    if not report.ok:
        for line in report.violations + report.oracle_diffs:
            print(f"  !! {line}")
        return 1
    print()

    # -- 4. replay with the audit trail: faults in the event stream -----
    trail = AuditTrail()
    stats = run_program(prog, cfg, observer=trail, faults=auto, check=True)
    print(f"faulted run: {stats.committed} committed / {stats.cycles} "
          f"cycles (IPC {stats.ipc:.3f}), "
          f"{stats.replica_validation_failures} validation failure(s)")
    print()
    rendered = trail.render()
    start = rendered.find("why: injected faults")
    print(rendered[start:] if start >= 0 else rendered)
    print()
    print("all faults absorbed: architectural state matches the "
          "interpreter, zero invariant violations")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
