#!/usr/bin/env python3
"""The hammock zoo: how each control-flow pattern responds.

Runs every microbenchmark pattern under the wide-bus baseline and the
mechanism, showing which shapes the mechanism exploits and which defeat
it — a compact empirical summary of the paper's Sections 2.1-2.3.

Run:  python examples/hammock_zoo.py
"""

from repro import run_program
from repro.analysis import format_table
from repro.uarch import ci, wb
from repro.workloads.micro import MICRO_PATTERNS, micro_program

STORY = {
    "biased50": "unpredictable hammock: the mechanism's home turf",
    "biased90": "mostly biased: fewer mispredictions, still exploited",
    "biased99": "highly biased: the MBS filter keeps the mechanism off",
    "if_then": "if-then shape (Figure 2b) re-converges at the target",
    "nested": "hammock inside a hammock arm: heuristics still find it",
    "deep4": "4 strided accumulations past re-convergence",
    "deep12": "12 of them: more control-independent work to reuse",
    "non_strided": "pointer chase: CI found, nothing vectorizable",
    "variable_trip": "loop-exit mispredictions: little reusable work",
    "both_arms": "both arms write the consumed register: partly blocked",
}


def main() -> None:
    rows = []
    for name in MICRO_PATTERNS:
        prog = micro_program(name)
        base = run_program(prog, wb(1, 512))
        mech = run_program(prog, ci(1, 512))
        rows.append([
            name,
            base.ipc,
            mech.ipc,
            f"{mech.ipc / base.ipc - 1:+.0%}",
            mech.ci_events,
            f"{mech.reuse_fraction:.0%}",
        ])
    print(format_table(
        "hammock zoo: mechanism response per control-flow pattern",
        ["pattern", "wb IPC", "ci IPC", "gain", "CI events", "reuse"],
        rows))
    print()
    width = max(len(n) for n in STORY)
    for name, story in STORY.items():
        print(f"  {name:{width}s}  {story}")


if __name__ == "__main__":
    main()
