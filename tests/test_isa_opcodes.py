"""Unit and property tests for opcode semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import ALU_EVAL, BRANCH_COND, MASK64, FUClass, FU_OF_OP, Op
from repro.isa.opcodes import to_signed, to_unsigned

u64 = st.integers(min_value=0, max_value=MASK64)
s64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)


class TestSignConversion:
    def test_roundtrip_small(self):
        for v in (-1, 0, 1, 42, -42, (1 << 63) - 1, -(1 << 63)):
            assert to_signed(to_unsigned(v)) == v

    @given(s64)
    def test_roundtrip_property(self, v):
        assert to_signed(to_unsigned(v)) == v

    @given(u64)
    def test_unsigned_fixed_point(self, v):
        assert to_unsigned(to_signed(v)) == v


class TestALUSemantics:
    def test_add_wraps(self):
        assert ALU_EVAL[Op.ADD](MASK64, 1, 0) == 0

    def test_sub_wraps(self):
        assert ALU_EVAL[Op.SUB](0, 1, 0) == MASK64

    def test_mul(self):
        assert ALU_EVAL[Op.MUL](7, 6, 0) == 42

    def test_div_truncates_toward_zero(self):
        assert to_signed(ALU_EVAL[Op.DIV](to_unsigned(-7), 2, 0)) == -3
        assert ALU_EVAL[Op.DIV](7, 2, 0) == 3

    def test_div_by_zero_yields_zero(self):
        assert ALU_EVAL[Op.DIV](5, 0, 0) == 0
        assert ALU_EVAL[Op.REM](5, 0, 0) == 0

    def test_rem_sign_follows_dividend(self):
        assert to_signed(ALU_EVAL[Op.REM](to_unsigned(-7), 2, 0)) == -1
        assert ALU_EVAL[Op.REM](7, to_unsigned(-2), 0) == 1

    def test_shift_masks_amount(self):
        assert ALU_EVAL[Op.SLL](1, 64, 0) == 1  # shift by 64 & 63 == 0

    def test_sra_sign_extends(self):
        assert to_signed(ALU_EVAL[Op.SRA](to_unsigned(-8), 1, 0)) == -4

    def test_srl_zero_extends(self):
        assert ALU_EVAL[Op.SRL](to_unsigned(-8), 62, 0) == 3

    def test_comparisons_signed(self):
        assert ALU_EVAL[Op.SLT](to_unsigned(-1), 0, 0) == 1
        assert ALU_EVAL[Op.SLE](5, 5, 0) == 1
        assert ALU_EVAL[Op.SEQ](5, 5, 0) == 1
        assert ALU_EVAL[Op.SEQ](5, 6, 0) == 0

    def test_min_max_signed(self):
        assert to_signed(ALU_EVAL[Op.MIN](to_unsigned(-3), 2, 0)) == -3
        assert ALU_EVAL[Op.MAX](to_unsigned(-3), 2, 0) == 2

    def test_immediates(self):
        assert ALU_EVAL[Op.ADDI](5, 0, -7) == to_unsigned(-2)
        assert ALU_EVAL[Op.LI](0, 0, -1) == MASK64
        assert ALU_EVAL[Op.SLTI](to_unsigned(-5), 0, 0) == 1

    @given(u64, u64)
    def test_add_sub_inverse(self, a, b):
        s = ALU_EVAL[Op.ADD](a, b, 0)
        assert ALU_EVAL[Op.SUB](s, b, 0) == a

    @given(u64, u64)
    def test_xor_involution(self, a, b):
        x = ALU_EVAL[Op.XOR](a, b, 0)
        assert ALU_EVAL[Op.XOR](x, b, 0) == a

    @given(u64)
    def test_results_stay_in_domain(self, a):
        for op in (Op.ADD, Op.SUB, Op.MUL, Op.SLL, Op.SRA, Op.SRL):
            r = ALU_EVAL[op](a, a, 0)
            assert 0 <= r <= MASK64


class TestBranchSemantics:
    @given(u64, u64)
    def test_eq_ne_complementary(self, a, b):
        assert BRANCH_COND[Op.BEQ](a, b) != BRANCH_COND[Op.BNE](a, b)

    @given(u64, u64)
    def test_lt_ge_complementary(self, a, b):
        assert BRANCH_COND[Op.BLT](a, b) != BRANCH_COND[Op.BGE](a, b)

    @given(u64, u64)
    def test_le_gt_complementary(self, a, b):
        assert BRANCH_COND[Op.BLE](a, b) != BRANCH_COND[Op.BGT](a, b)

    def test_zero_compare_forms(self):
        assert BRANCH_COND[Op.BEQZ](0, 0)
        assert not BRANCH_COND[Op.BEQZ](1, 0)
        assert BRANCH_COND[Op.BNEZ](1, 0)
        assert BRANCH_COND[Op.BLTZ](to_unsigned(-1), 0)
        assert BRANCH_COND[Op.BGEZ](0, 0)

    def test_signed_comparison(self):
        assert BRANCH_COND[Op.BLT](to_unsigned(-1), 1)
        assert not BRANCH_COND[Op.BLT](1, to_unsigned(-1))


class TestFUMapping:
    def test_every_op_has_fu(self):
        for op in Op:
            assert op in FU_OF_OP

    @pytest.mark.parametrize("op,fu", [
        (Op.ADD, FUClass.INT_ALU),
        (Op.MUL, FUClass.INT_MUL),
        (Op.DIV, FUClass.INT_DIV),
        (Op.FADD, FUClass.FP_ADD),
        (Op.FMUL, FUClass.FP_MUL),
        (Op.FDIV, FUClass.FP_DIV),
        (Op.LD, FUClass.MEM),
        (Op.ST, FUClass.MEM),
        (Op.BEQ, FUClass.BRANCH),
        (Op.J, FUClass.BRANCH),
        (Op.NOP, FUClass.NONE),
    ])
    def test_fu_classes(self, op, fu):
        assert FU_OF_OP[op] is fu
