"""Sampled simulation: plans, checkpoints, estimates, sharing.

The load-bearing guarantees:

* functional checkpoints are *architecturally exact* — a core booted
  from one finishes the program in exactly the state the interpreter
  reaches (the interp-vs-core equivalence oracle, run at several
  boundaries per tier-1 kernel);
* the store round-trips checkpoints bit-exactly and quarantines
  corruption instead of booting from garbage;
* sampling is strictly opt-in — a spec without ``sampling`` keys and
  runs exactly as before;
* sampled estimates land within tolerance of exact simulation on the
  tier-1 kernels at scale 0.3;
* a policy sweep over one kernel performs exactly one fast-forward.
"""

import json
import os
import tempfile
import unittest

from repro import hooks_for
from repro.isa import interp
from repro.runtime.keys import program_fingerprint, run_key
from repro.runtime.spec import RunSpec
from repro.sampling import (
    Checkpoint,
    CheckpointError,
    CheckpointStore,
    SamplingError,
    SamplingPlan,
    SamplingSpec,
    combine,
    ensure_checkpoints,
    feature_pass,
    is_interval_token,
    parse_interval,
    relative_ci,
    run_sampled_spec,
    sample_program,
)
from repro.sampling.plan import GRANULARITY, N_SPARSE, coverage_for
from repro.uarch import Core

TIER1 = ("bzip2", "mcf", "gcc")


def exact_ipc(spec: RunSpec) -> float:
    cfg = spec.resolved_cfg()
    core = Core(cfg, spec.program(), hooks_for(cfg))
    core.run()
    return core.stats.committed / core.stats.cycles


class TestSamplingSpec(unittest.TestCase):
    def test_auto_is_phased(self):
        self.assertTrue(SamplingSpec.parse("auto").phased)
        self.assertTrue(SamplingSpec.parse("").phased)
        self.assertTrue(SamplingSpec.parse("g=500").phased)

    def test_k_selects_systematic(self):
        spec = SamplingSpec.parse("k=8,w=100,m=200")
        self.assertFalse(spec.phased)
        self.assertEqual((spec.k, spec.w, spec.m), (8, 100, 200))

    def test_rejections(self):
        for bad in ("i=3,b=500,w=10,m=20,n=1000",  # interval token
                    "k=0", "w=-1", "m=0", "g=8",   # below floors
                    "k=4,g=250",                   # both shapes
                    "q=9",                         # unknown field
                    "k=abc", "k"):                 # malformed
            with self.assertRaises(SamplingError, msg=bad):
                SamplingSpec.parse(bad)


class TestPlanShapes(unittest.TestCase):
    def test_systematic_tiles_the_run(self):
        plan = SamplingPlan.systematic(10000, SamplingSpec.parse("k=4"))
        self.assertEqual(plan.k, 4)
        self.assertEqual(sum(plan.weights), 10000)
        for iv in plan.intervals:
            self.assertLessEqual(iv.boundary + iv.warmup + iv.measure,
                                 10000)

    def test_interval_token_round_trip(self):
        plan = SamplingPlan.systematic(10000, SamplingSpec.parse("k=3"))
        for i in range(plan.k):
            token = plan.token(i)
            self.assertTrue(is_interval_token(token))
            iv, total = parse_interval(token)
            self.assertEqual(total, 10000)
            self.assertEqual((iv.boundary, iv.warmup, iv.measure),
                             (plan.intervals[i].boundary,
                              plan.intervals[i].warmup,
                              plan.intervals[i].measure))

    @staticmethod
    def _two_phase_features(n_micro, flip_at):
        """Synthetic feature stream: low-miss phase then high-miss."""
        feats = []
        for j in range(n_micro):
            missy = j >= flip_at
            feats.append({"loads": 80, "stores": 20, "branches": 25,
                          "taken": 12, "miss": 90 if missy else 5,
                          "acc": 100, "n": GRANULARITY})
        return feats

    def test_phased_dense_measures_every_phase_contiguously(self):
        n_micro, flip = 24, 12                 # total 6000 < N_DENSE
        total = n_micro * GRANULARITY
        plan = SamplingPlan.phased(
            total, self._two_phase_features(n_micro, flip),
            SamplingSpec())
        self.assertEqual(plan.k, 2)
        self.assertEqual(sum(iv.measure for iv in plan.intervals), total)
        self.assertEqual(sum(plan.weights), total)
        self.assertEqual(plan.intervals[1].boundary
                         + plan.intervals[1].warmup, flip * GRANULARITY)

    def test_phased_sparse_spreads_a_budget(self):
        n_micro = 100                          # total 25000 > N_SPARSE
        total = n_micro * GRANULARITY
        plan = SamplingPlan.phased(
            total, self._two_phase_features(n_micro, 50), SamplingSpec())
        self.assertGreaterEqual(plan.k, 3)
        self.assertEqual(sum(plan.weights), total)
        # Sparse mode simulates a small fraction of the run in detail.
        self.assertLess(plan.detailed_instructions, 0.25 * total)
        # Both phases are represented by at least one window.
        flip_pc = 50 * GRANULARITY
        starts = [iv.boundary + iv.warmup for iv in plan.intervals]
        self.assertTrue(any(s < flip_pc for s in starts))
        self.assertTrue(any(s >= flip_pc for s in starts))

    def test_coverage_tapers(self):
        self.assertEqual(coverage_for(1000), 1.0)
        self.assertEqual(coverage_for(N_SPARSE + 1), 0.10)
        mid = coverage_for((8000 + N_SPARSE) // 2)
        self.assertTrue(0.10 < mid < 1.0)

    def test_plan_payload_round_trip(self):
        plan = SamplingPlan.systematic(9999, SamplingSpec.parse("k=5"))
        again = SamplingPlan.from_payload(
            json.loads(json.dumps(plan.to_payload())))
        self.assertEqual(again, plan)

    def test_plans_are_deterministic(self):
        spec = RunSpec("bzip2", 0.3, 1)
        store = CheckpointStore(enabled=False)
        total, feats = feature_pass(spec.program(), GRANULARITY, store)
        a = SamplingPlan.phased(total, feats, SamplingSpec())
        b = SamplingPlan.phased(total, feats, SamplingSpec())
        self.assertEqual(a, b)
        self.assertEqual(sum(a.weights), total)


class TestCheckpointStore(unittest.TestCase):
    def _spec(self):
        return RunSpec("mcf", 0.3, 1)

    def test_round_trip_on_disk(self):
        spec = self._spec()
        prog = spec.program()
        fp = program_fingerprint(prog)
        with tempfile.TemporaryDirectory() as root:
            store = CheckpointStore(root=root, enabled=True)
            made = ensure_checkpoints(prog, [0, 700, 1500], store)
            fresh = CheckpointStore(root=root, enabled=True)
            for b in (700, 1500):
                again = fresh.get(fp, b)
                self.assertIsNotNone(again)
                self.assertEqual(again, made[b])

    def test_result_cache_audit_spares_checkpoints(self):
        # The checkpoint store lives under <cache root>/checkpoints/.
        # Result-cache walks (verify/info/clear) must prune that subtree:
        # checkpoint envelopes use a different schema, so auditing them
        # as result entries would quarantine every valid checkpoint.
        from repro.runtime.cache import ResultCache
        spec = self._spec()
        prog = spec.program()
        fp = program_fingerprint(prog)
        with tempfile.TemporaryDirectory() as root:
            store = CheckpointStore(
                root=os.path.join(root, "checkpoints"), enabled=True)
            ensure_checkpoints(prog, [0, 700], store)
            cache = ResultCache(root=root, enabled=True)
            report = cache.verify()
            self.assertEqual(report["corrupt"], 0)
            self.assertEqual(cache.info()["entries"], 0)
            self.assertEqual(cache.clear(), 0)
            self.assertIsNotNone(
                CheckpointStore(root=store.root, enabled=True).get(fp, 700))

    def test_corruption_quarantines(self):
        spec = self._spec()
        prog = spec.program()
        fp = program_fingerprint(prog)
        with tempfile.TemporaryDirectory() as root:
            store = CheckpointStore(root=root, enabled=True)
            ensure_checkpoints(prog, [800], store)
            from repro.runtime.keys import checkpoint_key
            path = store.path_for(checkpoint_key(fp, 800))
            with open(path, "w") as fh:
                fh.write('{"schema": broken')
            fresh = CheckpointStore(root=root, enabled=True)
            self.assertIsNone(fresh.get(fp, 800))
            self.assertFalse(os.path.exists(path))
            qdir = os.path.join(root, "quarantine")
            self.assertTrue(os.listdir(qdir))
            report = fresh.verify()
            self.assertEqual(report["corrupt"], 0)
            self.assertEqual(report["quarantined"], 1)

    def test_tampered_payload_fails_checksum(self):
        spec = self._spec()
        prog = spec.program()
        fp = program_fingerprint(prog)
        with tempfile.TemporaryDirectory() as root:
            store = CheckpointStore(root=root, enabled=True)
            made = ensure_checkpoints(prog, [600], store)
            from repro.runtime.keys import checkpoint_key
            path = store.path_for(checkpoint_key(fp, 600))
            with open(path) as fh:
                envelope = json.load(fh)
            envelope["payload"]["regs"][3] ^= 1   # silent bit flip
            with open(path, "w") as fh:
                json.dump(envelope, fh)
            fresh = CheckpointStore(root=root, enabled=True)
            self.assertIsNone(fresh.get(fp, 600))   # never boots garbage
            self.assertNotEqual(made[600].regs[3] ^ 1, made[600].regs[3])

    def test_one_fast_forward_cold_zero_warm(self):
        spec = self._spec()
        prog = spec.program()
        with tempfile.TemporaryDirectory() as root:
            store = CheckpointStore(root=root, enabled=True)
            ensure_checkpoints(prog, [500, 1000, 2000], store)
            self.assertEqual(store.fast_forwards, 1)
            fresh = CheckpointStore(root=root, enabled=True)
            ensure_checkpoints(prog, [500, 1000, 2000], fresh)
            self.assertEqual(fresh.fast_forwards, 0)

    def test_boundary_beyond_program_end_raises(self):
        spec = self._spec()
        prog = spec.program()
        store = CheckpointStore(enabled=False)
        with self.assertRaises(CheckpointError):
            ensure_checkpoints(prog, [10**9], store)


class TestArchitecturalEquivalence(unittest.TestCase):
    """The oracle: a core booted from a checkpoint finishes the program
    in exactly the architectural state the pure interpreter computes."""

    @staticmethod
    def _mem_equal(a, b):
        keys = set(a) | set(b)
        return all(a.get(k, 0) == b.get(k, 0) for k in keys)

    def test_boot_from_checkpoint_matches_interpreter(self):
        from repro.faults.oracle import committed_state
        for kernel in TIER1:
            spec = RunSpec(kernel, 0.3, 1)
            prog = spec.program()
            cfg = spec.resolved_cfg()
            ref = interp.run(prog)
            total = ref.steps
            boundaries = [total // 4, total // 2, (3 * total) // 4]
            store = CheckpointStore(enabled=False)
            ckpts = ensure_checkpoints(prog, boundaries, store)
            for b in boundaries:
                core = Core(cfg, prog, hooks_for(cfg), boot=ckpts[b])
                core.run()
                self.assertEqual(core.stats.committed, total - b,
                                 f"{kernel}@{b}: wrong remaining length")
                regs, mem = committed_state(core)
                self.assertEqual(regs, ref.regs, f"{kernel}@{b}: regs")
                self.assertTrue(self._mem_equal(mem, ref.memory),
                                f"{kernel}@{b}: memory")

    def test_interp_resume_equals_straight_run(self):
        spec = RunSpec("gcc", 0.3, 1)
        prog = spec.program()
        straight = interp.run(prog)
        regs = [0] * len(straight.regs)
        memory = prog.initial_memory()
        pc, done = 0, 0
        for cut in (313, 1009, 2500):
            part = interp.run(prog, max_steps=cut - done, regs=regs,
                              memory=memory, start_pc=pc,
                              allow_partial=True)
            done += part.steps
            pc = part.pc
        rest = interp.run(prog, regs=regs, memory=memory, start_pc=pc,
                          allow_partial=True)
        self.assertTrue(rest.halted)
        self.assertEqual(done + rest.steps, straight.steps)
        self.assertEqual(regs, straight.regs)
        self.assertEqual(memory, straight.memory)


class TestEstimates(unittest.TestCase):
    def test_whole_run_interval_is_exact(self):
        """A k=1 plan covering the whole run reproduces exact stats."""
        spec = RunSpec("mcf", 0.3, 1)
        store = CheckpointStore(enabled=False)
        est, plan = sample_program(spec.program(), spec.resolved_cfg(),
                                   "k=1,w=0,m=999999999", store)
        self.assertEqual(plan.k, 1)
        cfg = spec.resolved_cfg()
        core = Core(cfg, spec.program(), hooks_for(cfg))
        core.run()
        self.assertEqual(est.cycles, core.stats.cycles)
        self.assertEqual(est.committed, core.stats.committed)
        self.assertTrue(est.sampled)
        self.assertEqual(est.sample_rel_ci, 0.0)

    def test_tier1_accuracy_at_scale_03(self):
        """Sampled IPC within 2% of exact on the tier-1 kernels."""
        for kernel in TIER1:
            spec = RunSpec(kernel, 0.3, 1, sampling="auto")
            store = CheckpointStore(enabled=False)
            est = run_sampled_spec(spec, store)
            exact = exact_ipc(RunSpec(kernel, 0.3, 1))
            err = abs(float(est.ipc) - exact) / exact
            self.assertLess(err, 0.02,
                            f"{kernel}: sampled {float(est.ipc):.4f} vs "
                            f"exact {exact:.4f} ({err:.2%})")
            self.assertTrue(est.sampled)
            self.assertEqual(est.committed, plan_total(spec, store))

    def test_relative_ci(self):
        self.assertEqual(relative_ci([1.0]), 0.0)
        self.assertAlmostEqual(relative_ci([1.0, 1.0, 1.0]), 0.0)
        spread = relative_ci([1.0, 2.0, 1.5, 2.5])
        self.assertGreater(spread, 0.0)
        # Weighted: a dominant weight shrinks the effective sample size,
        # never yielding a tighter bound than the unweighted series.
        self.assertGreaterEqual(relative_ci([1.0, 2.0], [999, 1]), 0.0)

    def test_combine_rejects_wrong_arity(self):
        plan = SamplingPlan.systematic(1000, SamplingSpec.parse("k=2"))
        with self.assertRaises(SamplingError):
            combine(plan, [])


def plan_total(spec: RunSpec, store: CheckpointStore) -> int:
    from repro.sampling import plan_for
    return plan_for(spec, store).total


class TestSharingAndOptIn(unittest.TestCase):
    def test_policy_sweep_shares_one_fast_forward(self):
        with tempfile.TemporaryDirectory() as root:
            os.environ["REPRO_CACHE_DIR"] = root
            try:
                from repro.experiments.common import Runner
                r = Runner(scale=0.3, seed=1, jobs=1, sampling="auto")
                specs = [RunSpec("bzip2", 0.3, 1, policy=p)
                         for p in ("ci", "ci-iw", "vect")]
                stats = r.run_many(specs)
                self.assertEqual(r.checkpoint_store().fast_forwards, 1)
                self.assertTrue(all(s.sampled for s in stats))
                self.assertEqual(len({float(s.ipc) for s in stats}), 3)
            finally:
                del os.environ["REPRO_CACHE_DIR"]

    def test_sampling_is_opt_in_for_keys(self):
        exact = RunSpec("bzip2", 0.3, 1)
        sampled = RunSpec("bzip2", 0.3, 1, sampling="auto")
        self.assertNotEqual(run_key(exact), run_key(sampled))
        # The exact key is what it always was: sampling=None folds
        # nothing into the digest (pinned by tests/golden/run_keys.json).

    def test_sampling_rejects_riders(self):
        with self.assertRaises(ValueError):
            RunSpec("bzip2", 0.3, 1, sampling="auto",
                    faults="squash@400").validate()
        with self.assertRaises(ValueError):
            RunSpec("bzip2", 0.3, 1, sampling="auto",
                    observe="cpi").validate()


class TestServeProtocol(unittest.TestCase):
    def test_jobspec_accepts_sampling(self):
        from repro.serve.protocol import JobSpec
        spec = JobSpec.from_dict({"kernel": "bzip2", "scale": 0.3,
                                  "sampling": "auto"})
        self.assertEqual(spec.sampling, "auto")
        self.assertEqual(spec.to_dict()["sampling"], "auto")

    def test_jobspec_rejects_bad_sampling(self):
        from repro.serve.protocol import JobSpec, ProtocolError
        for data in (
                {"kernel": "bzip2", "sampling": "z=1"},
                {"kernel": "bzip2", "sampling": "auto",
                 "faults": "squash@400"},
                {"kernel": "bzip2", "sampling": 7}):
            with self.assertRaises(ProtocolError):
                JobSpec.from_dict(data)

    def test_jobspec_accepts_interval_tokens(self):
        from repro.serve.protocol import JobSpec, ProtocolError
        spec = JobSpec.from_dict(
            {"kernel": "bzip2", "sampling": "i=0,b=0,w=0,m=50,n=100"})
        self.assertTrue(is_interval_token(spec.sampling))
        with self.assertRaises(ProtocolError):
            JobSpec.from_dict({"kernel": "bzip2",
                               "sampling": "i=0,b=90,w=20,m=50,n=100"})


class TestCheckpointDataclass(unittest.TestCase):
    def test_payload_round_trip(self):
        ck = Checkpoint(inst_index=42, pc=7, regs=[1, 2, 3],
                        mem_delta={8: 9}, mem_tail=[(0, 64), (1, 128)],
                        branch_tail=[(5, 1), (6, 0)])
        again = Checkpoint.from_payload(
            json.loads(json.dumps(ck.to_payload())))
        self.assertEqual(again, ck)

    def test_bad_payload_raises(self):
        with self.assertRaises(CheckpointError):
            Checkpoint.from_payload({"pc": 0})


if __name__ == "__main__":
    unittest.main()
