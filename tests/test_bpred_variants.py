"""Tests for the bimodal/static predictor variants and their wiring."""

import pytest

from repro import run_kernel
from repro.uarch import Bimodal, ProcessorConfig, StaticBTFN, make_predictor
from repro.uarch.bpred import Gshare


class TestBimodal:
    def test_learns_bias(self):
        b = Bimodal(8)
        for _ in range(4):
            b.train(10, 0, False)
        assert b.predict(10) is False
        for _ in range(4):
            b.train(10, 0, True)
        assert b.predict(10) is True

    def test_no_history_state(self):
        b = Bimodal(8)
        b.speculate(True)
        b.recover(0, False)
        assert b.checkpoint() == 0

    def test_cannot_learn_alternation(self):
        b = Bimodal(8)
        outcome, correct = True, 0
        for i in range(200):
            if i >= 100 and b.predict(64) == outcome:
                correct += 1
            b.train(64, 0, outcome)
            outcome = not outcome
        assert correct <= 60  # gshare nails this; bimodal cannot

    def test_aliasing_across_pcs(self):
        b = Bimodal(4)
        for _ in range(4):
            b.train(3, 0, True)
        assert b.predict(3 + 16) is True  # same table slot


class TestStaticBTFN:
    def test_direction_by_shape(self):
        s = StaticBTFN()
        assert s.predict(10, backward=True)
        assert not s.predict(10, backward=False)

    def test_stateless(self):
        s = StaticBTFN()
        s.train(1, 0, True)
        s.speculate(True)
        assert not s.predict(1, backward=False)


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_predictor("gshare", 12), Gshare)
        assert isinstance(make_predictor("bimodal", 12), Bimodal)
        assert isinstance(make_predictor("static", 12), StaticBTFN)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_predictor("neural", 12)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ProcessorConfig(bpred_kind="neural")


class TestEndToEnd:
    @pytest.mark.parametrize("kind", ["gshare", "bimodal", "static"])
    def test_correctness_any_predictor(self, kind):
        from repro.isa import run as frun
        from repro.workloads import build_program
        prog = build_program("gcc", 0.3)
        st = run_kernel("gcc", ProcessorConfig(bpred_kind=kind,
                                               wide_bus=True), scale=0.3)
        assert st.committed == frun(prog).steps

    def test_static_mispredicts_most_on_loops(self):
        # Loop-closing branches: static BTFN predicts them well, but the
        # hammocks (forward) default to not-taken and suffer.
        g = run_kernel("parser", ProcessorConfig(bpred_kind="gshare"),
                       scale=0.3)
        s = run_kernel("parser", ProcessorConfig(bpred_kind="static"),
                       scale=0.3)
        assert s.mispredict_rate >= g.mispredict_rate
