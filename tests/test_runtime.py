"""Tests for the simulation runtime: pool, disk cache, determinism."""

import math
import os
import time

import pytest

from repro import run_kernel
from repro.runtime import (
    FailedResult,
    ResultCache,
    SimJob,
    WorkerError,
    config_token,
    default_jobs,
    default_retries,
    default_timeout,
    execute_jobs,
    execute_jobs_observed,
    job_key,
    program_fingerprint,
)
from repro.runtime import parallel as parallel_mod
from repro.runtime.parallel import ParallelRunner
from repro.uarch import SimStats
from repro.uarch.config import ci, scal, wb
from repro.workloads import build_program

SCALE = 0.1
SEED = 1


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=str(tmp_path / "cache"), enabled=True)


def make_runner(cache, jobs=1, scale=SCALE):
    return ParallelRunner(scale=scale, seed=SEED, jobs=jobs, cache=cache)


class TestCacheKeys:
    def test_fingerprint_stable_across_builds(self):
        a = build_program("eon", SCALE, SEED)
        b = build_program("eon", SCALE, SEED)
        assert program_fingerprint(a) == program_fingerprint(b)

    def test_fingerprint_sensitive_to_workload(self):
        a = build_program("eon", SCALE, SEED)
        b = build_program("eon", SCALE, SEED + 1)
        c = build_program("gzip", SCALE, SEED)
        assert program_fingerprint(a) != program_fingerprint(b)
        assert program_fingerprint(a) != program_fingerprint(c)

    def test_config_token_covers_every_field(self):
        assert config_token(ci(1, 512)) != config_token(ci(2, 512))
        assert config_token(ci(1, 512)) != config_token(
            ci(1, 512, policy="vect"))

    def test_job_key_varies_with_scale_and_seed(self):
        prog = build_program("eon", SCALE, SEED)
        cfg = wb(1, 256)
        assert job_key(prog, cfg, 0.1, 1) != job_key(prog, cfg, 0.2, 1)
        assert job_key(prog, cfg, 0.1, 1) != job_key(prog, cfg, 0.1, 2)


class TestResultCache:
    def test_miss_then_hit(self, cache):
        st = SimStats(cycles=10, committed=7)
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, st)
        assert cache.get("ab" * 32) == st

    def test_disabled_cache_is_inert(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "c"), enabled=False)
        cache.put("cd" * 32, SimStats(cycles=1))
        assert cache.get("cd" * 32) is None
        assert not os.path.exists(cache.root)

    def test_corrupt_entry_is_a_miss(self, cache):
        key = "ef" * 32
        path = cache.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            fh.write("{not json")
        assert cache.get(key) is None

    def test_info_and_clear(self, cache):
        for i in range(3):
            cache.put(f"{i:02d}" + "0" * 62, SimStats(cycles=i + 1))
        info = cache.info()
        assert info["entries"] == 3 and info["bytes"] > 0
        assert cache.clear() == 3
        assert cache.info()["entries"] == 0

    def test_no_tmp_files_left_behind(self, cache):
        cache.put("aa" + "0" * 62, SimStats(cycles=5))
        leftovers = [n for _, _, names in os.walk(cache.root)
                     for n in names if n.endswith(".tmp")]
        assert leftovers == []


class TestExecuteJobs:
    def test_serial_path(self):
        [st] = execute_jobs([SimJob("eon", SCALE, SEED, wb(1, 256))], 1)
        assert st.committed > 0

    def test_pool_path(self):
        jobs = [SimJob("eon", SCALE, SEED, wb(1, 256)),
                SimJob("gzip", SCALE, SEED, wb(1, 256))]
        stats = execute_jobs(jobs, 2)
        assert len(stats) == 2 and all(s.committed > 0 for s in stats)

    def test_worker_failure_reports_cleanly(self):
        jobs = [SimJob("eon", SCALE, SEED, wb(1, 256)),
                SimJob("nosuchkernel", SCALE, SEED, wb(1, 256))]
        with pytest.raises(WorkerError, match="nosuchkernel"):
            execute_jobs(jobs, 2)

    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert default_jobs() == 7
        monkeypatch.setenv("REPRO_JOBS", "junk")
        assert default_jobs() >= 1

    def test_default_jobs_warns_on_junk(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "many")
        default_jobs()
        assert "REPRO_JOBS" in capsys.readouterr().err


#: real worker entry point, captured before any monkeypatching
_real_run_job = parallel_mod._run_job


def _hang_on_mcf(job):
    """Test stand-in worker: 'mcf' hangs forever, everything else runs."""
    if job.kernel == "mcf":
        time.sleep(600)
    return _real_run_job(job)


def _hang_once(job):
    """Hangs 'mcf' on first sight (flag file), succeeds on retry."""
    flag = os.environ["_REPRO_TEST_HANG_FLAG"]
    if job.kernel == "mcf" and not os.path.exists(flag):
        open(flag, "w").close()
        time.sleep(600)
    return _real_run_job(job)


class TestResilience:
    def test_worker_error_aggregates_all_failures(self):
        jobs = [SimJob("nosuchkernel", SCALE, SEED, wb(1, 256)),
                SimJob("eon", SCALE, SEED, wb(1, 256)),
                SimJob("alsomissing", SCALE, SEED, wb(1, 256))]
        with pytest.raises(WorkerError) as exc_info:
            execute_jobs_observed(jobs, 2)
        msg = str(exc_info.value)
        assert msg.startswith("2 simulation(s) failed")
        assert "nosuchkernel" in msg and "alsomissing" in msg
        assert "Traceback" in msg          # full context, not just a name

    def test_keep_going_returns_placeholders_in_order(self):
        jobs = [SimJob("eon", SCALE, SEED, wb(1, 256)),
                SimJob("nosuchkernel", SCALE, SEED, wb(1, 256)),
                SimJob("gzip", SCALE, SEED, wb(1, 256))]
        out = execute_jobs_observed(jobs, 2, keep_going=True)
        assert len(out) == 3
        assert out[0][0].committed > 0 and out[2][0].committed > 0
        hole = out[1][0]
        assert isinstance(hole, FailedResult) and hole.phase == "worker"
        assert hole.kernel == "nosuchkernel"
        assert "nosuchkernel" in hole.error

    def test_failed_result_duck_types_as_nan(self):
        fr = FailedResult("mcf", 0.1, 1, error="boom")
        assert fr.failed is True
        assert math.isnan(fr.ipc) and math.isnan(fr.reuse_fraction)
        assert math.isnan(fr.ipc * 2 + 1)  # NaN propagates through math
        assert "mcf" in fr.describe()
        assert fr.to_dict()["failed"] is True
        with pytest.raises(AttributeError):
            fr._private

    def test_stall_watchdog_times_out_hung_worker(self, monkeypatch):
        monkeypatch.setattr(parallel_mod, "_run_job", _hang_on_mcf)
        jobs = [SimJob("eon", SCALE, SEED, wb(1, 256)),
                SimJob("mcf", SCALE, SEED, wb(1, 256))]
        start = time.monotonic()
        out = execute_jobs_observed(jobs, 2, timeout=1.5, retries=0,
                                    keep_going=True)
        assert time.monotonic() - start < 30    # did not wait for sleep(600)
        assert out[0][0].committed > 0
        hole = out[1][0]
        assert isinstance(hole, FailedResult) and hole.phase == "timeout"
        assert "hung" in hole.error

    def test_transient_timeout_is_retried(self, monkeypatch, tmp_path):
        monkeypatch.setenv("_REPRO_TEST_HANG_FLAG",
                           str(tmp_path / "hung-once"))
        monkeypatch.setattr(parallel_mod, "_run_job", _hang_once)
        jobs = [SimJob("eon", SCALE, SEED, wb(1, 256)),
                SimJob("mcf", SCALE, SEED, wb(1, 256))]
        out = execute_jobs_observed(jobs, 2, timeout=1.5, retries=1)
        assert all(st.committed > 0 for st, _ in out)   # recovered

    def test_permanent_failures_are_not_retried(self):
        # One pass only: a worker traceback is deterministic.
        jobs = [SimJob("nosuchkernel", SCALE, SEED, wb(1, 256))]
        out = execute_jobs_observed(jobs, 1, retries=3, keep_going=True)
        assert out[0][0].attempts == 1

    def test_runner_keep_going_collects_failures(self, cache):
        r = ParallelRunner(scale=SCALE, seed=SEED, jobs=2, cache=cache,
                           keep_going=True)
        cfg = wb(1, 256)
        out = r.run_many([("eon", cfg), ("nosuchkernel", cfg)])
        assert out[0].committed > 0
        assert getattr(out[1], "failed", False)
        assert len(r.failures) == 1
        assert "nosuchkernel" in r.failure_report()
        assert "1 FAILED" in r.runtime_summary()

    def test_failures_are_never_memoised_or_cached(self, cache):
        r = ParallelRunner(scale=SCALE, seed=SEED, jobs=1, cache=cache,
                           keep_going=True)
        cfg = wb(1, 256)
        out1 = r.run_many([("nosuchkernel", cfg)])
        assert getattr(out1[0], "failed", False)
        n = r.sims_run
        out2 = r.run_many([("nosuchkernel", cfg)])
        assert r.sims_run == n + 1     # re-attempted, not served from memo
        assert getattr(out2[0], "failed", False)

    def test_keep_going_env_variable(self, monkeypatch, cache):
        monkeypatch.setenv("REPRO_KEEP_GOING", "1")
        r = ParallelRunner(scale=SCALE, seed=SEED, jobs=1, cache=cache)
        assert r.keep_going

    def test_timeout_and_retries_env_parsing(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TIMEOUT", "2.5")
        assert default_timeout() == 2.5
        monkeypatch.setenv("REPRO_TIMEOUT", "0")
        assert default_timeout() is None
        monkeypatch.setenv("REPRO_TIMEOUT", "soon")
        assert default_timeout() is None
        monkeypatch.setenv("REPRO_RETRIES", "4")
        assert default_retries() == 4
        monkeypatch.setenv("REPRO_RETRIES", "lots")
        assert default_retries() == 1
        assert "REPRO_TIMEOUT" in capsys.readouterr().err


class TestParallelRunner:
    def test_memo_returns_same_object(self, cache):
        r = make_runner(cache)
        cfg = wb(1, 256)
        assert r.run("eon", cfg) is r.run("eon", cfg)
        assert r.memo_hits == 1 and r.sims_run == 1

    def test_warm_disk_cache_runs_zero_simulations(self, cache):
        cfg = ci(1, 512)
        first = make_runner(cache)
        a = first.run("eon", cfg)
        assert first.sims_run == 1
        second = make_runner(cache)  # fresh process-level state
        b = second.run("eon", cfg)
        assert second.sims_run == 0 and second.disk_hits == 1
        assert a == b

    def test_batch_dedupes_repeated_points(self, cache):
        r = make_runner(cache)
        cfg = wb(1, 256)
        out = r.run_many([("eon", cfg), ("eon", cfg), ("eon", cfg)])
        assert r.sims_run == 1
        assert out[0] is out[1] is out[2]

    def test_runtime_summary_mentions_counts(self, cache):
        r = make_runner(cache)
        r.run("eon", wb(1, 256))
        assert "1 simulation(s)" in r.runtime_summary()


class TestDeterminism:
    """Same (kernel, config, seed) must agree serially, via the pool,
    and via a cache hit — byte-identical counters (IPC, cycles, ...)."""

    CFG = ci(1, 512)

    def test_serial_pool_and_cache_agree(self, tmp_path):
        serial = run_kernel("eon", self.CFG, scale=SCALE, seed=SEED)

        nocache = ResultCache(root=str(tmp_path / "c1"), enabled=True)
        pooled = make_runner(nocache, jobs=2)
        via_pool = pooled.run_many([("eon", self.CFG), ("gzip", self.CFG)])[0]
        assert pooled.sims_run == 2

        rehydrated = make_runner(nocache).run("eon", self.CFG)

        assert serial.to_dict() == via_pool.to_dict() == rehydrated.to_dict()
        assert serial.ipc == via_pool.ipc == rehydrated.ipc
        assert serial.cycles == via_pool.cycles == rehydrated.cycles
        assert serial.committed == via_pool.committed == rehydrated.committed

    def test_scal_scheme_agrees_too(self, tmp_path):
        cfg = scal(1, 256)
        serial = run_kernel("gzip", cfg, scale=SCALE, seed=SEED)
        cache = ResultCache(root=str(tmp_path / "c2"), enabled=True)
        pooled = make_runner(cache, jobs=2).run_many(
            [("gzip", cfg), ("eon", cfg)])[0]
        assert serial.to_dict() == pooled.to_dict()

    def test_figure_output_identical_with_observer(self, tmp_path):
        """Observation must not perturb results: the rendered figure is
        byte-identical with observers attached vs detached, serial vs
        pooled."""
        from repro.experiments import fig05
        from repro.experiments.common import Runner

        def render(observe, jobs, sub):
            cache = ResultCache(root=str(tmp_path / sub), enabled=True)
            runner = Runner(scale=SCALE, seed=SEED, jobs=jobs, cache=cache,
                            observe=observe)
            return fig05.compute(runner).render(), runner

        bare, _ = render(None, 1, "bare")
        observed, runner = render("cpi,audit", 2, "obs")
        assert observed == bare
        # ... and the observations themselves arrived.
        merged = runner.merged_observations()
        assert merged["cpi"]["cycles"] > 0
        assert merged["audit"]["events"]

    def test_observing_runner_payload_determinism(self, tmp_path):
        """Merged payloads agree between serial and pooled execution."""
        cfg = ci(1, 512)
        points = [("eon", cfg), ("gzip", cfg), ("mcf", cfg)]

        def observed_run(jobs, sub):
            cache = ResultCache(root=str(tmp_path / sub), enabled=True)
            r = ParallelRunner(scale=SCALE, seed=SEED, jobs=jobs,
                               cache=cache, observe="cpi,audit")
            stats = r.run_many(points)
            return stats, r.merged_observations()

        serial_stats, serial_obs = observed_run(1, "s")
        pooled_stats, pooled_obs = observed_run(3, "p")
        assert [s.to_dict() for s in serial_stats] \
            == [s.to_dict() for s in pooled_stats]
        assert serial_obs == pooled_obs


class TestServingSatellites:
    """Runtime hooks added for the serving layer."""

    def test_default_jobs_prefers_affinity_mask(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: {0, 1, 2}, raising=False)
        assert default_jobs() == 3

    def test_default_jobs_falls_back_without_affinity(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)

        def no_affinity(pid):
            raise OSError("not supported here")

        monkeypatch.setattr(os, "sched_getaffinity", no_affinity,
                            raising=False)
        assert default_jobs() >= 1

    def test_runner_sources_attribution(self, cache):
        cfg = wb(1, 256)
        r = make_runner(cache, jobs=1)
        r.run("eon", cfg)
        assert r.sources[("eon", cfg)] == "sim"
        r.run("eon", cfg)
        assert r.sources[("eon", cfg)] == "memo"
        fresh = make_runner(cache, jobs=1)
        fresh.run("eon", cfg)
        assert fresh.sources[("eon", cfg)] == "disk"

    def test_runner_sources_mark_failures(self, cache):
        r = ParallelRunner(scale=SCALE, seed=SEED, jobs=1, cache=cache,
                           keep_going=True)
        cfg = wb(1, 256)
        r.run_many([("nosuchkernel", cfg)])
        assert r.sources[("nosuchkernel", cfg)] == "failed"

    def test_pool_restart_counter_increments_on_retry(self, monkeypatch,
                                                      tmp_path):
        from repro.runtime import pool_restart_count
        monkeypatch.setenv("_REPRO_TEST_HANG_FLAG",
                           str(tmp_path / "hung-once-2"))
        monkeypatch.setattr(parallel_mod, "_run_job", _hang_once)
        before = pool_restart_count()
        # Two jobs: the single-job serial path bypasses pool + watchdog.
        jobs = [SimJob("eon", SCALE, SEED, wb(1, 256)),
                SimJob("mcf", SCALE, SEED, wb(1, 256))]
        execute_jobs_observed(jobs, 2, timeout=1.5, retries=1)
        assert pool_restart_count() == before + 1

    def test_worker_error_interrupted_flag_default(self):
        assert WorkerError("x").interrupted is False

    def test_runner_flushes_cache_counters(self, cache):
        cfg = wb(1, 256)
        make_runner(cache, jobs=1).run("eon", cfg)     # miss + put
        make_runner(cache, jobs=1).run("eon", cfg)     # disk hit
        totals = cache.load_counters()
        assert totals["misses"] >= 1 and totals["hits"] >= 1
