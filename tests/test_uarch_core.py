"""Integration tests for the out-of-order core's timing behaviour."""

import pytest

from repro.isa import assemble, run
from repro.uarch import ProcessorConfig, SimulationError, scal, simulate, wb
from repro.workloads import SUITE, build_program


def sim(src, cfg=None, **kw):
    return simulate(assemble(src), cfg or ProcessorConfig(), **kw)


class TestBasicExecution:
    def test_empty_halt(self):
        st = sim("halt")
        assert st.committed == 1 and st.cycles >= 1

    def test_commit_count_matches_functional(self):
        src = """
            li r1, 10
        loop:
            subi r1, r1, 1
            bnez r1, loop
            halt
        """
        p = assemble(src)
        assert simulate(p).committed == run(p).steps

    def test_ipc_bounded_by_commit_width(self):
        st = sim("\n".join(["addi r1, r1, 1"] * 64) + "\nhalt")
        assert st.ipc <= 8.0 + 1e-9

    def test_independent_ops_superscalar(self):
        # 6 independent chains -> IPC should comfortably exceed 1.
        body = []
        for i in range(240):
            body.append(f"addi r{1 + (i % 6)}, r{1 + (i % 6)}, 1")
        st = sim("\n".join(body) + "\nhalt")
        assert st.ipc > 3.0

    def test_dependent_chain_serialises(self):
        st = sim("\n".join(["addi r1, r1, 1"] * 100) + "\nhalt")
        # 1-cycle ALU chain: roughly one per cycle, plus pipeline fill.
        assert st.cycles >= 100

    def test_mul_latency_visible(self):
        chain_add = sim("\n".join(["addi r1, r1, 1"] * 50) + "\nhalt")
        chain_mul = sim("\n".join(["muli r1, r1, 1"] * 50) + "\nhalt")
        assert chain_mul.cycles > chain_add.cycles + 25  # 2-cycle vs 1-cycle

    def test_div_longer_than_mul(self):
        mul = sim("li r2, 3\n" + "\n".join(["mul r1, r1, r2"] * 30) + "\nhalt")
        div = sim("li r2, 3\n" + "\n".join(["div r1, r1, r2"] * 30) + "\nhalt")
        assert div.cycles > mul.cycles + 30 * 8


class TestBranchBehaviour:
    def test_predictable_loop_cheap(self):
        st = sim("""
            li r1, 200
        loop:
            subi r1, r1, 1
            bnez r1, loop
            halt
        """)
        assert st.cond_branches == 200
        assert st.mispredicts <= 8   # cold-start only

    def test_random_branch_mispredicts(self):
        st = simulate(build_program("bzip2", 0.5), ProcessorConfig())
        assert st.mispredict_rate > 0.1
        assert st.squashed > 0

    def test_misprediction_penalty_visible(self):
        # Same instruction count; one version branches on noise.
        prog_noisy = build_program("bzip2", 0.5)
        st = simulate(prog_noisy, ProcessorConfig())
        ipc_noisy = st.ipc
        st2 = simulate(build_program("eon", 0.5), ProcessorConfig())
        assert st2.ipc > ipc_noisy  # easy branches -> higher IPC

    def test_wrong_path_work_is_squashed_not_committed(self):
        p = build_program("vpr", 0.5)
        st = simulate(p, ProcessorConfig())
        assert st.committed == run(p).steps
        assert st.squashed > 0


class TestMemorySystem:
    def test_store_load_forwarding(self):
        st = sim("""
        .data buf 1
            la r1, buf
            li r2, 7
            st r2, 0(r1)
            ld r3, 0(r1)
            halt
        """)
        assert st.store_forwards >= 1

    def test_l1_access_counting(self):
        st = sim("""
        .dataw arr 1 2 3 4
            la r1, arr
            ld r2, 0(r1)
            ld r3, 8(r1)
            ld r4, 16(r1)
            ld r5, 24(r1)
            halt
        """)
        assert st.l1d_load_accesses == 4

    def test_wide_bus_groups_same_line_loads(self):
        src = """
        .dataw arr 1 2 3 4
            la r1, arr
            ld r2, 0(r1)
            ld r3, 8(r1)
            ld r4, 16(r1)
            ld r5, 24(r1)
            halt
        """
        narrow = sim(src, scal(1))
        wide = sim(src, wb(1))
        assert wide.l1d_accesses < narrow.l1d_accesses

    def test_wide_bus_helps_on_memory_dense_kernels(self):
        p = build_program("gap", 0.5)
        assert simulate(p, wb(1)).ipc > simulate(p, scal(1)).ipc * 1.15

    def test_cold_misses_counted(self):
        st = simulate(build_program("bzip2", 0.5), ProcessorConfig())
        assert st.l1d_misses > 0


class TestRegisterPressure:
    def test_small_regfile_hurts(self):
        p = build_program("vpr", 0.5)
        small = simulate(p, ProcessorConfig(phys_regs=80))
        big = simulate(p, ProcessorConfig(phys_regs=512))
        assert small.ipc < big.ipc
        assert small.rename_stall_cycles > big.rename_stall_cycles

    def test_usage_sampling(self):
        st = simulate(build_program("bzip2", 0.5), ProcessorConfig())
        assert 0 < st.avg_regs_in_use <= st.regs_in_use_peak
        assert st.regs_in_use_peak <= ProcessorConfig().rename_regs


class TestLimits:
    def test_max_instructions_stops_early(self):
        p = build_program("bzip2", 0.5)
        st = simulate(p, ProcessorConfig(), max_instructions=1000)
        assert st.committed <= 1008  # within one commit group

    def test_runaway_raises(self):
        with pytest.raises(SimulationError):
            sim("loop: j loop", ProcessorConfig(max_cycles=5000))

    def test_fall_off_end_terminates(self):
        st = sim("addi r1, r1, 1\naddi r2, r2, 2")
        assert st.committed == 2


class TestDeterminism:
    def test_same_program_same_stats(self):
        p = build_program("twolf", 0.5)
        a = simulate(p, ProcessorConfig())
        b = simulate(p, ProcessorConfig())
        assert a.as_dict() == b.as_dict()


@pytest.mark.parametrize("name", [s.name for s in SUITE])
def test_every_kernel_commits_functional_count(name):
    """Golden cross-check: timing simulation must commit exactly the
    functional dynamic instruction count, for every kernel."""
    p = build_program(name, 0.4)
    assert simulate(p, ProcessorConfig()).committed == run(p).steps


class TestIPCTimeline:
    def test_interval_series_consistent(self):
        st = simulate(build_program("bzip2", 0.4), ProcessorConfig())
        series = st.interval_ipc
        assert len(series) == len(st.interval_committed)
        # The series must integrate back to the total committed count.
        total = sum(x * st.interval_cycles for x in series)
        assert abs(total - st.interval_committed[-1]) < 1e-6

    def test_mechanism_warms_up(self):
        from repro import run_program
        from repro.uarch import ci
        st = run_program(build_program("bzip2", 0.6), ci(1, 512))
        series = st.interval_ipc
        assert len(series) >= 6
        # Steady-state intervals beat the cold first interval (stride
        # predictor training + replica batches ramping).
        assert max(series[3:]) > series[0]
