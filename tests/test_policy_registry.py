"""The policy registry: resolution, validation, and the new ablations.

Covers the registry API itself (lookup, suggestions, component-name
validation, runtime registration) and proves the two registry-derived
ablation policies — ``ci-oracle-mbs`` and ``ci-ideal-reconv`` — run
correctly end-to-end: against the functional oracle, through the
process pool (including the ``SimJob.policy`` name override), and
through the persistent result cache.
"""

import pytest

from repro import run_program
from repro.ci import (
    PolicySpec,
    all_policies,
    build_components,
    get_policy,
    policy_names,
    register_policy,
)
from repro.ci.registry import _REGISTRY
from repro.isa import run as run_functional
from repro.runtime import ResultCache, SimJob, execute_jobs
from repro.runtime.parallel import ParallelRunner
from repro.uarch.config import ci
from repro.workloads import build_program

SCALE = 0.05
SEED = 1
ABLATIONS = ["ci-oracle-mbs", "ci-ideal-reconv"]


class TestRegistry:
    def test_builtins_present(self):
        names = policy_names()
        for name in ("ci", "ci-iw", "vect", *ABLATIONS):
            assert name in names

    def test_get_policy_roundtrips(self):
        for spec in all_policies():
            assert get_policy(spec.name) is spec

    def test_unknown_name_suggests_close_matches(self):
        with pytest.raises(ValueError, match="did you mean 'ci-oracle-mbs'"):
            get_policy("ci-orcale-mbs")

    def test_unknown_name_lists_known_policies(self):
        with pytest.raises(ValueError, match="known:.*'ci-iw'"):
            get_policy("zzz-nothing-close")

    def test_config_validates_policy_at_construction(self):
        with pytest.raises(ValueError, match="unknown policy"):
            ci(1, 256, policy="ci-orcale-mbs")

    def test_register_rejects_unknown_components(self):
        with pytest.raises(ValueError, match="unknown filter"):
            register_policy(PolicySpec("bad-f", "", filter="psychic"))
        with pytest.raises(ValueError, match="unknown tracker"):
            register_policy(PolicySpec("bad-t", "", tracker="prophetic"))
        with pytest.raises(ValueError, match="needs a selector"):
            register_policy(PolicySpec("bad-s", "", selector=None))
        assert not {"bad-f", "bad-t", "bad-s"} & set(policy_names())

    def test_runtime_registration_runs_end_to_end(self):
        spec = PolicySpec("test-never-hard", "test-only: filters every "
                          "branch out", filter="never")
        register_policy(spec)
        try:
            assert get_policy("test-never-hard") is spec
            prog = build_program("eon", SCALE, SEED)
            st = run_program(prog, ci(1, 512, policy="test-never-hard"))
            # With no branch ever classified hard, the CRP never arms.
            assert st.committed > 0 and st.ci_events == 0
        finally:
            del _REGISTRY["test-never-hard"]

    def test_build_components_honours_mbs_ablation_flag(self):
        from repro.ci import AlwaysHardFilter, MBSFilter
        spec = get_policy("ci")
        on = build_components(spec, ci(1, 256))
        off = build_components(spec, ci(1, 256, ci_mbs_filter=False))
        assert isinstance(on["filter"], MBSFilter)
        assert isinstance(off["filter"], AlwaysHardFilter)


class TestAblationPolicies:
    """The two free ablations must be *correct*, not just runnable."""

    @pytest.mark.parametrize("policy", ABLATIONS)
    def test_commits_match_functional_oracle(self, policy):
        prog = build_program("eon", SCALE, SEED)
        oracle = run_functional(prog, max_steps=500_000)
        st = run_program(prog, ci(1, 512, policy=policy))
        assert st.committed == oracle.steps

    @pytest.mark.parametrize("policy", ABLATIONS)
    def test_mechanism_engages(self, policy):
        st = run_program(build_program("bzip2", 0.1, SEED),
                         ci(1, 512, policy=policy))
        assert st.ci_events > 0 and st.ci_reused > 0

    def test_deterministic(self):
        cfg = ci(1, 512, policy="ci-ideal-reconv")
        prog = build_program("eon", SCALE, SEED)
        assert run_program(prog, cfg).as_dict() \
            == run_program(prog, cfg).as_dict()


class TestRuntimeIntegration:
    def test_simjob_policy_override(self):
        base = ci(1, 512)  # ci_policy == "ci"
        job = SimJob("eon", SCALE, SEED, base, policy="ci-oracle-mbs")
        assert job.resolved_cfg().ci_policy == "ci-oracle-mbs"
        assert SimJob("eon", SCALE, SEED, base).resolved_cfg() is base

    def test_ablations_through_the_pool(self):
        """Both new policies run in worker processes; the name override
        produces the same stats as baking the policy into the config."""
        base = ci(1, 512)
        jobs = [SimJob("eon", SCALE, SEED, base, policy=p)
                for p in ABLATIONS]
        pooled = execute_jobs(jobs, 2)
        for policy, st in zip(ABLATIONS, pooled):
            direct = run_program(build_program("eon", SCALE, SEED),
                                 ci(1, 512, policy=policy))
            assert st.to_dict() == direct.to_dict()

    @pytest.mark.parametrize("policy", ABLATIONS)
    def test_ablations_through_the_persistent_cache(self, tmp_path, policy):
        cache = ResultCache(root=str(tmp_path / "cache"), enabled=True)
        cfg = ci(1, 512, policy=policy)
        first = ParallelRunner(scale=SCALE, seed=SEED, jobs=1, cache=cache)
        a = first.run("eon", cfg)
        assert first.sims_run == 1
        warm = ParallelRunner(scale=SCALE, seed=SEED, jobs=1, cache=cache)
        b = warm.run("eon", cfg)
        assert warm.sims_run == 0 and warm.disk_hits == 1
        assert a == b

    def test_cache_keys_distinguish_policies(self, tmp_path):
        """A cached ``ci`` result must never satisfy an ablation query."""
        cache = ResultCache(root=str(tmp_path / "cache"), enabled=True)
        r = ParallelRunner(scale=SCALE, seed=SEED, jobs=1, cache=cache)
        r.run("eon", ci(1, 512))
        r.run("eon", ci(1, 512, policy="ci-oracle-mbs"))
        assert r.sims_run == 2 and r.disk_hits == 0
