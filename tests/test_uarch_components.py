"""Unit tests for the superscalar substrate's components."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch import (
    CacheConfig,
    CacheLevel,
    FreeList,
    Gshare,
    MemoryHierarchy,
    ProcessorConfig,
    RenameTable,
    ci,
    scal,
    wb,
    with_spec_mem,
)
from repro.uarch.funits import FUPool
from repro.isa import FUClass


class TestGshare:
    def test_learns_always_taken(self):
        g = Gshare(10)
        for _ in range(8):
            taken = g.predict(100)
            g.speculate(True)
            g.train(100, g.history >> 1, True)
        assert g.predict(100) is True

    def test_learns_alternation_with_history(self):
        g = Gshare(12)
        outcome = True
        correct = 0
        for i in range(200):
            h = g.checkpoint()
            pred = g.predict(64)
            g.speculate(outcome)
            g.train(64, h, outcome)
            if i >= 100 and pred == outcome:
                correct += 1
            outcome = not outcome
        assert correct >= 95  # alternating pattern is learnable

    def test_recover_restores_history(self):
        g = Gshare(8)
        h0 = g.checkpoint()
        g.speculate(True)
        g.speculate(True)
        g.recover(h0, False)
        assert g.history == ((h0 << 1) & g.mask)

    def test_history_wraps_to_mask(self):
        g = Gshare(4)
        for _ in range(100):
            g.speculate(True)
        assert g.history == 0xF


class TestCaches:
    def make(self, size=1024, assoc=2, line=32):
        return CacheLevel(CacheConfig(size, assoc, line, 1))

    def test_miss_then_hit(self):
        c = self.make()
        assert not c.access(0x100)
        assert c.access(0x100)
        assert c.access(0x11F)  # same 32B line
        assert not c.access(0x120)  # next line

    def test_lru_eviction(self):
        c = self.make(size=2 * 32 * 2, assoc=2, line=32)  # 2 sets, 2 ways
        sets = c.num_sets
        a, b, d = 0, sets * 32, 2 * sets * 32  # all map to set 0
        c.access(a)
        c.access(b)
        c.access(d)          # evicts a (LRU)
        assert not c.probe(a)
        assert c.probe(b) and c.probe(d)

    def test_probe_does_not_touch_lru(self):
        c = self.make(size=2 * 32 * 2, assoc=2, line=32)
        sets = c.num_sets
        a, b, d = 0, sets * 32, 2 * sets * 32
        c.access(a)
        c.access(b)
        c.probe(a)           # must NOT refresh a
        c.access(d)          # evicts a
        assert not c.probe(a)

    def test_hierarchy_latencies(self):
        h = MemoryHierarchy(ProcessorConfig())
        lat_cold = h.load_latency(0x4000, now=0)
        assert lat_cold == 100  # cold: misses everywhere -> memory
        lat_hot = h.load_latency(0x4000, now=200)
        assert lat_hot == 1

    def test_l2_hit_after_l1_eviction(self):
        cfg = ProcessorConfig(l1d=CacheConfig(64, 1, 32, 1))  # tiny L1
        h = MemoryHierarchy(cfg)
        h.load_latency(0x0, now=0)
        h.load_latency(0x40, now=110)   # evicts line 0 from 2-set L1
        h.load_latency(0x80, now=220)
        lat = h.load_latency(0x0, now=330)
        assert lat == cfg.l2.hit_latency

    def test_mshr_limit_delays(self):
        cfg = ProcessorConfig(mshrs=1)
        h = MemoryHierarchy(cfg)
        l1 = h.load_latency(0x10000, now=0)
        l2 = h.load_latency(0x20000, now=0)   # must wait for first fill
        assert l2 > l1

    def test_store_allocates(self):
        h = MemoryHierarchy(ProcessorConfig())
        h.store_access(0x5000)
        assert h.load_latency(0x5000, now=300) == 1


class TestRenameTable:
    def test_write_and_restore(self):
        rt = RenameTable(strided_pcs_per_entry=2)
        rec = rt.snapshot_reg(5)
        tok = object()
        rt.write(5, tok, 42, (1, 2))
        assert rt.owner[5] is tok and rt.vect_pc[5] == 42
        rt.restore_reg(rec)
        assert rt.owner[5] is None and rt.vect_pc[5] is None
        assert rt.strided_pcs[5] == ()

    def test_strided_cap_and_overflow_count(self):
        rt = RenameTable(strided_pcs_per_entry=2)
        rt.write(1, None, None, (10, 20, 30))
        assert rt.strided_pcs[1] == (10, 20)
        assert rt.overflow_count == 1

    def test_merge_strided_dedups_preserving_order(self):
        rt = RenameTable(strided_pcs_per_entry=4)
        rt.write(1, None, None, (10, 20))
        rt.write(2, None, None, (20, 30))
        assert rt.merge_strided((1, 2)) == (10, 20, 30)

    def test_assignment_stats(self):
        rt = RenameTable(strided_pcs_per_entry=4)
        rt.write(1, None, None, (10,))
        rt.write(2, None, None, (10, 20))
        assert rt.assign_count == 2 and rt.assign_sum == 3

    def test_clear_owner_only_for_matching_inst(self):
        rt = RenameTable()
        a, b = object(), object()
        rt.write(3, a, None, ())
        rt.clear_owner_if(3, b)
        assert rt.owner[3] is a
        rt.clear_owner_if(3, a)
        assert rt.owner[3] is None


class TestFreeList:
    def test_alloc_release_roundtrip(self):
        fl = FreeList(4)
        assert fl.alloc(3)
        assert fl.in_use == 3
        assert not fl.alloc(2)
        fl.release(3)
        assert fl.in_use == 0

    def test_alloc_up_to(self):
        fl = FreeList(3)
        assert fl.alloc_up_to(5) == 3
        assert fl.alloc_up_to(1) == 0

    def test_double_release_asserts(self):
        fl = FreeList(1)
        fl.alloc(1)
        fl.release(1)
        with pytest.raises(AssertionError):
            fl.release(1)

    @given(st.lists(st.integers(min_value=1, max_value=8), max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_never_negative(self, requests):
        fl = FreeList(16)
        held = 0
        for n in requests:
            if fl.alloc(n):
                held += n
            elif held:
                fl.release(held)
                held = 0
            assert 0 <= fl.free <= 16


class TestFUPool:
    def test_capacities_match_table1(self):
        p = FUPool(ProcessorConfig())
        assert p.available(FUClass.INT_ALU) == 6
        assert p.available(FUClass.INT_MUL) == 3
        assert p.available(FUClass.FP_ADD) == 4
        assert p.available(FUClass.FP_MUL) == 2

    def test_div_shares_mul_units(self):
        p = FUPool(ProcessorConfig())
        for _ in range(3):
            assert p.acquire(FUClass.INT_DIV)
        assert not p.acquire(FUClass.INT_MUL)

    def test_reset_restores(self):
        p = FUPool(ProcessorConfig())
        p.acquire(FUClass.INT_ALU)
        p.reset()
        assert p.available(FUClass.INT_ALU) == 6


class TestConfigs:
    def test_presets(self):
        assert scal(2).l1d_ports == 2 and not scal(2).wide_bus
        assert wb(1).wide_bus and wb(1).ci_policy is None
        c = ci(2, regs=512)
        assert c.ci_policy == "ci" and c.wide_bus and c.phys_regs == 512

    def test_spec_mem_wrapper(self):
        c = with_spec_mem(ci(1), 768)
        assert c.spec_mem_size == 768 and c.spec_mem_latency == 2

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            ProcessorConfig(ci_policy="bogus")

    def test_too_few_regs_rejected(self):
        with pytest.raises(ValueError):
            ProcessorConfig(phys_regs=32)

    def test_rename_regs(self):
        assert ProcessorConfig(phys_regs=256).rename_regs == 192
