"""Unit tests for the mechanism's hardware structures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ci import (
    CRP,
    MBS,
    NRBQ,
    SpecDataMemory,
    SquashReuseBuffer,
    StridePredictor,
)
from repro.ci.assoc import SetAssocTable
from repro.ci.mbs import COUNTER_MAX, COUNTER_MID


class TestSetAssocTable:
    def test_insert_lookup(self):
        t = SetAssocTable(4, 2)
        t.insert(8, "a")
        assert t.lookup(8) == "a"
        assert t.lookup(12) is None

    def test_conflict_eviction_lru(self):
        t = SetAssocTable(4, 2)
        t.insert(0, "a")
        t.insert(4, "b")   # same set (0 % 4 == 4 % 4)
        t.lookup(0)        # refresh a -> b becomes LRU
        t.insert(8, "c")   # evicts b
        assert t.lookup(4) is None
        assert t.lookup(0) == "a" and t.lookup(8) == "c"

    def test_insert_returns_evicted(self):
        t = SetAssocTable(1, 1)
        assert t.insert(1, "a") is None
        assert t.insert(2, "b") == (1, "a")

    def test_reinsert_same_key_no_eviction(self):
        t = SetAssocTable(1, 2)
        t.insert(1, "a")
        t.insert(3, "b")
        assert t.insert(1, "a2") is None
        assert t.lookup(1) == "a2" and len(t) == 2

    def test_remove(self):
        t = SetAssocTable(2, 2)
        t.insert(5, "x")
        assert t.remove(5) == "x"
        assert t.remove(5) is None

    def test_different_sets_do_not_conflict(self):
        t = SetAssocTable(4, 1)
        for k in range(4):
            t.insert(k, k)
        assert len(t) == 4

    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_capacity_invariant(self, keys):
        t = SetAssocTable(4, 2)
        for k in keys:
            t.insert(k, k)
        assert len(t) <= 8
        for s in t._sets:
            assert len(s) <= 2


class TestMBS:
    def test_unknown_branch_is_hard(self):
        assert MBS().is_hard(100)

    def test_biased_taken_becomes_easy(self):
        m = MBS()
        for _ in range(8):
            m.update(10, True)
        assert not m.is_hard(10)

    def test_biased_not_taken_becomes_easy(self):
        m = MBS()
        for _ in range(9):
            m.update(10, False)
        assert not m.is_hard(10)

    def test_alternation_stays_hard(self):
        m = MBS()
        taken = True
        for _ in range(50):
            m.update(10, taken)
            taken = not taken
        assert m.is_hard(10)

    def test_direction_flip_resets_to_middle(self):
        m = MBS()
        for _ in range(8):
            m.update(10, True)   # saturate at max
        m.update(10, False)      # flip -> reset to middle
        e = m.table.lookup(10)
        assert e.counter == COUNTER_MID
        assert m.is_hard(10)

    def test_counter_saturates(self):
        m = MBS()
        for _ in range(40):
            m.update(10, True)
        assert m.table.lookup(10).counter == COUNTER_MAX


class TestStridePredictor:
    def test_confidence_builds_with_stable_stride(self):
        p = StridePredictor()
        for i in range(5):
            p.update(7, 1000 + 8 * i)
        e = p.confident(7)
        assert e is not None and e.stride == 8

    def test_not_confident_initially(self):
        p = StridePredictor()
        p.update(7, 1000)
        p.update(7, 1008)
        assert p.confident(7) is None

    def test_zero_stride_never_confident(self):
        p = StridePredictor()
        for _ in range(6):
            p.update(7, 1000)
        assert p.confident(7) is None

    def test_stride_change_decays_then_relearns(self):
        p = StridePredictor()
        for i in range(6):
            p.update(7, 1000 + 8 * i)
        for i in range(8):
            p.update(7, 5000 + 16 * i)
        e = p.confident(7)
        assert e is not None and e.stride == 16

    def test_mark_selected_sets_s_flag(self):
        p = StridePredictor()
        p.update(7, 0)
        assert p.mark_selected(7)
        assert p.lookup(7).selected

    def test_mark_selected_unknown_pc(self):
        assert not StridePredictor().mark_selected(99)

    def test_conflict_blacklist_blocks_reselection(self):
        p = StridePredictor()
        p.update(7, 0)
        p.lookup(7).conflicts = 2
        assert not p.mark_selected(7, conflict_blacklist=2)
        assert p.mark_selected(7, conflict_blacklist=0)  # disabled

    @given(st.integers(min_value=1, max_value=512),
           st.integers(min_value=4, max_value=12))
    @settings(max_examples=25, deadline=None)
    def test_any_constant_stride_learned(self, stride, n):
        p = StridePredictor()
        for i in range(n):
            p.update(3, 10_000 + stride * i)
        e = p.confident(3)
        assert e is not None and e.stride == stride


class TestNRBQAndCRP:
    def test_mask_accumulates_in_youngest_entry(self):
        q = NRBQ()
        q.on_branch_fetch(10, 20, seq=1)
        q.on_instruction_fetch(3)
        q.on_branch_fetch(30, 40, seq=2)
        q.on_instruction_fetch(5)
        assert q.entries[0].mask == 1 << 3
        assert q.entries[1].mask == 1 << 5

    def test_or_masks_from(self):
        q = NRBQ()
        q.on_branch_fetch(10, 20, seq=1)
        q.on_instruction_fetch(3)
        q.on_branch_fetch(30, 40, seq=2)
        q.on_instruction_fetch(5)
        assert q.or_masks_from(1) == (1 << 3) | (1 << 5)
        assert q.or_masks_from(2) == 1 << 5

    def test_capacity_limit(self):
        q = NRBQ(capacity=2)
        assert q.on_branch_fetch(1, 2, seq=1)
        assert q.on_branch_fetch(3, 4, seq=2)
        assert q.on_branch_fetch(5, 6, seq=3) is None

    def test_retire_and_squash(self):
        q = NRBQ()
        for s in (1, 2, 3):
            q.on_branch_fetch(s * 10, s * 10 + 5, seq=s)
        q.squash_younger(2)
        assert [e.seq for e in q.entries] == [1, 2]
        q.on_branch_retire(1)
        assert [e.seq for e in q.entries] == [2]

    def test_crp_reached_and_selection_window(self):
        c = CRP()
        c.arm(branch_pc=10, branch_seq=5, reconv_pc=20, initial_mask=1 << 2)
        assert not c.on_decode(15, dest_reg=3)   # pre-reconv: dirties r3
        assert c.mask & (1 << 3)
        assert c.on_decode(20, dest_reg=4)       # reconv reached
        assert c.reached
        assert c.on_decode(21, dest_reg=None)    # post-reconv

    def test_crp_sources_clean(self):
        c = CRP()
        c.arm(10, 5, 20, initial_mask=(1 << 2) | (1 << 7))
        assert c.sources_clean((1, 3))
        assert not c.sources_clean((2,))
        assert not c.sources_clean((1, 7))

    def test_crp_disarm(self):
        c = CRP()
        c.arm(10, 5, 20, 0)
        c.disarm()
        assert not c.active and not c.on_decode(20, None)


class TestSquashReuse:
    class FakeInst:
        def __init__(self, pc, rd, srcs, result, done=True):
            self.pc = pc
            self.result = result
            self.done = done
            self.instr = type("I", (), {
                "rd": rd, "srcs": tuple(srcs), "is_store": False})()

    def test_harvest_post_reconv_clean(self):
        buf = SquashReuseBuffer()
        squashed = [
            self.FakeInst(11, 2, (2,), 5),      # wrong arm: writes r2
            self.FakeInst(20, 4, (4, 0), 9),    # reconv: clean
            self.FakeInst(21, 6, (2,), 1),      # depends on dirty r2
        ]
        n = buf.harvest(reconv_pc=20, initial_mask=0, squashed=squashed)
        assert n == 1
        assert 20 in buf.records and 21 not in buf.records

    def test_match_value_check(self):
        buf = SquashReuseBuffer()
        buf.harvest(20, 0, [self.FakeInst(20, 4, (), 9)])
        assert buf.match(20, 8) is None          # wrong value: rejected
        assert buf.match(20, 9) is None          # entry consumed by miss

    def test_match_consumes(self):
        buf = SquashReuseBuffer()
        buf.harvest(20, 0, [self.FakeInst(20, 4, (), 9)])
        assert buf.match(20, 9) is not None
        assert buf.match(20, 9) is None

    def test_initial_mask_blocks(self):
        buf = SquashReuseBuffer()
        n = buf.harvest(20, 1 << 0, [self.FakeInst(20, 4, (0,), 9)])
        assert n == 0

    def test_unreached_reconv_harvests_nothing(self):
        buf = SquashReuseBuffer()
        n = buf.harvest(99, 0, [self.FakeInst(20, 4, (), 9)])
        assert n == 0

    def test_poisoning_propagates(self):
        buf = SquashReuseBuffer()
        squashed = [
            self.FakeInst(20, 4, (9,), 9),       # reconv, clean -> harvested
            self.FakeInst(21, 5, (8,), 1),       # dirty source r8
            self.FakeInst(22, 6, (5,), 2),       # depends on poisoned r5
        ]
        n = buf.harvest(20, 1 << 8, squashed)
        assert n == 1 and 22 not in buf.records


class TestSpecDataMemory:
    def test_alloc_release(self):
        m = SpecDataMemory(8)
        assert m.alloc_up_to(5) == 5
        assert m.alloc_up_to(5) == 3
        m.release(8)
        assert m.free == 8

    def test_alloc_failure_counted(self):
        m = SpecDataMemory(2)
        m.alloc_up_to(2)
        m.alloc_up_to(1)
        assert m.alloc_failures == 1

    def test_copy_latency_port_queueing(self):
        m = SpecDataMemory(8, latency=2, read_ports=2)
        lats = [m.copy_latency(10) for _ in range(5)]
        assert lats == [2, 2, 3, 3, 4]
        assert m.copy_latency(11) == 2  # new cycle resets the queue

    def test_double_release_asserts(self):
        m = SpecDataMemory(1)
        with pytest.raises(AssertionError):
            m.release(1)
