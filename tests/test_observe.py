"""Tests for the pipeline observability subsystem (src/repro/observe)."""

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import run_kernel, run_program
from repro.ci import CIEngine
from repro.observe import (
    COMPONENTS,
    AuditTrail,
    CPIStack,
    MultiObserver,
    NullObserver,
    Observer,
    PipeTracer,
    REASONS,
    make_observer,
    merge_payloads,
    observer_names,
    parse_konata,
)
from repro.uarch.config import ci, scal, wb
from repro.uarch.core import simulate
from repro.workloads import kernel_names
from repro.workloads.micro import micro_program

SCALE = 0.1
POLICIES = {"scal": lambda: scal(1, 512), "wb": lambda: wb(1, 512),
            "ci": lambda: ci(1, 512)}


# ---------------------------------------------------------------------------
# CPI-stack invariant: every cycle attributed, sum exact.
# ---------------------------------------------------------------------------
class TestCPIStackInvariant:
    @pytest.mark.parametrize("kernel", kernel_names())
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_sums_to_cycles(self, kernel, policy):
        obs = CPIStack()
        st = run_kernel(kernel, POLICIES[policy](), scale=SCALE,
                        observer=obs)
        assert obs.total == st.cycles, (
            f"{kernel}/{policy}: CPI stack {obs.as_dict()} sums to "
            f"{obs.total}, not {st.cycles}")
        assert obs.cycles == st.cycles
        assert all(getattr(obs, c) >= 0 for c in COMPONENTS)

    def test_components_meaningful_on_hammock(self):
        obs = CPIStack()
        st = simulate(micro_program("biased50"), ci(1, 512), CIEngine(),
                      observer=obs)
        assert obs.total == st.cycles
        # A hammock full of hard mispredictions must show branch penalty.
        assert obs.branch_resolution > 0

    def test_merge_sums(self):
        payloads = []
        cycles = 0
        for kernel in ("mcf", "bzip2"):
            obs = CPIStack()
            st = run_kernel(kernel, ci(1, 512), scale=SCALE, observer=obs)
            payloads.append(obs.export())
            cycles += st.cycles
        merged = merge_payloads(payloads)["cpi"]
        assert merged["cycles"] == cycles
        assert sum(merged["components"].values()) == cycles


# ---------------------------------------------------------------------------
# Observation must never perturb the simulation.
# ---------------------------------------------------------------------------
class TestNonPerturbation:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_stats_identical_with_observer(self, policy):
        cfg = POLICIES[policy]()
        bare = run_kernel("vpr", cfg, scale=SCALE)
        nulled = run_kernel("vpr", cfg, scale=SCALE,
                            observer=NullObserver())
        observed = run_kernel("vpr", cfg, scale=SCALE,
                              observer=make_observer("cpi,audit,trace"))
        assert bare.to_dict() == nulled.to_dict()
        assert bare.to_dict() == observed.to_dict()

    def test_null_observer_not_attached(self):
        from repro.uarch.core import Core
        from repro.workloads import build_program
        prog = build_program("mcf", SCALE, 1)
        core = Core(scal(1, 512), prog, observer=NullObserver())
        assert core._obs is None
        core = Core(scal(1, 512), prog, observer=CPIStack())
        assert core._obs is not None


# ---------------------------------------------------------------------------
# PipeTracer: records, JSONL, Konata round-trip.
# ---------------------------------------------------------------------------
class TestPipeTracer:
    def _traced_hammock(self):
        tracer = PipeTracer()
        st = simulate(micro_program("biased50"), ci(1, 512), CIEngine(),
                      observer=tracer)
        return tracer, st

    def test_counts_match_stats(self):
        tracer, st = self._traced_hammock()
        assert len(tracer.records) == st.fetched
        assert len(tracer.committed) == st.committed

    def test_every_record_terminates(self):
        tracer, _ = self._traced_hammock()
        for rec in tracer.records:
            assert rec.commit >= 0 or rec.squash >= 0, (
                f"seq {rec.seq} neither committed nor squashed")

    def test_jsonl_export(self):
        tracer, _ = self._traced_hammock()
        buf = io.StringIO()
        n = tracer.to_jsonl(buf)
        lines = buf.getvalue().splitlines()
        assert n == len(lines) == len(tracer.records)
        first = json.loads(lines[0])
        assert first["seq"] == 0 and first["fetch"] >= 0

    def test_konata_round_trip(self):
        tracer, st = self._traced_hammock()
        buf = io.StringIO()
        n = tracer.to_konata(buf)
        assert n == len(tracer.records)
        parsed = parse_konata(buf.getvalue())
        assert len(parsed) == len(tracer.records)
        for rec in tracer.records:
            got = parsed[rec.seq]
            assert got["stages"]["F"] == rec.fetch
            if rec.dispatch >= 0:
                assert got["stages"]["D"] == rec.dispatch
            if rec.issue >= 0:
                assert got["stages"]["X"] == rec.issue
            if rec.commit >= 0:
                assert got["retired"] == rec.commit and not got["flushed"]
            else:
                assert got["retired"] == rec.squash and got["flushed"]
        assert sum(1 for p in parsed.values() if not p["flushed"]) \
            == st.committed

    def test_limit_caps_records(self):
        tracer = PipeTracer(limit=10)
        simulate(micro_program("biased50"), ci(1, 512), CIEngine(),
                 observer=tracer)
        assert len(tracer.records) == 10

    def test_render_text(self):
        tracer, _ = self._traced_hammock()
        text = tracer.render_text(limit=8)
        assert "F" in text and "|" in text
        # header + 8 rows (+ optional clipped-view footer)
        assert len(text.splitlines()) in (9, 10)


# ---------------------------------------------------------------------------
# AuditTrail: every hard mispredicted branch gets a named reason.
# ---------------------------------------------------------------------------
class TestAuditTrail:
    @pytest.mark.parametrize("kernel", kernel_names())
    def test_every_examined_branch_has_reason(self, kernel):
        audit = AuditTrail()
        st = run_kernel(kernel, ci(1, 512), scale=SCALE, observer=audit)
        reasons = audit.hard_branch_reasons()
        for ev in audit.events:
            assert ev.reason in REASONS
            assert ev.branch_pc in reasons
        # Event counts reconcile with the engine's own accounting:
        # untracked (nrbq-full) events are the ones the engine skipped.
        tracked = sum(1 for ev in audit.events if ev.tracked)
        assert tracked == st.ci_events

    def test_reuse_agrees_with_stats(self):
        audit = AuditTrail()
        st = run_kernel("bzip2", ci(1, 512), scale=SCALE, observer=audit)
        reused = sum(1 for ev in audit.events if ev.reused)
        assert reused == st.ci_reused
        selected = sum(1 for ev in audit.events if ev.selected)
        assert selected == st.ci_selected

    def test_histogram_covers_all_events(self):
        audit = AuditTrail()
        run_kernel("mcf", ci(1, 512), scale=SCALE, observer=audit)
        hist = audit.reason_histogram()
        assert sum(hist.values()) == len(audit.events)
        assert set(hist) == set(REASONS)

    def test_render_names_reasons(self):
        audit = AuditTrail()
        run_kernel("bzip2", ci(1, 512), scale=SCALE, observer=audit)
        out = audit.render()
        assert "dominant reason" in out
        for pc, reason in audit.hard_branch_reasons().items():
            assert reason in out

    def test_payload_round_trip(self):
        audit = AuditTrail()
        run_kernel("twolf", ci(1, 512), scale=SCALE, observer=audit)
        rebuilt = AuditTrail.from_payload(audit.export_data())
        assert rebuilt.hard_branch_reasons() == audit.hard_branch_reasons()
        assert rebuilt.reason_histogram() == audit.reason_histogram()


# ---------------------------------------------------------------------------
# Observer plumbing: factory, fan-out, payload merging.
# ---------------------------------------------------------------------------
class TestPlumbing:
    def test_make_observer_specs(self):
        assert make_observer(None) is None
        assert make_observer("") is None
        assert make_observer("off") is None
        assert make_observer("0") is None
        assert isinstance(make_observer("cpi"), CPIStack)
        multi = make_observer("cpi,audit")
        assert isinstance(multi, MultiObserver)
        assert [type(c) for c in multi.children] == [CPIStack, AuditTrail]
        with pytest.raises(ValueError, match="unknown observer"):
            make_observer("bogus")

    def test_observer_names(self):
        assert set(observer_names()) >= {"cpi", "audit", "trace", "null"}

    def test_multi_observer_matches_singles(self):
        cfg = ci(1, 512)
        multi = MultiObserver([CPIStack(), AuditTrail()])
        run_kernel("gzip", cfg, scale=SCALE, observer=multi)
        solo = CPIStack()
        run_kernel("gzip", cfg, scale=SCALE, observer=solo)
        assert multi.children[0].as_dict() == solo.as_dict()
        assert set(multi.export()) == {"cpi", "audit"}

    def test_base_observer_is_inert(self):
        # The protocol base class must accept every event silently.
        st = run_kernel("gcc", ci(1, 512), scale=SCALE, observer=Observer())
        assert st.cycles > 0


# ---------------------------------------------------------------------------
# The ported example keeps running.
# ---------------------------------------------------------------------------
def test_branch_anatomy_example_runs():
    repo = Path(__file__).resolve().parent.parent
    proc = subprocess.run(
        [sys.executable, str(repo / "examples" / "branch_anatomy.py"),
         "--scale", "0.05", "bzip2"],
        capture_output=True, text=True, timeout=300,
        env={"PYTHONPATH": str(repo / "src"), "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0, proc.stderr
    assert "observed under ci" in proc.stdout
    assert "CPI stack" in proc.stdout
