"""Characterisation tests on the microbenchmark zoo.

Each pattern isolates one mechanism behaviour; these tests pin the
mechanism's qualitative response to each, which is much sharper than
anything the full kernels can assert.
"""

import pytest

from repro import run_program
from repro.isa import run as frun
from repro.uarch import ci, wb
from repro.workloads.micro import (
    MICRO_PATTERNS,
    biased_hammock,
    deep_ci_region,
    micro_program,
)


@pytest.fixture(scope="module")
def zoo():
    out = {}
    for name in MICRO_PATTERNS:
        prog = micro_program(name)
        out[name] = {
            "prog": prog,
            "wb": run_program(prog, wb(1, 512)),
            "ci": run_program(prog, ci(1, 512)),
        }
    return out


class TestCorrectness:
    @pytest.mark.parametrize("name", sorted(MICRO_PATTERNS))
    def test_commit_counts(self, zoo, name):
        d = zoo[name]
        steps = frun(d["prog"]).steps
        assert d["wb"].committed == d["ci"].committed == steps

    def test_unknown_pattern(self):
        with pytest.raises(KeyError):
            micro_program("nope")

    def test_deep_depth_limit(self):
        with pytest.raises(ValueError):
            deep_ci_region(17)


class TestMBSOperatingPoint:
    """The bias sweep: the MBS filter activates only on hard branches."""

    def test_random_branch_examined(self, zoo):
        assert zoo["biased50"]["ci"].ci_events > 100

    def test_heavily_biased_branch_filtered(self, zoo):
        # At 99% bias the branch is easy: MBS saturates, CI stays off.
        assert zoo["biased99"]["ci"].ci_events <= 5
        assert zoo["biased99"]["ci"].replicas_created <= 100

    def test_events_decrease_with_bias(self, zoo):
        e50 = zoo["biased50"]["ci"].ci_events
        e90 = zoo["biased90"]["ci"].ci_events
        e99 = zoo["biased99"]["ci"].ci_events
        assert e50 > e90 > e99

    def test_gain_tracks_misprediction_exposure(self, zoo):
        gain = lambda n: (zoo[n]["ci"].ipc / zoo[n]["wb"].ipc) - 1
        assert gain("biased50") > gain("biased99") + 0.10
        assert abs(gain("biased99")) < 0.05  # nothing to exploit


class TestCIRegionShape:
    def test_deeper_ci_region_reuses_more(self, zoo):
        assert (zoo["deep12"]["ci"].reuse_fraction
                > zoo["deep4"]["ci"].reuse_fraction)

    def test_if_then_shape_works_too(self, zoo):
        st = zoo["if_then"]["ci"]
        assert st.ci_selected > 0 and st.committed_reused > 0

    def test_nested_hammocks_work(self, zoo):
        st = zoo["nested"]["ci"]
        assert st.ci_selected > 0
        assert st.ipc > zoo["nested"]["wb"].ipc * 1.1


class TestFigure5Regions:
    """The zoo isolates the figure's three stacking regions."""

    def test_grey_region_selected_but_no_reuse(self, zoo):
        # Pointer chase: CI instructions found, nothing vectorizable.
        st = zoo["non_strided"]["ci"]
        assert st.ci_selected > 50
        assert st.committed_reused == 0
        assert st.ipc == pytest.approx(zoo["non_strided"]["wb"].ipc,
                                       rel=0.03)

    def test_black_region_reuse(self, zoo):
        st = zoo["biased50"]["ci"]
        assert st.ci_reused > 0.3 * st.ci_events

    def test_both_arms_write_blocks_diff_consumers(self, zoo):
        # Selection succeeds (the clean accumulator), but less of the
        # committed stream reuses than in the plain hammock with the same
        # amount of post-reconvergence work.
        st = zoo["both_arms"]["ci"]
        assert st.ci_selected > 0


class TestLoopExit:
    def test_variable_trip_mispredicts_heavily(self, zoo):
        assert zoo["variable_trip"]["wb"].mispredict_rate > 0.3

    def test_mechanism_still_helps_a_little(self, zoo):
        # Loop-exit mispredictions re-converge at the *next element*: less
        # reusable work than a hammock, but not zero.
        gain = (zoo["variable_trip"]["ci"].ipc
                / zoo["variable_trip"]["wb"].ipc) - 1
        assert 0.0 <= gain < 0.5


class TestKnobs:
    def test_bias_knob_changes_data(self):
        assert biased_hammock(0.2) != biased_hammock(0.8)

    def test_seed_changes_data(self):
        assert (micro_program("biased50", seed=1).initial_memory()
                != micro_program("biased50", seed=9).initial_memory())
