"""Unit tests for the SRSMT table and replica scheduler."""

import pytest

from repro.ci.srsmt import (
    SCALAR,
    SELF,
    VEC,
    Operand,
    ReplicaScheduler,
    SRSMT,
    SRSMTEntry,
)
from repro.isa import Op, assemble
from repro.uarch import PortState, ProcessorConfig, SimStats
from repro.uarch.caches import MemoryHierarchy


def load_instr(pc=0):
    return assemble("\n".join(["nop"] * pc + ["ld r1, 0(r2)"])).code[pc]


def alu_instr(src="add r3, r3, r1", pc=0):
    return assemble("\n".join(["nop"] * pc + [src])).code[pc]


def make_ports(cfg=None, stats=None):
    cfg = cfg or ProcessorConfig(wide_bus=True, l1d_ports=2)
    stats = stats or SimStats()
    return PortState(cfg, stats, MemoryHierarchy(cfg)), stats


class TestSRSMTEntry:
    def test_load_pattern_range(self):
        e = SRSMTEntry(0, load_instr(), nregs=4)
        e.set_load_pattern(1000, 8)
        assert [e.replica_addr(i) for i in range(4)] == [1008, 1016, 1024, 1032]
        assert e.range_lo == 1008 and e.range_hi == 1032
        assert e.contains_addr(1016) and not e.contains_addr(1000)

    def test_negative_stride_range(self):
        e = SRSMTEntry(0, load_instr(), nregs=2)
        e.set_load_pattern(1000, -8)
        assert e.range_lo == 984 and e.range_hi == 992

    def test_non_load_never_contains(self):
        e = SRSMTEntry(0, alu_instr(), nregs=2)
        assert not e.contains_addr(0)

    def test_rollback_decode(self):
        e = SRSMTEntry(0, load_instr(), nregs=4)
        e.decode, e.commit = 3, 1
        e.rollback_decode()
        assert e.decode == 1

    def test_dep_load_contains_realised_addrs(self):
        e = SRSMTEntry(0, load_instr(), nregs=2)
        e.addr_operand = Operand(SCALAR, value=0)
        e.addrs = [2000, None]
        assert e.contains_addr(2000) and not e.contains_addr(2008)


class TestSRSMTTable:
    def test_insert_lookup_dealloc(self):
        released = []
        t = SRSMT(sets=4, ways=2, release=released.append)
        e = SRSMTEntry(5, load_instr(), 4)
        assert t.try_insert(e)
        assert t.lookup(5) is e
        t.deallocate(e)
        assert t.lookup(5) is None
        assert released == [e]
        assert e.generation == 1

    def test_eviction_requires_dead_entry(self):
        t = SRSMT(sets=1, ways=1)
        busy = SRSMTEntry(0, load_instr(), 4)
        busy.decode = 2  # decode != commit: in use
        assert t.try_insert(busy)
        fresh = SRSMTEntry(1, load_instr(), 4)
        assert not t.try_insert(fresh)
        assert t.alloc_failures == 1
        busy.decode = busy.commit = 2
        assert t.try_insert(fresh)

    def test_same_pc_replaces(self):
        t = SRSMT(sets=4, ways=2)
        a = SRSMTEntry(5, load_instr(), 4)
        b = SRSMTEntry(5, load_instr(), 4)
        t.try_insert(a)
        assert t.try_insert(b)
        assert t.lookup(5) is b and a.generation == 1

    def test_recovery_rolls_back_and_daec(self):
        t = SRSMT()
        used = SRSMTEntry(1, load_instr(), 4)
        used.decode = 2
        idle = SRSMTEntry(2, load_instr(), 4)
        t.try_insert(used)
        t.try_insert(idle)
        dead = t.on_recovery()
        assert dead == [] and used.daec == 0 and idle.daec == 1
        assert used.decode == used.commit == 0
        dead = t.on_recovery()
        assert idle in dead  # DAEC reached 2


class TestReplicaScheduler:
    def make_sched(self, mem=None):
        mem = mem if mem is not None else {}
        return ReplicaScheduler(load_latency=lambda a, n: 1,
                                mem_read=lambda a: mem.get(a, 0))

    def test_strided_load_replicas_execute(self):
        mem = {1008: 11, 1016: 22, 1024: 33, 1032: 44}
        s = self.make_sched(mem)
        e = SRSMTEntry(0, load_instr(), 4)
        e.set_load_pattern(1000, 8)
        s.enqueue_batch(e)
        ports, stats = make_ports()
        assert s.issue(now=1, slots=8, ports=ports, stats=stats) == 4
        s.drain_completions(now=2)
        assert e.values == [11, 22, 33, 44]
        assert all(e.done) and e.issue == 0
        assert stats.replicas_executed == 4

    def test_port_limited_issue(self):
        cfg = ProcessorConfig(wide_bus=False, l1d_ports=1)
        s = self.make_sched()
        e = SRSMTEntry(0, load_instr(), 4)
        e.set_load_pattern(1000, 8)
        s.enqueue_batch(e)
        ports, stats = make_ports(cfg)
        assert s.issue(1, slots=8, ports=ports, stats=stats) == 1
        assert len(s.pending) == 3

    def test_wide_bus_groups_replica_loads(self):
        s = self.make_sched()
        e = SRSMTEntry(0, load_instr(), 4)
        e.set_load_pattern(1000, 8)  # 1008..1032 span two 32B lines
        s.enqueue_batch(e)
        ports, stats = make_ports()
        s.issue(1, slots=8, ports=ports, stats=stats)
        assert stats.l1d_replica_accesses == 2

    def test_alu_chain_waits_for_producer(self):
        s = self.make_sched({1008: 7})
        prod = SRSMTEntry(0, load_instr(), 2)
        prod.set_load_pattern(1000, 8)
        cons = SRSMTEntry(1, alu_instr("addi r3, r1, 5", pc=0), 2)
        cons.operands = [Operand(VEC, producer=prod, producer_generation=0,
                                 base=0)]
        s.enqueue_batch(prod)
        s.enqueue_batch(cons)
        ports, stats = make_ports()
        s.issue(1, 8, ports, stats)       # loads go; ALUs wait
        assert not any(cons.done)
        s.drain_completions(2)
        ports2, _ = make_ports(stats=stats)
        s.issue(2, 8, ports2, stats)
        s.drain_completions(3)
        assert cons.values[0] == 12       # 7 + 5

    def test_self_recurrent_chain(self):
        s = self.make_sched()
        e = SRSMTEntry(0, alu_instr("addi r3, r3, 2", pc=0), 3)
        e.operands = [Operand(SELF, value=10)]
        s.enqueue_batch(e)
        for cyc in range(1, 8):
            ports, stats = make_ports()
            s.drain_completions(cyc)
            s.issue(cyc, 8, ports, SimStats())
        s.drain_completions(99)
        assert e.values == [12, 14, 16]

    def test_dead_generation_dropped(self):
        s = self.make_sched()
        e = SRSMTEntry(0, load_instr(), 4)
        e.set_load_pattern(1000, 8)
        s.enqueue_batch(e)
        e.generation += 1  # deallocated
        ports, stats = make_ports()
        assert s.issue(1, 8, ports, stats) == 0
        assert not s.pending

    def test_dead_producer_drops_consumer(self):
        s = self.make_sched()
        prod = SRSMTEntry(0, load_instr(), 2)
        prod.set_load_pattern(1000, 8)
        cons = SRSMTEntry(1, alu_instr("addi r3, r1, 5", pc=0), 2)
        cons.operands = [Operand(VEC, producer=prod, producer_generation=0,
                                 base=0)]
        s.enqueue_batch(cons)
        prod.generation += 1
        ports, stats = make_ports()
        s.issue(1, 8, ports, stats)
        assert not s.pending  # consumers silently dropped

    def test_slot_budget_respected(self):
        s = self.make_sched()
        e = SRSMTEntry(0, load_instr(), 4)
        e.set_load_pattern(1000, 8)
        s.enqueue_batch(e)
        ports, stats = make_ports()
        assert s.issue(1, slots=2, ports=ports, stats=stats) == 2

    def test_scalar_operands_always_ready(self):
        s = self.make_sched()
        e = SRSMTEntry(0, alu_instr("add r3, r1, r2", pc=0), 2)
        e.operands = [Operand(SCALAR, value=4), Operand(SCALAR, value=6)]
        s.enqueue_batch(e)
        ports, stats = make_ports()
        s.issue(1, 8, ports, stats)
        s.drain_completions(5)
        assert e.values == [10, 10]
