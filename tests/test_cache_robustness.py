"""Robustness tests for the persistent result cache.

The contract: a corrupt entry can never feed a wrong number into a
figure.  Junk bytes and checksum failures are quarantined; entries from
another schema are plain misses; concurrent writers never tear a file.
"""

import json
import multiprocessing
import os

import pytest

from repro.runtime import CACHE_SCHEMA, ResultCache
from repro.runtime.cache import QUARANTINE_DIR, cache_enabled
from repro.runtime.parallel import ParallelRunner
from repro.uarch import SimStats
from repro.uarch.config import wb

KEY = "ab" * 32


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=str(tmp_path / "cache"), enabled=True)


def write_raw(cache, key, text):
    path = cache.path_for(key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        fh.write(text)
    return path


def quarantined_files(cache):
    qdir = os.path.join(cache.root, QUARANTINE_DIR)
    return sorted(os.listdir(qdir)) if os.path.isdir(qdir) else []


class TestCorruptEntries:
    def test_junk_bytes_are_quarantined(self, cache):
        path = write_raw(cache, KEY, "{garbage")
        assert cache.get(KEY) is None
        assert not os.path.exists(path)            # moved, not deleted
        assert quarantined_files(cache) == [os.path.basename(path)]
        assert cache.quarantined == [path]

    def test_truncated_entry_is_quarantined(self, cache):
        cache.put(KEY, SimStats(cycles=10, committed=7))
        path = cache.path_for(KEY)
        with open(path) as fh:
            text = fh.read()
        write_raw(cache, KEY, text[:len(text) // 2])
        assert cache.get(KEY) is None
        assert quarantined_files(cache)

    def test_checksum_tamper_is_quarantined(self, cache):
        cache.put(KEY, SimStats(cycles=10, committed=7))
        path = cache.path_for(KEY)
        with open(path) as fh:
            envelope = json.load(fh)
        envelope["stats"]["cycles"] = 99999        # silent bit-flip
        with open(path, "w") as fh:
            json.dump(envelope, fh)
        assert cache.get(KEY) is None
        assert quarantined_files(cache)

    def test_missing_envelope_fields_are_quarantined(self, cache):
        write_raw(cache, KEY, json.dumps({"cycles": 10}))
        assert cache.get(KEY) is None
        assert quarantined_files(cache)

    def test_quarantined_entry_not_rescanned(self, cache):
        write_raw(cache, KEY, "{garbage")
        cache.get(KEY)
        report = cache.verify()
        assert report["ok"] == 0 and report["corrupt"] == 0

    def test_intact_entry_survives(self, cache):
        st = SimStats(cycles=10, committed=7)
        cache.put(KEY, st)
        assert cache.get(KEY) == st
        assert quarantined_files(cache) == []


class TestSchemaMismatch:
    def test_other_schema_is_a_miss_not_corruption(self, cache):
        cache.put(KEY, SimStats(cycles=10, committed=7))
        path = cache.path_for(KEY)
        with open(path) as fh:
            envelope = json.load(fh)
        envelope["schema"] = CACHE_SCHEMA - 1
        with open(path, "w") as fh:
            json.dump(envelope, fh)
        assert cache.get(KEY) is None              # miss ...
        assert os.path.exists(path)                # ... left in place
        assert quarantined_files(cache) == []

    def test_schema_mismatch_re_simulates(self, cache):
        """A stale-schema entry must trigger a fresh simulation."""
        cfg = wb(1, 256)
        first = ParallelRunner(scale=0.05, seed=1, jobs=1, cache=cache)
        st = first.run("eon", cfg)
        assert first.sims_run == 1
        # Downgrade the stored entry's schema in place.
        from repro.runtime import RunSpec, run_key
        key = run_key(RunSpec("eon", 0.05, 1, cfg))
        path = cache.path_for(key)
        with open(path) as fh:
            envelope = json.load(fh)
        envelope["schema"] = CACHE_SCHEMA - 1
        with open(path, "w") as fh:
            json.dump(envelope, fh)
        second = ParallelRunner(scale=0.05, seed=1, jobs=1, cache=cache)
        again = second.run("eon", cfg)
        assert second.sims_run == 1 and second.disk_hits == 0
        assert again == st


class TestVerify:
    def test_verify_counts_and_quarantines(self, cache):
        cache.put(KEY, SimStats(cycles=10, committed=7))
        write_raw(cache, "cd" * 32, "{junk")
        report = cache.verify()
        assert report["ok"] == 1 and report["corrupt"] == 1
        assert quarantined_files(cache)
        # Second pass is clean.
        assert cache.verify()["corrupt"] == 0

    def test_verify_without_quarantine_leaves_files(self, cache):
        path = write_raw(cache, KEY, "{junk")
        report = cache.verify(quarantine=False)
        assert report["corrupt"] == 1
        assert os.path.exists(path)

    def test_info_counts_quarantined_separately(self, cache):
        cache.put(KEY, SimStats(cycles=1))
        write_raw(cache, "cd" * 32, "{junk")
        cache.get("cd" * 32)
        info = cache.info()
        assert info["entries"] == 1 and info["quarantined"] == 1


def _writer(root, key, cycles, n):
    cache = ResultCache(root=root, enabled=True)
    for i in range(n):
        cache.put(key, SimStats(cycles=cycles, committed=cycles))


class TestConcurrentWriters:
    def test_parallel_writers_never_tear_an_entry(self, cache):
        """Hammer one key from several processes; every read of the
        final file must be a valid, checksummed entry."""
        ctx = multiprocessing.get_context()
        procs = [ctx.Process(target=_writer,
                             args=(cache.root, KEY, 100 + i, 25))
                 for i in range(4)]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)
        st = cache.get(KEY)
        assert st is not None and st.cycles in (100, 101, 102, 103)
        assert quarantined_files(cache) == []
        leftovers = [n for _, _, names in os.walk(cache.root)
                     for n in names if n.endswith(".tmp")]
        assert leftovers == []


class TestFaultModeDisablesCache:
    def test_repro_faults_disables(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert cache_enabled()
        monkeypatch.setenv("REPRO_FAULTS", "squash@100")
        assert not cache_enabled()


class TestCacheCounters:
    """Lifetime hit/miss/coalesce accounting (PR: serving layer)."""

    def test_get_tallies_hits_and_misses(self, cache):
        assert cache.get(KEY) is None
        cache.put(KEY, SimStats(cycles=3, committed=2))
        assert cache.get(KEY) is not None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_corrupt_entry_counts_as_miss(self, cache):
        write_raw(cache, KEY, "{garbage")
        assert cache.get(KEY) is None
        assert cache.misses == 1

    def test_disabled_cache_counts_nothing(self, tmp_path):
        c = ResultCache(root=str(tmp_path / "c"), enabled=False)
        c.get(KEY)
        c.note_coalesced()
        c.flush_counters()
        assert (c.hits, c.misses, c.coalesced) == (0, 0, 1)
        assert not os.path.exists(c.root)

    def test_flush_merges_across_instances(self, cache):
        cache.get(KEY)                      # one miss
        cache.note_coalesced(2)
        totals = cache.flush_counters()
        assert totals == {"hits": 0, "misses": 1, "coalesced": 2}
        # in-memory tallies reset after a successful flush
        assert (cache.hits, cache.misses, cache.coalesced) == (0, 0, 0)
        other = ResultCache(root=cache.root, enabled=True)
        other.get(KEY)
        totals = other.flush_counters()
        assert totals == {"hits": 0, "misses": 2, "coalesced": 2}
        assert other.load_counters()["misses"] == 2

    def test_counters_file_is_not_a_cache_entry(self, cache):
        cache.get(KEY)
        cache.flush_counters()
        info = cache.info()
        assert info["entries"] == 0          # counters.json excluded
        report = cache.verify()
        assert report["corrupt"] == 0        # never quarantined
        assert cache.load_counters()["misses"] == 1

    def test_info_includes_unflushed_tallies(self, cache):
        cache.get(KEY)
        cache.flush_counters()
        cache.get(KEY)                       # unflushed second miss
        assert cache.info()["misses"] == 2

    def test_clear_resets_counters(self, cache):
        cache.get(KEY)
        cache.note_coalesced()
        cache.flush_counters()
        cache.clear()
        assert cache.load_counters() == {"hits": 0, "misses": 0,
                                         "coalesced": 0}
        assert cache.info()["misses"] == 0

    def test_unreadable_counters_file_reads_as_zero(self, cache):
        cache.get(KEY)
        cache.flush_counters()
        with open(os.path.join(cache.root, "counters.json"), "w") as fh:
            fh.write("{broken")
        assert cache.load_counters() == {"hits": 0, "misses": 0,
                                         "coalesced": 0}
